"""Shim for environments without the ``wheel`` package, where PEP 517
editable installs are unavailable (``pip install -e . --no-use-pep517``)."""

from setuptools import setup

setup()
