"""``python -m repro`` — the same CLI as ``repro`` / ``moe-inference-bench``."""

from repro.core.cli import main

if __name__ == "__main__":
    raise SystemExit(main())
