"""Roofline kernel-time model.

A kernel is characterised by its FLOP count, the bytes it moves through
device memory, and the datatype its math runs in.  Execution time is the
roofline maximum of the compute time and the memory time, plus the kernel
launch overhead:

    t = max( flops / (peak_flops_per_s * eff_c),  bytes / (bw * eff_m) ) + launch

``eff_c`` is not constant: real tensor cores lose utilization when the
token dimension of a GEMM is small (decode steps are GEMV-like) or when
dimensions don't fill the MMA tiles.  We model that with a saturating
utilization curve in the reduction-parallel token dimension, which is the
standard first-order shape for cuBLAS/CUTLASS efficiency data.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hardware.spec import HardwareSpec

__all__ = ["KernelCost", "gemm_efficiency", "kernel_time", "gemm_cost",
           "gemm_time", "arithmetic_intensity", "is_memory_bound"]

# Token-dimension scale at which GEMM efficiency reaches half its ceiling.
# ~64 rows fill one MMA tile pipeline stage on Hopper-class hardware.
_M_HALF = 256.0
# Granularity penalty when inner dims are not multiples of the tile width.
_TILE = 64


@dataclass(frozen=True)
class KernelCost:
    """Static cost of one kernel (or a fused group of kernels)."""

    flops: float
    bytes: float
    dtype: str = "fp16"
    launches: int = 1

    def __add__(self, other: "KernelCost") -> "KernelCost":
        if other.dtype != self.dtype:
            raise ValueError(
                f"cannot merge kernel costs of dtypes {self.dtype} and {other.dtype}"
            )
        return KernelCost(
            flops=self.flops + other.flops,
            bytes=self.bytes + other.bytes,
            dtype=self.dtype,
            launches=self.launches + other.launches,
        )

    def scaled(self, factor: float) -> "KernelCost":
        return KernelCost(self.flops * factor, self.bytes * factor, self.dtype, self.launches)


def gemm_efficiency(m: float, n: float, k: float, hw: HardwareSpec) -> float:
    """Fraction of tensor-core peak achieved by an ``m×k @ k×n`` GEMM.

    ``m`` is the token (batch) dimension.  Efficiency saturates towards the
    hardware's ``max_gemm_efficiency`` as ``m`` grows, with a mild
    granularity penalty for inner dimensions that underfill tiles.
    """
    if m <= 0 or n <= 0 or k <= 0:
        raise ValueError(f"GEMM dims must be positive, got ({m}, {n}, {k})")
    sat = m / (m + _M_HALF)

    def tile_quant(d: float) -> float:
        # work is issued in TILE-wide chunks; a 65-wide dim pays for 128
        tiles = -(-d // _TILE)  # ceil division
        return d / (tiles * _TILE)

    gran = tile_quant(n) * tile_quant(k)
    return hw.max_gemm_efficiency * sat * gran


def kernel_time(cost: KernelCost, hw: HardwareSpec, efficiency: float | None = None) -> float:
    """Execution time in seconds of one kernel cost on ``hw``.

    ``efficiency`` overrides the compute-efficiency factor (used by
    :func:`gemm_time`, which knows its shape); the default assumes a large,
    well-shaped kernel.
    """
    eff = hw.max_gemm_efficiency if efficiency is None else efficiency
    if eff <= 0:
        raise ValueError("efficiency must be positive")
    if cost.dtype in ("fp8_e4m3", "int8", "int4"):
        eff *= hw.quant_gemm_derate
    t_compute = cost.flops / (hw.peak_flops_per_s(cost.dtype) * eff) if cost.flops else 0.0
    t_memory = cost.bytes / hw.mem_bytes_per_s if cost.bytes else 0.0
    return max(t_compute, t_memory) + cost.launches * hw.kernel_launch_us * 1e-6


def arithmetic_intensity(cost: KernelCost) -> float:
    """FLOPs per byte moved — the roofline x-axis."""
    if cost.bytes <= 0:
        return float("inf") if cost.flops > 0 else 0.0
    return cost.flops / cost.bytes


def is_memory_bound(cost: KernelCost, hw: HardwareSpec,
                    efficiency: float | None = None) -> bool:
    """Whether the memory term dominates this kernel's roofline time."""
    eff = hw.max_gemm_efficiency if efficiency is None else efficiency
    if cost.dtype in ("fp8_e4m3", "int8", "int4"):
        eff *= hw.quant_gemm_derate
    t_compute = cost.flops / (hw.peak_flops_per_s(cost.dtype) * eff) if cost.flops else 0.0
    t_memory = cost.bytes / hw.mem_bytes_per_s if cost.bytes else 0.0
    return t_memory >= t_compute


def gemm_cost(
    m: float, n: float, k: float, weight_bytes_per_el: float, act_bytes_per_el: float,
    dtype: str = "fp16", launches: int = 1,
) -> KernelCost:
    """Cost of ``(m,k) @ (k,n)``: 2mnk FLOPs; weights ``k*n`` at the weight
    storage width, activations ``m*k`` in + ``m*n`` out at activation width."""
    flops = 2.0 * m * n * k
    bytes_moved = k * n * weight_bytes_per_el + (m * k + m * n) * act_bytes_per_el
    return KernelCost(flops=flops, bytes=bytes_moved, dtype=dtype, launches=launches)


def gemm_time(
    m: float, n: float, k: float, hw: HardwareSpec,
    weight_bytes_per_el: float = 2.0, act_bytes_per_el: float = 2.0,
    dtype: str = "fp16", launches: int = 1,
) -> float:
    """Roofline time of one GEMM with the shape-aware efficiency curve."""
    cost = gemm_cost(m, n, k, weight_bytes_per_el, act_bytes_per_el, dtype, launches)
    return kernel_time(cost, hw, efficiency=gemm_efficiency(m, n, k, hw))
