"""Hardware specs (H100 / A100 / CS-3), roofline kernel model, interconnects."""

from repro.hardware.cluster import INFINIBAND_NDR, ClusterSpec
from repro.hardware.gpus import A100_SXM, CS3, H100_SXM, HARDWARE, get_hardware
from repro.hardware.interconnect import (
    all_to_all_time,
    allgather_time,
    allreduce_time,
    p2p_time,
    reduce_scatter_time,
)
from repro.hardware.roofline import (
    KernelCost,
    gemm_cost,
    gemm_efficiency,
    gemm_time,
    kernel_time,
)
from repro.hardware.spec import HardwareSpec, InterconnectSpec

__all__ = [
    "INFINIBAND_NDR",
    "ClusterSpec",
    "A100_SXM",
    "CS3",
    "H100_SXM",
    "HARDWARE",
    "get_hardware",
    "all_to_all_time",
    "allgather_time",
    "allreduce_time",
    "p2p_time",
    "reduce_scatter_time",
    "KernelCost",
    "gemm_cost",
    "gemm_efficiency",
    "gemm_time",
    "kernel_time",
    "HardwareSpec",
    "InterconnectSpec",
]
