"""Hardware specification dataclasses.

A :class:`HardwareSpec` captures the handful of first-order quantities that
determine LLM inference performance on an accelerator: peak math throughput
per datatype, memory capacity and bandwidth, kernel-launch / step overheads,
and the node-level interconnect.  The roofline model in
:mod:`repro.hardware.roofline` turns these into kernel execution times.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["InterconnectSpec", "HardwareSpec"]


@dataclass(frozen=True)
class InterconnectSpec:
    """Per-device interconnect characteristics.

    ``link_bandwidth_gbps`` is the achievable per-direction bandwidth of one
    device's aggregate links (e.g. H100 SXM NVLink-4: 450 GB/s per
    direction); ``latency_us`` is the per-hop software+wire latency.
    """

    name: str
    link_bandwidth_gbps: float
    latency_us: float

    def __post_init__(self) -> None:
        if self.link_bandwidth_gbps <= 0:
            raise ValueError("link_bandwidth_gbps must be positive")
        if self.latency_us < 0:
            raise ValueError("latency_us must be non-negative")


@dataclass(frozen=True)
class HardwareSpec:
    """One accelerator device (or wafer).

    Parameters
    ----------
    peak_tflops:
        Dense tensor-core peak in TFLOP/s keyed by dtype name
        (``fp16``, ``bf16``, ``fp8_e4m3``, ``fp32`` ...).
    memory_gb:
        Device memory capacity (HBM for GPUs; on-wafer SRAM for CS-3).
    mem_bandwidth_gbps:
        Peak memory bandwidth in GB/s.
    mem_efficiency:
        Fraction of peak bandwidth achievable by well-formed kernels.
    max_gemm_efficiency:
        Tensor-core utilization ceiling for large, well-shaped GEMMs.
    kernel_launch_us:
        Per-kernel launch + scheduling overhead.
    step_overhead_us:
        Fixed per-forward-step software overhead (framework scheduling,
        sampling, python driver) — the dominant term for wafer-scale
        inference where the math itself is nearly free.
    interconnect:
        Node-level fabric connecting ``max_devices`` of these devices.
    """

    name: str
    peak_tflops: dict[str, float]
    memory_gb: float
    mem_bandwidth_gbps: float
    mem_efficiency: float = 0.80
    max_gemm_efficiency: float = 0.70
    kernel_launch_us: float = 4.0
    step_overhead_us: float = 50.0
    per_seq_overhead_us: float = 0.0
    """Per-sequence per-step software cost (sampling, detokenise, scheduler
    bookkeeping) — the term that makes batch scaling sub-linear."""
    quant_gemm_derate: float = 0.65
    """Fraction of the nominal 2x quantized-math peak that real FP8/INT8
    GEMMs achieve (scale handling + dequant epilogues eat into it)."""
    quant_mem_derate: float = 0.72
    """Fraction of the nominal bandwidth saving that quantized *weight
    streaming* realises (dequantisation + scale lookups stall the loads)."""
    l2_cache_mb: float = 50.0
    tdp_w: float = 700.0
    """Board power at full load (energy model: the paper motivates
    'low latency and energy-efficient execution')."""
    idle_power_fraction: float = 0.3
    """Fraction of TDP drawn by a device that is stalled on memory or
    communication (used to scale energy with achieved utilization)."""
    interconnect: InterconnectSpec | None = None
    max_devices: int = 8

    def __post_init__(self) -> None:
        if not self.peak_tflops:
            raise ValueError("peak_tflops must contain at least one dtype")
        if any(v <= 0 for v in self.peak_tflops.values()):
            raise ValueError("peak_tflops values must be positive")
        if self.memory_gb <= 0 or self.mem_bandwidth_gbps <= 0:
            raise ValueError("memory_gb and mem_bandwidth_gbps must be positive")
        if not (0 < self.mem_efficiency <= 1):
            raise ValueError("mem_efficiency must be in (0, 1]")
        if not (0 < self.max_gemm_efficiency <= 1):
            raise ValueError("max_gemm_efficiency must be in (0, 1]")
        if self.max_devices <= 0:
            raise ValueError("max_devices must be positive")

    def peak_flops_per_s(self, dtype_name: str) -> float:
        """Peak FLOP/s (not TFLOP/s) for the given dtype.

        Unknown dtypes fall back to fp16 peak scaled by the dtype's
        ``compute_scale`` convention (quantized types run through the
        fp8/int8 pipes at 2x on supporting hardware).
        """
        if dtype_name in self.peak_tflops:
            return self.peak_tflops[dtype_name] * 1e12
        if "fp16" in self.peak_tflops:
            scale = {"fp8_e4m3": 2.0, "int8": 2.0, "int4": 2.0, "fp32": 0.5,
                     "bf16": 1.0}.get(dtype_name, 1.0)
            return self.peak_tflops["fp16"] * scale * 1e12
        raise KeyError(f"no peak FLOP/s known for dtype {dtype_name!r} on {self.name}")

    @property
    def memory_bytes(self) -> float:
        return self.memory_gb * 1e9

    @property
    def mem_bytes_per_s(self) -> float:
        """Achievable memory bandwidth in bytes/s."""
        return self.mem_bandwidth_gbps * 1e9 * self.mem_efficiency
