"""Multi-node cluster modeling (hierarchical collectives).

The paper's §5.3 insight — "extreme scale configurations likely needing
distributed placement across multi-node architectures" — needs a model of
what crossing the node boundary costs.  A :class:`ClusterSpec` is N
identical nodes joined by an inter-node fabric (InfiniBand-class), with
hierarchical collective algorithms: reduce-scatter inside the node, the
collective across node leaders, then all-gather inside the node.  The
inter-node leg is typically ~10x slower per byte than NVLink, which is
exactly why EP across nodes is painful.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hardware.interconnect import (
    all_to_all_time,
    allgather_time,
    allreduce_time,
    degrade_interconnect,
    reduce_scatter_time,
)
from repro.hardware.spec import HardwareSpec, InterconnectSpec

__all__ = ["INFINIBAND_NDR", "ClusterSpec"]

INFINIBAND_NDR = InterconnectSpec(
    name="InfiniBand-NDR400",
    link_bandwidth_gbps=50.0,  # 400 Gb/s per GPU-attached HCA
    latency_us=5.0,
)


@dataclass(frozen=True)
class ClusterSpec:
    """``num_nodes`` identical nodes of ``node`` devices each."""

    node: HardwareSpec
    num_nodes: int
    inter_node: InterconnectSpec = INFINIBAND_NDR

    def __post_init__(self) -> None:
        if self.num_nodes < 1:
            raise ValueError("num_nodes must be >= 1")
        if self.node.interconnect is None and self.num_nodes > 1 and \
                self.node.max_devices > 1:
            raise ValueError("multi-device nodes need an intra-node interconnect")

    @property
    def total_devices(self) -> int:
        return self.num_nodes * self.node.max_devices

    def _inter_hw(self) -> HardwareSpec:
        """A pseudo-device whose interconnect is the inter-node fabric (the
        collective helpers only read ``interconnect``)."""
        import dataclasses

        return dataclasses.replace(self.node, interconnect=self.inter_node)

    def with_degraded_inter_node(self, slowdown: float) -> "ClusterSpec":
        """This cluster with its inter-node fabric slowed ``slowdown``x
        (a flapping IB link / congested rail) — the multi-node analogue of
        the injector's ``LINK_DEGRADE`` fault."""
        import dataclasses

        return dataclasses.replace(
            self, inter_node=degrade_interconnect(self.inter_node, slowdown)
        )

    # ------------------------------------------------------------------ #
    # hierarchical collectives
    # ------------------------------------------------------------------ #

    def allreduce_time(self, message_bytes: float, num_devices: int) -> float:
        """Hierarchical ring all-reduce across ``num_devices``.

        Devices fill nodes first.  Within one node it is a plain NVLink
        ring; across nodes: intra reduce-scatter, inter all-reduce of the
        per-leader shard, intra all-gather.
        """
        self._check(num_devices)
        per_node = min(num_devices, self.node.max_devices)
        nodes = -(-num_devices // self.node.max_devices)
        if nodes == 1:
            return allreduce_time(message_bytes, per_node, self.node)
        shard = message_bytes / per_node
        return (
            reduce_scatter_time(message_bytes, per_node, self.node)
            + allreduce_time(shard, nodes, self._inter_hw())
            + allgather_time(message_bytes, per_node, self.node)
        )

    def all_to_all_time(self, message_bytes: float, num_devices: int) -> float:
        """Hierarchical all-to-all: the fraction of traffic that crosses
        the node boundary rides the slow fabric."""
        self._check(num_devices)
        per_node = min(num_devices, self.node.max_devices)
        nodes = -(-num_devices // self.node.max_devices)
        if nodes == 1:
            return all_to_all_time(message_bytes, per_node, self.node)
        # destination uniformly random: (nodes-1)/nodes of bytes cross over
        cross = message_bytes * (nodes - 1) / nodes
        local = message_bytes - cross
        t_local = all_to_all_time(local, per_node, self.node)
        t_cross = all_to_all_time(cross, nodes, self._inter_hw())
        return max(t_local, t_cross) + self.inter_node.latency_us * 1e-6

    def ep_dispatch_time(
        self, num_tokens: int, hidden_size: int, top_k: int, ep: int,
        bytes_per_el: float = 2.0,
    ) -> float:
        """Two hierarchical all-to-alls of the routed hidden states."""
        if num_tokens <= 0 or ep < 1:
            raise ValueError("num_tokens must be positive and ep >= 1")
        vol = num_tokens * top_k * hidden_size * bytes_per_el
        return 2.0 * self.all_to_all_time(vol, ep)

    def _check(self, num_devices: int) -> None:
        if not (1 <= num_devices <= self.total_devices):
            raise ValueError(
                f"num_devices must be in [1, {self.total_devices}], "
                f"got {num_devices}"
            )
