"""Concrete hardware specs: NVIDIA H100 SXM5, A100 SXM4, Cerebras CS-3.

Numbers are public datasheet values; efficiency factors are the standard
rules of thumb for well-tuned inference kernels (≈70% of tensor-core peak
for large GEMMs, ≈80% of HBM peak for streaming reads).  These constants
are calibrated ONCE here and shared by every experiment — no per-experiment
tuning (DESIGN.md §4).
"""

from __future__ import annotations

from repro.hardware.spec import HardwareSpec, InterconnectSpec

__all__ = ["H100_SXM", "A100_SXM", "CS3", "HARDWARE", "get_hardware"]

_NVLINK4 = InterconnectSpec(
    name="NVLink-4",
    link_bandwidth_gbps=450.0,  # per direction, per GPU aggregate
    latency_us=3.0,
)

_NVLINK3 = InterconnectSpec(
    name="NVLink-3",
    link_bandwidth_gbps=300.0,
    latency_us=3.5,
)

H100_SXM = HardwareSpec(
    name="H100-SXM5-80GB",
    peak_tflops={
        "fp32": 67.0,       # non-tensor FP32
        "tf32": 494.7,
        "fp16": 989.4,      # dense tensor core
        "bf16": 989.4,
        "fp8_e4m3": 1978.9,
        "int8": 1978.9,
        "int4": 1978.9,     # executed via the int8 pipe after unpack
    },
    memory_gb=80.0,
    mem_bandwidth_gbps=3350.0,  # HBM3
    mem_efficiency=0.80,
    max_gemm_efficiency=0.70,
    kernel_launch_us=4.0,
    step_overhead_us=250.0,     # vLLM per-iteration scheduling overhead
    per_seq_overhead_us=10.0,   # sampling/detokenise per sequence
    l2_cache_mb=50.0,
    tdp_w=700.0,
    interconnect=_NVLINK4,
    max_devices=8,
)

A100_SXM = HardwareSpec(
    name="A100-SXM4-80GB",
    peak_tflops={
        "fp32": 19.5,
        "fp16": 312.0,
        "bf16": 312.0,
        "int8": 624.0,
        # A100 has no FP8 tensor cores; fp8 falls back to fp16 peak
        "fp8_e4m3": 312.0,
        "int4": 624.0,
    },
    memory_gb=80.0,
    mem_bandwidth_gbps=2039.0,  # HBM2e
    mem_efficiency=0.80,
    max_gemm_efficiency=0.65,
    kernel_launch_us=4.5,
    step_overhead_us=250.0,
    per_seq_overhead_us=10.0,
    l2_cache_mb=40.0,
    tdp_w=400.0,
    # no FP8 tensor cores: "fp8" deployments run weight-only kernels whose
    # dequant is well-fused, so the compute penalty is mild
    quant_gemm_derate=0.90,
    interconnect=_NVLINK3,
    max_devices=8,
)

CS3 = HardwareSpec(
    name="Cerebras-CS-3",
    # WSE-3: 125 PFLOP/s FP16 peak across the wafer; inference replicas run
    # a conservative fraction of it.
    peak_tflops={
        "fp16": 125_000.0,
        "bf16": 125_000.0,
        "fp8_e4m3": 250_000.0,
        "int8": 250_000.0,
        "fp32": 62_500.0,
        "int4": 250_000.0,
    },
    memory_gb=44.0,             # on-wafer SRAM per wafer
    mem_bandwidth_gbps=21_000_000.0,  # 21 PB/s aggregate SRAM bandwidth
    mem_efficiency=0.30,        # fabric routing limits achievable fraction
    max_gemm_efficiency=0.35,
    kernel_launch_us=0.0,       # dataflow execution: no per-kernel launches
    step_overhead_us=330.0,     # host I/O + cross-wafer pipelining per token
    l2_cache_mb=0.0,
    tdp_w=23_000.0,             # one CS-3 system
    interconnect=InterconnectSpec(
        name="SwarmX", link_bandwidth_gbps=1200.0, latency_us=2.0
    ),
    max_devices=16,
)

HARDWARE: dict[str, HardwareSpec] = {
    h.name: h for h in (H100_SXM, A100_SXM, CS3)
}
# convenient aliases
HARDWARE["h100"] = H100_SXM
HARDWARE["a100"] = A100_SXM
HARDWARE["cs3"] = CS3


def get_hardware(name: str | HardwareSpec) -> HardwareSpec:
    """Look up a hardware spec by name or pass a spec through."""
    if isinstance(name, HardwareSpec):
        return name
    try:
        return HARDWARE[name.lower() if name.lower() in HARDWARE else name]
    except KeyError:
        known = ", ".join(sorted(HARDWARE))
        raise KeyError(f"unknown hardware {name!r}; known: {known}") from None
