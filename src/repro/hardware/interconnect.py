"""Collective-communication cost models over a node interconnect.

Standard ring/pairwise algorithm costs expressed through the alpha-beta
model: ``time = hops * latency + volume / bandwidth``.  These terms feed
the tensor-/expert-/pipeline-parallel performance models (paper §7.1).
"""

from __future__ import annotations

from repro.hardware.spec import HardwareSpec, InterconnectSpec

__all__ = [
    "PCIE_GEN5_X16",
    "allreduce_time",
    "allgather_time",
    "reduce_scatter_time",
    "all_to_all_time",
    "p2p_time",
    "require_interconnect",
    "degrade_interconnect",
]

PCIE_GEN5_X16 = InterconnectSpec(
    name="PCIe-Gen5-x16",
    link_bandwidth_gbps=56.0,  # ~64 GB/s raw, ~56 GB/s achievable
    latency_us=4.0,
)
"""The fallback path when NVLink drops: host-routed PCIe Gen5 x16 —
roughly 8x less bandwidth than H100 SXM NVLink-4 (450 GB/s)."""


def degrade_interconnect(link: InterconnectSpec, slowdown: float) -> InterconnectSpec:
    """``link`` with its bandwidth divided by ``slowdown`` (latency
    unchanged — degradation models a slower data path, not a longer one).
    Used by the fault injector's ``LINK_DEGRADE`` events to model an
    NVLink→PCIe fallback without editing hardware specs in place."""
    if slowdown < 1.0:
        raise ValueError(f"slowdown must be >= 1, got {slowdown}")
    import dataclasses

    return dataclasses.replace(
        link,
        name=f"{link.name}-degraded{slowdown:g}x",
        link_bandwidth_gbps=link.link_bandwidth_gbps / slowdown,
    )


def require_interconnect(hw: HardwareSpec) -> InterconnectSpec:
    """Return the node interconnect, or raise if the device has none."""
    if hw.interconnect is None:
        raise ValueError(f"{hw.name} has no interconnect configured")
    return hw.interconnect


def _check(message_bytes: float, num_devices: int) -> None:
    if message_bytes < 0:
        raise ValueError("message_bytes must be non-negative")
    if num_devices < 1:
        raise ValueError("num_devices must be >= 1")


def allreduce_time(message_bytes: float, num_devices: int, hw: HardwareSpec) -> float:
    """Ring all-reduce: each device sends/receives ``2(n-1)/n`` of the
    message across ``2(n-1)`` latency-bound steps."""
    _check(message_bytes, num_devices)
    if num_devices == 1 or message_bytes == 0:
        return 0.0
    link = require_interconnect(hw)
    n = num_devices
    volume = 2.0 * (n - 1) / n * message_bytes
    return volume / (link.link_bandwidth_gbps * 1e9) + 2 * (n - 1) * link.latency_us * 1e-6


def allgather_time(message_bytes: float, num_devices: int, hw: HardwareSpec) -> float:
    """Ring all-gather of ``message_bytes`` per device shard."""
    _check(message_bytes, num_devices)
    if num_devices == 1 or message_bytes == 0:
        return 0.0
    link = require_interconnect(hw)
    n = num_devices
    volume = (n - 1) / n * message_bytes * n  # total gathered minus own shard
    return volume / n / (link.link_bandwidth_gbps * 1e9) * n + (n - 1) * link.latency_us * 1e-6


def reduce_scatter_time(message_bytes: float, num_devices: int, hw: HardwareSpec) -> float:
    """Ring reduce-scatter — half of an all-reduce."""
    _check(message_bytes, num_devices)
    if num_devices == 1 or message_bytes == 0:
        return 0.0
    link = require_interconnect(hw)
    n = num_devices
    volume = (n - 1) / n * message_bytes
    return volume / (link.link_bandwidth_gbps * 1e9) + (n - 1) * link.latency_us * 1e-6


def all_to_all_time(message_bytes: float, num_devices: int, hw: HardwareSpec) -> float:
    """Pairwise all-to-all where ``message_bytes`` is the total payload a
    device must redistribute; ``(n-1)/n`` of it crosses the fabric."""
    _check(message_bytes, num_devices)
    if num_devices == 1 or message_bytes == 0:
        return 0.0
    link = require_interconnect(hw)
    n = num_devices
    volume = (n - 1) / n * message_bytes
    return volume / (link.link_bandwidth_gbps * 1e9) + (n - 1) * link.latency_us * 1e-6


def p2p_time(message_bytes: float, hw: HardwareSpec) -> float:
    """One point-to-point transfer (pipeline-parallel stage boundary)."""
    if message_bytes < 0:
        raise ValueError("message_bytes must be non-negative")
    if message_bytes == 0:
        return 0.0
    link = require_interconnect(hw)
    return message_bytes / (link.link_bandwidth_gbps * 1e9) + link.latency_us * 1e-6
