"""Request-scoped causal tracing: follow one request through the engine.

The span tracer (:mod:`repro.obs.trace`) records what the *engine* did per
iteration; this module records what each *request* experienced — the
causally-linked lifecycle the paper's serving metrics (TTFT/ITL/E2E,
Figs. 16-18) are percentiles of:

    admit → queue.wait → prefill.chunk… → first_token → decode.step… →
    finish  (with preempt → requeue.wait and fault → fault.backoff →
    queue.wait detours spliced in where the scheduler or the fault
    injector interrupted the request)

Every entry is stamped on the simulated clock, each span names the event
that *caused* it, and every request carries a stable ``trace id``
(``req-000042``) — the same id histogram exemplars attach to bucket
samples, so an outlier p99 TTFT bucket resolves to the offending
request's timeline here.

Exports: a deterministic per-request timeline table
(:meth:`RequestTracer.timeline`), a rendered text table
(:meth:`RequestTracer.render_timeline`), and Chrome Trace Event JSON with
one track per request (:meth:`RequestTracer.to_chrome_trace`), mergeable
with the engine tracer's events for one combined Perfetto view.

Like every observability hook, call sites guard with ``obs is not None
and obs.active`` and the recorder never perturbs the simulation — results
stay bit-identical whether or not it is attached.
"""

from __future__ import annotations

import json
import pathlib
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any

from repro.obs.trace import TRACE_PID, _SECONDS_TO_US

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.serving.request import Request

__all__ = ["trace_id_for", "TimelineEntry", "RequestTrace", "RequestTracer"]


def trace_id_for(request_id: int) -> str:
    """The stable trace id of a request (also the exemplar id format)."""
    return f"req-{request_id:06d}"


@dataclass
class TimelineEntry:
    """One span or instant in a request's lifecycle."""

    seq: int
    kind: str  # "span" | "instant"
    name: str
    t0: float
    t1: float | None = None
    cause: str = ""
    """The lifecycle event this entry is a causal consequence of."""
    attrs: dict[str, Any] = field(default_factory=dict)

    @property
    def duration_s(self) -> float:
        if self.t1 is None:
            return 0.0
        return self.t1 - self.t0

    def to_dict(self) -> dict[str, Any]:
        return {
            "seq": self.seq, "kind": self.kind, "name": self.name,
            "t0": self.t0, "t1": self.t1, "duration_s": self.duration_s,
            "cause": self.cause, "attrs": dict(self.attrs),
        }


@dataclass
class RequestTrace:
    """The recorded lifecycle of one request."""

    request_id: int
    trace_id: str
    entries: list[TimelineEntry] = field(default_factory=list)
    _open: TimelineEntry | None = field(default=None, repr=False)

    def _last_name(self) -> str:
        return self.entries[-1].name if self.entries else ""

    def add_instant(self, name: str, ts: float, cause: str = "",
                    **attrs: Any) -> TimelineEntry:
        entry = TimelineEntry(
            seq=len(self.entries), kind="instant", name=name, t0=ts, t1=ts,
            cause=cause or self._last_name(), attrs=attrs)
        self.entries.append(entry)
        return entry

    def add_span(self, name: str, t0: float, t1: float, cause: str = "",
                 **attrs: Any) -> TimelineEntry:
        entry = TimelineEntry(
            seq=len(self.entries), kind="span", name=name, t0=t0, t1=t1,
            cause=cause or self._last_name(), attrs=attrs)
        self.entries.append(entry)
        return entry

    def open_span(self, name: str, t0: float, cause: str = "",
                  **attrs: Any) -> TimelineEntry:
        """Begin a span whose end is not yet known (a wait)."""
        self.close_open(t0)
        entry = TimelineEntry(
            seq=len(self.entries), kind="span", name=name, t0=t0, t1=None,
            cause=cause or self._last_name(), attrs=attrs)
        self.entries.append(entry)
        self._open = entry
        return entry

    def close_open(self, ts: float) -> None:
        """Close the currently open wait span (no-op when none is open)."""
        if self._open is not None:
            self._open.t1 = ts
            self._open = None

    @property
    def is_complete(self) -> bool:
        """The request reached a terminal instant (finish or fail)."""
        return bool(self.entries) and self.entries[-1].name in (
            "finish", "fail")


class RequestTracer:
    """Per-request lifecycle recorder, hooked from engine/scheduler/faults.

    ``coalesce_decode`` merges back-to-back ``decode.step`` spans into one
    entry counting its steps — 64 decode iterations stay legible as a
    single timeline row — while preserving exact start/end times.  Set it
    False to keep one entry per decode step batch.
    """

    def __init__(self, coalesce_decode: bool = True) -> None:
        self.coalesce_decode = coalesce_decode
        self.traces: dict[int, RequestTrace] = {}

    # ------------------------------------------------------------------ #
    # lookup
    # ------------------------------------------------------------------ #

    def trace(self, request_id: int) -> RequestTrace:
        trace = self.traces.get(request_id)
        if trace is None:
            trace = RequestTrace(request_id=request_id,
                                 trace_id=trace_id_for(request_id))
            self.traces[request_id] = trace
        return trace

    def trace_id(self, request_id: int) -> str:
        return self.trace(request_id).trace_id

    def request_for(self, trace_id: str) -> int:
        """Resolve a trace id (e.g. from a histogram exemplar) back to its
        request id."""
        for trace in self.traces.values():
            if trace.trace_id == trace_id:
                return trace.request_id
        raise KeyError(f"no trace with id {trace_id!r}")

    # ------------------------------------------------------------------ #
    # lifecycle hooks (called by the engine / scheduler / fault injector)
    # ------------------------------------------------------------------ #

    def on_admit(self, req: "Request", ts: float) -> None:
        """Request (re-)entered admission: open the queue wait."""
        trace = self.trace(req.request_id)
        if not trace.entries:
            trace.add_instant("admit", ts, cause="arrival",
                              arrival_time=req.arrival_time,
                              prompt_tokens=req.prompt_tokens,
                              max_tokens=req.sampling.max_tokens)
            cause = "admit"
        else:
            # only fault retries re-enter admission (preemptions requeue
            # inside the scheduler), so the cause is the backoff just ended
            trace.add_instant("admit", ts, retry=req.fault_retries)
            cause = "admit"
        trace.open_span("queue.wait", ts, cause=cause)

    def on_prefill(self, req: "Request", t0: float, t1: float,
                   tokens: int) -> None:
        """One prefill chunk of this request ran in [t0, t1]."""
        trace = self.trace(req.request_id)
        trace.close_open(t0)
        chunk = sum(1 for e in trace.entries if e.name == "prefill.chunk")
        trace.add_span("prefill.chunk", t0, t1, tokens=tokens, chunk=chunk)

    def on_first_token(self, req: "Request", ts: float) -> str:
        """First token sampled; returns the trace id (for exemplars)."""
        trace = self.trace(req.request_id)
        trace.add_instant("first_token", ts,
                          ttft_s=None if req.ttft is None else req.ttft)
        return trace.trace_id

    def on_decode(self, req: "Request", t0: float, t1: float,
                  batch_size: int) -> None:
        """This request advanced one token in a decode step batch."""
        trace = self.trace(req.request_id)
        last = trace.entries[-1] if trace.entries else None
        if (self.coalesce_decode and last is not None
                and last.name == "decode.step" and last.t1 is not None
                and abs(last.t1 - t0) < 1e-12):
            last.t1 = t1
            last.attrs["steps"] = last.attrs.get("steps", 1) + 1
            last.attrs["last_batch_size"] = batch_size
            return
        trace.add_span("decode.step", t0, t1, steps=1,
                       last_batch_size=batch_size)

    def on_preempt(self, req: "Request", ts: float) -> None:
        """KV-pressure preemption: the request loses its slots and waits
        for readmission (recompute policy)."""
        trace = self.trace(req.request_id)
        trace.close_open(ts)
        trace.add_instant("preempt", ts,
                          num_preemptions=req.num_preemptions)
        trace.open_span("requeue.wait", ts, cause="preempt")

    def on_fault_kill(self, req: "Request", ts: float, reason: str,
                      retry_at: float) -> None:
        """Fault killed the request; it backs off until ``retry_at`` and
        then re-enters admission (a fresh ``admit``/``queue.wait`` pair)."""
        trace = self.trace(req.request_id)
        trace.close_open(ts)
        trace.add_instant("fault.kill", ts, cause=f"fault:{reason}",
                          reason=reason)
        trace.add_span("fault.backoff", ts, retry_at, cause="fault.kill",
                       retry=req.fault_retries)

    def on_finish(self, req: "Request", ts: float) -> str:
        """Terminal success; returns the trace id (for exemplars)."""
        trace = self.trace(req.request_id)
        trace.close_open(ts)
        trace.add_instant("finish", ts,
                          e2e_s=None if req.e2e_latency is None
                          else req.e2e_latency,
                          generated_tokens=req.generated_tokens,
                          preemptions=req.num_preemptions,
                          fault_retries=req.fault_retries)
        return trace.trace_id

    def on_fail(self, req: "Request", ts: float, reason: str) -> None:
        """Terminal failure with its recorded reason."""
        trace = self.trace(req.request_id)
        trace.close_open(ts)
        trace.add_instant("fail", ts, reason=reason)

    # ------------------------------------------------------------------ #
    # export
    # ------------------------------------------------------------------ #

    def timeline(self, request_id: int) -> list[dict[str, Any]]:
        """Deterministic timeline table of one request (list of dict rows,
        in causal order)."""
        trace = self.traces.get(request_id)
        if trace is None:
            raise KeyError(f"no trace recorded for request {request_id}")
        return [e.to_dict() for e in trace.entries]

    def render_timeline(self, request_id: int) -> str:
        """The timeline as an aligned text table (CLI / docs output)."""
        trace = self.traces.get(request_id)
        if trace is None:
            raise KeyError(f"no trace recorded for request {request_id}")
        lines = [f"request {request_id} ({trace.trace_id})",
                 f"{'#':>3} {'t0 (s)':>12} {'dur (s)':>12} "
                 f"{'event':<16} {'cause':<14} detail"]
        for e in trace.entries:
            detail = ", ".join(f"{k}={v}" for k, v in e.attrs.items())
            dur = "" if e.kind == "instant" else f"{e.duration_s:.6f}"
            lines.append(f"{e.seq:>3} {e.t0:>12.6f} {dur:>12} "
                         f"{e.name:<16} {e.cause:<14} {detail}")
        return "\n".join(lines)

    def chrome_events(self) -> list[dict[str, Any]]:
        """Chrome Trace Event dicts: one track (thread) per request.

        Track tids start at 1000 so they sort after the engine tracer's
        tracks when the two event lists are merged into one trace file.
        """
        events: list[dict[str, Any]] = []
        for rid in sorted(self.traces):
            trace = self.traces[rid]
            tid = 1000 + rid
            events.append({
                "name": "thread_name", "ph": "M", "pid": TRACE_PID,
                "tid": tid, "args": {"name": f"req {rid:04d}"},
            })
            for e in trace.entries:
                args = {"request_id": rid, "trace_id": trace.trace_id,
                        "cause": e.cause, **e.attrs}
                if e.kind == "instant":
                    events.append({
                        "name": e.name, "cat": "request", "ph": "i",
                        "s": "t", "pid": TRACE_PID, "tid": tid,
                        "ts": e.t0 * _SECONDS_TO_US, "args": args,
                    })
                    continue
                t1 = e.t0 if e.t1 is None else e.t1
                events.append({
                    "name": e.name, "cat": "request", "ph": "B",
                    "pid": TRACE_PID, "tid": tid,
                    "ts": e.t0 * _SECONDS_TO_US, "args": args,
                })
                events.append({
                    "name": e.name, "cat": "request", "ph": "E",
                    "pid": TRACE_PID, "tid": tid,
                    "ts": t1 * _SECONDS_TO_US,
                })
        return events

    def to_chrome_trace(self) -> dict[str, Any]:
        """Chrome Trace Event JSON (``traceEvents`` wrapper) of every
        request track."""
        return {
            "traceEvents": self.chrome_events(),
            "displayTimeUnit": "ms",
            "otherData": {"producer": "repro.obs.reqtrace"},
        }

    def write(self, path: str | pathlib.Path) -> pathlib.Path:
        out = pathlib.Path(path)
        out.parent.mkdir(parents=True, exist_ok=True)
        out.write_text(json.dumps(self.to_chrome_trace()))
        return out
