"""Declarative SLOs, error budgets and multi-window burn-rate alerts.

Serving quality is judged the SRE way: an :class:`SLO` declares an
objective over request outcomes (``p99 ttft < 0.5s``,
``availability >= 99.9%``), the :class:`SloTracker` scores every terminal
request against each objective on the simulated timeline, and
:class:`BurnRateRule` pages through the existing alert/flight-recorder
machinery when the error budget burns too fast over *two* windows at once
(Google SRE workbook chapter 5: a long window for significance, a short
window for freshness, so pages are neither noisy nor stale).

Wall-clock SRE windows scale onto simulated time through one knob:
``hour_s``, the simulated seconds standing in for one wall hour.  The
classic 30-day-budget policy (page at 14.4x over 1h+5m, ticket at 6x over
6h+30m) then transfers verbatim.

Everything here is a pure function of the simulated run: reports and
alert times replay bit-identically, which `repro slo --check` and the
flight-recorder property tests assert.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Sequence

from repro.obs.alerts import Alert, AlertRule
from repro.obs.metrics import (
    DEFAULT_LATENCY_BUCKETS,
    MetricsRegistry,
    buckets_with_edges,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.serving.engine import ServingEngine
    from repro.serving.request import Request

__all__ = [
    "SLO",
    "ErrorBudget",
    "SloTracker",
    "BurnRateRule",
    "sre_burn_rules",
    "fault_storm_config",
    "run_slo_scenario",
    "DEFAULT_SLOS",
]

#: request-outcome metrics an SLO can target, and the histogram each
#: aligns its threshold with (so exemplars and budgets read off the same
#: bucket edges)
_METRIC_HISTOGRAMS = {
    "ttft": "ttft_seconds",
    "itl": "itl_seconds",
    "e2e": "e2e_latency_seconds",
}

_SPEC_RE = re.compile(
    r"^\s*p(?P<pct>\d+(?:\.\d+)?)\s+(?P<metric>ttft|itl|e2e)\s*"
    r"(?:<|<=)\s*(?P<threshold>\d+(?:\.\d+)?)\s*(?:s|sec|seconds)?\s*$",
    re.IGNORECASE,
)
_AVAIL_RE = re.compile(
    r"^\s*availability\s*(?:>=|≥)\s*(?P<target>\d+(?:\.\d+)?)\s*%?\s*$",
    re.IGNORECASE,
)


@dataclass(frozen=True)
class SLO:
    """One declarative service-level objective over request outcomes.

    ``metric`` is ``availability`` (request finished at all) or a latency
    view (``ttft``/``itl``/``e2e``, threshold in seconds); ``target`` is
    the attainment objective — ``p99 ttft < 2s`` means metric ``ttft``,
    ``threshold_s`` 2.0, ``target`` 0.99, and the error budget is the
    remaining 1%.
    """

    name: str
    metric: str
    target: float
    threshold_s: float | None = None

    def __post_init__(self) -> None:
        if self.metric not in ("availability", *_METRIC_HISTOGRAMS):
            raise ValueError(f"unknown SLO metric {self.metric!r}")
        if not (0.0 < self.target < 1.0):
            raise ValueError(
                f"target must be a fraction in (0, 1), got {self.target}")
        if self.metric == "availability":
            if self.threshold_s is not None:
                raise ValueError("availability SLOs take no threshold")
        elif self.threshold_s is None or self.threshold_s <= 0:
            raise ValueError(
                f"latency SLO {self.name!r} needs a positive threshold_s")

    @classmethod
    def parse(cls, spec: str) -> "SLO":
        """Parse a declarative spec: ``"p99 ttft < 0.5s"``,
        ``"availability >= 99.9%"``."""
        m = _SPEC_RE.match(spec)
        if m:
            pct = float(m.group("pct"))
            if not (0.0 < pct < 100.0):
                raise ValueError(f"percentile out of range in {spec!r}")
            metric = m.group("metric").lower()
            name = f"{metric}_p{m.group('pct').replace('.', '_')}"
            return cls(name=name, metric=metric, target=pct / 100.0,
                       threshold_s=float(m.group("threshold")))
        m = _AVAIL_RE.match(spec)
        if m:
            target = float(m.group("target"))
            if target > 1.0:  # given as a percentage
                target /= 100.0
            return cls(name="availability", metric="availability",
                       target=target)
        raise ValueError(
            f"cannot parse SLO spec {spec!r} (expected e.g. "
            "'p99 ttft < 0.5s' or 'availability >= 99.9%')")

    @property
    def budget_fraction(self) -> float:
        """Allowed bad fraction: the error budget, 1 - target."""
        return 1.0 - self.target

    def describe(self) -> str:
        if self.metric == "availability":
            return f"availability >= {self.target * 100:g}%"
        return (f"p{self.target * 100:g} {self.metric} < "
                f"{self.threshold_s:g}s")

    def is_good(self, req: "Request") -> bool:
        """Score one terminal request against this objective.

        Unfinished/failed requests are bad under every objective (a
        request that never produced its tokens met no latency target).
        """
        if not req.is_finished:
            return False
        if self.metric == "availability":
            return True
        if self.metric == "ttft":
            return req.ttft is not None and req.ttft <= self.threshold_s
        if self.metric == "e2e":
            return (req.e2e_latency is not None
                    and req.e2e_latency <= self.threshold_s)
        # itl: mean inter-token latency; single-token outputs have none
        from repro.serving.engine import ServingResult

        itl = ServingResult._mean_itl(req)
        return itl is None or itl <= self.threshold_s


DEFAULT_SLOS: tuple[SLO, ...] = (
    SLO(name="ttft_p99", metric="ttft", target=0.99, threshold_s=0.5),
    SLO(name="availability", metric="availability", target=0.999),
)
"""Default objectives for the canonical chaos scenario: p99 TTFT within
half a simulated second, three-nines availability."""


@dataclass(frozen=True)
class ErrorBudget:
    """Error-budget accounting of one SLO over a (partial) run."""

    slo: str
    objective: str
    total: int
    bad: int
    target: float

    @property
    def attainment(self) -> float:
        """Good fraction so far (1.0 before any sample)."""
        if self.total == 0:
            return 1.0
        return (self.total - self.bad) / self.total

    @property
    def budget_consumed(self) -> float:
        """Fraction of the error budget burnt: 1.0 = budget exhausted.

        ``bad / (total * (1 - target))`` — the standard request-based
        budget; >1 means the objective is already violated for this run.
        """
        if self.total == 0:
            return 0.0
        allowed = self.total * (1.0 - self.target)
        if allowed <= 0:
            return float(self.bad)
        return self.bad / allowed

    @property
    def budget_remaining(self) -> float:
        return 1.0 - self.budget_consumed

    def to_dict(self) -> dict[str, Any]:
        return {
            "slo": self.slo, "objective": self.objective,
            "target": self.target, "total": self.total, "bad": self.bad,
            "attainment": self.attainment,
            "budget_consumed": self.budget_consumed,
            "budget_remaining": self.budget_remaining,
        }


class SloTracker:
    """Scores terminal requests against each SLO on the simulated clock.

    Hangs off :class:`~repro.obs.instrument.Instrumentation` (``obs.slo``);
    the engine and fault injector report every terminal request once, and
    burn-rate rules query the sample windows each iteration.
    """

    def __init__(self, slos: Sequence[SLO] = DEFAULT_SLOS) -> None:
        slos = tuple(slos)
        names = [s.name for s in slos]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate SLO names: {names}")
        if not slos:
            raise ValueError("SloTracker needs at least one SLO")
        self.slos = slos
        # per SLO: time-ordered (terminal_time, is_bad) samples, with a
        # running bad count so budget() is O(1) instead of a rescan (the
        # fleet admission controller reads budgets on every policy tick)
        self._samples: dict[str, list[tuple[float, bool]]] = {
            s.name: [] for s in slos}
        self._bad: dict[str, int] = {s.name: 0 for s in slos}

    def align_buckets(self, metrics: MetricsRegistry) -> None:
        """Pin each latency SLO threshold onto an exact histogram bucket
        edge (see :func:`repro.obs.metrics.buckets_with_edges`) so budget
        math never pays quantile-interpolation error."""
        edges: dict[str, list[float]] = {}
        for slo in self.slos:
            hist = _METRIC_HISTOGRAMS.get(slo.metric)
            if hist is not None and slo.threshold_s is not None:
                edges.setdefault(hist, []).append(slo.threshold_s)
        for name, thresholds in sorted(edges.items()):
            metrics.set_buckets(
                name, buckets_with_edges(DEFAULT_LATENCY_BUCKETS,
                                         *thresholds))

    # ------------------------------------------------------------------ #
    # recording
    # ------------------------------------------------------------------ #

    def on_request_terminal(self, req: "Request", now: float) -> None:
        """Score one finished/failed request at its terminal time."""
        for slo in self.slos:
            bad = not slo.is_good(req)
            self._samples[slo.name].append((now, bad))
            self._bad[slo.name] += bad

    # ------------------------------------------------------------------ #
    # budgets and burn rates
    # ------------------------------------------------------------------ #

    def _slo(self, name: str) -> SLO:
        for slo in self.slos:
            if slo.name == name:
                return slo
        raise KeyError(f"unknown SLO {name!r}")

    def budget(self, name: str) -> ErrorBudget:
        slo = self._slo(name)
        samples = self._samples[name]
        return ErrorBudget(
            slo=name, objective=slo.describe(), total=len(samples),
            bad=self._bad[name], target=slo.target)

    def window_counts(self, name: str, now: float,
                      window_s: float) -> tuple[int, int]:
        """(total, bad) samples with terminal time in ``(now - window_s,
        now]``."""
        cutoff = now - window_s
        total = bad = 0
        for t, is_bad in reversed(self._samples[name]):
            if t < cutoff:
                break
            total += 1
            bad += is_bad
        return total, bad

    def burn_rate(self, name: str, now: float, window_s: float) -> float:
        """Error-budget burn rate over the trailing window: the bad
        fraction divided by the budget fraction.  1.0 = burning exactly
        the sustainable rate; 14.4 = the whole budget gone in 1/14.4 of
        the period."""
        slo = self._slo(name)
        total, bad = self.window_counts(name, now, window_s)
        if total == 0:
            return 0.0
        return (bad / total) / slo.budget_fraction

    def report(self, now: float) -> dict[str, Any]:
        """Deterministic JSON-able error-budget report."""
        return {
            "time": now,
            "budgets": [self.budget(s.name).to_dict() for s in self.slos],
        }


class BurnRateRule(AlertRule):
    """Multi-window burn-rate page over one SLO's error budget.

    Fires when the burn rate exceeds ``factor`` over *both* the long and
    the short window — the long window makes the page statistically
    significant, the short window makes sure the burn is still happening
    (SRE workbook multiwindow policy).  ``min_samples`` long-window
    samples are required so a single early failure cannot page on its
    own.
    """

    def __init__(self, slo: SLO, long_window_s: float,
                 short_window_s: float, factor: float,
                 min_samples: int = 4) -> None:
        if long_window_s <= 0 or short_window_s <= 0:
            raise ValueError("burn-rate windows must be positive")
        if short_window_s > long_window_s:
            raise ValueError("short window must not exceed the long window")
        if factor <= 0:
            raise ValueError("burn-rate factor must be positive")
        self.slo = slo
        self.long_window_s = long_window_s
        self.short_window_s = short_window_s
        self.factor = factor
        self.min_samples = min_samples
        self.name = (f"slo_burn_{slo.name}_"
                     f"{long_window_s:g}s")

    def check(self, engine: "ServingEngine") -> Alert | None:
        obs = engine.obs
        tracker = getattr(obs, "slo", None) if obs is not None else None
        if tracker is None or self.slo.name not in tracker._samples:
            return None
        now = engine.clock
        total, _ = tracker.window_counts(self.slo.name, now,
                                         self.long_window_s)
        if total < self.min_samples:
            return None
        long_burn = tracker.burn_rate(self.slo.name, now, self.long_window_s)
        if long_burn < self.factor:
            return None
        short_burn = tracker.burn_rate(self.slo.name, now,
                                       self.short_window_s)
        if short_burn < self.factor:
            return None
        budget = tracker.budget(self.slo.name)
        return Alert(
            self.name, now,
            f"error budget of '{self.slo.describe()}' burning at "
            f"{long_burn:.1f}x over {self.long_window_s:g}s and "
            f"{short_burn:.1f}x over {self.short_window_s:g}s "
            f"(page threshold {self.factor:g}x); "
            f"{budget.budget_consumed:.2f} of the run budget consumed",
            {"slo": self.slo.name, "objective": self.slo.describe(),
             "long_window_s": self.long_window_s,
             "long_burn_rate": long_burn,
             "short_window_s": self.short_window_s,
             "short_burn_rate": short_burn,
             "factor": self.factor,
             "budget": budget.to_dict()},
        )


def fault_storm_config():
    """The canonical ``ext_slo`` fault-storm deployment: the chaos
    workload grown (64 requests x 128 output tokens) and flapped hard
    (8 faults/s) so retries and terminal failures land while requests are
    still in flight — the regime where error budgets actually burn."""
    from repro.faults.harness import ChaosConfig

    return ChaosConfig(num_requests=64, output_tokens=128, fault_rate=8.0)


def run_slo_scenario(config=None, slos: Sequence[SLO] = DEFAULT_SLOS,
                     hour_s: float = 1.0,
                     out_dir=None, cluster: bool = False) -> dict[str, Any]:
    """Run the canonical chaos fault storm with SLO burn-rate paging armed.

    The ``ext_slo`` reference scenario behind ``repro slo``: the
    :func:`repro.faults.harness.chaos_serving_run` workload instrumented
    with an :class:`SloTracker` and :func:`sre_burn_rules` (flight-recorder
    bundles under ``out_dir`` when given).  Returns a deterministic
    JSON-able report — budgets, fired alerts, run summary — that replays
    byte-identically for a fixed :class:`ChaosConfig`.

    ``cluster=True`` additionally arms device/link telemetry on the chaos
    deployment (adding a ``"cluster"`` key to the report and a
    ``cluster.json`` to any flight-recorder bundle) — the source for the
    CI slo-gate run report.
    """
    from repro.faults.harness import ChaosRun, build_chaos_engine
    from repro.obs.alerts import AlertMonitor, FlightRecorder
    from repro.obs.cluster import ClusterTelemetry
    from repro.obs.instrument import Instrumentation

    tracker = SloTracker(slos)
    recorder = FlightRecorder(out_dir) if out_dir is not None else None
    monitor = AlertMonitor(rules=sre_burn_rules(slos, hour_s=hour_s),
                           recorder=recorder)
    obs = Instrumentation.on(alerts=monitor, slo=tracker)
    engine, injector = build_chaos_engine(config, instrumentation=obs)
    if cluster:
        obs.cluster = ClusterTelemetry(engine.perf, routing=obs.routing)
    run = ChaosRun(result=engine.run(), injector=injector,
                   schedule=injector.schedule)
    report = {
        "scenario": "chaos_fault_storm",
        "hour_s": hour_s,
        "slos": [s.describe() for s in tracker.slos],
        "summary": run.summary,
        "budgets": tracker.report(run.result.makespan)["budgets"],
        "alerts": monitor.summary(),
        "bundles": [str(b) for b in monitor.bundles],
    }
    if cluster:
        report["cluster"] = obs.cluster.summary()
    return report


def sre_burn_rules(slos: Sequence[SLO] = DEFAULT_SLOS,
                   hour_s: float = 1.0,
                   min_samples: int = 4) -> list[AlertRule]:
    """The SRE-workbook multiwindow policy scaled to simulated time.

    ``hour_s`` simulated seconds stand in for one wall hour; each SLO
    gets the fast page (14.4x over 1h + 5m, budget gone in ~2 days) and
    the slow page (6x over 6h + 30m, gone in ~5 days).
    """
    rules: list[AlertRule] = []
    for slo in slos:
        rules.append(BurnRateRule(
            slo, long_window_s=1.0 * hour_s,
            short_window_s=hour_s / 12.0, factor=14.4,
            min_samples=min_samples))
        rules.append(BurnRateRule(
            slo, long_window_s=6.0 * hour_s,
            short_window_s=hour_s / 2.0, factor=6.0,
            min_samples=min_samples))
    return rules
