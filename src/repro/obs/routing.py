"""Expert-routing telemetry: live activation counts from routers.

Where :mod:`repro.moe.stats` computes end-of-run aggregates for the Fig. 15
experiment, this module *subscribes* to routers as they run — any
:class:`~repro.moe.router.TopKRouter` (or the router inside a
:class:`~repro.moe.layer.MoELayer`) can stream its routing decisions into a
:class:`RoutingTelemetry`, which maintains:

* per-(layer, expert) activation counts (the Fig. 15 heatmap),
* a rolling load-imbalance coefficient (max/mean over a window of the most
  recent routed batches), and
* the per-expert activation-frequency ordering.

:class:`EngineRoutingProbe` attaches the same telemetry to a *serving
engine* run: the discrete-event engine tracks token counts rather than
hidden states, so the probe routes synthetic hidden states through
calibrated per-layer routers (built by the same construction path as the
Fig. 15 activation study) as the engine processes tokens — regenerating
Fig. 15-style data from a live engine run instead of a dedicated
experiment.
"""

from __future__ import annotations

from collections import deque
from typing import Callable

import numpy as np

from repro.core.results import ResultTable
from repro.models.config import ModelConfig
from repro.moe.router import RoutingResult, TopKRouter
from repro.moe.stats import BalanceMetrics, ExpertActivationTracker, balance_metrics

__all__ = ["RoutingTelemetry", "EngineRoutingProbe"]


class RoutingTelemetry:
    """Accumulates routing decisions streamed from live routers."""

    def __init__(self, num_layers: int, num_experts: int,
                 window: int = 64) -> None:
        if window <= 0:
            raise ValueError("window must be positive")
        self.tracker = ExpertActivationTracker(num_layers, num_experts)
        self.window = window
        self._recent: deque[np.ndarray] = deque(maxlen=window)
        self.imbalance_series: list[float] = []
        """Rolling imbalance after each recorded batch (telemetry over time)."""

    @property
    def num_layers(self) -> int:
        return self.tracker.num_layers

    @property
    def num_experts(self) -> int:
        return self.tracker.num_experts

    # ------------------------------------------------------------------ #
    # ingestion
    # ------------------------------------------------------------------ #

    def record(self, layer_idx: int, routing: RoutingResult) -> None:
        """Ingest one routing decision for ``layer_idx``."""
        self.record_counts(layer_idx, routing.expert_counts())

    def record_counts(self, layer_idx: int, counts: np.ndarray) -> None:
        """Ingest precomputed per-expert counts for ``layer_idx``."""
        counts = np.asarray(counts, dtype=np.int64)
        self.tracker.record_counts(layer_idx, counts)
        self._recent.append(counts)
        self.imbalance_series.append(self.rolling_imbalance())

    def subscribe_router(self, router: TopKRouter,
                         layer_idx: int) -> Callable[[RoutingResult], None]:
        """Stream every future ``router.route()`` into ``layer_idx``.

        Returns the registered callback (pass it to
        :meth:`TopKRouter.unsubscribe` to detach).
        """
        def _observe(routing: RoutingResult) -> None:
            self.record(layer_idx, routing)

        router.subscribe(_observe)
        return _observe

    def subscribe_layer(self, layer, layer_idx: int) -> Callable[[RoutingResult], None]:
        """Subscribe to the router inside a :class:`~repro.moe.layer.MoELayer`."""
        return self.subscribe_router(layer.router, layer_idx)

    # ------------------------------------------------------------------ #
    # views
    # ------------------------------------------------------------------ #

    def rolling_imbalance(self) -> float:
        """max/mean load over the last ``window`` routed batches (1.0 ==
        perfectly balanced; 0.0 before anything was recorded)."""
        if not self._recent:
            return 0.0
        window_counts = np.sum(self._recent, axis=0)
        total = window_counts.sum()
        if total == 0:
            return 0.0
        return float(window_counts.max() * window_counts.size / total)

    def heatmap(self) -> np.ndarray:
        """``(num_layers, num_experts)`` activation counts (copy)."""
        return self.tracker.heatmap()

    def heatmap_table(self, max_experts: int | None = None) -> ResultTable:
        """Per-layer activation heatmap as a report table."""
        hm = self.tracker.heatmap()
        table = ResultTable("expert activation heatmap",
                            ("layer", "expert", "count"))
        experts = range(hm.shape[1] if max_experts is None
                        else min(max_experts, hm.shape[1]))
        for layer in range(hm.shape[0]):
            for e in experts:
                table.add(layer=layer, expert=e, count=int(hm[layer, e]))
        return table

    def activation_ordering(self, layer_idx: int | None = None) -> list[int]:
        """Expert ids sorted by activation count, most-activated first.

        ``layer_idx=None`` orders by the per-expert totals over all layers
        — the Fig. 15 frequency ordering.
        """
        hm = self.tracker.heatmap()
        counts = hm.sum(axis=0) if layer_idx is None else hm[layer_idx]
        return [int(i) for i in np.argsort(-counts, kind="stable")]

    def layer_metrics(self, layer_idx: int) -> BalanceMetrics:
        return self.tracker.layer_metrics(layer_idx)

    def overall_metrics(self) -> BalanceMetrics:
        return self.tracker.overall_metrics()

    def summary(self) -> dict[str, float | int]:
        """Headline balance numbers for reports and the CLI."""
        totals = self.tracker.heatmap().sum(axis=0)
        if totals.sum() == 0:
            return {"activations": 0}
        overall = balance_metrics(totals)
        return {
            "activations": int(totals.sum()),
            "peak_activation": self.tracker.peak_activation(),
            "imbalance_max_over_mean": overall.imbalance,
            "rolling_imbalance": self.rolling_imbalance(),
            "gini": overall.gini,
            "normalized_entropy": overall.normalized_entropy,
        }


class EngineRoutingProbe:
    """Regenerates expert-activation telemetry from a live engine run.

    The probe owns one calibrated router per MoE layer (same construction
    path as the Fig. 15 activation study — pass an identically-advanced
    ``rng`` to reproduce that experiment's routers exactly) and, each
    engine iteration, routes synthetic hidden states for the iteration's
    tokens.  Large iterations are subsampled to ``max_tokens_per_step`` and
    the counts rescaled, preserving the frequency map up to sampling noise.

    The probe draws from its *own* generator, never the engine's, so
    enabling it cannot perturb simulated results.
    """

    def __init__(
        self,
        model: ModelConfig,
        rng: np.random.Generator | None = None,
        router_hidden: int = 64,
        max_tokens_per_step: int = 2048,
        routers: list[TopKRouter] | None = None,
        window: int = 64,
    ) -> None:
        from repro.workloads.multimodal import build_layer_routers

        if model.moe is None:
            raise ValueError(f"{model.name} has no MoE layers")
        if max_tokens_per_step <= 0:
            raise ValueError("max_tokens_per_step must be positive")
        rng = rng or np.random.default_rng(0)
        self.model = model
        self.routers = routers if routers is not None else build_layer_routers(
            model, router_hidden, rng
        )
        self.max_tokens_per_step = max_tokens_per_step
        self.telemetry = RoutingTelemetry(
            len(self.routers), model.moe.num_experts, window=window
        )
        self._rng = rng
        self.tokens_seen = 0

    def on_tokens(self, num_tokens: int) -> None:
        """Route ``num_tokens`` of this iteration through every layer."""
        if num_tokens <= 0:
            return
        routed = min(num_tokens, self.max_tokens_per_step)
        scale = num_tokens / routed
        hidden = self.routers[0].hidden_size
        x = self._rng.normal(size=(routed, hidden)).astype(np.float32)
        for layer_idx, router in enumerate(self.routers):
            counts = router.route_counts(x)
            if scale != 1.0:
                counts = np.round(counts * scale).astype(np.int64)
            self.telemetry.record_counts(layer_idx, counts)
        self.tokens_seen += num_tokens
