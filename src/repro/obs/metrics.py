"""Metrics registry: counters, gauges, and fixed-bucket histograms.

The registry is the aggregate side of the observability layer (the tracer
records *when*, the registry records *how much*).  It follows Prometheus
conventions — monotonic counters, settable gauges, cumulative-bucket
histograms with ``_sum``/``_count`` — and exports both the Prometheus text
exposition format and a JSON-serialisable snapshot.

Metrics are identified by ``(name, labels)``; ``registry.counter(...)`` is
get-or-create, so instrumented components can look their metrics up on the
hot path without holding references.
"""

from __future__ import annotations

import bisect
import dataclasses
import json
import math
from typing import Any, Mapping, Sequence

__all__ = [
    "Counter",
    "Exemplar",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "DEFAULT_LATENCY_BUCKETS",
    "buckets_with_edges",
]

DEFAULT_LATENCY_BUCKETS: tuple[float, ...] = (
    0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
    0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 25.0, 50.0, 100.0,
)
"""Geometric 1-2.5-5 bucket ladder covering 100µs .. 100s latencies."""


def buckets_with_edges(base: Sequence[float],
                       *edges: float) -> tuple[float, ...]:
    """``base`` buckets with ``edges`` spliced in as exact upper bounds.

    SLO thresholds must sit *on* a bucket edge: a threshold inside a
    bucket forces ``quantile()`` to interpolate across the boundary, which
    misattributes attainment right where burn-rate math is most
    sensitive.
    """
    out = set(float(b) for b in base)
    for edge in edges:
        if edge <= 0:
            raise ValueError(f"bucket edge must be positive, got {edge}")
        out.add(float(edge))
    return tuple(sorted(out))


def _format_labels(labels: Mapping[str, str]) -> str:
    if not labels:
        return ""
    inner = ",".join(f'{k}="{v}"' for k, v in sorted(labels.items()))
    return "{" + inner + "}"


class _Metric:
    """Shared identity: name + fixed label set + help string."""

    kind = "untyped"

    def __init__(self, name: str, help: str = "",
                 labels: Mapping[str, str] | None = None) -> None:
        if not name or not name.replace("_", "a").isalnum():
            raise ValueError(f"invalid metric name {name!r}")
        self.name = name
        self.help = help
        self.labels = dict(labels or {})

    @property
    def key(self) -> tuple[str, frozenset]:
        return (self.name, frozenset(self.labels.items()))


class Counter(_Metric):
    """Monotonically increasing count (events, tokens, preemptions)."""

    kind = "counter"

    def __init__(self, name: str, help: str = "",
                 labels: Mapping[str, str] | None = None) -> None:
        super().__init__(name, help, labels)
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name} cannot decrease (inc {amount})")
        self.value += amount


class Gauge(_Metric):
    """Point-in-time value (KV utilization, queue depth, running seqs)."""

    kind = "gauge"

    def __init__(self, name: str, help: str = "",
                 labels: Mapping[str, str] | None = None) -> None:
        super().__init__(name, help, labels)
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.value -= amount


@dataclasses.dataclass(frozen=True)
class Exemplar:
    """A trace reference attached to one histogram bucket.

    Prometheus-style exemplars: the last traced observation landing in a
    bucket pins its trace id, so an outlier bucket (the p99 TTFT bucket,
    say) links directly to a concrete request's timeline in
    :mod:`repro.obs.reqtrace`.
    """

    trace_id: str
    value: float
    bucket_le: float
    """Upper bound of the bucket this exemplar landed in (inf = overflow)."""

    def to_dict(self) -> dict[str, Any]:
        return {"trace_id": self.trace_id, "value": self.value,
                "le": ("+Inf" if math.isinf(self.bucket_le)
                       else self.bucket_le)}


class Histogram(_Metric):
    """Fixed-bucket histogram (TTFT, ITL, queue-wait, step-time).

    Buckets are upper bounds in ascending order; an implicit ``+Inf``
    bucket catches the overflow.  ``quantile`` interpolates linearly inside
    the containing bucket — the same estimate ``histogram_quantile`` gives.
    Observations may carry a ``trace_id``, recorded as the bucket's
    :class:`Exemplar` (last writer wins, as in Prometheus client
    libraries — deterministic because the simulated event order is).
    """

    kind = "histogram"

    def __init__(self, name: str, help: str = "",
                 buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS,
                 labels: Mapping[str, str] | None = None) -> None:
        super().__init__(name, help, labels)
        bounds = tuple(float(b) for b in buckets)
        if not bounds or list(bounds) != sorted(set(bounds)):
            raise ValueError("buckets must be non-empty, unique and ascending")
        self.bounds = bounds
        self._counts = [0] * (len(bounds) + 1)  # last = +Inf overflow
        self._exemplars: dict[int, Exemplar] = {}
        self.sum = 0.0
        self.count = 0

    def bucket_index(self, value: float) -> int:
        """Index of the bucket ``value`` falls in (len(bounds) = overflow)."""
        return bisect.bisect_left(self.bounds, value)

    def _bucket_le(self, index: int) -> float:
        return self.bounds[index] if index < len(self.bounds) else math.inf

    def observe(self, value: float, trace_id: str | None = None) -> None:
        index = self.bucket_index(value)
        self._counts[index] += 1
        if trace_id is not None:
            self._exemplars[index] = Exemplar(
                trace_id=trace_id, value=value,
                bucket_le=self._bucket_le(index))
        self.sum += value
        self.count += 1

    def exemplars(self) -> list[Exemplar]:
        """Recorded exemplars in bucket order."""
        return [self._exemplars[i] for i in sorted(self._exemplars)]

    def exemplar(self, index: int) -> Exemplar | None:
        """The exemplar pinned to bucket ``index``, if any observation in
        that bucket carried a trace id."""
        return self._exemplars.get(index)

    def bucket_for_quantile(self, q: float) -> int:
        """Index of the bucket containing the ``q``-quantile sample."""
        if not (0.0 <= q <= 1.0):
            raise ValueError(f"q must be in [0, 1], got {q}")
        if self.count == 0:
            raise ValueError(f"histogram {self.name} is empty")
        target = max(1, math.ceil(q * self.count))
        running = 0
        for i, c in enumerate(self._counts):
            running += c
            if running >= target:
                return i
        return len(self.bounds)

    def exemplar_for_quantile(self, q: float) -> Exemplar | None:
        """Exemplar of the bucket holding the ``q``-quantile — the hook
        from an outlier percentile straight to an offending request's
        trace id."""
        return self.exemplar(self.bucket_for_quantile(q))

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def bucket_counts(self) -> list[tuple[float, int]]:
        """Cumulative ``(upper_bound, count)`` pairs, ending with +Inf."""
        out: list[tuple[float, int]] = []
        running = 0
        for bound, c in zip(self.bounds, self._counts):
            running += c
            out.append((bound, running))
        out.append((math.inf, running + self._counts[-1]))
        return out

    def quantile(self, q: float) -> float:
        """Estimated ``q``-quantile (0..1) by intra-bucket interpolation."""
        if not (0.0 <= q <= 1.0):
            raise ValueError(f"q must be in [0, 1], got {q}")
        if self.count == 0:
            raise ValueError(f"histogram {self.name} is empty")
        target = q * self.count
        running = 0
        lo = 0.0
        for bound, c in zip(self.bounds, self._counts):
            if running + c >= target and c > 0:
                frac = (target - running) / c
                return lo + frac * (bound - lo)
            running += c
            lo = bound
        return self.bounds[-1]  # overflow bucket: clamp to the last bound


class MetricsRegistry:
    """Get-or-create home for every metric, with two export formats."""

    def __init__(self) -> None:
        self._metrics: dict[tuple[str, frozenset], _Metric] = {}
        self._bucket_overrides: dict[str, tuple[float, ...]] = {}

    # ------------------------------------------------------------------ #
    # creation / lookup
    # ------------------------------------------------------------------ #

    def _get_or_create(self, cls, name: str, help: str,
                       labels: Mapping[str, str] | None, **kwargs) -> Any:
        key = (name, frozenset((labels or {}).items()))
        metric = self._metrics.get(key)
        if metric is None:
            metric = cls(name, help, labels=labels, **kwargs)
            self._metrics[key] = metric
        elif not isinstance(metric, cls):
            raise TypeError(
                f"metric {name!r} already registered as {metric.kind}"
            )
        return metric

    def counter(self, name: str, help: str = "",
                labels: Mapping[str, str] | None = None) -> Counter:
        return self._get_or_create(Counter, name, help, labels)

    def gauge(self, name: str, help: str = "",
              labels: Mapping[str, str] | None = None) -> Gauge:
        return self._get_or_create(Gauge, name, help, labels)

    def histogram(self, name: str, help: str = "",
                  buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS,
                  labels: Mapping[str, str] | None = None) -> Histogram:
        buckets = self._bucket_overrides.get(name, buckets)
        return self._get_or_create(Histogram, name, help, labels,
                                   buckets=buckets)

    def set_buckets(self, name: str, buckets: Sequence[float]) -> None:
        """Pin the bucket boundaries every future ``histogram(name, ...)``
        labelset is created with — instrumented call sites pass only the
        name, so this is how a caller (the SLO tracker, a test) aligns a
        threshold exactly on a bucket edge.

        Must run before the first observation: rebucketing a populated
        histogram would silently redistribute its counts.
        """
        bounds = tuple(float(b) for b in buckets)
        if not bounds or list(bounds) != sorted(set(bounds)):
            raise ValueError("buckets must be non-empty, unique and ascending")
        for metric in self._metrics.values():
            if metric.name != name:
                continue
            if not isinstance(metric, Histogram):
                raise TypeError(
                    f"metric {name!r} is a {metric.kind}, not a histogram")
            if metric.bounds == bounds:
                continue
            if metric.count:
                raise ValueError(
                    f"histogram {name!r} already holds {metric.count} "
                    "observations; set_buckets must run before the first "
                    "observe()")
            metric.bounds = bounds
            metric._counts = [0] * (len(bounds) + 1)
        self._bucket_overrides[name] = bounds

    def __iter__(self):
        return iter(self._metrics.values())

    def __len__(self) -> int:
        return len(self._metrics)

    # ------------------------------------------------------------------ #
    # export
    # ------------------------------------------------------------------ #

    def to_prometheus(self) -> str:
        """Prometheus text exposition format (one block per metric family)."""
        lines: list[str] = []
        seen_families: set[str] = set()
        for metric in sorted(self._metrics.values(),
                             key=lambda m: (m.name, sorted(m.labels.items()))):
            if metric.name not in seen_families:
                seen_families.add(metric.name)
                if metric.help:
                    lines.append(f"# HELP {metric.name} {metric.help}")
                lines.append(f"# TYPE {metric.name} {metric.kind}")
            label_str = _format_labels(metric.labels)
            if isinstance(metric, Histogram):
                for i, (bound, cumulative) in enumerate(metric.bucket_counts()):
                    le = "+Inf" if math.isinf(bound) else repr(bound)
                    bucket_labels = _format_labels({**metric.labels, "le": le})
                    line = f"{metric.name}_bucket{bucket_labels} {cumulative}"
                    exemplar = metric.exemplar(i)
                    if exemplar is not None:
                        # OpenMetrics exemplar syntax: `# {labels} value`
                        line += (f' # {{trace_id="{exemplar.trace_id}"}} '
                                 f"{exemplar.value}")
                    lines.append(line)
                lines.append(f"{metric.name}_sum{label_str} {metric.sum}")
                lines.append(f"{metric.name}_count{label_str} {metric.count}")
            else:
                lines.append(f"{metric.name}{label_str} {metric.value}")
        return "\n".join(lines) + "\n"

    def snapshot(self) -> dict[str, Any]:
        """JSON-serialisable dump of every metric's current state."""
        out: list[dict[str, Any]] = []
        for metric in self._metrics.values():
            entry: dict[str, Any] = {
                "name": metric.name, "kind": metric.kind,
                "labels": dict(metric.labels),
            }
            if isinstance(metric, Histogram):
                entry["sum"] = metric.sum
                entry["count"] = metric.count
                entry["buckets"] = [
                    {"le": ("+Inf" if math.isinf(b) else b), "count": c}
                    for b, c in metric.bucket_counts()
                ]
                if metric._exemplars:
                    entry["exemplars"] = [
                        e.to_dict() for e in metric.exemplars()
                    ]
            else:
                entry["value"] = metric.value
            out.append(entry)
        return {"metrics": out}

    def to_json(self) -> str:
        return json.dumps(self.snapshot(), indent=2)
