"""The single optional handle instrumented components share.

Every instrumented call site in the serving/perf-model stack takes an
optional :class:`Instrumentation` (default ``None``) and guards its hooks
with ``if obs is not None and obs.active`` — so the default path costs one
comparison and produces byte-identical results to uninstrumented code.

``Instrumentation.on()`` builds a live tracer + metrics registry (and,
given a MoE model, an expert-routing probe); ``Instrumentation.off()``
builds an inert one whose hooks are skipped entirely, used by the overhead
benchmark to price the disabled path.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

import numpy as np

from repro.obs.metrics import MetricsRegistry
from repro.obs.reqtrace import RequestTracer
from repro.obs.routing import EngineRoutingProbe
from repro.obs.trace import SpanTracer

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.obs.alerts import AlertMonitor
    from repro.obs.cluster import ClusterTelemetry
    from repro.obs.slo import SloTracker

__all__ = ["Instrumentation"]


@dataclass
class Instrumentation:
    """Tracer + metrics registry + optional routing probe, as one handle."""

    tracer: SpanTracer = field(default_factory=SpanTracer)
    metrics: MetricsRegistry = field(default_factory=MetricsRegistry)
    routing: EngineRoutingProbe | None = None
    alerts: "AlertMonitor | None" = None
    """Optional alert rules engine (see :mod:`repro.obs.alerts`): evaluated
    once per engine iteration and at run end; dumps a flight-recorder
    bundle when a rule trips."""
    reqtrace: RequestTracer | None = None
    """Optional request-scoped tracer (see :mod:`repro.obs.reqtrace`):
    records one causal lifecycle timeline per request on the simulated
    clock."""
    slo: "SloTracker | None" = None
    """Optional SLO error-budget tracker (see :mod:`repro.obs.slo`):
    scores every terminal request against declared objectives so
    burn-rate alert rules can page."""
    cluster: "ClusterTelemetry | None" = None
    """Optional device-and-link telemetry (see :mod:`repro.obs.cluster`):
    per-device occupancy lanes, per-link interconnect accounting, expert
    heat windows, and MoE-CAP Sparse-MBU/MFU gauges.  Attach after
    construction — it needs the deployment's perf model:
    ``obs.cluster = ClusterTelemetry(perf, routing=obs.routing)``."""
    active: bool = True
    """Master switch: instrumented call sites skip every hook when False."""

    now: float = 0.0
    """Mirror of the owning engine's simulated clock, updated each
    iteration so clock-less components (scheduler, KV cache) can stamp
    spans at the current simulated time."""

    @classmethod
    def on(cls, model=None, routing_rng: np.random.Generator | None = None,
           alerts: "AlertMonitor | None" = None,
           reqtrace: bool = True,
           slo: "SloTracker | None" = None,
           **probe_kwargs) -> "Instrumentation":
        """Fully-enabled instrumentation.

        ``model`` (a :class:`~repro.models.config.ModelConfig` with MoE
        layers) additionally attaches an expert-routing probe; ``alerts``
        attaches an :class:`~repro.obs.alerts.AlertMonitor`; ``reqtrace``
        (default on) attaches a per-request lifecycle tracer; ``slo``
        attaches an :class:`~repro.obs.slo.SloTracker`, which also pins
        its latency thresholds onto exact histogram bucket edges.
        """
        routing = None
        if model is not None and getattr(model, "moe", None) is not None:
            routing = EngineRoutingProbe(model, rng=routing_rng, **probe_kwargs)
        obs = cls(routing=routing, alerts=alerts,
                  reqtrace=RequestTracer() if reqtrace else None, slo=slo)
        if slo is not None:
            slo.align_buckets(obs.metrics)
        return obs

    @classmethod
    def off(cls) -> "Instrumentation":
        """Inert instrumentation: hooks short-circuit, nothing is recorded."""
        return cls(tracer=SpanTracer(enabled=False), active=False)
