"""Deterministic run reports (``repro report``).

Folds one observed serving run — or a flight-recorder bundle from a past
run — into a single markdown (optionally HTML-wrapped) document: workload
summary, per-device occupancy, per-link interconnect accounting, expert
heat windows, MoE-CAP sparse-vs-dense utilization, SLO budgets, alerts
and a metrics digest.

Every emitter here is **byte-stable**: numbers render at fixed precision,
iteration order is explicit, and nothing reads the host clock or
environment — re-running the same seeded workload must reproduce the
report byte-for-byte (``repro report --check`` gates on exactly that,
like ``repro slo --check`` does for the burn-rate scenario).
"""

from __future__ import annotations

import html
import json
import pathlib
from typing import Any, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.obs.instrument import Instrumentation
    from repro.serving.engine import ServingResult

__all__ = [
    "render_run_report",
    "render_scenario_report",
    "render_bundle_report",
    "report_html",
    "BUNDLE_FILES",
]

#: Flight-recorder bundle files a report folds, in render order.
BUNDLE_FILES: tuple[str, ...] = (
    "alert.json", "slo.json", "cluster.json", "routing.json",
    "metrics.json", "events.json",
)

_MAX_WINDOW_ROWS = 12
_MAX_METRIC_ROWS = 40


def _f(x: float) -> str:
    """Fixed-precision float rendering (byte-stable, locale-free)."""
    return format(float(x), ".6g")


def _table(header: list[str], rows: list[list[str]]) -> list[str]:
    lines = ["| " + " | ".join(header) + " |",
             "|" + "|".join("---" for _ in header) + "|"]
    lines.extend("| " + " | ".join(r) + " |" for r in rows)
    return lines


def _section_serving(result: "ServingResult") -> list[str]:
    finished = sum(1 for r in result.requests if r.finish_time is not None)
    return [
        "## Serving summary", "",
        *_table(
            ["metric", "value"],
            [
                ["requests", str(len(result.requests))],
                ["finished", str(finished)],
                ["makespan", f"{_f(result.makespan)} s"],
                ["throughput", f"{_f(result.throughput_tok_s)} tok/s"],
                ["mean TTFT", f"{_f(result.mean_ttft())} s"],
                ["p99 TTFT", f"{_f(result.p99_ttft())} s"],
                ["p99 E2E", f"{_f(result.p99_e2e())} s"],
                ["preemptions", str(result.num_preemptions)],
            ],
        ), "",
    ]


def _section_cluster(summary: dict[str, Any]) -> list[str]:
    """Device/link/heat/utilization sections from a cluster summary dict
    (live ``ClusterTelemetry.summary()`` or a bundle's ``cluster.json``)."""
    lines: list[str] = []
    occ = summary["occupancy"]
    active = occ["busy_s"] + occ["comm_blocked_s"]
    denom = active + occ["idle_s"]
    lines += [
        "## Device occupancy", "",
        f"{summary['devices']} lockstep device(s), plan `{summary['plan']}` "
        f"on {summary['hardware']}; {int(occ['iterations'])} engine "
        f"iterations.", "",
        *_table(
            ["devices", "busy (s)", "comm-blocked (s)", "idle (s)",
             "busy fraction"],
            [[str(summary["devices"]), _f(occ["busy_s"]),
              _f(occ["comm_blocked_s"]), _f(occ["idle_s"]),
              _f(occ["busy_s"] / denom) if denom > 0 else "0"]],
        ), "",
    ]
    links = summary.get("links", {})
    lines += ["## Interconnect", ""]
    if not links:
        lines += ["Single-device deployment: no interconnect links.", ""]
    else:
        rows = [
            [name, spec["fabric"], _f(spec["capacity_gbps"]),
             _f(spec["bytes_total"]), _f(spec["busy_seconds"]),
             f"{spec['utilization']:.4f}"]
            for name, spec in sorted(links.items())
        ]
        lines += _table(
            ["link", "fabric", "capacity (GB/s)", "bytes", "busy (s)",
             "utilization"], rows) + [""]
    heat = summary.get("expert_heat", {})
    lines += [
        "## Expert heat", "",
        f"{heat.get('windows', 0)} closed window(s) of "
        f"{_f(summary['window_s'])} s "
        f"({heat.get('non_empty_windows', 0)} with routed tokens); peak "
        f"max/mean imbalance {_f(heat.get('peak_imbalance', 0.0))}, last "
        f"non-empty Gini {_f(heat.get('last_gini', 0.0))}.", "",
    ]
    util = summary.get("utilization", {})
    if util:
        lines += [
            "## Utilization (MoE-CAP)", "",
            *_table(
                ["gauge", "dense", "sparse"],
                [["MFU", f"{util['dense_mfu']:.5f}",
                  f"{util['sparse_mfu']:.5f}"],
                 ["MBU", f"{util['dense_mbu']:.5f}",
                  f"{util['sparse_mbu']:.5f}"]],
            ), "",
            "Dense MFU/MBU score the run as if every expert computed and "
            "streamed each step; the sparse gauges count only activated "
            "experts and coverage-scaled weight traffic (MoE-CAP, "
            "arXiv 2505.11415) — the dense numbers overstate how close a "
            "MoE deployment is to its roofline.", "",
        ]
    return lines


def _section_waterfall(cluster) -> list[str]:
    """Per-window comm waterfall from live telemetry (capped rows)."""
    if not cluster.links or not cluster.link_windows:
        return []
    names = list(cluster.links)
    rows = []
    shown = cluster.link_windows[:_MAX_WINDOW_ROWS]
    for idx, util in enumerate(shown):
        rows.append([str(idx), _f(idx * cluster.window_s)] +
                    [f"{util.get(n, 0.0):.4f}" for n in names])
    lines = ["### Comm waterfall", "",
             *_table(["window", "t_start (s)"] + names, rows)]
    hidden = len(cluster.link_windows) - len(shown)
    if hidden > 0:
        lines.append(f"\n… {hidden} more window(s) elided.")
    return lines + [""]


def _section_heat_windows(cluster) -> list[str]:
    if not cluster.windows:
        return []
    rows = []
    for w in cluster.windows[:_MAX_WINDOW_ROWS]:
        rows.append([str(w.index), _f(w.t_start), str(w.tokens),
                     _f(w.gini), _f(w.imbalance)])
    lines = ["### Heat windows", "",
             *_table(["window", "t_start (s)", "tokens", "gini",
                      "max/mean"], rows)]
    hidden = len(cluster.windows) - min(len(cluster.windows),
                                        _MAX_WINDOW_ROWS)
    if hidden > 0:
        lines.append(f"\n… {hidden} more window(s) elided.")
    return lines + [""]


def _section_slo(report: dict[str, Any]) -> list[str]:
    budgets = report.get("budgets", [])
    if not budgets:
        return []
    rows = []
    for b in budgets:
        rows.append([
            str(b.get("slo", "?")),
            str(b.get("objective", "")),
            str(b.get("bad", "")), str(b.get("total", "")),
            _f(b.get("attainment", 0.0)),
            _f(b.get("budget_consumed", 0.0)),
        ])
    return ["## SLO budgets", "",
            *_table(["SLO", "objective", "bad", "total", "attainment",
                     "budget consumed"], rows), ""]


def _section_alerts(alerts: list[dict[str, Any]]) -> list[str]:
    lines = ["## Alerts", ""]
    if not alerts:
        return lines + ["No alerts fired.", ""]
    for a in alerts:
        lines.append(f"- `{a['rule']}` at t={_f(a['time'])}s — "
                     f"{a['message']}")
    return lines + [""]


def _section_metrics(snapshot: dict[str, Any]) -> list[str]:
    """Counters and gauges (histograms are summarised) from a metrics
    snapshot (``MetricsRegistry.snapshot()`` / ``metrics.json``), sorted
    by name then labels."""
    rows: list[list[str]] = []
    entries = sorted(snapshot.get("metrics", []),
                     key=lambda e: (e["name"], sorted(e["labels"].items())))
    for entry in entries:
        labels = ",".join(f"{k}={v}" for k, v in
                          sorted(entry["labels"].items()))
        if entry["kind"] == "histogram":
            value = (f"count={entry['count']} "
                     f"sum={_f(entry['sum'])}")
        else:
            value = _f(entry["value"])
        rows.append([entry["name"], labels, entry["kind"], value])
    hidden = len(rows) - _MAX_METRIC_ROWS
    rows = rows[:_MAX_METRIC_ROWS]
    lines = ["## Metrics", "",
             *_table(["metric", "labels", "kind", "value"], rows)]
    if hidden > 0:
        lines.append(f"\n… {hidden} more metric(s) elided.")
    return lines + [""]


def render_run_report(result: "ServingResult", obs: "Instrumentation",
                      title: str = "Run report") -> str:
    """One observed engine run as deterministic markdown."""
    lines: list[str] = [f"# {title}", ""]
    lines += _section_serving(result)
    if obs.cluster is not None:
        lines += _section_cluster(obs.cluster.summary())
        lines += _section_waterfall(obs.cluster)
        lines += _section_heat_windows(obs.cluster)
    if obs.slo is not None:
        lines += _section_slo(obs.slo.report(result.makespan))
    if obs.alerts is not None:
        lines += _section_alerts(obs.alerts.summary())
    lines += _section_metrics(obs.metrics.snapshot())
    return "\n".join(lines).rstrip("\n") + "\n"


def render_scenario_report(scenario: dict[str, Any],
                           bundle_root: pathlib.Path | None = None,
                           title: str = "SLO gate run report") -> str:
    """The ``run_slo_scenario`` dict (plus its flight-recorder bundles)
    as deterministic markdown — the CI slo-gate artifact."""
    lines = [f"# {title}", "",
             f"Scenario `{scenario['scenario']}`, budget hour "
             f"{_f(scenario['hour_s'])} s.", "",
             "## Objectives", ""]
    lines += [f"- {s}" for s in scenario["slos"]] + [""]
    summary = scenario.get("summary", {})
    if summary:
        rows = [[str(k), _f(v) if isinstance(v, float) else str(v)]
                for k, v in sorted(summary.items())]
        lines += ["## Chaos run", "", *_table(["metric", "value"], rows), ""]
    lines += _section_slo(scenario)
    lines += _section_alerts(scenario.get("alerts", []))
    if "cluster" in scenario:
        lines += _section_cluster(scenario["cluster"])
    if bundle_root is not None:
        bundles = sorted(p for p in bundle_root.iterdir() if p.is_dir())
        for bundle in bundles:
            lines += ["---", ""]
            lines += render_bundle_report(
                bundle, title=f"Flight recorder: {bundle.name}"
            ).splitlines()
            lines += [""]
    return "\n".join(lines).rstrip("\n") + "\n"


def render_bundle_report(bundle_dir: str | pathlib.Path,
                         title: str | None = None) -> str:
    """A flight-recorder bundle directory as deterministic markdown.

    Renders whichever of the known bundle files exist; paths never leak
    into the output (only the bundle's basename), so a report built from
    a bundle in a temp directory is byte-stable across runs.
    """
    bundle = pathlib.Path(bundle_dir)
    if not bundle.is_dir():
        raise FileNotFoundError(f"no flight-recorder bundle at {bundle}")
    name = title if title is not None else f"Flight recorder: {bundle.name}"
    lines: list[str] = [f"# {name}", ""]

    def _load(fname: str) -> Any | None:
        path = bundle / fname
        if not path.exists():
            return None
        return json.loads(path.read_text())

    alert = _load("alert.json")
    if alert is not None:
        lines += ["## Alert", "",
                  f"- rule: `{alert['rule']}`",
                  f"- simulated time: {_f(alert['time'])} s",
                  f"- {alert['message']}", ""]
    slo = _load("slo.json")
    if slo is not None:
        lines += _section_slo(slo)
    cluster = _load("cluster.json")
    if cluster is not None:
        lines += _section_cluster(cluster)
    routing = _load("routing.json")
    if routing is not None:
        rows = [[str(k), _f(v) if isinstance(v, float) else str(v)]
                for k, v in sorted(routing.items())
                if not isinstance(v, (list, dict))]
        if rows:
            lines += ["## Expert routing", "",
                      *_table(["metric", "value"], rows), ""]
    metrics = _load("metrics.json")
    if metrics is not None:
        lines += _section_metrics(metrics)
    events = _load("events.json")
    if events is not None:
        lines += [
            "## Event tail", "",
            f"{len(events)} event(s) captured before the alert; last "
            f"simulated timestamp "
            f"{_f(events[-1]['time']) if events else '0'} s.", "",
        ]
    return "\n".join(lines).rstrip("\n") + "\n"


_HTML_TEMPLATE = """<!DOCTYPE html>
<html lang="en">
<head>
<meta charset="utf-8">
<title>{title}</title>
<style>
body {{ font: 14px/1.5 system-ui, sans-serif; max-width: 60rem;
       margin: 2rem auto; padding: 0 1rem; color: #1a1a2e; }}
pre {{ background: #f6f8fa; padding: 1rem; overflow-x: auto; }}
</style>
</head>
<body>
<pre>{body}</pre>
</body>
</html>
"""


def report_html(markdown: str, title: str = "repro run report") -> str:
    """Minimal dependency-free HTML wrapper around a markdown report.

    Deliberately renders the markdown verbatim inside ``<pre>`` — no
    markdown engine is vendored, and a byte-stable wrapper matters more
    here than typography.
    """
    return _HTML_TEMPLATE.format(title=html.escape(title),
                                 body=html.escape(markdown))
