"""Alert rules over live engine state, with flight-recorder bundles.

An :class:`AlertMonitor` hangs off the :class:`Instrumentation` handle and
is consulted by the serving engine once per iteration and once at run end.
Each :class:`AlertRule` watches one pathology the paper's serving
experiments actually exhibit:

* :class:`ExpertImbalanceRule` — the rolling expert-load imbalance from the
  routing probe crosses a max/mean threshold (hot experts).
* :class:`PreemptionStormRule` — too many preemption events inside a
  sliding simulated-time window (KV thrash / recompute livelock).
* :class:`KvHighWaterRule` — the paged KV cache crosses a utilization
  high-water mark.
* :class:`EmptyPercentileRule` — the run produced iterations but no
  percentile-able latency samples (every percentile would raise), the
  classic silently-broken-dashboard anomaly.
* :class:`FaultStormRule` — too many injected fault events inside a
  sliding simulated-time window (the deployment is flapping faster than
  recovery can drain).
* :class:`UnrecoverableLossRule` — the fault injector declared the
  deployment unrecoverable (expert coverage lost with no degrade
  headroom, or every device lost); fires at the iteration of loss so the
  flight-recorder bundle captures the state that led there.

When a rule trips (once per rule per run), the monitor records an
:class:`Alert` and — if a :class:`FlightRecorder` is attached — dumps a
bundle (the alert, the last-N engine events, a metrics snapshot, the trace
tail, routing telemetry) into a deterministically-named directory for
postmortem debugging.
"""

from __future__ import annotations

import json
import pathlib
from dataclasses import dataclass, field
from typing import Any, TYPE_CHECKING

from repro.serving.events import Event, EventType

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.serving.engine import ServingEngine, ServingResult

__all__ = [
    "Alert",
    "AlertRule",
    "ExpertImbalanceRule",
    "PreemptionStormRule",
    "KvHighWaterRule",
    "EmptyPercentileRule",
    "FaultStormRule",
    "UnrecoverableLossRule",
    "DeviceSaturationRule",
    "FlightRecorder",
    "AlertMonitor",
    "default_rules",
]


@dataclass(frozen=True)
class Alert:
    """One fired alert, stamped with the simulated time it tripped."""

    rule: str
    time: float
    message: str
    context: dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> dict[str, Any]:
        return {"rule": self.rule, "time": self.time,
                "message": self.message, "context": self.context}


class AlertRule:
    """Base rule: override :meth:`check` (per iteration) and/or
    :meth:`check_end` (once per run). Return an :class:`Alert` to fire."""

    name = "alert"

    def check(self, engine: "ServingEngine") -> Alert | None:
        return None

    def check_end(self, engine: "ServingEngine",
                  result: "ServingResult") -> Alert | None:
        return None


class ExpertImbalanceRule(AlertRule):
    """Rolling expert-load imbalance (max/mean over the probe's window)
    exceeds ``threshold`` after at least ``min_batches`` routed batches."""

    name = "expert_imbalance"

    def __init__(self, threshold: float = 2.0, min_batches: int = 32) -> None:
        self.threshold = threshold
        self.min_batches = min_batches

    def check(self, engine: "ServingEngine") -> Alert | None:
        obs = engine.obs
        if obs is None or obs.routing is None:
            return None
        telemetry = obs.routing.telemetry
        if len(telemetry.imbalance_series) < self.min_batches:
            return None
        imbalance = telemetry.rolling_imbalance()
        if imbalance < self.threshold:
            return None
        return Alert(
            self.name, engine.clock,
            f"rolling expert imbalance {imbalance:.3f} >= "
            f"{self.threshold:.3f} (max/mean over window of "
            f"{telemetry.window} batches)",
            {"imbalance": imbalance, "threshold": self.threshold,
             "window": telemetry.window,
             "hottest_experts": telemetry.activation_ordering()[:4]},
        )


class PreemptionStormRule(AlertRule):
    """More than ``max_events`` preemptions within the trailing
    ``window_s`` of simulated time."""

    name = "preemption_storm"

    def __init__(self, max_events: int = 4, window_s: float = 1.0) -> None:
        self.max_events = max_events
        self.window_s = window_s

    def check(self, engine: "ServingEngine") -> Alert | None:
        preemptions = engine.log.of_type(EventType.PREEMPTION)
        cutoff = engine.clock - self.window_s
        recent = 0
        for event in reversed(preemptions):
            if event.time < cutoff:
                break
            recent += 1
        if recent <= self.max_events:
            return None
        return Alert(
            self.name, engine.clock,
            f"{recent} preemptions in the last {self.window_s:g}s of "
            f"simulated time (> {self.max_events})",
            {"recent_preemptions": recent, "window_s": self.window_s,
             "total_preemptions": len(preemptions),
             "kv_utilization": engine.kv.utilization},
        )


class KvHighWaterRule(AlertRule):
    """Paged KV cache utilization crosses ``threshold``."""

    name = "kv_high_water"

    def __init__(self, threshold: float = 0.95) -> None:
        self.threshold = threshold

    def check(self, engine: "ServingEngine") -> Alert | None:
        utilization = engine.kv.utilization
        if utilization < self.threshold:
            return None
        return Alert(
            self.name, engine.clock,
            f"KV cache at {utilization:.1%} (high-water mark "
            f"{self.threshold:.0%})",
            {"utilization": utilization, "threshold": self.threshold,
             "num_blocks": engine.kv.num_blocks},
        )


class EmptyPercentileRule(AlertRule):
    """The run executed iterations yet produced no latency samples —
    every percentile accessor (``p50_ttft``, ``p99_itl``, ...) would raise,
    so dashboards reading them silently show nothing."""

    name = "empty_percentiles"

    def check_end(self, engine: "ServingEngine",
                  result: "ServingResult") -> Alert | None:
        if engine.log.num_iterations == 0:
            return None
        ttft_samples = sum(
            1 for r in result.requests
            if r.is_finished and r.ttft is not None
        )
        if ttft_samples > 0:
            return None
        return Alert(
            self.name, engine.clock,
            f"{engine.log.num_iterations} iterations ran but no request "
            "produced a TTFT sample — percentile metrics are undefined",
            {"iterations": engine.log.num_iterations,
             "requests": len(result.requests)},
        )


class FaultStormRule(AlertRule):
    """More than ``max_events`` injected faults within the trailing
    ``window_s`` of simulated time — the cluster is flapping faster than
    the recovery policies can drain the damage."""

    name = "fault_storm"

    def __init__(self, max_events: int = 3, window_s: float = 1.0) -> None:
        self.max_events = max_events
        self.window_s = window_s

    def check(self, engine: "ServingEngine") -> Alert | None:
        faults = engine.log.of_type(EventType.FAULT)
        cutoff = engine.clock - self.window_s
        recent = 0
        for event in reversed(faults):
            if event.time < cutoff:
                break
            recent += 1
        if recent <= self.max_events:
            return None
        return Alert(
            self.name, engine.clock,
            f"{recent} faults injected in the last {self.window_s:g}s of "
            f"simulated time (> {self.max_events})",
            {"recent_faults": recent, "window_s": self.window_s,
             "total_faults": len(faults),
             "last_fault": faults[-1].detail},
        )


class UnrecoverableLossRule(AlertRule):
    """The fault injector marked the deployment unrecoverable — expert
    coverage lost with no degrade headroom, or every device lost.  Firing
    per-iteration (not at run end) means an attached flight recorder
    snapshots the engine at the moment of loss."""

    name = "unrecoverable_loss"

    def check(self, engine: "ServingEngine") -> Alert | None:
        faults = getattr(engine, "faults", None)
        if faults is None or not faults.health.unrecoverable:
            return None
        return Alert(
            self.name, engine.clock,
            "deployment unrecoverable: " + "; ".join(
                faults.health.unrecoverable),
            {"health": faults.health.summary(),
             **{k: v for k, v in faults.counts.items()}},
        )


class DeviceSaturationRule(AlertRule):
    """A cluster interconnect link sustains bytes-based utilization above
    ``threshold`` for ``min_windows`` consecutive closed windows.

    Requires cluster telemetry (``obs.cluster``); inert otherwise.  A
    single hot window is batching noise — sustained saturation means the
    deployment is fabric-bound and the parallel plan (or the link) needs
    to change.
    """

    name = "device_saturation"

    def __init__(self, threshold: float = 0.85, min_windows: int = 3) -> None:
        self.threshold = threshold
        self.min_windows = min_windows

    def check(self, engine: "ServingEngine") -> Alert | None:
        obs = engine.obs
        if obs is None or obs.cluster is None:
            return None
        cluster = obs.cluster
        for name in cluster.links:
            series = cluster.link_window_utilization(name)
            if len(series) < self.min_windows:
                continue
            tail = series[-self.min_windows:]
            if min(tail) <= self.threshold:
                continue
            return Alert(
                self.name, engine.clock,
                f"link '{name}' above {self.threshold:.0%} utilization for "
                f"{self.min_windows} consecutive "
                f"{cluster.window_s:g}s windows "
                f"(last {max(tail):.3f})",
                {"link": name, "threshold": self.threshold,
                 "min_windows": self.min_windows,
                 "window_s": cluster.window_s,
                 "utilization_tail": [round(u, 6) for u in tail],
                 "bytes_total": cluster._link_bytes[name]},
            )
        return None


def default_rules() -> list[AlertRule]:
    return [ExpertImbalanceRule(), PreemptionStormRule(), KvHighWaterRule(),
            EmptyPercentileRule(), FaultStormRule(), UnrecoverableLossRule(),
            DeviceSaturationRule()]


# --------------------------------------------------------------------------- #
# flight recorder
# --------------------------------------------------------------------------- #


def _event_to_dict(event: Event) -> dict[str, Any]:
    return {
        "time": event.time,
        "type": event.type.value,
        "request_ids": list(event.request_ids),
        "num_tokens": event.num_tokens,
        "duration_s": event.duration_s,
        "kv_utilization": event.kv_utilization,
    }


class FlightRecorder:
    """Dumps a postmortem bundle when an alert fires.

    Bundle directories are named ``<rule>-t<sim_time>`` — simulated time,
    so reruns of a deterministic workload land in the same place.
    """

    def __init__(self, out_dir: str | pathlib.Path, last_n: int = 64) -> None:
        self.out_dir = pathlib.Path(out_dir)
        self.last_n = last_n

    def dump(self, alert: Alert, engine: "ServingEngine") -> pathlib.Path:
        bundle = self.out_dir / f"{alert.rule}-t{alert.time:.6f}"
        bundle.mkdir(parents=True, exist_ok=True)
        (bundle / "alert.json").write_text(
            json.dumps(alert.to_dict(), indent=2) + "\n")
        events = engine.log.events[-self.last_n:]
        (bundle / "events.json").write_text(json.dumps(
            [_event_to_dict(e) for e in events], indent=2) + "\n")
        obs = engine.obs
        if obs is not None:
            (bundle / "metrics.json").write_text(
                obs.metrics.to_json() + "\n")
            (bundle / "trace_tail.json").write_text(json.dumps(
                obs.tracer.tail(self.last_n), indent=2) + "\n")
            if obs.routing is not None:
                (bundle / "routing.json").write_text(json.dumps(
                    obs.routing.telemetry.summary(), indent=2) + "\n")
            if obs.slo is not None:
                (bundle / "slo.json").write_text(json.dumps(
                    obs.slo.report(engine.clock), indent=2) + "\n")
            if obs.cluster is not None:
                (bundle / "cluster.json").write_text(json.dumps(
                    obs.cluster.summary(), indent=2) + "\n")
        return bundle


# --------------------------------------------------------------------------- #
# monitor
# --------------------------------------------------------------------------- #


class AlertMonitor:
    """Evaluates rules against the live engine; one shot per rule per run."""

    def __init__(self, rules: list[AlertRule] | None = None,
                 recorder: FlightRecorder | None = None) -> None:
        self.rules = default_rules() if rules is None else list(rules)
        self.recorder = recorder
        self.fired: list[Alert] = []
        self.bundles: list[pathlib.Path] = []
        self._tripped: set[str] = set()

    def _fire(self, alert: Alert, engine: "ServingEngine") -> None:
        self._tripped.add(alert.rule)
        self.fired.append(alert)
        if self.recorder is not None:
            self.bundles.append(self.recorder.dump(alert, engine))

    def on_iteration(self, engine: "ServingEngine") -> None:
        for rule in self.rules:
            if rule.name in self._tripped:
                continue
            alert = rule.check(engine)
            if alert is not None:
                self._fire(alert, engine)

    def on_run_end(self, engine: "ServingEngine",
                   result: "ServingResult") -> None:
        for rule in self.rules:
            if rule.name in self._tripped:
                continue
            alert = rule.check_end(engine, result)
            if alert is not None:
                self._fire(alert, engine)

    def summary(self) -> list[dict[str, Any]]:
        return [a.to_dict() for a in self.fired]
