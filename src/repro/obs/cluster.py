"""Cluster telemetry: device occupancy, link accounting, expert heat.

The request-side observability (:mod:`repro.obs.trace`,
:mod:`repro.obs.reqtrace`) answers "where did this request's time go";
this module answers the *device-side* questions the paper's findings live
in — is the fleet compute-bound or blocked on collectives, which
interconnect link is saturating, which experts run hot — plus the
MoE-CAP (arXiv 2505.11415) correction to utilization metrics:

* **Occupancy** — every engine iteration is split into compute time,
  comm-blocked time (the interconnect + pipeline share of the component
  breakdown) and idle gaps, replicated across the deployment's
  ``plan.num_devices`` lockstep devices and exported as per-device Chrome
  trace lanes alongside the engine/request lanes.
* **Link accounting** — per-iteration fabric-crossing bytes of each
  logical link (EP all-to-all dispatch+combine, TP all-reduce, PP
  point-to-point, PCIe offload), mirrored byte-for-byte from the phase
  model's collective formulas and scored against the
  :class:`~repro.hardware.spec.InterconnectSpec` capacity as per-link
  utilization gauges and a per-window comm waterfall.  Byte accounting
  models the *healthy* fabric: fault-injected link degradation stretches
  collective seconds, not payload bytes.
* **Expert heat** — closed windows of simulated time accumulate the
  routing probe's per-expert token load into a Gini / max-over-mean
  imbalance timeseries, mapped onto devices through a (replication-aware)
  :mod:`repro.parallel.expert_parallel` placement.
* **Sparse-MBU / Sparse-MFU** — dense MBU/MFU score a MoE model as if
  every expert's weights streamed and every expert's FLOPs executed each
  step; MoE-CAP shows that overstates utilization.  The sparse gauges
  count only the activated-expert FLOPs and the coverage-scaled weight
  traffic, reported *alongside* the dense numbers they correct.

Like every hook in :mod:`repro.obs`, the telemetry is default-off
(``Instrumentation.cluster is None``) and reads engine state without
writing it, so enabling it cannot perturb simulated results.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, TYPE_CHECKING

import numpy as np

from repro.core.results import ResultTable
from repro.hardware.interconnect import (
    PCIE_GEN5_X16,
    all_to_all_time,
    allreduce_time,
    p2p_time,
)
from repro.models.config import ModelConfig
from repro.moe.stats import balance_metrics
from repro.optim.quantization import QuantConfig
from repro.parallel.expert_parallel import (
    ExpertPlacement,
    ReplicatedExpertPlacement,
    round_robin_placement,
)
from repro.perfmodel.flops import (
    attention_core_cost,
    dense_ffn_cost,
    embedding_cost,
    lm_head_cost,
    qkvo_cost,
    router_cost,
    routed_experts_cost,
    shared_expert_cost,
)
from repro.obs.trace import TRACE_PID

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.obs.metrics import MetricsRegistry
    from repro.obs.routing import EngineRoutingProbe
    from repro.perfmodel.inference import InferencePerfModel

__all__ = [
    "ClusterTelemetry",
    "HeatWindow",
    "LinkSpec",
    "StepShape",
    "step_cost_totals",
    "step_utilization",
    "DEVICE_TID_BASE",
    "LINK_TID_BASE",
]

DEVICE_TID_BASE = 2000
"""Chrome trace tids of the per-device lanes (after request lanes at
1000+rid, so Perfetto sorts engine → requests → devices)."""

LINK_TID_BASE = 2900
"""Chrome trace tids of the per-link utilization counter tracks."""


@dataclass(frozen=True)
class StepShape:
    """The workload shape of one engine iteration, as the perf model saw
    it — enough to re-derive the step's component costs and link bytes."""

    phase: str
    num_tokens: float
    batch: float
    kv_len: float
    attended_len: float | None = None


@dataclass(frozen=True)
class LinkSpec:
    """One logical interconnect link of the deployment."""

    name: str
    fabric: str
    capacity_bytes_per_s: float


@dataclass(frozen=True)
class HeatWindow:
    """Per-expert token load over one closed window of simulated time."""

    index: int
    t_start: float
    t_end: float
    tokens: int
    """Routed token-assignments (token × top-k) landing in the window."""
    gini: float
    imbalance: float
    """max/mean per-expert load in the window (0.0 for an empty window)."""
    device_load: tuple[float, ...]
    """Expert token load per EP device, replication-aware (an expert with
    ``r`` replicas spreads its load evenly over them)."""

    @property
    def is_empty(self) -> bool:
        return self.tokens == 0

    def to_dict(self) -> dict[str, Any]:
        return {
            "index": self.index, "t_start": self.t_start,
            "t_end": self.t_end, "tokens": self.tokens, "gini": self.gini,
            "imbalance": self.imbalance,
            "device_load": list(self.device_load),
        }


# --------------------------------------------------------------------------- #
# MoE-CAP sparse vs dense step costs
# --------------------------------------------------------------------------- #


def _dense_expert_cost_totals(model: ModelConfig, m: float,
                              quant: QuantConfig) -> tuple[float, float]:
    """(flops, bytes) of one MoE layer's expert block *as a dense metric
    scores it*: all ``E`` experts compute every token and all expert
    weights stream — the counterfactual dense MFU/MBU assume."""
    moe = model.moe
    assert moe is not None
    h, f, e = model.hidden_size, moe.expert_ffn_dim, moe.num_experts
    n_mats = 3 if moe.gated else 2
    per_expert = n_mats * h * f
    flops = 2.0 * m * e * per_expert
    w_bytes = e * per_expert * quant.weight_bytes
    a_bytes = (2.0 * m * h + 2.0 * m * e * f) * quant.activation_bytes
    return flops, w_bytes + a_bytes


def step_cost_totals(
    model: ModelConfig,
    quant: QuantConfig,
    shape: StepShape,
    fused: bool = True,
    mla_native: bool = False,
) -> tuple[float, float, float, float]:
    """``(sparse_flops, dense_flops, sparse_bytes, dense_bytes)`` of one
    forward step, summed over all layers plus embedding and LM head.

    The sparse totals count what the MoE step actually does — activated
    experts' FLOPs, coverage-scaled expert weight traffic (the
    :func:`~repro.perfmodel.flops.routed_experts_cost` accounting) — while
    the dense totals replace the routed-expert block with its all-experts
    counterfactual.  Everything else (attention, router, shared experts,
    dense FFN, embedding, LM head) is identical between the two.
    """
    m, batch, kv_len = shape.num_tokens, shape.batch, shape.kv_len
    sparse_flops = dense_flops = sparse_bytes = dense_bytes = 0.0

    def _both(flops: float, bytes_: float) -> None:
        nonlocal sparse_flops, dense_flops, sparse_bytes, dense_bytes
        sparse_flops += flops
        dense_flops += flops
        sparse_bytes += bytes_
        dense_bytes += bytes_

    for _, is_moe in model.iter_layers():
        qkvo = qkvo_cost(model, m, quant)
        _both(qkvo.flops, qkvo.bytes)
        core = attention_core_cost(model, m, batch, kv_len, quant,
                                   shape.attended_len, mla_native=mla_native)
        _both(core.flops, core.bytes)
        if is_moe:
            router = router_cost(model, m, quant)
            _both(router.flops, router.bytes)
            routed = routed_experts_cost(model, m, quant, fused=fused)
            sparse_flops += routed.flops
            sparse_bytes += routed.bytes
            df, db = _dense_expert_cost_totals(model, m, quant)
            dense_flops += df
            dense_bytes += db
            shared = shared_expert_cost(model, m, quant)
            _both(shared.flops, shared.bytes)
        else:
            dense = dense_ffn_cost(model, m, quant)
            _both(dense.flops, dense.bytes)

    emb = embedding_cost(model, m, quant)
    _both(emb.flops, emb.bytes)
    head = lm_head_cost(model, batch, quant)
    _both(head.flops, head.bytes)
    return sparse_flops, dense_flops, sparse_bytes, dense_bytes


def step_utilization(steps, num_tokens: float, batch: float, kv_len: float,
                     phase: str,
                     attended_len: float | None = None) -> dict[str, float]:
    """Sparse vs dense MBU/MFU of one step on a deployment (MoE-CAP).

    ``steps`` is a :class:`~repro.perfmodel.phases.StepModel`; the step
    time comes from its breakdown, the numerators from
    :func:`step_cost_totals`, and the denominators are the deployment's
    aggregate peaks (``num_devices`` × per-device peak FLOP/s and raw
    memory bandwidth).  Dense MFU/MBU score the step as if the model were
    dense — the overstated utilization the sparse gauges correct.
    """
    bd = steps.step_breakdown(num_tokens=num_tokens, batch=batch,
                              kv_len=kv_len, phase=phase,
                              attended_len=attended_len)
    shape = StepShape(phase, float(num_tokens), float(batch), float(kv_len),
                      attended_len)
    sf, df, sb, db = step_cost_totals(steps.model, steps.quant, shape,
                                      fused=steps.fused_moe,
                                      mla_native=steps.mla_native)
    n = steps.plan.num_devices
    peak_flops = steps.hardware.peak_flops_per_s(
        steps.quant.compute_dtype_name) * n
    peak_bw = steps.hardware.mem_bandwidth_gbps * 1e9 * n
    t = bd.total
    return {
        "step_time_s": t,
        "sparse_mfu": sf / (t * peak_flops),
        "dense_mfu": df / (t * peak_flops),
        "sparse_mbu": sb / (t * peak_bw),
        "dense_mbu": db / (t * peak_bw),
    }


# --------------------------------------------------------------------------- #
# the telemetry
# --------------------------------------------------------------------------- #


class ClusterTelemetry:
    """Device-and-link telemetry for one engine deployment.

    Attach to an :class:`~repro.obs.instrument.Instrumentation` handle
    (``obs.cluster = ClusterTelemetry(perf, routing=obs.routing)``); the
    serving engine feeds it one :meth:`on_iteration` per step and one
    :meth:`on_run_end` when the run drains.  All state is derived from
    the iteration stream — nothing is written back to the engine.
    """

    def __init__(
        self,
        perf_model: "InferencePerfModel",
        routing: "EngineRoutingProbe | None" = None,
        window_s: float = 0.1,
        placement: ExpertPlacement | ReplicatedExpertPlacement | None = None,
    ) -> None:
        if window_s <= 0:
            raise ValueError("window_s must be positive")
        setup = perf_model.setup
        self.model = setup.model
        self.hardware = setup.hardware
        self.plan = setup.plan
        self.quant = setup.quant
        self.fused_moe = setup.fused_moe
        self.mla_native = setup.mla_native
        self.routing = routing
        self.window_s = window_s
        self.num_devices = self.plan.num_devices

        if placement is None and self.plan.ep > 1 and \
                self.model.moe is not None:
            placement = round_robin_placement(self.model.moe.num_experts,
                                              self.plan.ep)
        self.placement = placement

        self.links: dict[str, LinkSpec] = {}
        fabric = self.hardware.interconnect
        if self.plan.num_devices > 1 and fabric is None:
            raise ValueError(
                f"{self.hardware.name} has no interconnect configured for a "
                f"{self.plan.label} deployment")
        if self.plan.tp > 1:
            self.links["tp_allreduce"] = LinkSpec(
                "tp_allreduce", fabric.name,
                fabric.link_bandwidth_gbps * 1e9)
        if self.plan.ep > 1:
            # the link exists for any EP deployment; a dense model simply
            # never puts bytes on it (the zero-traffic case)
            self.links["ep_alltoall"] = LinkSpec(
                "ep_alltoall", fabric.name,
                fabric.link_bandwidth_gbps * 1e9)
        if self.plan.pp > 1:
            self.links["pp_p2p"] = LinkSpec(
                "pp_p2p", fabric.name, fabric.link_bandwidth_gbps * 1e9)

        # occupancy: one (t_start, t_end, phase, comm_s) segment per
        # iteration, shared by every lockstep device lane
        self._segments: list[tuple[float, float, str, float]] = []
        self.busy_s = 0.0
        self.comm_s = 0.0
        self.idle_s = 0.0
        self._last_end = 0.0
        self.iterations = 0

        self._link_bytes: dict[str, float] = {n: 0.0 for n in self.links}
        self._link_seconds: dict[str, float] = {n: 0.0 for n in self.links}
        self._link_window_bytes: dict[str, dict[int, float]] = \
            {n: {} for n in self.links}
        self._link_memo: dict[float, dict[str, tuple[float, float]]] = {}

        self.windows: list[HeatWindow] = []
        self.link_windows: list[dict[str, float]] = []
        """Per closed window: link name → bytes-based utilization."""
        self._next_window = 0
        self._heat_last_totals: np.ndarray | None = None

        self._cost_memo: dict[StepShape, tuple[float, float, float, float]] = {}
        self.sparse_flops = 0.0
        self.dense_flops = 0.0
        self.sparse_bytes = 0.0
        self.dense_bytes = 0.0
        self.makespan = 0.0
        self._finalized = False

    # ------------------------------------------------------------------ #
    # engine hooks
    # ------------------------------------------------------------------ #

    def on_iteration(self, t_start: float, t_end: float,
                     components: dict[str, float], *,
                     phase: str, num_tokens: float, batch: float,
                     kv_len: float,
                     attended_len: float | None = None) -> None:
        """Ingest one engine iteration (called after the routing probe has
        seen the iteration's tokens, so heat windows closing at ``t_end``
        include them).  The shape fields are the exact arguments the engine
        fed the perf model, so link bytes and sparse/dense costs re-derive
        from the same step the clock advanced by."""
        shape = StepShape(phase, float(num_tokens), float(batch),
                          float(kv_len), attended_len)
        comm = components.get("interconnect", 0.0) + \
            components.get("pipeline", 0.0)
        duration = max(0.0, t_end - t_start)
        comm = min(comm, duration)
        gap = t_start - self._last_end
        if gap > 1e-12:
            self.idle_s += gap
        self.busy_s += duration - comm
        self.comm_s += comm
        self._last_end = max(self._last_end, t_end)
        self._segments.append((t_start, t_end, shape.phase, comm))
        self.iterations += 1

        for name, (bytes_, secs) in self._iteration_links(shape).items():
            self._link_bytes[name] += bytes_
            self._link_seconds[name] += secs
            if bytes_ > 0.0:
                win = int(t_start / self.window_s)
                per = self._link_window_bytes[name]
                per[win] = per.get(win, 0.0) + bytes_

        costs = self._cost_memo.get(shape)
        if costs is None:
            costs = step_cost_totals(self.model, self.quant, shape,
                                     fused=self.fused_moe,
                                     mla_native=self.mla_native)
            self._cost_memo[shape] = costs
        sf, df, sb, db = costs
        self.sparse_flops += sf
        self.dense_flops += df
        self.sparse_bytes += sb
        self.dense_bytes += db

        self._close_windows_until(t_end)

    def on_pcie_bytes(self, num_bytes: float, t: float) -> None:
        """Account host↔device offload traffic on the PCIe link (the
        engine itself never offloads; offload-aware harnesses call this)."""
        if num_bytes < 0:
            raise ValueError("num_bytes must be non-negative")
        if "pcie_offload" not in self.links:
            self.links["pcie_offload"] = LinkSpec(
                "pcie_offload", PCIE_GEN5_X16.name,
                PCIE_GEN5_X16.link_bandwidth_gbps * 1e9)
            self._link_bytes["pcie_offload"] = 0.0
            self._link_seconds["pcie_offload"] = 0.0
            self._link_window_bytes["pcie_offload"] = {}
        self._link_bytes["pcie_offload"] += num_bytes
        self._link_seconds["pcie_offload"] += \
            num_bytes / self.links["pcie_offload"].capacity_bytes_per_s
        if num_bytes > 0:
            win = int(t / self.window_s)
            per = self._link_window_bytes["pcie_offload"]
            per[win] = per.get(win, 0.0) + num_bytes

    def on_run_end(self, makespan: float,
                   metrics: "MetricsRegistry | None" = None) -> None:
        """Close the trailing (possibly partial) window and publish
        end-of-run gauges into ``metrics``."""
        if self._finalized:
            return
        self.makespan = max(makespan, self._last_end)
        if self.makespan > 0:
            # close every window the run touched, including the partial tail
            last = int(self.makespan / self.window_s)
            if last * self.window_s < self.makespan - 1e-12:
                last += 1
            while self._next_window < last:
                self._close_one_window(
                    min((self._next_window + 1) * self.window_s,
                        self.makespan))
            tail_idle = self.makespan - (self.busy_s + self.comm_s + self.idle_s)
            if tail_idle > 1e-12:
                self.idle_s += tail_idle
        self._finalized = True
        if metrics is not None:
            self._publish(metrics)

    # ------------------------------------------------------------------ #
    # link accounting
    # ------------------------------------------------------------------ #

    def _iteration_links(self, shape: StepShape) -> dict[str, tuple[float, float]]:
        """Fabric-crossing ``(bytes, seconds)`` per link for one iteration,
        mirroring the phase model's collective formulas (healthy fabric)."""
        m = shape.num_tokens
        memo = self._link_memo.get(m)
        if memo is not None:
            return memo
        model, plan, hw, quant = self.model, self.plan, self.hardware, self.quant
        h = model.hidden_size
        ab = quant.activation_bytes
        out: dict[str, tuple[float, float]] = {}
        if plan.tp > 1:
            payload = m * h * ab
            n_ar = model.num_layers + model.num_dense_layers
            if plan.expert_shard_tp > 1 or plan.ep == 1:
                n_ar += model.num_moe_layers
            out["tp_allreduce"] = (
                n_ar * 2.0 * (plan.tp - 1) / plan.tp * payload,
                n_ar * allreduce_time(payload, plan.tp, hw),
            )
        if plan.ep > 1:
            bytes_ = secs = 0.0
            if model.moe is not None and model.num_moe_layers > 0:
                payload = m * model.moe.top_k * h * ab
                bytes_ = 2.0 * model.num_moe_layers * \
                    (plan.ep - 1) / plan.ep * payload
                secs = 2.0 * model.num_moe_layers * \
                    all_to_all_time(payload, plan.ep, hw)
            out["ep_alltoall"] = (bytes_, secs)
        if plan.pp > 1:
            payload = m * h * ab
            out["pp_p2p"] = (
                (plan.pp - 1) * payload,
                (plan.pp - 1) * p2p_time(payload, hw),
            )
        self._link_memo[m] = out
        return out

    def link_utilization(self, name: str) -> float:
        """Run-level bytes-based utilization of one link: achieved bytes/s
        over the elapsed run divided by the link's capacity."""
        spec = self.links[name]
        elapsed = self.makespan if self.makespan > 0 else self._last_end
        if elapsed <= 0:
            return 0.0
        return self._link_bytes[name] / elapsed / spec.capacity_bytes_per_s

    def link_window_utilization(self, name: str) -> list[float]:
        """Per-closed-window utilization timeseries of one link."""
        return [w.get(name, 0.0) for w in self.link_windows]

    # ------------------------------------------------------------------ #
    # windows
    # ------------------------------------------------------------------ #

    def _close_windows_until(self, t: float) -> None:
        while (self._next_window + 1) * self.window_s <= t + 1e-12:
            self._close_one_window((self._next_window + 1) * self.window_s)

    def _close_one_window(self, t_end: float) -> None:
        idx = self._next_window
        t_start = idx * self.window_s
        duration = max(t_end - t_start, 1e-12)

        util: dict[str, float] = {}
        for name, spec in self.links.items():
            bytes_ = self._link_window_bytes[name].pop(idx, 0.0)
            util[name] = bytes_ / duration / spec.capacity_bytes_per_s
        self.link_windows.append(util)

        tokens = 0
        gini = imbalance = 0.0
        device_load: tuple[float, ...] = ()
        if self.routing is not None:
            totals = self.routing.telemetry.heatmap().sum(axis=0)
            if self._heat_last_totals is None:
                delta = totals
            else:
                delta = totals - self._heat_last_totals
            self._heat_last_totals = totals
            tokens = int(delta.sum())
            if tokens > 0:
                bm = balance_metrics(delta)
                gini, imbalance = bm.gini, bm.imbalance
            device_load = self._device_load(delta)
        self.windows.append(HeatWindow(
            index=idx, t_start=t_start, t_end=t_end, tokens=tokens,
            gini=gini, imbalance=imbalance, device_load=device_load,
        ))
        self._next_window += 1

    def _device_load(self, counts: np.ndarray) -> tuple[float, ...]:
        placement = self.placement
        if placement is None:
            return (float(counts.sum()),)
        load = np.zeros(placement.num_devices)
        if isinstance(placement, ReplicatedExpertPlacement):
            for e, devices in enumerate(placement.devices_of_expert):
                share = float(counts[e]) / len(devices)
                for d in devices:
                    load[d] += share
        else:
            for e, d in enumerate(placement.device_of_expert):
                load[d] += float(counts[e])
        return tuple(float(x) for x in load)

    # ------------------------------------------------------------------ #
    # utilization gauges
    # ------------------------------------------------------------------ #

    def utilization_summary(self) -> dict[str, float]:
        """Run-level MoE-CAP gauges (dense alongside the sparse corrections)."""
        elapsed = self.makespan if self.makespan > 0 else self._last_end
        n = self.num_devices
        peak_flops = self.hardware.peak_flops_per_s(
            self.quant.compute_dtype_name) * n
        peak_bw = self.hardware.mem_bandwidth_gbps * 1e9 * n
        if elapsed <= 0:
            return {"sparse_mfu": 0.0, "dense_mfu": 0.0,
                    "sparse_mbu": 0.0, "dense_mbu": 0.0}
        return {
            "sparse_mfu": self.sparse_flops / (elapsed * peak_flops),
            "dense_mfu": self.dense_flops / (elapsed * peak_flops),
            "sparse_mbu": self.sparse_bytes / (elapsed * peak_bw),
            "dense_mbu": self.dense_bytes / (elapsed * peak_bw),
        }

    def _publish(self, metrics: "MetricsRegistry") -> None:
        for d in range(self.num_devices):
            labels = {"device": str(d)}
            metrics.gauge(
                "device_busy_seconds_total",
                "simulated compute-busy seconds per device", labels=labels,
            ).set(self.busy_s)
            metrics.gauge(
                "device_comm_blocked_seconds_total",
                "simulated comm-blocked seconds per device", labels=labels,
            ).set(self.comm_s)
            metrics.gauge(
                "device_idle_seconds_total",
                "simulated idle seconds per device", labels=labels,
            ).set(self.idle_s)
        for name in self.links:
            labels = {"link": name}
            metrics.counter(
                "link_bytes_total", "fabric-crossing bytes per link",
                labels=labels,
            ).inc(self._link_bytes[name])
            metrics.counter(
                "link_busy_seconds_total",
                "modelled collective seconds per link", labels=labels,
            ).inc(self._link_seconds[name])
            metrics.gauge(
                "link_utilization",
                "achieved bytes/s over link capacity", labels=labels,
            ).set(self.link_utilization(name))
        util = self.utilization_summary()
        metrics.gauge(
            "cluster_sparse_mfu_ratio",
            "MoE-CAP Sparse-MFU: activated-expert flops over peak",
        ).set(util["sparse_mfu"])
        metrics.gauge(
            "cluster_dense_mfu_ratio",
            "dense MFU counterfactual (overstates sparse utilization)",
        ).set(util["dense_mfu"])
        metrics.gauge(
            "cluster_sparse_mbu_ratio",
            "MoE-CAP Sparse-MBU: coverage-scaled bytes over peak bandwidth",
        ).set(util["sparse_mbu"])
        metrics.gauge(
            "cluster_dense_mbu_ratio",
            "dense MBU counterfactual (overstates sparse utilization)",
        ).set(util["dense_mbu"])
        if self.windows:
            metrics.gauge(
                "expert_heat_windows_count", "closed expert-heat windows",
            ).set(len(self.windows))
            metrics.gauge(
                "expert_heat_peak_imbalance_ratio",
                "max per-window expert-load max/mean",
            ).set(max(w.imbalance for w in self.windows))
            non_empty = [w for w in self.windows if not w.is_empty]
            if non_empty:
                metrics.gauge(
                    "expert_heat_gini_ratio",
                    "expert-load Gini of the last non-empty window",
                ).set(non_empty[-1].gini)

    # ------------------------------------------------------------------ #
    # views
    # ------------------------------------------------------------------ #

    def occupancy_summary(self) -> dict[str, float]:
        return {"busy_s": self.busy_s, "comm_blocked_s": self.comm_s,
                "idle_s": self.idle_s, "iterations": float(self.iterations)}

    def summary(self) -> dict[str, Any]:
        """JSON-able digest for flight-recorder bundles and run reports."""
        out: dict[str, Any] = {
            "devices": self.num_devices,
            "plan": self.plan.label,
            "hardware": self.hardware.name,
            "window_s": self.window_s,
            "occupancy": self.occupancy_summary(),
            "links": {
                name: {
                    "fabric": spec.fabric,
                    "capacity_gbps": spec.capacity_bytes_per_s / 1e9,
                    "bytes_total": self._link_bytes[name],
                    "busy_seconds": self._link_seconds[name],
                    "utilization": self.link_utilization(name),
                }
                for name, spec in self.links.items()
            },
            "utilization": self.utilization_summary(),
            "expert_heat": {
                "windows": len(self.windows),
                "non_empty_windows": sum(
                    1 for w in self.windows if not w.is_empty),
                "peak_imbalance": max(
                    (w.imbalance for w in self.windows), default=0.0),
                "last_gini": next(
                    (w.gini for w in reversed(self.windows)
                     if not w.is_empty), 0.0),
            },
        }
        return out

    def comm_waterfall(self) -> ResultTable:
        """Per-window per-link utilization as a report table."""
        table = ResultTable(
            "comm waterfall",
            ("window", "t_start_s", "link", "utilization"),
        )
        for idx, util in enumerate(self.link_windows):
            for name in self.links:
                table.add(window=idx, t_start_s=idx * self.window_s,
                          link=name, utilization=util.get(name, 0.0))
        return table

    def heat_table(self) -> ResultTable:
        """Expert-heat window timeseries as a report table."""
        table = ResultTable(
            "expert heat windows",
            ("window", "t_start_s", "tokens", "gini", "imbalance"),
        )
        for w in self.windows:
            table.add(window=w.index, t_start_s=w.t_start, tokens=w.tokens,
                      gini=w.gini, imbalance=w.imbalance)
        return table

    # ------------------------------------------------------------------ #
    # Chrome trace lanes
    # ------------------------------------------------------------------ #

    def chrome_events(self) -> list[dict[str, Any]]:
        """Per-device occupancy lanes + per-link utilization counters.

        Device lanes get tids ``DEVICE_TID_BASE + device``; each iteration
        renders as a phase span with a nested ``comm.blocked`` tail when
        collectives stalled the step.  Link counters land on
        ``LINK_TID_BASE + i`` tracks as per-window utilization series.
        """
        us = 1e6
        events: list[dict[str, Any]] = []
        for d in range(self.num_devices):
            events.append({
                "name": "thread_name", "ph": "M", "pid": TRACE_PID,
                "tid": DEVICE_TID_BASE + d,
                "args": {"name": f"device {d} ({self.hardware.name})"},
            })
        for t0, t1, phase, comm in self._segments:
            for d in range(self.num_devices):
                tid = DEVICE_TID_BASE + d
                events.append({
                    "name": f"device.{phase}", "cat": "device", "ph": "B",
                    "pid": TRACE_PID, "tid": tid, "ts": t0 * us,
                    "args": {"device": d},
                })
                if comm > 1e-12:
                    events.append({
                        "name": "comm.blocked", "cat": "device", "ph": "B",
                        "pid": TRACE_PID, "tid": tid, "ts": (t1 - comm) * us,
                        "args": {"device": d},
                    })
                    events.append({
                        "name": "comm.blocked", "cat": "device", "ph": "E",
                        "pid": TRACE_PID, "tid": tid, "ts": t1 * us,
                    })
                events.append({
                    "name": f"device.{phase}", "cat": "device", "ph": "E",
                    "pid": TRACE_PID, "tid": tid, "ts": t1 * us,
                })
        for i, name in enumerate(self.links):
            tid = LINK_TID_BASE + i
            events.append({
                "name": "thread_name", "ph": "M", "pid": TRACE_PID,
                "tid": tid, "args": {"name": f"link {name}"},
            })
            for idx, util in enumerate(self.link_windows):
                events.append({
                    "name": f"link/{name}", "ph": "C", "pid": TRACE_PID,
                    "tid": tid, "ts": idx * self.window_s * us,
                    "args": {"utilization": util.get(name, 0.0),
                             "link": name},
                })
        return events
