"""Cost-attribution profiler over the span tracer's B/E stream.

Folds the Chrome-trace begin/end events recorded by :class:`SpanTracer`
into per-phase × per-component inclusive/exclusive time tables, exports
folded-stack text loadable by standard flamegraph tooling
(``flamegraph.pl``, speedscope, inferno), and answers "where would a 10%
speedup matter most" by reusing the roofline model's memory/compute bound
classification for each component.

The component-level data comes from the ``components`` track the serving
engine emits: every iteration tiles its simulated duration into
attention / router / expert FFN / dense FFN / embedding / lm_head /
interconnect / pipeline / overhead spans, so folded totals sum to the
run's simulated busy time.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable, TYPE_CHECKING

from repro.core.results import ResultTable
from repro.hardware.roofline import KernelCost, is_memory_bound

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.obs.instrument import Instrumentation
    from repro.obs.trace import SpanTracer
    from repro.perfmodel.inference import InferencePerfModel
    from repro.serving.engine import ServingResult

__all__ = [
    "SpanAggregate",
    "CostProfile",
    "component_bound",
    "ProfileReport",
    "profile_serving_run",
]

COMPONENTS_TRACK = "components"

_US_TO_S = 1e-6


@dataclass
class SpanAggregate:
    """Accumulated time of one unique stack path."""

    inclusive_s: float = 0.0
    exclusive_s: float = 0.0
    count: int = 0


class CostProfile:
    """Folded view of a trace: ``{(track, name, ...): SpanAggregate}``."""

    def __init__(self) -> None:
        self.paths: dict[tuple[str, ...], SpanAggregate] = {}

    # ------------------------------------------------------------------ #
    # construction
    # ------------------------------------------------------------------ #

    @classmethod
    def from_tracer(cls, tracer: "SpanTracer") -> "CostProfile":
        return cls.from_events(tracer.events)

    @classmethod
    def from_events(cls, events: Iterable[dict[str, Any]]) -> "CostProfile":
        """Fold a Chrome Trace Event stream (``ph`` B/E/M events)."""
        profile = cls()
        tracks: dict[int, str] = {}
        # per-tid stack of [name, begin_ts_us, child_time_us]
        stacks: dict[int, list[list[Any]]] = {}
        for ev in events:
            ph = ev.get("ph")
            tid = ev.get("tid", 0)
            if ph == "M":
                if ev.get("name") == "thread_name":
                    tracks[tid] = ev.get("args", {}).get("name", str(tid))
            elif ph == "B":
                stacks.setdefault(tid, []).append([ev["name"], ev["ts"], 0.0])
            elif ph == "E":
                stack = stacks.get(tid)
                if not stack:
                    continue  # unbalanced stream: ignore the stray end
                name, ts0, child_us = stack.pop()
                dt_us = ev["ts"] - ts0
                track = tracks.get(tid, str(tid))
                path = (track, *[frame[0] for frame in stack], name)
                agg = profile.paths.setdefault(path, SpanAggregate())
                agg.inclusive_s += dt_us * _US_TO_S
                agg.exclusive_s += max(0.0, dt_us - child_us) * _US_TO_S
                agg.count += 1
                if stack:
                    stack[-1][2] += dt_us
        return profile

    # ------------------------------------------------------------------ #
    # views
    # ------------------------------------------------------------------ #

    def tracks(self) -> list[str]:
        return sorted({path[0] for path in self.paths})

    def total_s(self, track: str = COMPONENTS_TRACK) -> float:
        """Inclusive time of the track's root spans."""
        return sum(agg.inclusive_s for path, agg in self.paths.items()
                   if path[0] == track and len(path) == 2)

    def component_totals(
        self, track: str = COMPONENTS_TRACK
    ) -> dict[tuple[str, str], SpanAggregate]:
        """``{(phase, component): aggregate}`` for depth-2 spans on a track
        — the per-phase × per-component attribution."""
        return {
            (path[1], path[2]): agg
            for path, agg in self.paths.items()
            if path[0] == track and len(path) == 3
        }

    def table(self, track: str = COMPONENTS_TRACK) -> ResultTable:
        """Per-phase × per-component inclusive/exclusive table.

        ``(all)`` rows carry each phase's own totals; ``share`` is the
        component's exclusive time relative to the track's busy time.
        """
        table = ResultTable(
            "cost attribution",
            ("phase", "component", "inclusive_s", "exclusive_s", "count",
             "share"),
        )
        busy = self.total_s(track)
        phases = sorted({p[1] for p in self.paths
                         if p[0] == track and len(p) >= 2})
        per_component = self.component_totals(track)
        for phase in phases:
            root = self.paths.get((track, phase))
            if root is not None:
                table.add(phase=phase, component="(all)",
                          inclusive_s=root.inclusive_s,
                          exclusive_s=root.exclusive_s, count=root.count,
                          share=root.inclusive_s / busy if busy else 0.0)
            comps = sorted(
                ((c, agg) for (ph, c), agg in per_component.items()
                 if ph == phase),
                key=lambda kv: -kv[1].exclusive_s,
            )
            for component, agg in comps:
                table.add(phase=phase, component=component,
                          inclusive_s=agg.inclusive_s,
                          exclusive_s=agg.exclusive_s, count=agg.count,
                          share=agg.exclusive_s / busy if busy else 0.0)
        return table

    def folded(self, tracks: Iterable[str] | None = None) -> str:
        """Folded-stack text: ``track;frame;frame value_us`` per line.

        Values are *exclusive* microseconds (fractional), the convention
        flamegraph tooling sums back into inclusive widths.
        """
        wanted = None if tracks is None else set(tracks)
        lines = []
        for path in sorted(self.paths):
            if wanted is not None and path[0] not in wanted:
                continue
            agg = self.paths[path]
            if agg.exclusive_s <= 0 and len(path) > 2:
                continue
            lines.append(f"{';'.join(path)} {agg.exclusive_s * 1e6:.3f}")
        return "\n".join(lines) + "\n"


# --------------------------------------------------------------------------- #
# roofline bound classification
# --------------------------------------------------------------------------- #


def _component_kernel_cost(pm: "InferencePerfModel", component: str,
                           num_tokens: float, batch: float,
                           kv_len: float, phase: str) -> KernelCost | None:
    """Aggregated roofline cost of one profiler component at a shape.

    Returns None for latency-style components (interconnect, pipeline,
    overhead) that are not roofline-classifiable.
    """
    from repro.perfmodel import flops as F

    model, quant = pm.setup.model, pm.setup.quant
    m = float(num_tokens)
    attended = (kv_len + 1) / 2.0 if phase == "prefill" else None
    costs: list[Any] = []
    if component == "attention":
        costs = [F.qkvo_cost(model, m, quant),
                 F.attention_core_cost(model, m, batch, kv_len, quant,
                                       attended)]
    elif component == "router" and model.moe is not None:
        costs = [F.router_cost(model, m, quant)]
    elif component == "expert_ffn" and model.moe is not None:
        costs = [F.routed_experts_cost(model, m, quant,
                                       fused=pm.setup.fused_moe),
                 F.shared_expert_cost(model, m, quant)]
    elif component == "dense_ffn":
        costs = [F.dense_ffn_cost(model, m, quant)]
    elif component == "embedding":
        costs = [F.embedding_cost(model, m, quant)]
    elif component == "lm_head":
        costs = [F.lm_head_cost(model, batch, quant)]
    if not costs:
        return None
    total_flops = sum(c.flops for c in costs)
    total_bytes = sum(c.weight_bytes + c.act_bytes for c in costs)
    if total_flops <= 0 and total_bytes <= 0:
        return None
    return KernelCost(flops=total_flops, bytes=total_bytes,
                      dtype=quant.compute_dtype_name)


def component_bound(pm: "InferencePerfModel", component: str,
                    num_tokens: float, batch: float, kv_len: float,
                    phase: str) -> str:
    """``"memory"`` / ``"compute"`` / ``"latency"`` — which roofline term
    dominates this component at the given step shape."""
    cost = _component_kernel_cost(pm, component, num_tokens, batch, kv_len,
                                  phase)
    if cost is None:
        return "latency"
    return "memory" if is_memory_bound(cost, pm.setup.hardware) else "compute"


# --------------------------------------------------------------------------- #
# one-call profiling harness
# --------------------------------------------------------------------------- #


@dataclass
class ProfileReport:
    """Everything ``repro profile`` produces for one serving run."""

    model_name: str
    result: "ServingResult"
    obs: "Instrumentation"
    profile: CostProfile
    advice: ResultTable
    shapes: dict[str, tuple[float, float, float]] = field(default_factory=dict)
    speedup: float = 0.10
    """The hypothetical per-component speedup the advice table prices."""

    def folded(self) -> str:
        return self.profile.folded()

    def table(self) -> ResultTable:
        return self.profile.table()


def _build_advice(profile: CostProfile, pm: "InferencePerfModel",
                  shapes: dict[str, tuple[float, float, float]],
                  speedup: float = 0.10) -> ResultTable:
    """Rank components by the makespan saved if each ran ``speedup``
    faster; the roofline bound says *how* to get that speedup."""
    busy = profile.total_s()
    table = ResultTable(
        "speedup advice",
        ("phase", "component", "exclusive_s", "share", "bound",
         "saving_s"),
    )
    rows = []
    for (phase, component), agg in profile.component_totals().items():
        shape = shapes.get(phase)
        bound = (component_bound(pm, component, *shape, phase)
                 if shape else "latency")
        rows.append({
            "phase": phase,
            "component": component,
            "exclusive_s": agg.exclusive_s,
            "share": agg.exclusive_s / busy if busy else 0.0,
            "bound": bound,
            "saving_s": agg.exclusive_s * speedup,
        })
    for row in sorted(rows, key=lambda r: -r["saving_s"]):
        table.add(**row)
    return table


def profile_serving_run(
    model_name: str | None = None,
    num_requests: int = 8,
    input_tokens: int = 256,
    output_tokens: int = 64,
    arrival_interval: float = 0.0,
    speedup: float = 0.10,
) -> ProfileReport:
    """Serve the reference workload fully instrumented and attribute cost.

    Mirrors :func:`repro.obs.harness.reference_serving_run` but keeps the
    perf model so the advice table can classify each component's roofline
    bound at the run's representative step shapes.
    """
    from repro.hardware.gpus import H100_SXM
    from repro.models.zoo import get_model
    from repro.obs.harness import REFERENCE_MODEL
    from repro.obs.instrument import Instrumentation
    from repro.perfmodel.inference import InferencePerfModel
    from repro.serving.engine import ServingEngine
    from repro.workloads.generator import FixedShapeWorkload

    model_name = model_name or REFERENCE_MODEL
    model = get_model(model_name)
    obs = Instrumentation.on()
    pm = InferencePerfModel(model, H100_SXM, instrumentation=obs)
    engine = ServingEngine(pm, instrumentation=obs)
    workload = FixedShapeWorkload(
        batch_size=num_requests,
        input_tokens=input_tokens,
        output_tokens=output_tokens,
    )
    for i, request in enumerate(workload.requests()):
        request.arrival_time = i * arrival_interval
        engine.submit(request)
    result = engine.run()

    profile = CostProfile.from_tracer(obs.tracer)
    shapes = {
        "prefill": (float(num_requests * input_tokens), float(num_requests),
                    float(input_tokens)),
        "decode": (float(num_requests), float(num_requests),
                   float(input_tokens + max(1, output_tokens // 2))),
    }
    advice = _build_advice(profile, pm, shapes, speedup=speedup)
    return ProfileReport(model_name=model_name, result=result, obs=obs,
                         profile=profile, advice=advice, shapes=shapes,
                         speedup=speedup)
