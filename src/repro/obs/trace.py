"""Span tracer on the simulated clock with Chrome Trace Event export.

Spans are recorded against named *tracks* (one Chrome trace thread per
track).  The serving engine emits spans at simulated timestamps — one span
per engine iteration with nested scheduler / perf-model / phase / KV-cache
children — while components without a simulated clock (the analytical perf
model evaluated outside an engine run) use :meth:`SpanTracer.wall_span`,
which stamps wall-clock time relative to tracer creation on its own track.

The exported JSON is the Chrome Trace Event format (`ph` B/E/i/C events),
loadable in Perfetto or ``chrome://tracing``.  A disabled tracer
(``enabled=False``) turns every method into an early-returning no-op so
instrumented call sites cost one attribute check when tracing is off.
"""

from __future__ import annotations

import json
import pathlib
import re
import time
from contextlib import contextmanager
from typing import Any, Iterator

__all__ = ["SpanTracer", "TRACE_PID", "filter_trace_events"]

TRACE_PID = 1
"""Single simulated process id used for every track."""

_SECONDS_TO_US = 1e6


class SpanTracer:
    """Nested-span recorder with Chrome Trace Event JSON export.

    Timestamps are caller-supplied floats in *seconds* (simulated time for
    the engine tracks); export converts to the microseconds Chrome expects.
    Nesting is expressed with explicit begin/end pairs per track, so
    zero-duration children (a scheduler pass inside an iteration) still
    render nested in Perfetto.
    """

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled
        self._events: list[dict[str, Any]] = []
        self._stacks: dict[str, list[tuple[str, str, float]]] = {}
        self._tids: dict[str, int] = {}
        self._totals: dict[tuple[str, str], list[float]] = {}
        self._wall0 = time.perf_counter()

    # ------------------------------------------------------------------ #
    # recording
    # ------------------------------------------------------------------ #

    def _tid(self, track: str) -> int:
        tid = self._tids.get(track)
        if tid is None:
            tid = len(self._tids) + 1
            self._tids[track] = tid
            self._events.append({
                "name": "thread_name", "ph": "M", "pid": TRACE_PID,
                "tid": tid, "args": {"name": track},
            })
        return tid

    def begin(self, name: str, ts: float, track: str = "engine",
              cat: str = "engine", **args: Any) -> None:
        """Open a span at time ``ts`` (seconds) on ``track``."""
        if not self.enabled:
            return
        event: dict[str, Any] = {
            "name": name, "cat": cat, "ph": "B", "pid": TRACE_PID,
            "tid": self._tid(track), "ts": ts * _SECONDS_TO_US,
        }
        if args:
            event["args"] = args
        self._events.append(event)
        self._stacks.setdefault(track, []).append((name, cat, ts))

    def end(self, ts: float, track: str = "engine", **args: Any) -> None:
        """Close the innermost open span on ``track`` at time ``ts``."""
        if not self.enabled:
            return
        stack = self._stacks.get(track)
        if not stack:
            raise ValueError(f"end() with no open span on track {track!r}")
        name, cat, ts0 = stack.pop()
        if ts < ts0 - 1e-12:
            raise ValueError(
                f"span {name!r} on {track!r} ends at {ts} before it began at {ts0}"
            )
        event: dict[str, Any] = {
            "name": name, "cat": cat, "ph": "E", "pid": TRACE_PID,
            "tid": self._tid(track), "ts": ts * _SECONDS_TO_US,
        }
        if args:
            event["args"] = args
        self._events.append(event)
        bucket = self._totals.setdefault((track, name), [0.0, 0])
        bucket[0] += ts - ts0
        bucket[1] += 1

    def instant(self, name: str, ts: float, track: str = "engine",
                cat: str = "engine", **args: Any) -> None:
        """Record a point event (arrival, preemption, finish, ...)."""
        if not self.enabled:
            return
        event: dict[str, Any] = {
            "name": name, "cat": cat, "ph": "i", "s": "t", "pid": TRACE_PID,
            "tid": self._tid(track), "ts": ts * _SECONDS_TO_US,
        }
        if args:
            event["args"] = args
        self._events.append(event)

    def counter(self, name: str, ts: float, values: dict[str, float],
                track: str = "engine") -> None:
        """Record a Chrome counter sample (rendered as a time series)."""
        if not self.enabled:
            return
        self._events.append({
            "name": name, "ph": "C", "pid": TRACE_PID,
            "tid": self._tid(track), "ts": ts * _SECONDS_TO_US,
            "args": dict(values),
        })

    @contextmanager
    def wall_span(self, name: str, track: str = "wall",
                  cat: str = "wall", **args: Any) -> Iterator[None]:
        """Span stamped with wall-clock time since tracer creation.

        For components with no simulated clock (direct perf-model
        evaluations); keeps their activity on a separate track so it never
        interleaves with simulated-time spans.
        """
        if not self.enabled:
            yield
            return
        self.begin(name, time.perf_counter() - self._wall0, track, cat, **args)
        try:
            yield
        finally:
            self.end(time.perf_counter() - self._wall0, track)

    # ------------------------------------------------------------------ #
    # introspection / export
    # ------------------------------------------------------------------ #

    @property
    def num_events(self) -> int:
        return len(self._events)

    @property
    def events(self) -> list[dict[str, Any]]:
        """The raw Chrome Trace events recorded so far (shallow copy)."""
        return list(self._events)

    def tail(self, n: int) -> list[dict[str, Any]]:
        """The most recent ``n`` trace events (the flight-recorder view)."""
        if n <= 0:
            return []
        return list(self._events[-n:])

    def open_spans(self, track: str = "engine") -> list[str]:
        """Names of currently unclosed spans on ``track`` (outermost first)."""
        return [name for name, _, _ in self._stacks.get(track, [])]

    def span_totals(self, track: str = "engine") -> dict[str, tuple[float, int]]:
        """``{span name: (total seconds, count)}`` of closed spans on a track."""
        return {
            name: (total, count)
            for (trk, name), (total, count) in self._totals.items()
            if trk == track
        }

    def to_chrome_trace(self) -> dict[str, Any]:
        """The Chrome Trace Event JSON object (``traceEvents`` wrapper)."""
        return {
            "traceEvents": list(self._events),
            "displayTimeUnit": "ms",
            "otherData": {"producer": "repro.obs.trace"},
        }

    def write(self, path: str | pathlib.Path) -> pathlib.Path:
        """Write the trace as Chrome Trace Event JSON; returns the path."""
        out = pathlib.Path(path)
        out.parent.mkdir(parents=True, exist_ok=True)
        out.write_text(json.dumps(self.to_chrome_trace()))
        return out


def filter_trace_events(events: list[dict[str, Any]],
                        request_id: int | None = None,
                        match: str | None = None,
                        device: int | None = None,
                        link: str | None = None) -> list[dict[str, Any]]:
    """Filter Chrome Trace events by request id, span-name regex, device
    id and/or link name.

    B/E span pairs are kept or dropped *as pairs* (matched by per-track
    nesting order), so the filtered trace still loads in Perfetto with
    balanced stacks.  ``request_id`` keeps events whose ``args`` carry
    that ``request_id`` (arrival/preempt/finish instants, per-request
    tracks from :mod:`repro.obs.reqtrace`); ``match`` keeps events whose
    name matches the regex; ``device`` keeps events whose ``args`` carry
    that ``device`` id (the :mod:`repro.obs.cluster` occupancy lanes);
    ``link`` keeps events whose ``args`` carry that ``link`` name (the
    per-link utilization counters).  Thread-name metadata survives only
    for tracks that still have events.
    """
    pattern = re.compile(match) if match is not None else None

    def _wanted(name: str, args: dict[str, Any]) -> bool:
        if pattern is not None and not pattern.search(name):
            return False
        if request_id is not None and args.get("request_id") != request_id:
            return False
        if device is not None and args.get("device") != device:
            return False
        if link is not None and args.get("link") != link:
            return False
        return True

    # pair up B/E events per track so a span is judged on its B event
    keep = [False] * len(events)
    stacks: dict[int, list[int]] = {}
    metas: dict[int, int] = {}
    for i, event in enumerate(events):
        ph = event.get("ph")
        tid = event.get("tid", 0)
        if ph == "M":
            metas.setdefault(tid, i)
            continue
        if ph == "B":
            stacks.setdefault(tid, []).append(i)
            keep[i] = _wanted(event.get("name", ""),
                              event.get("args", {}) or {})
        elif ph == "E":
            stack = stacks.get(tid)
            begin = stack.pop() if stack else None
            keep[i] = keep[begin] if begin is not None else False
        else:  # instants, counters
            keep[i] = _wanted(event.get("name", ""),
                              event.get("args", {}) or {})
    out: list[dict[str, Any]] = []
    live_tids = {e.get("tid", 0) for i, e in enumerate(events) if keep[i]}
    for tid in sorted(live_tids):
        if tid in metas:
            out.append(events[metas[tid]])
    out.extend(e for i, e in enumerate(events) if keep[i])
    return out
