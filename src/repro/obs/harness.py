"""Reference serving runs for tracing, metrics and overhead benchmarks.

One canonical workload — a fixed-shape request burst on a single-GPU
OLMoE deployment — shared by the ``trace``/``metrics`` CLI subcommands,
the observability tests and the tracer-overhead benchmark, so all three
measure the same thing.
"""

from __future__ import annotations

import numpy as np

from repro.hardware.gpus import H100_SXM
from repro.models.zoo import get_model
from repro.obs.cluster import ClusterTelemetry
from repro.obs.instrument import Instrumentation
from repro.parallel.plan import SINGLE_DEVICE, ParallelPlan
from repro.perfmodel.inference import InferencePerfModel
from repro.serving.engine import ServingEngine, ServingResult
from repro.serving.scheduler import SchedulerConfig
from repro.workloads.generator import FixedShapeWorkload, LengthDistribution
from repro.workloads.traces import poisson_arrivals

__all__ = [
    "REFERENCE_MODEL",
    "REFERENCE_PLAN",
    "reference_serving_run",
    "traced_serving_run",
    "poisson_serving_run",
    "clustered_serving_run",
]

REFERENCE_MODEL = "OLMoE-1B-7B"
"""Default workload model: a MoE model that fits one simulated H100."""

REFERENCE_PLAN = ParallelPlan(tp=4, ep=4)
"""Default multi-device deployment for cluster telemetry: TP4+EP4 puts
traffic on both the all-reduce and the all-to-all link (OLMoE's 16 heads
and 64 experts both divide by 4)."""


def reference_serving_run(
    model_name: str = REFERENCE_MODEL,
    num_requests: int = 8,
    input_tokens: int = 256,
    output_tokens: int = 64,
    arrival_interval: float = 0.0,
    instrumentation: Instrumentation | None = None,
    scheduler_config: SchedulerConfig | None = None,
) -> ServingResult:
    """Serve a fixed-shape burst through the engine, optionally observed.

    ``arrival_interval`` staggers request arrivals (0 = simultaneous burst)
    so traces show admission queueing.
    """
    model = get_model(model_name)
    perf = InferencePerfModel(model, H100_SXM, instrumentation=instrumentation)
    engine = ServingEngine(
        perf,
        scheduler_config=scheduler_config,
        instrumentation=instrumentation,
    )
    workload = FixedShapeWorkload(
        batch_size=num_requests,
        input_tokens=input_tokens,
        output_tokens=output_tokens,
    )
    for i, request in enumerate(workload.requests()):
        request.arrival_time = i * arrival_interval
        engine.submit(request)
    return engine.run()


def poisson_serving_run(
    arrival_rate_rps: float = 8.0,
    num_requests: int = 120,
    model_name: str = "OLMoE-1B-7B",
    seed: int = 11,
    instrumentation: Instrumentation | None = None,
) -> ServingResult:
    """The ``ext_serving_load`` workload, optionally observed.

    Identical deployment, length distribution and seeding to the
    ``ext_serving_load`` experiment at one arrival rate, so a request id
    here names the same simulated request as in that experiment's sweep —
    the workload behind the "follow one request" timeline walkthrough.
    """
    rng = np.random.default_rng(seed)
    model = get_model(model_name)
    perf = InferencePerfModel(model, H100_SXM,
                              instrumentation=instrumentation)
    engine = ServingEngine(
        perf, scheduler_config=SchedulerConfig(max_num_seqs=128),
        kv_pool_tokens=262_144, instrumentation=instrumentation,
    )
    arrivals = poisson_arrivals(arrival_rate_rps, num_requests, rng)
    dist = LengthDistribution(mean_input=512, mean_output=128, sigma=0.4)
    for req in dist.requests(num_requests, rng, arrival_times=arrivals):
        engine.submit(req)
    return engine.run()


def clustered_serving_run(
    model_name: str = REFERENCE_MODEL,
    plan: ParallelPlan | None = None,
    arrival_rate_rps: float = 8.0,
    num_requests: int = 48,
    seed: int = 11,
    window_s: float = 0.05,
    alerts: "object | None" = None,
) -> tuple[ServingResult, Instrumentation]:
    """A Poisson workload on a multi-device deployment with cluster
    telemetry armed — the workload behind ``repro report`` and the
    device/link lanes of ``repro trace``.

    Same arrival/length seeding scheme as :func:`poisson_serving_run`, on
    a :data:`REFERENCE_PLAN` deployment by default so the EP all-to-all
    and TP all-reduce links both carry traffic.  ``plan`` may be any
    :class:`~repro.parallel.plan.ParallelPlan` valid for the model
    (``SINGLE_DEVICE`` gives the no-links degenerate case).
    """
    rng = np.random.default_rng(seed)
    model = get_model(model_name)
    if plan is None:
        plan = REFERENCE_PLAN
        try:
            plan.validate_for_model(model)
        except ValueError:
            plan = SINGLE_DEVICE
    obs = Instrumentation.on(model=model, alerts=alerts)
    perf = InferencePerfModel(model, H100_SXM, plan=plan,
                              instrumentation=obs)
    obs.cluster = ClusterTelemetry(perf, routing=obs.routing,
                                   window_s=window_s)
    engine = ServingEngine(
        perf, scheduler_config=SchedulerConfig(max_num_seqs=128),
        kv_pool_tokens=262_144, instrumentation=obs,
    )
    arrivals = poisson_arrivals(arrival_rate_rps, num_requests, rng)
    dist = LengthDistribution(mean_input=512, mean_output=128, sigma=0.4)
    for req in dist.requests(num_requests, rng, arrival_times=arrivals):
        engine.submit(req)
    return engine.run(), obs


def traced_serving_run(
    model_name: str = REFERENCE_MODEL,
    num_requests: int = 8,
    input_tokens: int = 256,
    output_tokens: int = 64,
    arrival_interval: float = 0.0,
    with_routing: bool = True,
) -> tuple[ServingResult, Instrumentation]:
    """Reference run with full instrumentation; returns both artefacts."""
    model = get_model(model_name)
    obs = Instrumentation.on(model=model if with_routing else None)
    result = reference_serving_run(
        model_name,
        num_requests=num_requests,
        input_tokens=input_tokens,
        output_tokens=output_tokens,
        arrival_interval=arrival_interval,
        instrumentation=obs,
    )
    return result, obs
