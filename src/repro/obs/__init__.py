"""Observability for the simulated serving stack (spans, metrics, routing).

Three pillars, one optional handle:

* :mod:`repro.obs.trace` — nested spans on the simulated clock, exported
  as Chrome Trace Event JSON (open in Perfetto / ``chrome://tracing``).
* :mod:`repro.obs.metrics` — counters, gauges and fixed-bucket histograms
  with Prometheus text exposition and a JSON snapshot.
* :mod:`repro.obs.routing` — live expert-activation telemetry subscribed
  to routers, regenerating Fig. 15-style data from engine runs.

Thread an :class:`Instrumentation` through
:class:`~repro.serving.engine.ServingEngine` /
:class:`~repro.perfmodel.inference.InferencePerfModel` to record; leave it
``None`` (the default) for byte-identical uninstrumented behaviour.  See
``docs/observability.md``.
"""

from repro.obs.instrument import Instrumentation
from repro.obs.metrics import (
    DEFAULT_LATENCY_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.obs.routing import EngineRoutingProbe, RoutingTelemetry
from repro.obs.trace import SpanTracer

__all__ = [
    "Instrumentation",
    "SpanTracer",
    "MetricsRegistry",
    "Counter",
    "Gauge",
    "Histogram",
    "DEFAULT_LATENCY_BUCKETS",
    "RoutingTelemetry",
    "EngineRoutingProbe",
]
