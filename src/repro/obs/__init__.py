"""Observability for the simulated serving stack (spans, metrics, routing).

Three pillars, one optional handle:

* :mod:`repro.obs.trace` — nested spans on the simulated clock, exported
  as Chrome Trace Event JSON (open in Perfetto / ``chrome://tracing``).
* :mod:`repro.obs.metrics` — counters, gauges and fixed-bucket histograms
  with Prometheus text exposition and a JSON snapshot.
* :mod:`repro.obs.routing` — live expert-activation telemetry subscribed
  to routers, regenerating Fig. 15-style data from engine runs.

On top of the pillars sit the continuous-performance tools:

* :mod:`repro.obs.fingerprint` / :mod:`repro.obs.regress` — deterministic
  experiment fingerprints, ``BENCH_<figure>.json`` baselines and drift
  detection (``repro bench --record/--check/--trend``).
* :mod:`repro.obs.profile` — cost-attribution profiler folding the span
  stream into per-phase × per-component tables, folded-stack flamegraph
  export and roofline-backed speedup advice (``repro profile``).
* :mod:`repro.obs.alerts` — alert rules over live engine state with
  flight-recorder bundles for postmortems.

Thread an :class:`Instrumentation` through
:class:`~repro.serving.engine.ServingEngine` /
:class:`~repro.perfmodel.inference.InferencePerfModel` to record; leave it
``None`` (the default) for byte-identical uninstrumented behaviour.  See
``docs/observability.md``.
"""

from repro.obs.alerts import (
    Alert,
    AlertMonitor,
    AlertRule,
    FlightRecorder,
    default_rules,
)
from repro.obs.fingerprint import Fingerprint, fingerprint_result
from repro.obs.instrument import Instrumentation
from repro.obs.metrics import (
    DEFAULT_LATENCY_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.obs.profile import CostProfile, ProfileReport, profile_serving_run
from repro.obs.regress import (
    BaselineStore,
    Drift,
    Tolerance,
    compare_fingerprints,
    measure_disabled_overhead,
)
from repro.obs.routing import EngineRoutingProbe, RoutingTelemetry
from repro.obs.trace import SpanTracer

__all__ = [
    "Instrumentation",
    "SpanTracer",
    "MetricsRegistry",
    "Counter",
    "Gauge",
    "Histogram",
    "DEFAULT_LATENCY_BUCKETS",
    "RoutingTelemetry",
    "EngineRoutingProbe",
    "Fingerprint",
    "fingerprint_result",
    "BaselineStore",
    "Tolerance",
    "Drift",
    "compare_fingerprints",
    "measure_disabled_overhead",
    "CostProfile",
    "ProfileReport",
    "profile_serving_run",
    "Alert",
    "AlertRule",
    "AlertMonitor",
    "FlightRecorder",
    "default_rules",
]
