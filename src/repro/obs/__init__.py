"""Observability for the simulated serving stack (spans, metrics, routing).

Three pillars, one optional handle:

* :mod:`repro.obs.trace` — nested spans on the simulated clock, exported
  as Chrome Trace Event JSON (open in Perfetto / ``chrome://tracing``).
* :mod:`repro.obs.metrics` — counters, gauges and fixed-bucket histograms
  with Prometheus text exposition and a JSON snapshot.
* :mod:`repro.obs.routing` — live expert-activation telemetry subscribed
  to routers, regenerating Fig. 15-style data from engine runs.

On top of the pillars sit the continuous-performance tools:

* :mod:`repro.obs.fingerprint` / :mod:`repro.obs.regress` — deterministic
  experiment fingerprints, ``BENCH_<figure>.json`` baselines and drift
  detection (``repro bench --record/--check/--trend``).
* :mod:`repro.obs.profile` — cost-attribution profiler folding the span
  stream into per-phase × per-component tables, folded-stack flamegraph
  export and roofline-backed speedup advice (``repro profile``).
* :mod:`repro.obs.alerts` — alert rules over live engine state with
  flight-recorder bundles for postmortems.
* :mod:`repro.obs.reqtrace` — request-scoped causal lifecycle timelines
  (admit → queue → prefill chunks → decode → preempt/retry → finish),
  linked to histogram buckets through exemplar trace IDs.
* :mod:`repro.obs.slo` — declarative SLOs, error-budget accounting and
  SRE-style multi-window burn-rate alert rules (``repro slo``).
* :mod:`repro.obs.cluster` — device-and-link telemetry: per-simulated-GPU
  occupancy lanes, per-link interconnect accounting, expert-heat windows
  and MoE-CAP Sparse-MFU/MBU gauges (``repro report``, ``repro trace
  --cluster``).
* :mod:`repro.obs.report` — the flight-recorder/run-report renderer
  folding metrics, timelines, heat and SLO budgets into one
  deterministic markdown/HTML document.

Thread an :class:`Instrumentation` through
:class:`~repro.serving.engine.ServingEngine` /
:class:`~repro.perfmodel.inference.InferencePerfModel` to record; leave it
``None`` (the default) for byte-identical uninstrumented behaviour.  See
``docs/observability.md``.
"""

from repro.obs.alerts import (
    Alert,
    AlertMonitor,
    AlertRule,
    DeviceSaturationRule,
    FlightRecorder,
    default_rules,
)
from repro.obs.cluster import (
    ClusterTelemetry,
    HeatWindow,
    LinkSpec,
    StepShape,
    step_cost_totals,
    step_utilization,
)
from repro.obs.fingerprint import Fingerprint, fingerprint_result
from repro.obs.instrument import Instrumentation
from repro.obs.metrics import (
    DEFAULT_LATENCY_BUCKETS,
    Counter,
    Exemplar,
    Gauge,
    Histogram,
    MetricsRegistry,
    buckets_with_edges,
)
from repro.obs.reqtrace import RequestTrace, RequestTracer, trace_id_for
from repro.obs.slo import (
    DEFAULT_SLOS,
    SLO,
    BurnRateRule,
    ErrorBudget,
    SloTracker,
    sre_burn_rules,
)
from repro.obs.profile import CostProfile, ProfileReport, profile_serving_run
from repro.obs.regress import (
    BaselineStore,
    Drift,
    Tolerance,
    compare_fingerprints,
    measure_disabled_overhead,
)
from repro.obs.report import (
    render_bundle_report,
    render_run_report,
    render_scenario_report,
    report_html,
)
from repro.obs.routing import EngineRoutingProbe, RoutingTelemetry
from repro.obs.trace import SpanTracer

__all__ = [
    "Instrumentation",
    "SpanTracer",
    "MetricsRegistry",
    "Counter",
    "Gauge",
    "Histogram",
    "Exemplar",
    "buckets_with_edges",
    "DEFAULT_LATENCY_BUCKETS",
    "RequestTrace",
    "RequestTracer",
    "trace_id_for",
    "SLO",
    "SloTracker",
    "ErrorBudget",
    "BurnRateRule",
    "sre_burn_rules",
    "DEFAULT_SLOS",
    "RoutingTelemetry",
    "EngineRoutingProbe",
    "Fingerprint",
    "fingerprint_result",
    "BaselineStore",
    "Tolerance",
    "Drift",
    "compare_fingerprints",
    "measure_disabled_overhead",
    "CostProfile",
    "ProfileReport",
    "profile_serving_run",
    "Alert",
    "AlertRule",
    "AlertMonitor",
    "DeviceSaturationRule",
    "FlightRecorder",
    "default_rules",
    "ClusterTelemetry",
    "StepShape",
    "LinkSpec",
    "HeatWindow",
    "step_cost_totals",
    "step_utilization",
    "render_run_report",
    "render_scenario_report",
    "render_bundle_report",
    "report_html",
]
