"""Experiment fingerprints: deterministic digests of what a figure produced.

A fingerprint condenses one :class:`~repro.core.experiment.ExperimentResult`
into three layers, ordered from coarse to exact:

* **sim metrics** — named numeric values derived from simulated time /
  counts (per-table column sums, means, and a simulated-time total).
  These are deterministic for a fixed tree, so the regression gate holds
  them to exact (float-tolerance) equality.
* **wall metrics** — wall-clock timings (experiment runtime).  These vary
  with the machine and are kept *separate* so only sim-derived values
  gate by default; trend reports still chart them.
* **table digests** — SHA-256 of each result table's canonical CSV, the
  row-level "did anything at all change" check.

Fingerprints serialise to plain JSON and are stored as trajectories in
``BENCH_<figure>.json`` by :class:`repro.obs.regress.BaselineStore`.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Any, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.experiment import ExperimentResult
    from repro.core.results import ResultTable

__all__ = ["Fingerprint", "fingerprint_result", "SCHEMA_VERSION"]

SCHEMA_VERSION = 1

_SIM_TIME_SUFFIXES = ("_s", "_ms", "_us", "time")
"""Column-name suffixes treated as simulated-time for the time total."""

_NOT_TIME_FRAGMENTS = ("tok_s", "per_s", "tok_ms", "req_s")
"""Rate columns whose names end in a time suffix but are not durations."""

_WALL_NAME_FRAGMENTS = ("wall", "runtime", "elapsed")
"""Column-name fragments classified as wall clock (never gate exactly)."""


def _is_wall_column(name: str) -> bool:
    lowered = name.lower()
    return any(frag in lowered for frag in _WALL_NAME_FRAGMENTS)


def _numeric_cells(table: "ResultTable", column: str) -> list[float]:
    return [
        float(v) for v in table.column(column)
        if isinstance(v, (int, float)) and not isinstance(v, bool)
    ]


@dataclass
class Fingerprint:
    """Deterministic condensation of one experiment's output."""

    exp_id: str
    schema: int = SCHEMA_VERSION
    sim: dict[str, float] = field(default_factory=dict)
    wall: dict[str, float] = field(default_factory=dict)
    digests: dict[str, str] = field(default_factory=dict)
    structure: dict[str, Any] = field(default_factory=dict)
    """Per-table shape: ``{table: {"rows": n, "columns": [...]}}``."""

    def to_dict(self) -> dict[str, Any]:
        return {
            "exp_id": self.exp_id,
            "schema": self.schema,
            "sim": dict(sorted(self.sim.items())),
            "wall": dict(sorted(self.wall.items())),
            "digests": dict(sorted(self.digests.items())),
            "structure": self.structure,
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "Fingerprint":
        return cls(
            exp_id=data["exp_id"],
            schema=int(data.get("schema", SCHEMA_VERSION)),
            sim={k: float(v) for k, v in data.get("sim", {}).items()},
            wall={k: float(v) for k, v in data.get("wall", {}).items()},
            digests=dict(data.get("digests", {})),
            structure=dict(data.get("structure", {})),
        )


def _table_digest(table: "ResultTable") -> str:
    """SHA-256 of the table's canonical CSV (wall-like columns excluded so
    digests stay machine-independent)."""
    wall_cols = {c for c in table.columns if _is_wall_column(c)}
    lines = [",".join(c for c in table.columns if c not in wall_cols)]
    for row in table.rows:
        cells = []
        for c in table.columns:
            if c in wall_cols:
                continue
            v = row[c]
            cells.append("" if v is None else repr(v))
        lines.append(",".join(cells))
    return hashlib.sha256("\n".join(lines).encode()).hexdigest()


def fingerprint_result(result: "ExperimentResult") -> Fingerprint:
    """Fingerprint one experiment result.

    Sim metrics are keyed ``"<table>.<column>:sum"`` / ``":mean"`` plus a
    cross-table ``sim_time_total_s``; wall metrics currently hold the
    experiment's ``runtime_s``.
    """
    fp = Fingerprint(exp_id=result.exp_id)
    sim_time_total = 0.0
    for table in result.tables:
        fp.digests[table.name] = _table_digest(table)
        fp.structure[table.name] = {
            "rows": len(table),
            "columns": list(table.columns),
        }
        for col in table.columns:
            cells = _numeric_cells(table, col)
            if not cells:
                continue
            key = f"{table.name}.{col}"
            total = float(sum(cells))
            if _is_wall_column(col):
                fp.wall[f"{key}:sum"] = total
                continue
            fp.sim[f"{key}:sum"] = total
            fp.sim[f"{key}:mean"] = total / len(cells)
            lowered = col.lower()
            if lowered.endswith(_SIM_TIME_SUFFIXES) and not any(
                    frag in lowered for frag in _NOT_TIME_FRAGMENTS):
                scale = 1e-3 if lowered.endswith("_ms") else (
                    1e-6 if lowered.endswith("_us") else 1.0)
                sim_time_total += total * scale
    fp.sim["sim_time_total_s"] = sim_time_total
    fp.wall["runtime_s"] = float(result.runtime_s)
    return fp
