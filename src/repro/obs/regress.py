"""Performance-regression gate: baselines, drift detection, attribution.

The paper is a measurement study — its value is trend *shapes* across 18
figures, so this module makes the reproduction self-watching:

* :class:`BaselineStore` persists fingerprint trajectories, one
  ``BENCH_<figure>.json`` per experiment, each holding an append-only list
  of records (fingerprint + git sha + timestamp).
* :func:`compare_fingerprints` diffs a fresh fingerprint against the
  recorded baseline under per-metric :class:`Tolerance` bands — exact
  (float-tolerance) for sim-deterministic values, percentage bands for
  wall-clock values (opt-in).
* :func:`suspect_modules` names the first commit-visible suspect: files
  changed since the baseline's git sha, intersected with the ``repro``
  modules actually loaded while the experiment ran.
* :func:`measure_disabled_overhead` is the shared "<2% when disabled"
  measurement used by both ``repro bench --check`` and the standalone
  overhead benchmark.

``repro bench --record / --check / --trend`` is the CLI surface.
"""

from __future__ import annotations

import datetime as _dt
import json
import math
import pathlib
import subprocess
import sys
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable

from repro.obs.fingerprint import Fingerprint

__all__ = [
    "Tolerance",
    "Drift",
    "BaselineStore",
    "compare_fingerprints",
    "render_drift_report",
    "suspect_modules",
    "first_suspect",
    "OverheadReport",
    "measure_disabled_overhead",
]


# --------------------------------------------------------------------------- #
# tolerance bands
# --------------------------------------------------------------------------- #


@dataclass(frozen=True)
class Tolerance:
    """Per-metric drift bands.

    Sim-derived values are deterministic replays, so the default band is
    float noise only; wall-clock values get a generous percentage band and
    only gate when ``check_wall`` is enabled in the comparison.
    """

    sim_rel: float = 1e-9
    sim_abs: float = 1e-12
    wall_rel: float = 0.5
    overrides: dict[str, float] = field(default_factory=dict)
    """Metric-name substring → relative tolerance, overriding the default
    band for matching sim metrics (e.g. ``{"imbalance": 1e-6}``)."""

    def sim_band(self, metric: str) -> float:
        for fragment, rel in self.overrides.items():
            if fragment in metric:
                return rel
        return self.sim_rel


@dataclass(frozen=True)
class Drift:
    """One detected divergence from the baseline."""

    exp_id: str
    metric: str
    kind: str  # "sim" | "wall" | "digest" | "structure"
    baseline: Any
    current: Any
    suspect: str | None = None

    def describe(self) -> str:
        msg = (f"[{self.exp_id}] {self.kind} drift in {self.metric}: "
               f"baseline {self.baseline!r} -> current {self.current!r}")
        if isinstance(self.baseline, float) and isinstance(self.current, float) \
                and self.baseline:
            msg += f" ({100 * (self.current / self.baseline - 1):+.3f}%)"
        if self.suspect:
            msg += f" — first suspect module: {self.suspect}"
        return msg


def compare_fingerprints(
    baseline: Fingerprint,
    current: Fingerprint,
    tolerance: Tolerance | None = None,
    check_wall: bool = False,
) -> list[Drift]:
    """All drifts of ``current`` against ``baseline`` (empty = clean)."""
    tol = tolerance or Tolerance()
    exp_id = current.exp_id
    drifts: list[Drift] = []

    for name, shape in baseline.structure.items():
        cur_shape = current.structure.get(name)
        if cur_shape is None:
            drifts.append(Drift(exp_id, f"table {name!r}", "structure",
                                shape, "missing"))
        elif cur_shape != shape:
            drifts.append(Drift(exp_id, f"table {name!r} shape", "structure",
                                shape, cur_shape))
    for name in current.structure:
        if name not in baseline.structure:
            drifts.append(Drift(exp_id, f"table {name!r}", "structure",
                                "absent", "new"))

    for metric, base_v in baseline.sim.items():
        cur_v = current.sim.get(metric)
        if cur_v is None:
            drifts.append(Drift(exp_id, metric, "sim", base_v, "missing"))
        elif not math.isclose(cur_v, base_v, rel_tol=tol.sim_band(metric),
                              abs_tol=tol.sim_abs):
            drifts.append(Drift(exp_id, metric, "sim", base_v, cur_v))

    for name, digest in baseline.digests.items():
        cur_d = current.digests.get(name)
        if cur_d is not None and cur_d != digest:
            drifts.append(Drift(exp_id, f"table {name!r} row digest",
                                "digest", digest[:12], cur_d[:12]))

    if check_wall:
        for metric, base_v in baseline.wall.items():
            cur_v = current.wall.get(metric)
            if cur_v is None or base_v <= 0:
                continue
            if abs(cur_v - base_v) / base_v > tol.wall_rel:
                drifts.append(Drift(exp_id, metric, "wall", base_v, cur_v))
    return drifts


# --------------------------------------------------------------------------- #
# baseline store
# --------------------------------------------------------------------------- #


def git_head_sha(repo_root: str | pathlib.Path = ".") -> str | None:
    """Current commit sha, or None outside a git checkout."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"], cwd=str(repo_root),
            capture_output=True, text=True, timeout=10,
        )
    except (OSError, subprocess.SubprocessError):
        return None
    return out.stdout.strip() if out.returncode == 0 else None


class BaselineStore:
    """``BENCH_<figure>.json`` trajectory files under one directory.

    Each file holds ``{"exp_id", "records": [...]}`` where a record is
    ``{"recorded_at", "git_sha", "note", "fingerprint"}``; the *latest*
    record is the gating baseline, the whole list is the perf trajectory
    charted by ``repro bench --trend``.
    """

    def __init__(self, root: str | pathlib.Path = ".") -> None:
        self.root = pathlib.Path(root)

    def path(self, exp_id: str) -> pathlib.Path:
        return self.root / f"BENCH_{exp_id}.json"

    def known_ids(self) -> list[str]:
        return sorted(
            p.stem[len("BENCH_"):] for p in self.root.glob("BENCH_*.json")
        )

    def records(self, exp_id: str) -> list[dict[str, Any]]:
        path = self.path(exp_id)
        if not path.exists():
            return []
        data = json.loads(path.read_text())
        return list(data.get("records", []))

    def latest_fingerprint(self, exp_id: str) -> Fingerprint | None:
        records = self.records(exp_id)
        if not records:
            return None
        return Fingerprint.from_dict(records[-1]["fingerprint"])

    def latest_sha(self, exp_id: str) -> str | None:
        records = self.records(exp_id)
        return records[-1].get("git_sha") if records else None

    def record(self, fingerprint: Fingerprint, note: str = "",
               git_sha: str | None = None,
               recorded_at: str | None = None) -> pathlib.Path:
        """Append one record to the experiment's trajectory file."""
        records = self.records(fingerprint.exp_id)
        records.append({
            "recorded_at": recorded_at or _dt.datetime.now(
                _dt.timezone.utc).strftime("%Y-%m-%dT%H:%M:%SZ"),
            "git_sha": git_sha if git_sha is not None else git_head_sha(self.root),
            "note": note,
            "fingerprint": fingerprint.to_dict(),
        })
        path = self.path(fingerprint.exp_id)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(
            {"exp_id": fingerprint.exp_id, "records": records}, indent=1,
        ) + "\n")
        return path


# --------------------------------------------------------------------------- #
# suspect attribution
# --------------------------------------------------------------------------- #


def changed_files_since(sha: str | None,
                        repo_root: str | pathlib.Path = ".") -> list[str]:
    """Repo-relative paths changed (committed or not) since ``sha``."""
    if not sha:
        return []
    try:
        out = subprocess.run(
            ["git", "diff", "--name-only", sha], cwd=str(repo_root),
            capture_output=True, text=True, timeout=10,
        )
    except (OSError, subprocess.SubprocessError):
        return []
    if out.returncode != 0:
        return []
    return [line for line in out.stdout.splitlines() if line.strip()]


def loaded_repro_modules() -> set[str]:
    """Repo-relative source paths of every ``repro`` module imported so far
    (after running an experiment, its transitive dependency set)."""
    files: set[str] = set()
    for name, module in list(sys.modules.items()):
        if not (name == "repro" or name.startswith("repro.")):
            continue
        path = getattr(module, "__file__", None)
        if not path:
            continue
        parts = pathlib.Path(path).parts
        if "repro" not in parts:
            continue
        idx = len(parts) - 1 - parts[::-1].index("repro")  # package dir
        files.add("src/" + "/".join(parts[idx:]))
    return files


def suspect_modules(changed: Iterable[str],
                    deps: set[str] | None = None) -> list[str]:
    """Changed files that plausibly caused a drift, most likely first:
    changed ``repro`` source files the experiment actually imported, then
    any other changed ``src/repro`` file."""
    deps = loaded_repro_modules() if deps is None else deps
    src_changes = [f for f in changed if f.startswith("src/repro/")]
    hits = [f for f in src_changes if f in deps]
    return hits + [f for f in src_changes if f not in hits]


def first_suspect(baseline_sha: str | None,
                  repo_root: str | pathlib.Path = ".") -> str | None:
    """The first commit-visible suspect module for a drift, or None."""
    suspects = suspect_modules(changed_files_since(baseline_sha, repo_root))
    return suspects[0] if suspects else None


def render_drift_report(drifts: list[Drift]) -> str:
    """Human-readable drift report grouped by figure."""
    if not drifts:
        return "no drift detected"
    lines = [f"{len(drifts)} drifted metric(s):"]
    for d in drifts:
        lines.append(f"  - {d.describe()}")
    return "\n".join(lines)


# --------------------------------------------------------------------------- #
# disabled-instrumentation overhead gate
# --------------------------------------------------------------------------- #


@dataclass(frozen=True)
class OverheadReport:
    """Wall-time cost of the *disabled* observability path."""

    baseline_s: float
    disabled_s: float
    rounds: int

    @property
    def ratio(self) -> float:
        return self.disabled_s / self.baseline_s if self.baseline_s > 0 else 0.0

    def within(self, max_ratio: float = 1.02, abs_slack_s: float = 2e-3) -> bool:
        """Whether the disabled path stays inside the overhead band
        (a small absolute slack absorbs scheduler jitter on sub-ms runs)."""
        return self.disabled_s <= self.baseline_s * max_ratio + abs_slack_s

    def describe(self) -> str:
        return (f"disabled-instrumentation overhead: baseline "
                f"{self.baseline_s:.4f}s, disabled {self.disabled_s:.4f}s "
                f"({100 * (self.ratio - 1):+.2f}%, min of {self.rounds})")


def _min_time(fn: Callable[[], Any], rounds: int) -> float:
    # min-of-N: the least noisy location statistic for a deterministic
    # workload on a shared machine
    best = float("inf")
    for _ in range(rounds):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def measure_disabled_overhead(rounds: int = 7, **workload: Any) -> OverheadReport:
    """Time the reference serving run with no instrumentation vs. a
    disabled handle (``Instrumentation.off()``)."""
    from repro.obs.harness import reference_serving_run
    from repro.obs.instrument import Instrumentation

    kwargs = {"num_requests": 16, "input_tokens": 256, "output_tokens": 64,
              **workload}

    def baseline() -> Any:
        return reference_serving_run(**kwargs)

    def disabled() -> Any:
        return reference_serving_run(
            instrumentation=Instrumentation.off(), **kwargs
        )

    # warm-up: import costs, perf-model caches, allocator pools
    baseline()
    disabled()
    return OverheadReport(
        baseline_s=_min_time(baseline, rounds),
        disabled_s=_min_time(disabled, rounds),
        rounds=rounds,
    )
