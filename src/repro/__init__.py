"""MoE-Inference-Bench — simulation-based reproduction.

A comprehensive benchmarking suite for Mixture-of-Experts LLM/VLM inference,
reproducing "MoE-Inference-Bench: Performance Evaluation of Mixture of Expert
Large Language and Vision Models" (SC 2025) on simulated hardware.

Subpackages
-----------
``repro.models``
    Architecture configs for every model in the paper, parameter accounting.
``repro.tensor``
    NumPy tensor engine: dtypes/quantization, linear, attention, norms.
``repro.moe``
    MoE substrate: top-k router, experts, fused/unfused layer, routing stats,
    pruning transforms.
``repro.hardware``
    Hardware specs (H100, A100, CS-3), roofline kernel model, interconnects.
``repro.perfmodel``
    Analytical inference performance model: FLOPs/bytes, memory/OOM,
    prefill/decode phases, TTFT/ITL/throughput.
``repro.serving``
    vLLM-like serving substrate: paged KV cache, continuous batching,
    discrete-event engine.
``repro.parallel``
    Tensor / pipeline / expert / hybrid parallelism models.
``repro.optim``
    Quantization, speculative decoding, fused-MoE optimization models.
``repro.evals``
    Accuracy reference tables and functional eval harness.
``repro.workloads``
    Batch/trace/multimodal workload generators.
``repro.core``
    The benchmarking suite itself: metrics, experiment runner, registry,
    reports, CLI.
"""

from repro.version import __version__

__all__ = ["__version__"]
