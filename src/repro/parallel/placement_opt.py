"""Activation-aware expert placement (EP load balancing).

The paper's Fig. 15 shows that some models route very unevenly; §7.1
blames EP's poor scaling partly on load imbalance.  These two observations
compose: if per-expert activation frequencies are known (from the
:class:`~repro.moe.stats.ExpertActivationTracker`), experts can be
*placed* so that every EP device receives a near-equal share of traffic,
instead of the default contiguous placement that happily puts several hot
experts on one device.

:func:`balanced_placement` implements the classic LPT (longest processing
time) greedy — sort experts by load, always assign to the lightest device —
with a per-device expert-count cap so memory stays balanced too.
:func:`placement_imbalance` scores any placement against a load vector.
"""

from __future__ import annotations

import heapq
import math

import numpy as np

from repro.parallel.expert_parallel import (
    ExpertPlacement,
    ReplicatedExpertPlacement,
    round_robin_placement,
)

__all__ = [
    "placement_imbalance",
    "balanced_placement",
    "compare_placements",
    "replicated_balanced_placement",
    "surviving_imbalance",
]


def placement_imbalance(placement: ExpertPlacement, loads: np.ndarray) -> float:
    """max/mean device load under ``placement`` for per-expert ``loads``."""
    loads = np.asarray(loads, dtype=np.float64)
    if loads.shape != (placement.num_experts,):
        raise ValueError(
            f"loads must have shape ({placement.num_experts},), got {loads.shape}"
        )
    if np.any(loads < 0):
        raise ValueError("loads must be non-negative")
    device_load = np.zeros(placement.num_devices)
    for e, d in enumerate(placement.device_of_expert):
        device_load[d] += loads[e]
    mean = device_load.mean()
    if mean == 0:
        return 1.0
    return float(device_load.max() / mean)


def balanced_placement(loads: np.ndarray, num_devices: int) -> ExpertPlacement:
    """LPT greedy placement of experts onto devices by activation load.

    Every device receives exactly ``num_experts / num_devices`` experts
    (memory balance), chosen to minimise the maximum traffic share.
    """
    loads = np.asarray(loads, dtype=np.float64)
    if loads.ndim != 1 or loads.size == 0:
        raise ValueError("loads must be a non-empty 1-D array")
    if np.any(loads < 0):
        raise ValueError("loads must be non-negative")
    num_experts = loads.size
    if num_experts % num_devices != 0:
        raise ValueError(
            f"num_experts {num_experts} not divisible by num_devices {num_devices}"
        )
    cap = num_experts // num_devices

    order = np.argsort(-loads, kind="stable")
    heap: list[tuple[float, int, int]] = [(0.0, d, 0) for d in range(num_devices)]
    heapq.heapify(heap)
    assignment = [0] * num_experts
    overflow: list[tuple[float, int, int]] = []
    for e in order:
        # pop until a device with spare capacity appears
        while True:
            load, d, count = heapq.heappop(heap)
            if count < cap:
                break
            overflow.append((load, d, count))
        assignment[int(e)] = d
        heapq.heappush(heap, (load + float(loads[e]), d, count + 1))
        for item in overflow:
            heapq.heappush(heap, item)
        overflow.clear()
    return ExpertPlacement(device_of_expert=tuple(assignment),
                           num_devices=num_devices)


def replicated_balanced_placement(
    loads: np.ndarray, num_devices: int, replicas: int = 2
) -> ReplicatedExpertPlacement:
    """LPT placement with ``replicas`` copies of each expert on distinct
    devices: replica ``r`` runs the same greedy over device ids rotated by
    ``r * num_devices / replicas``, so every pass is individually balanced
    and an expert's copies never share a device.
    """
    loads = np.asarray(loads, dtype=np.float64)
    if replicas < 1:
        raise ValueError("replicas must be >= 1")
    if replicas > num_devices:
        raise ValueError(
            f"{replicas} replicas cannot occupy distinct devices out of "
            f"{num_devices}"
        )
    base = balanced_placement(loads, num_devices).device_of_expert
    stride = max(1, num_devices // replicas)
    return ReplicatedExpertPlacement(
        devices_of_expert=tuple(
            tuple(dict.fromkeys((d + r * stride) % num_devices
                                for r in range(replicas)))
            for d in base
        ),
        num_devices=num_devices,
    )


def surviving_imbalance(
    placement: ReplicatedExpertPlacement,
    loads: np.ndarray,
    lost_devices: set[int] | frozenset[int],
) -> tuple[float, list[int]]:
    """Load picture after losing ``lost_devices``: each expert's traffic is
    split evenly over its surviving replicas.

    Returns ``(max/mean load over surviving devices, lost expert ids)``.
    Experts with no surviving replica contribute no load (they are
    unreachable — the second element names them so callers can degrade or
    fail).  The imbalance is ``inf`` when no device survives and ``1.0``
    when nothing is loaded.
    """
    loads = np.asarray(loads, dtype=np.float64)
    if loads.shape != (placement.num_experts,):
        raise ValueError(
            f"loads must have shape ({placement.num_experts},), got {loads.shape}"
        )
    if np.any(loads < 0):
        raise ValueError("loads must be non-negative")
    survivors = [d for d in range(placement.num_devices) if d not in lost_devices]
    surviving = placement.surviving_replicas(lost_devices)
    lost = [e for e, devices in enumerate(surviving) if not devices]
    if not survivors:
        return math.inf, lost
    device_load = np.zeros(placement.num_devices)
    for e, devices in enumerate(surviving):
        if not devices:
            continue
        share = loads[e] / len(devices)
        for d in devices:
            device_load[d] += share
    alive = device_load[survivors]
    mean = alive.mean()
    if mean == 0:
        return 1.0, lost
    return float(alive.max() / mean), lost


def compare_placements(
    loads: np.ndarray, num_devices: int
) -> dict[str, float]:
    """Imbalance of the default contiguous placement vs the LPT placement."""
    loads = np.asarray(loads, dtype=np.float64)
    default = round_robin_placement(loads.size, num_devices)
    optimized = balanced_placement(loads, num_devices)
    return {
        "default_imbalance": placement_imbalance(default, loads),
        "optimized_imbalance": placement_imbalance(optimized, loads),
    }
