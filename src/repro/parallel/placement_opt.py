"""Activation-aware expert placement (EP load balancing).

The paper's Fig. 15 shows that some models route very unevenly; §7.1
blames EP's poor scaling partly on load imbalance.  These two observations
compose: if per-expert activation frequencies are known (from the
:class:`~repro.moe.stats.ExpertActivationTracker`), experts can be
*placed* so that every EP device receives a near-equal share of traffic,
instead of the default contiguous placement that happily puts several hot
experts on one device.

:func:`balanced_placement` implements the classic LPT (longest processing
time) greedy — sort experts by load, always assign to the lightest device —
with a per-device expert-count cap so memory stays balanced too.
:func:`placement_imbalance` scores any placement against a load vector.
"""

from __future__ import annotations

import heapq

import numpy as np

from repro.parallel.expert_parallel import ExpertPlacement, round_robin_placement

__all__ = ["placement_imbalance", "balanced_placement", "compare_placements"]


def placement_imbalance(placement: ExpertPlacement, loads: np.ndarray) -> float:
    """max/mean device load under ``placement`` for per-expert ``loads``."""
    loads = np.asarray(loads, dtype=np.float64)
    if loads.shape != (placement.num_experts,):
        raise ValueError(
            f"loads must have shape ({placement.num_experts},), got {loads.shape}"
        )
    if np.any(loads < 0):
        raise ValueError("loads must be non-negative")
    device_load = np.zeros(placement.num_devices)
    for e, d in enumerate(placement.device_of_expert):
        device_load[d] += loads[e]
    mean = device_load.mean()
    if mean == 0:
        return 1.0
    return float(device_load.max() / mean)


def balanced_placement(loads: np.ndarray, num_devices: int) -> ExpertPlacement:
    """LPT greedy placement of experts onto devices by activation load.

    Every device receives exactly ``num_experts / num_devices`` experts
    (memory balance), chosen to minimise the maximum traffic share.
    """
    loads = np.asarray(loads, dtype=np.float64)
    if loads.ndim != 1 or loads.size == 0:
        raise ValueError("loads must be a non-empty 1-D array")
    if np.any(loads < 0):
        raise ValueError("loads must be non-negative")
    num_experts = loads.size
    if num_experts % num_devices != 0:
        raise ValueError(
            f"num_experts {num_experts} not divisible by num_devices {num_devices}"
        )
    cap = num_experts // num_devices

    order = np.argsort(-loads, kind="stable")
    heap: list[tuple[float, int, int]] = [(0.0, d, 0) for d in range(num_devices)]
    heapq.heapify(heap)
    assignment = [0] * num_experts
    overflow: list[tuple[float, int, int]] = []
    for e in order:
        # pop until a device with spare capacity appears
        while True:
            load, d, count = heapq.heappop(heap)
            if count < cap:
                break
            overflow.append((load, d, count))
        assignment[int(e)] = d
        heapq.heappush(heap, (load + float(loads[e]), d, count + 1))
        for item in overflow:
            heapq.heappush(heap, item)
        overflow.clear()
    return ExpertPlacement(device_of_expert=tuple(assignment),
                           num_devices=num_devices)


def compare_placements(
    loads: np.ndarray, num_devices: int
) -> dict[str, float]:
    """Imbalance of the default contiguous placement vs the LPT placement."""
    loads = np.asarray(loads, dtype=np.float64)
    default = round_robin_placement(loads.size, num_devices)
    optimized = balanced_placement(loads, num_devices)
    return {
        "default_imbalance": placement_imbalance(default, loads),
        "optimized_imbalance": placement_imbalance(optimized, loads),
    }
