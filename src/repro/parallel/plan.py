"""Parallelism plans (paper §7.1).

A :class:`ParallelPlan` is the cross product of tensor- (TP), pipeline-
(PP) and expert- (EP) parallel degrees.  ``num_devices`` is ``tp * pp``:
EP partitions the *experts* across the same devices used by TP within a
stage (vLLM's ``enable_expert_parallel`` semantics — EP replaces TP's
within-expert sharding by whole-expert placement, it does not add devices).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.models.config import ModelConfig

__all__ = ["ParallelPlan", "SINGLE_DEVICE"]


@dataclass(frozen=True)
class ParallelPlan:
    """Degrees of each parallelism dimension.

    Parameters
    ----------
    tp:
        Tensor-parallel degree: every weight matrix is sharded ``tp``-ways
        within a pipeline stage; activations are all-reduced twice per layer.
    pp:
        Pipeline-parallel degree: the layer stack is split into ``pp``
        stages executed on disjoint device groups.
    ep:
        Expert-parallel degree: routed experts are partitioned into ``ep``
        groups placed on disjoint devices of the stage; tokens are exchanged
        with two all-to-alls per MoE layer.  Must divide ``tp`` (experts are
        placed on the stage's device group).  ``ep == 1`` means experts are
        TP-sharded like dense weights.
    """

    tp: int = 1
    pp: int = 1
    ep: int = 1

    def __post_init__(self) -> None:
        if self.tp < 1 or self.pp < 1 or self.ep < 1:
            raise ValueError("tp, pp and ep must all be >= 1")
        if self.ep > 1 and self.tp % self.ep != 0:
            raise ValueError(
                f"ep ({self.ep}) must divide tp ({self.tp}): experts are "
                "placed across the stage's tensor-parallel group"
            )

    @property
    def num_devices(self) -> int:
        return self.tp * self.pp

    @property
    def expert_shard_tp(self) -> int:
        """TP degree applied *inside* each expert once EP placement is
        taken out: with ep groups over tp devices, each expert is sharded
        over ``tp // ep`` devices."""
        return self.tp // self.ep if self.ep >= 1 else self.tp

    @property
    def label(self) -> str:
        parts = [f"TP{self.tp}"]
        if self.pp > 1:
            parts.append(f"PP{self.pp}")
        if self.ep > 1:
            parts.append(f"EP{self.ep}")
        return "+".join(parts)

    def validate_for_model(self, model: ModelConfig) -> None:
        """Check the plan is realisable for ``model``.

        Raises ``ValueError`` when head counts / expert counts / layer
        counts are not divisible by the respective degrees.
        """
        att = model.attention
        if att.num_heads % self.tp != 0:
            raise ValueError(
                f"{model.name}: num_heads {att.num_heads} not divisible by tp {self.tp}"
            )
        if self.pp > model.num_layers:
            raise ValueError(
                f"{model.name}: pp {self.pp} exceeds num_layers {model.num_layers}"
            )
        if model.moe is not None and self.ep > 1:
            if model.moe.num_experts % self.ep != 0:
                raise ValueError(
                    f"{model.name}: num_experts {model.moe.num_experts} not "
                    f"divisible by ep {self.ep}"
                )


SINGLE_DEVICE = ParallelPlan()
