"""Tensor / pipeline / expert / hybrid parallelism models (paper §7.1).

The hybrid plan-search helpers depend on the full performance model and
are loaded lazily (PEP 562) so that ``perfmodel`` can import
``repro.parallel.plan`` without a cycle.
"""

from repro.parallel.expert_parallel import (
    ExpertPlacement,
    ep_dispatch_time,
    ep_dispatch_volume,
    round_robin_placement,
    simulate_ep_imbalance,
)
from repro.parallel.placement_opt import (
    balanced_placement,
    compare_placements,
    placement_imbalance,
)
from repro.parallel.pipeline import (
    StagePartition,
    partition_layers,
    pipeline_bubble_fraction,
    pipeline_efficiency,
)
from repro.parallel.plan import SINGLE_DEVICE, ParallelPlan
from repro.parallel.tensor_parallel import (
    TPShard,
    tp_comm_time_per_layer,
    tp_comm_volume_per_step,
    tp_shard,
)

__all__ = [
    "ExpertPlacement",
    "ep_dispatch_time",
    "ep_dispatch_volume",
    "round_robin_placement",
    "simulate_ep_imbalance",
    "balanced_placement",
    "compare_placements",
    "placement_imbalance",
    "StagePartition",
    "partition_layers",
    "pipeline_bubble_fraction",
    "pipeline_efficiency",
    "SINGLE_DEVICE",
    "ParallelPlan",
    "TPShard",
    "tp_comm_time_per_layer",
    "tp_comm_volume_per_step",
    "tp_shard",
    # lazy (heavy) exports
    "PlanEvaluation",
    "best_plan",
    "enumerate_plans",
    "evaluate_plan",
]

_LAZY = {
    "PlanEvaluation": "repro.parallel.hybrid",
    "best_plan": "repro.parallel.hybrid",
    "enumerate_plans": "repro.parallel.hybrid",
    "evaluate_plan": "repro.parallel.hybrid",
}


def __getattr__(name: str):
    if name in _LAZY:
        import importlib

        module = importlib.import_module(_LAZY[name])
        value = getattr(module, name)
        globals()[name] = value
        return value
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
