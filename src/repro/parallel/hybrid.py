"""Hybrid parallelism: plan enumeration and selection.

Combines TP × PP × EP into valid plans for a model on a node, and ranks
them with the full performance model — the tooling behind the paper's §7.1
comparison and the "effective MoE deployment should optimise the total
parameter budget" guidance.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hardware.spec import HardwareSpec
from repro.models.config import ModelConfig
from repro.optim.quantization import FP16_CONFIG, QuantConfig
from repro.parallel.plan import ParallelPlan
from repro.perfmodel.inference import InferencePerfModel

__all__ = ["PlanEvaluation", "enumerate_plans", "evaluate_plan", "best_plan"]


@dataclass(frozen=True)
class PlanEvaluation:
    """Outcome of evaluating one plan on one workload shape."""

    plan: ParallelPlan
    fits: bool
    throughput_tok_s: float
    ttft_s: float
    weight_gb_per_device: float


def enumerate_plans(
    model: ModelConfig, num_devices: int, include_ep: bool = True
) -> list[ParallelPlan]:
    """All valid (tp, pp, ep) triples using exactly ``num_devices``."""
    if num_devices < 1:
        raise ValueError("num_devices must be >= 1")
    plans: list[ParallelPlan] = []
    for tp in range(1, num_devices + 1):
        if num_devices % tp != 0:
            continue
        pp = num_devices // tp
        eps = [1]
        if include_ep and model.moe is not None:
            eps += [e for e in range(2, tp + 1)
                    if tp % e == 0 and model.moe.num_experts % e == 0]
        for ep in eps:
            plan = ParallelPlan(tp=tp, pp=pp, ep=ep)
            try:
                plan.validate_for_model(model)
            except ValueError:
                continue
            plans.append(plan)
    return plans


def evaluate_plan(
    model: ModelConfig,
    hw: HardwareSpec,
    plan: ParallelPlan,
    batch: int,
    input_tokens: int,
    output_tokens: int,
    quant: QuantConfig = FP16_CONFIG,
) -> PlanEvaluation:
    """Throughput/TTFT/feasibility of one plan on one workload."""
    pm = InferencePerfModel(model, hw, plan=plan, quant=quant)
    fits = pm.fits(batch, input_tokens + output_tokens)
    metrics = pm.generate(batch, input_tokens, output_tokens, check_memory=False)
    return PlanEvaluation(
        plan=plan,
        fits=fits,
        throughput_tok_s=metrics.throughput_tok_s,
        ttft_s=metrics.ttft_s,
        weight_gb_per_device=pm.memory.weight_bytes_per_device() / 1e9,
    )


def best_plan(
    model: ModelConfig,
    hw: HardwareSpec,
    num_devices: int,
    batch: int,
    input_tokens: int,
    output_tokens: int,
    quant: QuantConfig = FP16_CONFIG,
    require_fit: bool = True,
) -> PlanEvaluation:
    """Highest-throughput valid plan for the workload.

    Raises ``ValueError`` when no plan fits and ``require_fit`` is set.
    """
    evals = [
        evaluate_plan(model, hw, p, batch, input_tokens, output_tokens, quant)
        for p in enumerate_plans(model, num_devices)
    ]
    if require_fit:
        evals = [e for e in evals if e.fits]
        if not evals:
            raise ValueError(
                f"no parallel plan fits {model.name} on {num_devices}x {hw.name} "
                f"at batch={batch}, seq={input_tokens + output_tokens}"
            )
    return max(evals, key=lambda e: e.throughput_tok_s)
