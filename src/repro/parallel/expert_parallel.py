"""Expert-parallelism analysis: placement, dispatch volume, load imbalance.

EP places whole experts on devices (DeepSpeed-MoE style).  Its two taxes —
quantified here and consumed by the phase model — are:

* **dispatch**: two all-to-alls per MoE layer moving every routed token's
  hidden state to its experts' devices and back;
* **imbalance**: the all-to-all barrier makes each step as slow as the
  most-loaded device; under stochastic routing the max/mean load across
  ``ep`` groups exceeds 1 by ``~sqrt(2 ln(ep) / tokens_per_group)``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.hardware.interconnect import all_to_all_time
from repro.hardware.spec import HardwareSpec
from repro.models.config import MoEConfig
from repro.optim.quantization import FP16_CONFIG, QuantConfig
from repro.moe.routing_math import expected_group_imbalance

__all__ = [
    "ExpertPlacement",
    "ReplicatedExpertPlacement",
    "round_robin_placement",
    "replicated_round_robin_placement",
    "ep_dispatch_volume",
    "ep_dispatch_time",
    "simulate_ep_imbalance",
]


@dataclass(frozen=True)
class ExpertPlacement:
    """Mapping expert id → device for one MoE layer."""

    device_of_expert: tuple[int, ...]
    num_devices: int

    def __post_init__(self) -> None:
        if any(not (0 <= d < self.num_devices) for d in self.device_of_expert):
            raise ValueError("placement references an out-of-range device")

    @property
    def num_experts(self) -> int:
        return len(self.device_of_expert)

    def experts_on_device(self, device: int) -> list[int]:
        return [e for e, d in enumerate(self.device_of_expert) if d == device]

    def experts_per_device(self) -> np.ndarray:
        counts = np.zeros(self.num_devices, dtype=np.int64)
        for d in self.device_of_expert:
            counts[d] += 1
        return counts


@dataclass(frozen=True)
class ReplicatedExpertPlacement:
    """Mapping expert id → *several* devices (replicated EP).

    Replication buys fault tolerance and hot-expert load spreading at the
    cost of ``replicas`` copies of each expert's weights: when an EP rank
    loses its shards, traffic reroutes to the surviving replicas instead
    of failing.  ``devices_of_expert[e]`` lists every device holding a
    copy of expert ``e`` (primary first).
    """

    devices_of_expert: tuple[tuple[int, ...], ...]
    num_devices: int

    def __post_init__(self) -> None:
        for e, devices in enumerate(self.devices_of_expert):
            if not devices:
                raise ValueError(f"expert {e} has no replica devices")
            if len(set(devices)) != len(devices):
                raise ValueError(f"expert {e} lists a device twice")
            if any(not (0 <= d < self.num_devices) for d in devices):
                raise ValueError("placement references an out-of-range device")

    @property
    def num_experts(self) -> int:
        return len(self.devices_of_expert)

    @property
    def replication_factor(self) -> int:
        """Minimum replicas any expert has (the fault-tolerance floor)."""
        return min(len(d) for d in self.devices_of_expert)

    def experts_on_device(self, device: int) -> list[int]:
        return [e for e, devices in enumerate(self.devices_of_expert)
                if device in devices]

    def primary(self) -> ExpertPlacement:
        """The replica-0 placement (what a replication-unaware consumer,
        e.g. the dispatch-volume model, sees)."""
        return ExpertPlacement(
            device_of_expert=tuple(d[0] for d in self.devices_of_expert),
            num_devices=self.num_devices,
        )

    def surviving_replicas(
        self, lost_devices: set[int] | frozenset[int]
    ) -> tuple[tuple[int, ...], ...]:
        """Per-expert replica devices after removing ``lost_devices``
        (an expert's tuple may be empty — see :meth:`lost_experts`)."""
        return tuple(
            tuple(d for d in devices if d not in lost_devices)
            for devices in self.devices_of_expert
        )

    def lost_experts(self, lost_devices: set[int] | frozenset[int]) -> list[int]:
        """Experts with no surviving replica — unreachable until the ranks
        heal (or the router degrades around them)."""
        return [e for e, devices in
                enumerate(self.surviving_replicas(lost_devices))
                if not devices]


def round_robin_placement(num_experts: int, num_devices: int) -> ExpertPlacement:
    """Contiguous block placement (vLLM/DeepSpeed default): device ``d``
    owns experts ``[d*E/n, (d+1)*E/n)``."""
    if num_experts % num_devices != 0:
        raise ValueError(
            f"num_experts {num_experts} not divisible by num_devices {num_devices}"
        )
    per = num_experts // num_devices
    return ExpertPlacement(
        device_of_expert=tuple(e // per for e in range(num_experts)),
        num_devices=num_devices,
    )


def replicated_round_robin_placement(
    num_experts: int, num_devices: int, replicas: int = 2
) -> ReplicatedExpertPlacement:
    """Contiguous placement with replica ``r`` shifted ``r * n/replicas``
    devices to the right, so an expert's copies land on distinct devices
    (and, when devices fill nodes in order, usually distinct nodes)."""
    if replicas < 1:
        raise ValueError("replicas must be >= 1")
    if replicas > num_devices:
        raise ValueError(
            f"{replicas} replicas cannot occupy distinct devices out of "
            f"{num_devices}"
        )
    base = round_robin_placement(num_experts, num_devices).device_of_expert
    stride = max(1, num_devices // replicas)
    return ReplicatedExpertPlacement(
        devices_of_expert=tuple(
            tuple(dict.fromkeys((d + r * stride) % num_devices
                                for r in range(replicas)))
            for d in base
        ),
        num_devices=num_devices,
    )


def ep_dispatch_volume(
    num_tokens: int, hidden_size: int, top_k: int, ep: int,
    quant: QuantConfig = FP16_CONFIG,
) -> float:
    """Bytes one all-to-all moves: every token's hidden state is sent to
    each of its ``top_k`` experts' devices (expected ``(ep-1)/ep`` of the
    payload crosses the fabric; the collective model accounts for that)."""
    if num_tokens <= 0 or ep < 1:
        raise ValueError("num_tokens must be positive and ep >= 1")
    return num_tokens * top_k * hidden_size * quant.activation_bytes


def ep_dispatch_time(
    num_tokens: int, hidden_size: int, top_k: int, ep: int, hw: HardwareSpec,
    quant: QuantConfig = FP16_CONFIG,
) -> float:
    """Seconds of the two per-layer all-to-alls (dispatch + combine)."""
    vol = ep_dispatch_volume(num_tokens, hidden_size, top_k, ep, quant)
    return 2.0 * all_to_all_time(vol, ep, hw)


def simulate_ep_imbalance(
    moe: MoEConfig, ep: int, num_tokens: int, num_trials: int = 256,
    rng: np.random.Generator | None = None,
) -> tuple[float, float]:
    """Monte-Carlo estimate of the EP max/mean load factor under uniform
    routing; returns ``(simulated_mean, analytic)`` so callers can compare
    against :func:`expected_group_imbalance` (ablation bench)."""
    if ep < 1:
        raise ValueError("ep must be >= 1")
    placement = round_robin_placement(moe.num_experts, ep)
    dev = np.asarray(placement.device_of_expert)
    rng = rng or np.random.default_rng(0)
    ratios = np.empty(num_trials)
    for t in range(num_trials):
        # each token picks top_k distinct experts uniformly
        picks = np.array(
            [rng.choice(moe.num_experts, size=moe.top_k, replace=False)
             for _ in range(num_tokens)]
        ).ravel()
        loads = np.bincount(dev[picks], minlength=ep)
        ratios[t] = loads.max() / loads.mean()
    analytic = expected_group_imbalance(ep, num_tokens * moe.top_k)
    return float(ratios.mean()), analytic
