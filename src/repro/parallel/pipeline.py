"""Pipeline-parallelism analysis: stage partitioning and bubble model.

The paper's Fig. 13 finding — PP throughput stays almost flat — follows
from serving semantics: a single continuous batch traverses the stages
serially, so splitting layers across devices relieves memory but not
latency.  The classic GPipe bubble model is provided for the throughput
view under micro-batching (training-style or multi-batch serving).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.models.config import ModelConfig
from repro.models.params import layer_params

__all__ = ["StagePartition", "partition_layers", "pipeline_bubble_fraction",
           "pipeline_efficiency"]


@dataclass(frozen=True)
class StagePartition:
    """Assignment of decoder layers to pipeline stages."""

    boundaries: tuple[int, ...]
    """``boundaries[s]`` is the first layer of stage ``s``; a final entry
    equals ``num_layers``."""
    stage_params: tuple[int, ...]

    @property
    def num_stages(self) -> int:
        return len(self.boundaries) - 1

    def stage_of_layer(self, layer_idx: int) -> int:
        for s in range(self.num_stages):
            if self.boundaries[s] <= layer_idx < self.boundaries[s + 1]:
                return s
        raise IndexError(f"layer {layer_idx} outside partition")

    @property
    def imbalance(self) -> float:
        """max/mean parameter load across stages (1.0 == balanced)."""
        mean = sum(self.stage_params) / len(self.stage_params)
        return max(self.stage_params) / mean if mean else 1.0


def partition_layers(model: ModelConfig, pp: int) -> StagePartition:
    """Split layers into ``pp`` stages balancing parameter counts greedily
    (contiguous split minimising the heaviest stage)."""
    if not (1 <= pp <= model.num_layers):
        raise ValueError(f"pp must be in [1, {model.num_layers}], got {pp}")
    weights = [layer_params(model, i).total for i in range(model.num_layers)]
    total = sum(weights)
    target = total / pp
    boundaries = [0]
    acc = 0.0
    for i, w in enumerate(weights):
        remaining_stages = pp - len(boundaries)
        remaining_layers = model.num_layers - i
        if acc + w / 2.0 >= target and remaining_stages >= 1 and remaining_layers >= remaining_stages:
            boundaries.append(i)
            acc = 0.0
            if len(boundaries) == pp:
                break
        acc += w
    while len(boundaries) < pp:
        boundaries.append(model.num_layers - (pp - len(boundaries)))
    boundaries.append(model.num_layers)
    stage_params = tuple(
        sum(weights[boundaries[s] : boundaries[s + 1]]) for s in range(pp)
    )
    return StagePartition(boundaries=tuple(boundaries), stage_params=stage_params)


def pipeline_bubble_fraction(pp: int, num_microbatches: int) -> float:
    """GPipe bubble fraction ``(p-1) / (m + p - 1)``."""
    if pp < 1 or num_microbatches < 1:
        raise ValueError("pp and num_microbatches must be >= 1")
    return (pp - 1) / (num_microbatches + pp - 1)


def pipeline_efficiency(pp: int, num_microbatches: int, stage_imbalance: float = 1.0) -> float:
    """Fraction of ideal ``pp``-way speedup realised: bubbles and the
    slowest stage both gate it."""
    if stage_imbalance < 1.0:
        raise ValueError("stage_imbalance must be >= 1.0")
    return (1.0 - pipeline_bubble_fraction(pp, num_microbatches)) / stage_imbalance
