"""Tensor-parallelism analysis (Megatron-style sharding).

Helpers that expose *why* TP behaves the way it does in the paper's
Fig. 13: per-device weight shards, per-layer collective volume, and the
communication-to-compute ratio as a function of batch size.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hardware.interconnect import allreduce_time
from repro.hardware.spec import HardwareSpec
from repro.models.config import ModelConfig
from repro.models.params import model_params
from repro.optim.quantization import FP16_CONFIG, QuantConfig

__all__ = ["TPShard", "tp_shard", "tp_comm_time_per_layer", "tp_comm_volume_per_step"]


@dataclass(frozen=True)
class TPShard:
    """Per-device view of a TP deployment."""

    degree: int
    weight_bytes_per_device: float
    heads_per_device: int
    kv_heads_per_device: int

    @property
    def weight_gb_per_device(self) -> float:
        return self.weight_bytes_per_device / 1e9


def tp_shard(model: ModelConfig, tp: int, quant: QuantConfig = FP16_CONFIG) -> TPShard:
    """Shard ``model`` ``tp``-ways and report the per-device footprint."""
    if tp < 1:
        raise ValueError("tp must be >= 1")
    att = model.attention
    if att.num_heads % tp != 0:
        raise ValueError(f"num_heads {att.num_heads} not divisible by tp {tp}")
    total = model_params(model).total
    return TPShard(
        degree=tp,
        weight_bytes_per_device=total / tp * quant.weight_bytes,
        heads_per_device=att.num_heads // tp,
        kv_heads_per_device=max(1, att.num_kv_heads // tp),
    )


def tp_comm_volume_per_step(
    model: ModelConfig, num_tokens: int, quant: QuantConfig = FP16_CONFIG
) -> float:
    """Bytes all-reduced per forward step: two ring all-reduces per layer of
    the ``num_tokens × hidden`` activation."""
    if num_tokens <= 0:
        raise ValueError("num_tokens must be positive")
    payload = num_tokens * model.hidden_size * quant.activation_bytes
    return 2.0 * model.num_layers * payload


def tp_comm_time_per_layer(
    model: ModelConfig,
    num_tokens: int,
    tp: int,
    hw: HardwareSpec,
    quant: QuantConfig = FP16_CONFIG,
) -> float:
    """Seconds of all-reduce time per decoder layer (2 collectives)."""
    payload = num_tokens * model.hidden_size * quant.activation_bytes
    return 2.0 * allreduce_time(payload, tp, hw)
