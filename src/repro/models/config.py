"""Architecture configuration dataclasses for MoE LLMs and VLMs.

These mirror the information found in HuggingFace ``config.json`` files for
the models in the paper's Table 1, restricted to the fields that determine
inference cost: layer counts, hidden sizes, attention geometry (MHA / GQA /
MLA), MoE geometry (expert count, top-k, expert FFN width, shared experts),
and the optional vision tower of a VLM.

Everything downstream — parameter accounting (:mod:`repro.models.params`),
the analytical performance model (:mod:`repro.perfmodel`) and the functional
NumPy engine (:mod:`repro.tensor`, :mod:`repro.moe`) — is driven purely by
these configs, so a new model is added by writing one config entry.
"""

from __future__ import annotations

import dataclasses
import enum
import math
from dataclasses import dataclass, field
from typing import Iterator


class AttentionKind(enum.Enum):
    """Flavour of the attention block, which determines KV-cache geometry."""

    MHA = "mha"
    """Classic multi-head attention: one KV head per query head."""

    GQA = "gqa"
    """Grouped-query attention: ``num_kv_heads < num_heads`` shared KV."""

    MLA = "mla"
    """Multi-head latent attention (DeepSeek-V2): KV compressed into a
    low-rank latent plus a small decoupled RoPE key."""


@dataclass(frozen=True)
class AttentionConfig:
    """Geometry of one attention block.

    Parameters
    ----------
    num_heads:
        Number of query heads.
    num_kv_heads:
        Number of key/value heads (== ``num_heads`` for MHA).
    head_dim:
        Per-head dimension of queries (and of keys/values for MHA/GQA).
    kind:
        Attention flavour; selects both the weight shapes and the KV-cache
        layout.
    q_lora_rank, kv_lora_rank, qk_rope_head_dim, qk_nope_head_dim, v_head_dim:
        MLA-only geometry (DeepSeek-V2 style). Ignored for MHA/GQA.
    """

    num_heads: int
    num_kv_heads: int
    head_dim: int
    kind: AttentionKind = AttentionKind.GQA
    sliding_window: int = 0
    """Sliding-window attention span (Mixtral-style); 0 disables.  Bounds
    both the KV positions attended and the rolling KV-cache footprint."""
    # MLA-specific geometry (DeepSeek-V2 family).
    q_lora_rank: int = 0
    kv_lora_rank: int = 0
    qk_rope_head_dim: int = 0
    qk_nope_head_dim: int = 0
    v_head_dim: int = 0

    def __post_init__(self) -> None:
        if self.num_heads <= 0:
            raise ValueError(f"num_heads must be positive, got {self.num_heads}")
        if self.num_kv_heads <= 0:
            raise ValueError(f"num_kv_heads must be positive, got {self.num_kv_heads}")
        if self.num_heads % self.num_kv_heads != 0:
            raise ValueError(
                "num_heads must be a multiple of num_kv_heads, got "
                f"{self.num_heads} / {self.num_kv_heads}"
            )
        if self.kind is AttentionKind.MHA and self.num_kv_heads != self.num_heads:
            raise ValueError("MHA requires num_kv_heads == num_heads")
        if self.kind is AttentionKind.MLA:
            if self.kv_lora_rank <= 0:
                raise ValueError("MLA requires a positive kv_lora_rank")
            if self.qk_rope_head_dim <= 0:
                raise ValueError("MLA requires a positive qk_rope_head_dim")
        if self.sliding_window < 0:
            raise ValueError("sliding_window must be non-negative")

    @property
    def group_size(self) -> int:
        """Query heads per KV head."""
        return self.num_heads // self.num_kv_heads

    def kv_entries_per_token(self, mla_native: bool = False) -> int:
        """Number of scalar KV-cache entries stored per token per layer.

        For MHA/GQA this is ``2 * num_kv_heads * head_dim`` (K and V).  For
        MLA with native kernels (``mla_native=True``) only the compressed
        latent and the decoupled RoPE key are cached — the source of
        DeepSeek-V2's small KV footprint.  Serving stacks without native
        MLA support (the vLLM releases the paper benchmarked) *materialise*
        the decompressed per-head K/V instead, which is the default here.
        """
        if self.kind is AttentionKind.MLA:
            if mla_native:
                return self.kv_lora_rank + self.qk_rope_head_dim
            k_dim = self.qk_nope_head_dim + self.qk_rope_head_dim
            return self.num_kv_heads * (k_dim + self.v_head_dim)
        return 2 * self.num_kv_heads * self.head_dim

    def effective_kv_len(self, context_len: float) -> float:
        """KV positions actually held/attended for a context of
        ``context_len`` tokens (bounded by the sliding window)."""
        if context_len < 0:
            raise ValueError("context_len must be non-negative")
        if self.sliding_window > 0:
            return min(context_len, float(self.sliding_window))
        return context_len


@dataclass(frozen=True)
class MoEConfig:
    """Geometry of one mixture-of-experts FFN block.

    Parameters
    ----------
    num_experts:
        Total routed experts per MoE layer.
    top_k:
        Experts activated per token.
    expert_ffn_dim:
        Intermediate (FFN) width of each routed expert.
    num_shared_experts / shared_expert_ffn_dim:
        DeepSeek/Qwen-style always-active shared experts.  The shared FFN's
        total width is ``num_shared_experts * shared_expert_ffn_dim``.
    gated:
        Whether experts use a gated activation (SwiGLU: 3 matrices) or a
        plain 2-matrix MLP.
    renormalize:
        Whether top-k router probabilities are renormalised to sum to 1.
    balanced_routing:
        Whether the model was trained with an auxiliary load-balancing loss
        (DeepSeek family) — used by the routing-statistics simulation to
        pick a calibrated router concentration (paper Fig. 15).
    """

    num_experts: int
    top_k: int
    expert_ffn_dim: int
    num_shared_experts: int = 0
    shared_expert_ffn_dim: int = 0
    gated: bool = True
    renormalize: bool = True
    balanced_routing: bool = True

    def __post_init__(self) -> None:
        if self.num_experts <= 0:
            raise ValueError(f"num_experts must be positive, got {self.num_experts}")
        if not (1 <= self.top_k <= self.num_experts):
            raise ValueError(
                f"top_k must be in [1, num_experts]; got top_k={self.top_k}, "
                f"num_experts={self.num_experts}"
            )
        if self.expert_ffn_dim <= 0:
            raise ValueError(f"expert_ffn_dim must be positive, got {self.expert_ffn_dim}")
        if self.num_shared_experts < 0:
            raise ValueError("num_shared_experts must be non-negative")
        if self.num_shared_experts > 0 and self.shared_expert_ffn_dim <= 0:
            raise ValueError("shared experts require a positive shared_expert_ffn_dim")

    @property
    def sparsity(self) -> float:
        """Fraction of routed expert parameters active per token."""
        return self.top_k / self.num_experts

    def with_pruned_experts(self, keep: int) -> "MoEConfig":
        """Return a config with only ``keep`` experts (inter-expert pruning)."""
        if not (1 <= keep <= self.num_experts):
            raise ValueError(f"keep must be in [1, {self.num_experts}], got {keep}")
        return dataclasses.replace(
            self, num_experts=keep, top_k=min(self.top_k, keep)
        )

    def with_ffn_dim(self, ffn_dim: int) -> "MoEConfig":
        """Return a config with a reduced expert width (intra-expert pruning)."""
        if ffn_dim <= 0:
            raise ValueError(f"ffn_dim must be positive, got {ffn_dim}")
        return dataclasses.replace(self, expert_ffn_dim=ffn_dim)

    def with_top_k(self, top_k: int) -> "MoEConfig":
        """Return a config with a different number of active experts."""
        if not (1 <= top_k <= self.num_experts):
            raise ValueError(f"top_k must be in [1, {self.num_experts}], got {top_k}")
        return dataclasses.replace(self, top_k=top_k)


@dataclass(frozen=True)
class VisionConfig:
    """A ViT-style vision tower plus projector, as used by DeepSeek-VL2.

    The tower is a dense transformer encoder over image patches; its output
    is projected into the language model's embedding space and prepended to
    the text tokens.  For performance purposes the tower contributes a fixed
    per-image prefill cost and ``image_tokens`` extra context tokens.
    """

    num_layers: int
    hidden_size: int
    ffn_dim: int
    num_heads: int
    image_tokens: int
    patch_size: int = 14
    image_size: int = 384

    def __post_init__(self) -> None:
        for name in ("num_layers", "hidden_size", "ffn_dim", "num_heads", "image_tokens"):
            if getattr(self, name) <= 0:
                raise ValueError(f"{name} must be positive")


@dataclass(frozen=True)
class ModelConfig:
    """Complete architecture description of one model in the zoo.

    A model is a stack of ``num_layers`` decoder layers.  Layer ``i`` uses a
    MoE FFN iff ``moe is not None`` and ``i`` is in the MoE schedule
    (``first_k_dense`` leading layers are dense, and ``moe_layer_stride``
    allows interleaved designs such as Llama-4's every-other-layer MoE);
    otherwise it uses a dense FFN of width ``dense_ffn_dim``.
    """

    name: str
    num_layers: int
    hidden_size: int
    vocab_size: int
    attention: AttentionConfig
    dense_ffn_dim: int
    moe: MoEConfig | None = None
    first_k_dense: int = 0
    moe_layer_stride: int = 1
    tie_embeddings: bool = False
    vision: VisionConfig | None = None
    modality: str = "text"
    # Published parameter counts (for cross-checking our accounting against
    # the paper's Table 1); 0 means "not published".
    published_total_params: float = 0.0
    published_active_params: float = 0.0

    def __post_init__(self) -> None:
        if self.num_layers <= 0:
            raise ValueError(f"num_layers must be positive, got {self.num_layers}")
        if self.hidden_size <= 0:
            raise ValueError(f"hidden_size must be positive, got {self.hidden_size}")
        if self.vocab_size <= 0:
            raise ValueError(f"vocab_size must be positive, got {self.vocab_size}")
        if self.dense_ffn_dim < 0:
            raise ValueError("dense_ffn_dim must be non-negative")
        if self.first_k_dense < 0 or self.first_k_dense > self.num_layers:
            raise ValueError(
                f"first_k_dense must be in [0, num_layers]; got {self.first_k_dense}"
            )
        if self.moe_layer_stride <= 0:
            raise ValueError("moe_layer_stride must be positive")
        if self.modality not in ("text", "text+image"):
            raise ValueError(f"unknown modality {self.modality!r}")
        if self.modality == "text+image" and self.vision is None:
            raise ValueError("text+image models must define a vision tower")

    # ------------------------------------------------------------------ #
    # layer schedule
    # ------------------------------------------------------------------ #

    def is_moe_layer(self, layer_idx: int) -> bool:
        """Whether decoder layer ``layer_idx`` uses the MoE FFN."""
        if not (0 <= layer_idx < self.num_layers):
            raise IndexError(f"layer_idx {layer_idx} out of range [0, {self.num_layers})")
        if self.moe is None:
            return False
        if layer_idx < self.first_k_dense:
            return False
        return (layer_idx - self.first_k_dense) % self.moe_layer_stride == 0

    def moe_layer_indices(self) -> list[int]:
        """Indices of all MoE layers."""
        return [i for i in range(self.num_layers) if self.is_moe_layer(i)]

    @property
    def num_moe_layers(self) -> int:
        return len(self.moe_layer_indices())

    @property
    def num_dense_layers(self) -> int:
        return self.num_layers - self.num_moe_layers

    @property
    def is_moe(self) -> bool:
        return self.moe is not None and self.num_moe_layers > 0

    @property
    def is_vlm(self) -> bool:
        return self.vision is not None

    def iter_layers(self) -> Iterator[tuple[int, bool]]:
        """Yield ``(layer_idx, is_moe)`` for every decoder layer."""
        for i in range(self.num_layers):
            yield i, self.is_moe_layer(i)

    # ------------------------------------------------------------------ #
    # derived transforms (used by the hyperparameter sweeps, Figs. 7-9)
    # ------------------------------------------------------------------ #

    def with_moe(self, moe: MoEConfig) -> "ModelConfig":
        """Return a variant of this model with a different MoE block."""
        return dataclasses.replace(self, moe=moe)

    def with_name(self, name: str) -> "ModelConfig":
        return dataclasses.replace(self, name=name)

    def scaled(self, hidden_scale: float) -> "ModelConfig":
        """Return a reduced-size instantiation for functional testing.

        Scales hidden/FFN/head dimensions by ``hidden_scale`` while keeping
        the layer structure, expert count and top-k intact, so routing
        semantics are preserved at a width that is cheap to execute in NumPy.
        """
        if not (0 < hidden_scale <= 1):
            raise ValueError(f"hidden_scale must be in (0, 1], got {hidden_scale}")

        def sc(x: int, minimum: int = 1) -> int:
            return max(minimum, int(round(x * hidden_scale)))

        att = self.attention
        new_att = dataclasses.replace(
            att,
            head_dim=sc(att.head_dim, 2),
            q_lora_rank=sc(att.q_lora_rank) if att.q_lora_rank else 0,
            kv_lora_rank=sc(att.kv_lora_rank, 2) if att.kv_lora_rank else 0,
            qk_rope_head_dim=sc(att.qk_rope_head_dim, 2) if att.qk_rope_head_dim else 0,
            qk_nope_head_dim=sc(att.qk_nope_head_dim, 2) if att.qk_nope_head_dim else 0,
            v_head_dim=sc(att.v_head_dim, 2) if att.v_head_dim else 0,
        )
        new_moe = None
        if self.moe is not None:
            new_moe = dataclasses.replace(
                self.moe,
                expert_ffn_dim=sc(self.moe.expert_ffn_dim, 2),
                shared_expert_ffn_dim=(
                    sc(self.moe.shared_expert_ffn_dim, 2)
                    if self.moe.shared_expert_ffn_dim
                    else 0
                ),
            )
        # hidden size must stay divisible by the head count
        hidden = max(new_att.num_heads, sc(self.hidden_size, new_att.num_heads))
        hidden = int(math.ceil(hidden / new_att.num_heads)) * new_att.num_heads
        return dataclasses.replace(
            self,
            hidden_size=hidden,
            dense_ffn_dim=sc(self.dense_ffn_dim, 2) if self.dense_ffn_dim else 0,
            vocab_size=max(64, sc(self.vocab_size)),
            attention=new_att,
            moe=new_moe,
            published_total_params=0.0,
            published_active_params=0.0,
        )
