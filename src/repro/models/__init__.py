"""Model architecture configs, the paper's model zoo, and parameter accounting."""

from repro.models.config import (
    AttentionConfig,
    AttentionKind,
    ModelConfig,
    MoEConfig,
    VisionConfig,
)
from repro.models.params import (
    LayerParams,
    ParamBreakdown,
    attention_params,
    layer_params,
    model_params,
    vision_tower_params,
)
from repro.models.zoo import (
    ALL_MODELS,
    DRAFT_MODELS,
    LLM_MODELS,
    VLM_MODELS,
    get_model,
    list_models,
)

__all__ = [
    "AttentionConfig",
    "AttentionKind",
    "ModelConfig",
    "MoEConfig",
    "VisionConfig",
    "LayerParams",
    "ParamBreakdown",
    "attention_params",
    "layer_params",
    "model_params",
    "vision_tower_params",
    "ALL_MODELS",
    "DRAFT_MODELS",
    "LLM_MODELS",
    "VLM_MODELS",
    "get_model",
    "list_models",
]
