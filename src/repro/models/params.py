"""Parameter accounting for MoE models (paper Table 1 and Figure 1).

Computes exact per-layer parameter counts from a :class:`ModelConfig`,
split into the components the paper's Figure 1 plots (attention, MoE
routed experts, shared experts, router, dense FFN, norms, embeddings,
vision tower), both *total* (resident in memory) and *active* (touched
per token, i.e. top-k routed experts only).
"""

from __future__ import annotations

import functools
from dataclasses import dataclass, field

from repro.models.config import AttentionConfig, AttentionKind, ModelConfig, VisionConfig

__all__ = [
    "LayerParams",
    "ParamBreakdown",
    "attention_params",
    "vision_tower_params",
    "layer_params",
    "model_params",
]


@dataclass(frozen=True)
class LayerParams:
    """Parameter counts of a single decoder layer, by component."""

    layer_idx: int
    is_moe: bool
    attention: int
    router: int
    routed_experts_total: int
    routed_experts_active: int
    shared_experts: int
    dense_ffn: int
    norms: int

    @property
    def total(self) -> int:
        return (
            self.attention
            + self.router
            + self.routed_experts_total
            + self.shared_experts
            + self.dense_ffn
            + self.norms
        )

    @property
    def active(self) -> int:
        """Parameters touched when processing one token through this layer."""
        return (
            self.attention
            + self.router
            + self.routed_experts_active
            + self.shared_experts
            + self.dense_ffn
            + self.norms
        )

    @property
    def moe_total(self) -> int:
        """All MoE-block parameters (router + routed + shared)."""
        return self.router + self.routed_experts_total + self.shared_experts

    @property
    def moe_active(self) -> int:
        return self.router + self.routed_experts_active + self.shared_experts


@dataclass(frozen=True)
class ParamBreakdown:
    """Whole-model parameter accounting."""

    model_name: str
    layers: tuple[LayerParams, ...]
    embedding: int
    lm_head: int
    final_norm: int
    vision_tower: int

    @property
    def total(self) -> int:
        return (
            sum(lp.total for lp in self.layers)
            + self.embedding
            + self.lm_head
            + self.final_norm
            + self.vision_tower
        )

    @property
    def active(self) -> int:
        return (
            sum(lp.active for lp in self.layers)
            + self.embedding
            + self.lm_head
            + self.final_norm
            + self.vision_tower
        )

    @property
    def attention_total(self) -> int:
        return sum(lp.attention for lp in self.layers)

    @property
    def moe_total(self) -> int:
        return sum(lp.moe_total for lp in self.layers)

    @property
    def moe_active(self) -> int:
        return sum(lp.moe_active for lp in self.layers)

    @property
    def dense_ffn_total(self) -> int:
        return sum(lp.dense_ffn for lp in self.layers)

    @property
    def moe_fraction_total(self) -> float:
        """Fraction of all parameters living in MoE blocks (Fig. 1's point)."""
        return self.moe_total / self.total if self.total else 0.0

    @property
    def moe_fraction_active(self) -> float:
        return self.moe_active / self.active if self.active else 0.0

    def component_totals(self) -> dict[str, int]:
        """Totals by component name, for Fig. 1-style stacked breakdowns."""
        return {
            "attention": self.attention_total,
            "routed_experts": sum(lp.routed_experts_total for lp in self.layers),
            "shared_experts": sum(lp.shared_experts for lp in self.layers),
            "router": sum(lp.router for lp in self.layers),
            "dense_ffn": self.dense_ffn_total,
            "norms": sum(lp.norms for lp in self.layers) + self.final_norm,
            "embedding": self.embedding + self.lm_head,
            "vision_tower": self.vision_tower,
        }

    def component_actives(self) -> dict[str, int]:
        out = self.component_totals()
        out["routed_experts"] = sum(lp.routed_experts_active for lp in self.layers)
        return out


@functools.lru_cache(maxsize=None)
def attention_params(cfg: AttentionConfig, hidden_size: int) -> int:
    """Weight parameters of one attention block (no biases).

    For MHA/GQA: Q/K/V/O projections.  For MLA (DeepSeek-V2): the low-rank
    query path (optional), compressed-KV down/up projections, and the output
    projection.
    """
    if cfg.kind is AttentionKind.MLA:
        qk_head = cfg.qk_nope_head_dim + cfg.qk_rope_head_dim
        if cfg.q_lora_rank > 0:
            q = hidden_size * cfg.q_lora_rank + cfg.q_lora_rank * cfg.num_heads * qk_head
        else:
            q = hidden_size * cfg.num_heads * qk_head
        kv_down = hidden_size * (cfg.kv_lora_rank + cfg.qk_rope_head_dim)
        kv_up = cfg.kv_lora_rank * cfg.num_heads * (cfg.qk_nope_head_dim + cfg.v_head_dim)
        out = cfg.num_heads * cfg.v_head_dim * hidden_size
        return q + kv_down + kv_up + out
    q = hidden_size * cfg.num_heads * cfg.head_dim
    k = hidden_size * cfg.num_kv_heads * cfg.head_dim
    v = hidden_size * cfg.num_kv_heads * cfg.head_dim
    o = cfg.num_heads * cfg.head_dim * hidden_size
    return q + k + v + o


def _ffn_params(hidden_size: int, ffn_dim: int, gated: bool) -> int:
    """SwiGLU (3 matrices) or plain MLP (2 matrices) parameter count."""
    n_mats = 3 if gated else 2
    return n_mats * hidden_size * ffn_dim


@functools.lru_cache(maxsize=None)
def vision_tower_params(cfg: VisionConfig) -> int:
    """Approximate ViT tower parameters: per-layer attention + (non-gated) MLP
    + patch embedding + position embedding."""
    per_layer = 4 * cfg.hidden_size * cfg.hidden_size + 2 * cfg.hidden_size * cfg.ffn_dim
    per_layer += 4 * cfg.hidden_size  # 2 LayerNorms (weight+bias)
    patches = (cfg.image_size // cfg.patch_size) ** 2
    patch_embed = 3 * cfg.patch_size * cfg.patch_size * cfg.hidden_size
    pos_embed = patches * cfg.hidden_size
    return cfg.num_layers * per_layer + patch_embed + pos_embed


@functools.lru_cache(maxsize=None)
def layer_params(model: ModelConfig, layer_idx: int) -> LayerParams:
    """Per-component parameter counts of decoder layer ``layer_idx``."""
    is_moe = model.is_moe_layer(layer_idx)
    attn = attention_params(model.attention, model.hidden_size)
    norms = 2 * model.hidden_size  # RMSNorm pre-attn + pre-FFN

    if is_moe:
        assert model.moe is not None
        moe = model.moe
        per_expert = _ffn_params(model.hidden_size, moe.expert_ffn_dim, moe.gated)
        routed_total = moe.num_experts * per_expert
        routed_active = moe.top_k * per_expert
        shared = moe.num_shared_experts * _ffn_params(
            model.hidden_size, moe.shared_expert_ffn_dim, moe.gated
        )
        router = model.hidden_size * moe.num_experts
        dense = 0
    else:
        routed_total = routed_active = shared = router = 0
        dense = _ffn_params(model.hidden_size, model.dense_ffn_dim, gated=True)

    return LayerParams(
        layer_idx=layer_idx,
        is_moe=is_moe,
        attention=attn,
        router=router,
        routed_experts_total=routed_total,
        routed_experts_active=routed_active,
        shared_experts=shared,
        dense_ffn=dense,
        norms=norms,
    )


@functools.lru_cache(maxsize=None)
def model_params(model: ModelConfig) -> ParamBreakdown:
    """Full parameter breakdown for ``model`` (Table 1 / Fig. 1 source)."""
    layers = tuple(layer_params(model, i) for i in range(model.num_layers))
    embedding = model.vocab_size * model.hidden_size
    lm_head = 0 if model.tie_embeddings else model.vocab_size * model.hidden_size
    vision = vision_tower_params(model.vision) if model.vision is not None else 0
    return ParamBreakdown(
        model_name=model.name,
        layers=layers,
        embedding=embedding,
        lm_head=lm_head,
        final_norm=model.hidden_size,
        vision_tower=vision,
    )
