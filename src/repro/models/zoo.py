"""Model zoo: architecture configs for every model in the paper.

Configs are transcribed from the models' published HuggingFace
``config.json`` files (not from the paper's Table 1, which contains a few
transcription inconsistencies — e.g. it lists Qwen3-30B-A3B with hidden
size 5120 and OLMoE with FFN dim 8192, neither of which is consistent with
the models' published parameter counts).  The ``table1`` benchmark
cross-checks our computed totals against the paper's published
total/active parameter columns.

Models
------
LLMs (paper §3.1): Mixtral-8x7B, Qwen1.5-MoE-A2.7B, Qwen3-30B-A3B,
DeepSeek-V2-Lite, Phi-3.5-MoE, OLMoE-1B-7B.

VLMs: DeepSeek-VL2-Tiny / -Small / (base), MolmoE-1B (Fig. 15).

Auxiliary: Qwen3 dense draft models 0.6B/1.7B/4B/8B (Fig. 12),
Llama-4-Scout-17B-16E (Fig. 16).
"""

from __future__ import annotations

from repro.models.config import (
    AttentionConfig,
    AttentionKind,
    ModelConfig,
    MoEConfig,
    VisionConfig,
)

__all__ = [
    "MIXTRAL_8X7B",
    "QWEN15_MOE_A27B",
    "QWEN3_30B_A3B",
    "DEEPSEEK_V2_LITE",
    "PHI_35_MOE",
    "OLMOE_1B_7B",
    "DEEPSEEK_VL2_TINY",
    "DEEPSEEK_VL2_SMALL",
    "DEEPSEEK_VL2",
    "MOLMOE_1B",
    "QWEN3_0_6B",
    "QWEN3_1_7B",
    "QWEN3_4B",
    "QWEN3_8B",
    "LLAMA4_SCOUT_17B_16E",
    "LLM_MODELS",
    "VLM_MODELS",
    "DRAFT_MODELS",
    "ALL_MODELS",
    "get_model",
    "list_models",
]

_SIGLIP_SO400M = VisionConfig(
    num_layers=27,
    hidden_size=1152,
    ffn_dim=4304,
    num_heads=16,
    image_tokens=576,
    patch_size=14,
    image_size=384,
)

_VIT_L = VisionConfig(
    num_layers=23,
    hidden_size=1024,
    ffn_dim=4096,
    num_heads=16,
    image_tokens=576,
    patch_size=14,
    image_size=336,
)

MIXTRAL_8X7B = ModelConfig(
    name="Mixtral-8x7B",
    num_layers=32,
    hidden_size=4096,
    vocab_size=32000,
    attention=AttentionConfig(num_heads=32, num_kv_heads=8, head_dim=128),
    dense_ffn_dim=0,
    moe=MoEConfig(num_experts=8, top_k=2, expert_ffn_dim=14336, balanced_routing=True),
    published_total_params=46.7e9,
    published_active_params=12.9e9,
)

QWEN15_MOE_A27B = ModelConfig(
    name="Qwen1.5-MoE-A2.7B",
    num_layers=24,
    hidden_size=2048,
    vocab_size=151936,
    attention=AttentionConfig(num_heads=16, num_kv_heads=16, head_dim=128,
                              kind=AttentionKind.MHA),
    dense_ffn_dim=0,
    moe=MoEConfig(
        num_experts=60,
        top_k=4,
        expert_ffn_dim=1408,
        num_shared_experts=1,
        shared_expert_ffn_dim=5632,
        balanced_routing=True,
    ),
    published_total_params=14.3e9,
    published_active_params=2.7e9,
)

QWEN3_30B_A3B = ModelConfig(
    name="Qwen3-30B-A3B",
    num_layers=48,
    hidden_size=2048,
    vocab_size=151936,
    attention=AttentionConfig(num_heads=32, num_kv_heads=4, head_dim=128),
    dense_ffn_dim=0,
    moe=MoEConfig(num_experts=128, top_k=8, expert_ffn_dim=768, balanced_routing=True),
    published_total_params=30.5e9,
    published_active_params=3.3e9,
)

DEEPSEEK_V2_LITE = ModelConfig(
    name="DeepSeek-V2-Lite",
    num_layers=27,
    hidden_size=2048,
    vocab_size=102400,
    attention=AttentionConfig(
        num_heads=16,
        num_kv_heads=16,
        head_dim=192,
        kind=AttentionKind.MLA,
        q_lora_rank=0,
        kv_lora_rank=512,
        qk_rope_head_dim=64,
        qk_nope_head_dim=128,
        v_head_dim=128,
    ),
    dense_ffn_dim=10944,
    first_k_dense=1,
    moe=MoEConfig(
        num_experts=64,
        top_k=6,
        expert_ffn_dim=1408,
        num_shared_experts=2,
        shared_expert_ffn_dim=1408,
        balanced_routing=True,
    ),
    published_total_params=15.7e9,
    published_active_params=2.4e9,
)

PHI_35_MOE = ModelConfig(
    name="Phi-3.5-MoE",
    num_layers=32,
    hidden_size=4096,
    vocab_size=32064,
    attention=AttentionConfig(num_heads=32, num_kv_heads=8, head_dim=128),
    dense_ffn_dim=0,
    moe=MoEConfig(num_experts=16, top_k=2, expert_ffn_dim=6400, balanced_routing=True),
    published_total_params=41.9e9,
    published_active_params=6.6e9,
)

OLMOE_1B_7B = ModelConfig(
    name="OLMoE-1B-7B",
    num_layers=16,
    hidden_size=2048,
    vocab_size=50304,
    attention=AttentionConfig(num_heads=16, num_kv_heads=16, head_dim=128,
                              kind=AttentionKind.MHA),
    dense_ffn_dim=0,
    moe=MoEConfig(num_experts=64, top_k=8, expert_ffn_dim=1024, balanced_routing=True),
    published_total_params=6.9e9,
    published_active_params=1.3e9,
)

DEEPSEEK_VL2_TINY = ModelConfig(
    name="DeepSeek-VL2-Tiny",
    num_layers=12,
    hidden_size=1280,
    vocab_size=102400,
    attention=AttentionConfig(num_heads=10, num_kv_heads=10, head_dim=128,
                              kind=AttentionKind.MHA),
    dense_ffn_dim=6848,
    first_k_dense=1,
    moe=MoEConfig(
        num_experts=64,
        top_k=6,
        expert_ffn_dim=896,
        num_shared_experts=2,
        shared_expert_ffn_dim=896,
        balanced_routing=True,
    ),
    vision=_SIGLIP_SO400M,
    modality="text+image",
    published_total_params=3.4e9,
    published_active_params=1.0e9,
)

DEEPSEEK_VL2_SMALL = ModelConfig(
    name="DeepSeek-VL2-Small",
    num_layers=27,
    hidden_size=2048,
    vocab_size=102400,
    attention=DEEPSEEK_V2_LITE.attention,
    dense_ffn_dim=10944,
    first_k_dense=1,
    moe=DEEPSEEK_V2_LITE.moe,
    vision=_SIGLIP_SO400M,
    modality="text+image",
    published_total_params=16.1e9,
    published_active_params=2.8e9,
)

DEEPSEEK_VL2 = ModelConfig(
    name="DeepSeek-VL2",
    num_layers=30,
    hidden_size=2560,
    vocab_size=102400,
    attention=AttentionConfig(
        num_heads=20,
        num_kv_heads=20,
        head_dim=192,
        kind=AttentionKind.MLA,
        q_lora_rank=1536,
        kv_lora_rank=512,
        qk_rope_head_dim=64,
        qk_nope_head_dim=128,
        v_head_dim=128,
    ),
    dense_ffn_dim=12288,
    first_k_dense=1,
    moe=MoEConfig(
        num_experts=72,
        top_k=6,
        expert_ffn_dim=1536,
        num_shared_experts=2,
        shared_expert_ffn_dim=1536,
        balanced_routing=True,
    ),
    vision=_SIGLIP_SO400M,
    modality="text+image",
    published_total_params=27.5e9,
    published_active_params=4.5e9,
)

MOLMOE_1B = ModelConfig(
    name="MolmoE-1B",
    num_layers=16,
    hidden_size=2048,
    vocab_size=50304,
    attention=OLMOE_1B_7B.attention,
    dense_ffn_dim=0,
    # MolmoE reuses the OLMoE mixture but, unlike the DeepSeek family, was
    # not trained with a strong load-balancing auxiliary loss — the origin
    # of the skewed activation heatmap in the paper's Fig. 15.
    moe=MoEConfig(num_experts=64, top_k=8, expert_ffn_dim=1024, balanced_routing=False),
    vision=_VIT_L,
    modality="text+image",
    published_total_params=7.2e9,
    published_active_params=1.7e9,
)

QWEN3_0_6B = ModelConfig(
    name="Qwen3-0.6B",
    num_layers=28,
    hidden_size=1024,
    vocab_size=151936,
    attention=AttentionConfig(num_heads=16, num_kv_heads=8, head_dim=128),
    dense_ffn_dim=3072,
    tie_embeddings=True,
    published_total_params=0.6e9,
)

QWEN3_1_7B = ModelConfig(
    name="Qwen3-1.7B",
    num_layers=28,
    hidden_size=2048,
    vocab_size=151936,
    attention=AttentionConfig(num_heads=16, num_kv_heads=8, head_dim=128),
    dense_ffn_dim=6144,
    tie_embeddings=True,
    published_total_params=1.7e9,
)

QWEN3_4B = ModelConfig(
    name="Qwen3-4B",
    num_layers=36,
    hidden_size=2560,
    vocab_size=151936,
    attention=AttentionConfig(num_heads=32, num_kv_heads=8, head_dim=128),
    dense_ffn_dim=9728,
    tie_embeddings=True,
    published_total_params=4.0e9,
)

QWEN3_8B = ModelConfig(
    name="Qwen3-8B",
    num_layers=36,
    hidden_size=4096,
    vocab_size=151936,
    attention=AttentionConfig(num_heads=32, num_kv_heads=8, head_dim=128),
    dense_ffn_dim=12288,
    published_total_params=8.2e9,
)

LLAMA4_SCOUT_17B_16E = ModelConfig(
    name="Llama-4-Scout-17B-16E",
    num_layers=48,
    hidden_size=5120,
    vocab_size=202048,
    attention=AttentionConfig(num_heads=40, num_kv_heads=8, head_dim=128),
    dense_ffn_dim=0,
    moe=MoEConfig(
        num_experts=16,
        top_k=1,
        expert_ffn_dim=8192,
        num_shared_experts=1,
        shared_expert_ffn_dim=8192,
        balanced_routing=True,
    ),
    published_total_params=109e9,
    published_active_params=17e9,
)

LLM_MODELS: dict[str, ModelConfig] = {
    m.name: m
    for m in (
        MIXTRAL_8X7B,
        QWEN15_MOE_A27B,
        QWEN3_30B_A3B,
        DEEPSEEK_V2_LITE,
        PHI_35_MOE,
        OLMOE_1B_7B,
    )
}

VLM_MODELS: dict[str, ModelConfig] = {
    m.name: m for m in (DEEPSEEK_VL2_TINY, DEEPSEEK_VL2_SMALL, DEEPSEEK_VL2, MOLMOE_1B)
}

DRAFT_MODELS: dict[str, ModelConfig] = {
    m.name: m for m in (QWEN3_0_6B, QWEN3_1_7B, QWEN3_4B, QWEN3_8B)
}

ALL_MODELS: dict[str, ModelConfig] = {
    **LLM_MODELS,
    **VLM_MODELS,
    **DRAFT_MODELS,
    LLAMA4_SCOUT_17B_16E.name: LLAMA4_SCOUT_17B_16E,
}


def get_model(name: str) -> ModelConfig:
    """Look up a model config by its exact name.

    Raises ``KeyError`` with the list of known names on a miss.
    """
    try:
        return ALL_MODELS[name]
    except KeyError:
        known = ", ".join(sorted(ALL_MODELS))
        raise KeyError(f"unknown model {name!r}; known models: {known}") from None


def list_models() -> list[str]:
    """All model names in the zoo, sorted."""
    return sorted(ALL_MODELS)
