"""Multi-head / grouped-query attention with an explicit KV cache.

This is the functional (NumPy) counterpart of the attention term in the
analytical performance model.  It supports incremental decoding: each call
appends the new keys/values to the cache and attends over the full prefix
with a causal mask, exactly like a serving engine's prefill + decode steps.
"""

from __future__ import annotations

import numpy as np

from repro.models.config import AttentionConfig, AttentionKind
from repro.tensor.functional import apply_rope, causal_mask, rope_frequencies, softmax
from repro.tensor.linear import Linear

__all__ = ["KVCache", "Attention"]


class KVCache:
    """Preallocated per-layer key/value cache.

    Shapes: ``(batch, max_seq, num_kv_heads, head_dim)`` for both K and V.
    ``length`` tracks how many positions are filled; appends are in-place
    writes into the preallocated buffers (no reallocation per step).
    """

    def __init__(self, batch: int, max_seq: int, num_kv_heads: int, head_dim: int) -> None:
        if min(batch, max_seq, num_kv_heads, head_dim) <= 0:
            raise ValueError("all KVCache dimensions must be positive")
        self.k = np.zeros((batch, max_seq, num_kv_heads, head_dim), dtype=np.float32)
        self.v = np.zeros_like(self.k)
        self.length = 0
        self.max_seq = max_seq

    def append(self, k: np.ndarray, v: np.ndarray) -> None:
        """Append ``(batch, new_seq, kv_heads, head_dim)`` keys/values."""
        new = k.shape[1]
        if self.length + new > self.max_seq:
            raise ValueError(
                f"KV cache overflow: {self.length} + {new} > max_seq {self.max_seq}"
            )
        self.k[:, self.length : self.length + new] = k
        self.v[:, self.length : self.length + new] = v
        self.length += new

    def view(self) -> tuple[np.ndarray, np.ndarray]:
        """Views (no copies) of the filled portion of the cache."""
        return self.k[:, : self.length], self.v[:, : self.length]

    def reset(self) -> None:
        self.length = 0


class Attention:
    """GQA/MHA attention block with RoPE and causal masking.

    MLA configs are executed in their *decompressed* equivalent form (same
    math, materialised K/V) — the compression only changes cache geometry
    and weight shapes, which the performance model accounts for separately.
    """

    def __init__(
        self,
        cfg: AttentionConfig,
        hidden_size: int,
        rng: np.random.Generator,
        max_positions: int = 4096,
        rope_base: float = 10000.0,
    ) -> None:
        self.cfg = cfg
        self.hidden_size = hidden_size
        h, kv, d = cfg.num_heads, cfg.num_kv_heads, cfg.head_dim
        if cfg.kind is AttentionKind.MLA:
            # Decompressed execution: materialise full per-head K/V.
            d = cfg.qk_nope_head_dim + cfg.qk_rope_head_dim
            self.v_head_dim = cfg.v_head_dim or d
        else:
            self.v_head_dim = d
        self.head_dim = d
        self.wq = Linear.random(rng, hidden_size, h * d)
        self.wk = Linear.random(rng, hidden_size, kv * d)
        self.wv = Linear.random(rng, hidden_size, kv * self.v_head_dim)
        self.wo = Linear.random(rng, h * self.v_head_dim, hidden_size)
        self._phases = rope_frequencies(d, max_positions, rope_base)
        self.scale = 1.0 / np.sqrt(d)

    def new_cache(self, batch: int, max_seq: int) -> KVCache:
        return KVCache(batch, max_seq, self.cfg.num_kv_heads, self.head_dim)

    def new_value_cache(self, batch: int, max_seq: int) -> KVCache:  # pragma: no cover
        return KVCache(batch, max_seq, self.cfg.num_kv_heads, self.v_head_dim)

    def __call__(self, x: np.ndarray, cache: KVCache | None = None) -> np.ndarray:
        """Run attention over ``x`` of shape ``(batch, seq, hidden)``.

        With a cache, the call is incremental: ``x`` holds only the new
        tokens, K/V are appended, and queries attend over the whole prefix.
        """
        if x.ndim != 3:
            raise ValueError(f"x must be (batch, seq, hidden), got {x.shape}")
        b, s, _ = x.shape
        h, kv = self.cfg.num_heads, self.cfg.num_kv_heads
        d, dv = self.head_dim, self.v_head_dim

        q = self.wq(x).reshape(b, s, h, d)
        k = self.wk(x).reshape(b, s, kv, d)
        v = self.wv(x).reshape(b, s, kv, dv)

        start = cache.length if cache is not None else 0
        positions = np.arange(start, start + s)
        # RoPE expects (..., seq, head_dim): move the head axis forward.
        q = apply_rope(q.transpose(0, 2, 1, 3), self._phases, positions)
        k = apply_rope(k.transpose(0, 2, 1, 3), self._phases, positions)
        q = q.transpose(0, 2, 1, 3)
        k = k.transpose(0, 2, 1, 3)

        if cache is not None:
            # V-cache shares the K-cache head_dim only when dv == d; the
            # constructor's new_cache covers the common (GQA) case.
            if dv != d:
                raise NotImplementedError(
                    "cached execution requires v_head_dim == head_dim; "
                    "decompressed-MLA caching is supported via equal dims"
                )
            cache.append(k, v)
            k_all, v_all = cache.view()
        else:
            k_all, v_all = k, v

        kv_len = k_all.shape[1]
        group = h // kv
        # expand KV heads across the query groups without copying data
        k_exp = np.repeat(k_all, group, axis=2) if group > 1 else k_all
        v_exp = np.repeat(v_all, group, axis=2) if group > 1 else v_all

        # (b, h, s, kv_len) attention scores
        scores = np.einsum("bshd,bthd->bhst", q, k_exp, optimize=True) * self.scale
        mask = causal_mask(s, kv_len, self.cfg.sliding_window)
        scores = np.where(mask[None, None], scores, -np.inf)
        probs = softmax(scores, axis=-1)
        ctx = np.einsum("bhst,bthd->bshd", probs, v_exp, optimize=True)
        return self.wo(ctx.reshape(b, s, h * dv))
