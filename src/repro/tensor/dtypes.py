"""Numeric datatypes and quantization kernels.

Defines the datatype registry used throughout the suite — each entry knows
its storage width (which drives the memory/bandwidth side of the roofline
model) and, for the quantized formats, a real NumPy quantize/dequantize
kernel so the functional engine can measure accuracy effects.

FP8 follows the E4M3 layout used by H100 tensor cores (1 sign, 4 exponent,
3 mantissa bits, no inf, max ±448).  INT8/INT4 use symmetric per-channel
absmax scaling, the scheme used by weight-only LLM quantization.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass

import numpy as np

__all__ = [
    "DType",
    "FP32",
    "FP16",
    "BF16",
    "FP8_E4M3",
    "INT8",
    "INT4",
    "DTYPES",
    "get_dtype",
    "quantize_fp8",
    "dequantize_fp8",
    "quantize_int",
    "dequantize_int",
    "quantize_dequantize",
]

# E4M3: exponent bias 7, 3 mantissa bits, max finite 448, min normal 2^-6,
# min subnormal 2^-9.
_E4M3_MAX = 448.0
_E4M3_MIN_NORMAL = 2.0 ** -6
_E4M3_MANT_BITS = 3


@dataclass(frozen=True)
class DType:
    """A storage datatype.

    ``bytes_per_element`` drives memory-footprint and bandwidth modelling;
    ``compute_scale`` is the hardware throughput multiplier relative to FP16
    tensor-core math on hardware with native support (H100: FP8 = 2x FP16).
    """

    name: str
    bytes_per_element: float
    compute_scale: float
    is_quantized: bool = False

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.name


FP32 = DType("fp32", 4.0, 0.5)
FP16 = DType("fp16", 2.0, 1.0)
BF16 = DType("bf16", 2.0, 1.0)
FP8_E4M3 = DType("fp8_e4m3", 1.0, 2.0, is_quantized=True)
INT8 = DType("int8", 1.0, 2.0, is_quantized=True)
INT4 = DType("int4", 0.5, 2.0, is_quantized=True)

DTYPES: dict[str, DType] = {
    d.name: d for d in (FP32, FP16, BF16, FP8_E4M3, INT8, INT4)
}
# convenient aliases
DTYPES["fp8"] = FP8_E4M3


def get_dtype(name: str | DType) -> DType:
    """Resolve a dtype by name (accepts a DType and returns it unchanged)."""
    if isinstance(name, DType):
        return name
    try:
        return DTYPES[name.lower()]
    except KeyError:
        known = ", ".join(sorted(DTYPES))
        raise KeyError(f"unknown dtype {name!r}; known dtypes: {known}") from None


def quantize_fp8(x: np.ndarray) -> np.ndarray:
    """Round ``x`` to the nearest representable FP8 E4M3 value.

    Returns float32 values lying exactly on the E4M3 grid (saturating at
    ±448, flushing below the smallest subnormal to zero), which is how
    simulated-FP8 numerics are normally validated.
    """
    x = np.asarray(x, dtype=np.float64)
    out = np.zeros_like(x)
    sign = np.sign(x)
    mag = np.abs(x)
    # saturate
    mag = np.minimum(mag, _E4M3_MAX)
    nonzero = mag > 0
    # exponent of each value, clamped to the normal range
    exp = np.floor(np.log2(mag, where=nonzero, out=np.zeros_like(mag)))
    exp = np.clip(exp, np.log2(_E4M3_MIN_NORMAL), np.inf)
    # quantization step: 2^(exp - mantissa_bits); subnormal step is fixed
    step = np.power(2.0, exp - _E4M3_MANT_BITS)
    step = np.where(mag < _E4M3_MIN_NORMAL, _E4M3_MIN_NORMAL / (2 ** _E4M3_MANT_BITS), step)
    q = np.round(mag / step) * step
    # rounding can push magnitude past the max exponent boundary; re-saturate
    q = np.minimum(q, _E4M3_MAX)
    out = np.where(nonzero, sign * q, 0.0)
    return out.astype(np.float32)


def dequantize_fp8(x: np.ndarray) -> np.ndarray:
    """FP8 values are stored as exact float32 grid points; identity."""
    return np.asarray(x, dtype=np.float32)


def quantize_int(
    x: np.ndarray, bits: int, axis: int = -1
) -> tuple[np.ndarray, np.ndarray]:
    """Symmetric absmax integer quantization along ``axis``.

    Returns ``(q, scale)`` where ``q`` is an int8 array of levels in
    ``[-(2^(bits-1)-1), 2^(bits-1)-1]`` and ``scale`` broadcasts against
    ``q`` so ``q * scale ≈ x``.
    """
    if bits not in (4, 8):
        raise ValueError(f"bits must be 4 or 8, got {bits}")
    x = np.asarray(x, dtype=np.float32)
    qmax = 2 ** (bits - 1) - 1
    absmax = np.max(np.abs(x), axis=axis, keepdims=True)
    scale = np.where(absmax > 0, absmax / qmax, 1.0).astype(np.float32)
    q = np.clip(np.round(x / scale), -qmax, qmax).astype(np.int8)
    return q, scale


def dequantize_int(q: np.ndarray, scale: np.ndarray) -> np.ndarray:
    """Inverse of :func:`quantize_int`."""
    return (q.astype(np.float32) * scale).astype(np.float32)


def quantize_dequantize(x: np.ndarray, dtype: DType | str, axis: int = -1) -> np.ndarray:
    """Simulate storing ``x`` in ``dtype`` (fake quantization round-trip).

    FP16/BF16 round through the corresponding NumPy type; FP8 rounds to the
    E4M3 grid; INT8/INT4 round-trip symmetric absmax quantization.  FP32 is
    the identity.
    """
    d = get_dtype(dtype)
    x = np.asarray(x, dtype=np.float32)
    if d.name == "fp32":
        return x
    if d.name == "fp16":
        return x.astype(np.float16).astype(np.float32)
    if d.name == "bf16":
        # bf16 == fp32 with the bottom 16 mantissa bits dropped
        as_int = x.view(np.uint32)
        rounded = ((as_int + 0x8000) & np.uint32(0xFFFF0000)).astype(np.uint32)
        return rounded.view(np.float32).copy()
    if d.name == "fp8_e4m3":
        return quantize_fp8(x)
    if d.name == "int8":
        return dequantize_int(*quantize_int(x, 8, axis=axis))
    if d.name == "int4":
        return dequantize_int(*quantize_int(x, 4, axis=axis))
    raise AssertionError(f"unhandled dtype {d.name}")  # pragma: no cover
