"""Linear layers for the NumPy execution engine, with optional fake-quantized
weight storage (the numeric counterpart of :mod:`repro.optim.quantization`)."""

from __future__ import annotations

import numpy as np

from repro.tensor.dtypes import DType, FP32, get_dtype, quantize_dequantize

__all__ = ["Linear", "init_weight"]


def init_weight(
    rng: np.random.Generator, fan_in: int, fan_out: int, scale: float = 1.0
) -> np.ndarray:
    """Scaled Gaussian init (std = scale / sqrt(fan_in)), float32.

    The 1/sqrt(fan_in) scaling keeps activation magnitudes O(1) through deep
    stacks, which matters for quantization experiments: FP8/INT8 error is a
    function of dynamic range.
    """
    if fan_in <= 0 or fan_out <= 0:
        raise ValueError("fan_in and fan_out must be positive")
    std = scale / np.sqrt(fan_in)
    return rng.normal(0.0, std, size=(fan_in, fan_out)).astype(np.float32)


class Linear:
    """A dense projection ``y = x @ W``.

    Parameters
    ----------
    weight:
        ``(in_features, out_features)`` float32 array.
    weight_dtype:
        Storage dtype.  Quantized dtypes round-trip the weights through the
        corresponding quantization kernel once, at construction, simulating
        weight-only quantized inference.
    """

    def __init__(self, weight: np.ndarray, weight_dtype: DType | str = FP32) -> None:
        weight = np.asarray(weight, dtype=np.float32)
        if weight.ndim != 2:
            raise ValueError(f"weight must be 2-D, got shape {weight.shape}")
        self.dtype = get_dtype(weight_dtype)
        if self.dtype.name != "fp32":
            weight = quantize_dequantize(weight, self.dtype, axis=0)
        self.weight = np.ascontiguousarray(weight)

    @property
    def in_features(self) -> int:
        return self.weight.shape[0]

    @property
    def out_features(self) -> int:
        return self.weight.shape[1]

    @property
    def num_params(self) -> int:
        return self.weight.size

    def storage_bytes(self) -> float:
        """Bytes this layer would occupy at its storage dtype."""
        return self.weight.size * self.dtype.bytes_per_element

    def __call__(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=np.float32)
        if x.shape[-1] != self.in_features:
            raise ValueError(
                f"input last dim {x.shape[-1]} != in_features {self.in_features}"
            )
        return x @ self.weight

    @classmethod
    def random(
        cls,
        rng: np.random.Generator,
        in_features: int,
        out_features: int,
        weight_dtype: DType | str = FP32,
        scale: float = 1.0,
    ) -> "Linear":
        """Construct with :func:`init_weight` initialisation."""
        return cls(init_weight(rng, in_features, out_features, scale), weight_dtype)
