"""Stateless tensor ops for the NumPy execution engine.

All functions are vectorized, operate on the trailing axes, and avoid
unnecessary copies (views + in-place where safe), per the HPC guide idioms.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "softmax",
    "log_softmax",
    "silu",
    "gelu",
    "swiglu",
    "rms_norm",
    "rope_frequencies",
    "apply_rope",
    "top_k_indices",
    "causal_mask",
]


def softmax(x: np.ndarray, axis: int = -1) -> np.ndarray:
    """Numerically stable softmax along ``axis``."""
    x = np.asarray(x, dtype=np.float32)
    shifted = x - np.max(x, axis=axis, keepdims=True)
    e = np.exp(shifted)
    return e / np.sum(e, axis=axis, keepdims=True)


def log_softmax(x: np.ndarray, axis: int = -1) -> np.ndarray:
    """Numerically stable log-softmax along ``axis``."""
    x = np.asarray(x, dtype=np.float32)
    shifted = x - np.max(x, axis=axis, keepdims=True)
    return shifted - np.log(np.sum(np.exp(shifted), axis=axis, keepdims=True))


def silu(x: np.ndarray) -> np.ndarray:
    """SiLU / swish activation: ``x * sigmoid(x)``.

    Uses the tanh form of the sigmoid, which never overflows.
    """
    x = np.asarray(x, dtype=np.float32)
    return x * 0.5 * (1.0 + np.tanh(0.5 * x))


def gelu(x: np.ndarray) -> np.ndarray:
    """GELU activation (tanh approximation, as used by most LLMs)."""
    x = np.asarray(x, dtype=np.float32)
    return 0.5 * x * (1.0 + np.tanh(0.7978845608028654 * (x + 0.044715 * x * x * x)))


def swiglu(gate: np.ndarray, up: np.ndarray) -> np.ndarray:
    """Gated activation used by SwiGLU FFNs: ``silu(gate) * up``."""
    return silu(gate) * np.asarray(up, dtype=np.float32)


def rms_norm(x: np.ndarray, weight: np.ndarray, eps: float = 1e-6) -> np.ndarray:
    """Root-mean-square LayerNorm over the last axis."""
    x = np.asarray(x, dtype=np.float32)
    var = np.mean(x * x, axis=-1, keepdims=True)
    return x * (1.0 / np.sqrt(var + eps)) * weight


def rope_frequencies(head_dim: int, max_positions: int, base: float = 10000.0) -> np.ndarray:
    """Precompute complex rotary-embedding phases of shape
    ``(max_positions, head_dim // 2)``."""
    if head_dim % 2 != 0:
        raise ValueError(f"head_dim must be even for RoPE, got {head_dim}")
    inv_freq = 1.0 / (base ** (np.arange(0, head_dim, 2, dtype=np.float64) / head_dim))
    t = np.arange(max_positions, dtype=np.float64)
    angles = np.outer(t, inv_freq)
    return np.exp(1j * angles).astype(np.complex64)


def apply_rope(x: np.ndarray, phases: np.ndarray, positions: np.ndarray) -> np.ndarray:
    """Apply rotary position embeddings.

    Parameters
    ----------
    x:
        ``(..., seq, head_dim)`` queries or keys.
    phases:
        Output of :func:`rope_frequencies`.
    positions:
        ``(seq,)`` integer positions of each token.
    """
    x = np.asarray(x, dtype=np.float32)
    head_dim = x.shape[-1]
    pairs = x[..., 0::2] + 1j * x[..., 1::2]
    rotated = pairs * phases[positions]  # broadcasts over leading axes
    out = np.empty_like(x)
    out[..., 0::2] = rotated.real
    out[..., 1::2] = rotated.imag
    return out


def top_k_indices(x: np.ndarray, k: int, axis: int = -1) -> np.ndarray:
    """Indices of the ``k`` largest entries along ``axis``, sorted by
    descending value (deterministic tie-break by lower index, matching the
    behaviour of framework top-k kernels)."""
    if k <= 0:
        raise ValueError(f"k must be positive, got {k}")
    n = x.shape[axis]
    if k > n:
        raise ValueError(f"k={k} exceeds axis length {n}")
    # argpartition for O(n), then sort the k winners by value
    part = np.argpartition(-x, k - 1, axis=axis)
    topk = np.take(part, np.arange(k), axis=axis)
    vals = np.take_along_axis(x, topk, axis=axis)
    order = np.argsort(-vals, axis=axis, kind="stable")
    return np.take_along_axis(topk, order, axis=axis)


def causal_mask(q_len: int, kv_len: int, sliding_window: int = 0) -> np.ndarray:
    """Boolean mask of shape ``(q_len, kv_len)``; True where attention is
    allowed.  Query ``i`` attends to KV positions ``<= kv_len - q_len + i``
    (standard prefill-with-cache alignment).  A positive ``sliding_window``
    additionally restricts each query to the last ``sliding_window``
    positions (Mixtral-style)."""
    if kv_len < q_len:
        raise ValueError(f"kv_len ({kv_len}) must be >= q_len ({q_len})")
    if sliding_window < 0:
        raise ValueError("sliding_window must be non-negative")
    offset = kv_len - q_len
    rows = np.arange(q_len)[:, None]
    cols = np.arange(kv_len)[None, :]
    mask = cols <= rows + offset
    if sliding_window > 0:
        mask &= cols > rows + offset - sliding_window
    return mask
