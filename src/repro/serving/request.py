"""Request and sequence abstractions for the serving engine.

The simulator tracks token *counts* and timing rather than token ids (the
functional engine in :mod:`repro.tensor`/:mod:`repro.moe` covers numerics);
a :class:`Request` carries everything the scheduler and metrics need:
prompt length, generation budget, arrival time, and the per-phase
timestamps from which TTFT/ITL/E2E are derived.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

__all__ = ["SamplingParams", "RequestState", "Request"]


@dataclass(frozen=True)
class SamplingParams:
    """Generation controls (the subset that affects serving behaviour)."""

    max_tokens: int
    ignore_eos: bool = True
    """Benchmark mode: always generate exactly ``max_tokens``."""
    eos_probability: float = 0.0
    """Per-step chance of early stop when ``ignore_eos`` is False."""

    def __post_init__(self) -> None:
        if self.max_tokens <= 0:
            raise ValueError(f"max_tokens must be positive, got {self.max_tokens}")
        if not (0.0 <= self.eos_probability <= 1.0):
            raise ValueError("eos_probability must be in [0, 1]")


class RequestState(enum.Enum):
    WAITING = "waiting"
    RUNNING = "running"
    PREEMPTED = "preempted"
    FINISHED = "finished"
    FAILED = "failed"
    """Terminal failure: the request was abandoned with a recorded
    ``failure_reason`` (retry budget exhausted, unrecoverable fault, or a
    shape that can never be scheduled)."""


@dataclass
class Request:
    """One inference request moving through the engine.

    ``kv_tokens`` is the number of KV-cache slots currently filled.  A
    request needs prefill while ``kv_tokens < prompt_tokens +
    generated_tokens`` (after a recompute-preemption the generated prefix
    must be re-prefilled too, matching vLLM's recompute policy).
    """

    request_id: int
    prompt_tokens: int
    sampling: SamplingParams
    arrival_time: float = 0.0
    num_images: int = 0
    prompt_block_hashes: tuple[int, ...] = ()
    """Content hashes of the prompt's leading full KV blocks (each hash
    must incorporate its preceding context); enables prefix caching."""

    state: RequestState = RequestState.WAITING
    generated_tokens: int = 0
    kv_tokens: int = 0
    first_scheduled_time: float | None = None
    first_token_time: float | None = None
    finish_time: float | None = None
    num_preemptions: int = 0
    fault_retries: int = 0
    """Times this request was killed by a fault and resubmitted."""
    retry_time: float | None = None
    """Simulated time at which the current retry re-enters admission
    (None before the first fault); ``arrival_time`` keeps the original
    arrival so E2E latency includes the outage."""
    failure_reason: str | None = None

    def __post_init__(self) -> None:
        if self.prompt_tokens <= 0:
            raise ValueError(f"prompt_tokens must be positive, got {self.prompt_tokens}")
        if self.arrival_time < 0:
            raise ValueError("arrival_time must be non-negative")
        if self.num_images < 0:
            raise ValueError("num_images must be non-negative")

    @property
    def context_length(self) -> int:
        """Tokens currently occupying KV slots."""
        return self.kv_tokens

    @property
    def prefill_target(self) -> int:
        """KV slots that must be filled before decoding can (re)start.

        Fresh requests prefill the prompt.  After a recompute preemption
        the generated prefix is re-prefilled too — except the newest
        sampled token, whose KV slot the next decode step appends (the
        steady-state invariant is ``kv_tokens == prompt + generated - 1``;
        prefilling that slot as well would leave the sequence one slot
        ahead of token accounting for the rest of its life).
        """
        if self.generated_tokens == 0:
            return self.prompt_tokens
        return self.prompt_tokens + self.generated_tokens - 1

    @property
    def remaining_prefill(self) -> int:
        return max(0, self.prefill_target - self.kv_tokens)

    @property
    def is_prefill_pending(self) -> bool:
        return self.remaining_prefill > 0

    @property
    def total_length_budget(self) -> int:
        """Maximum KV footprint this request can reach."""
        return self.prompt_tokens + self.sampling.max_tokens

    @property
    def is_finished(self) -> bool:
        return self.state is RequestState.FINISHED

    @property
    def is_failed(self) -> bool:
        return self.state is RequestState.FAILED

    @property
    def is_terminal(self) -> bool:
        """Finished successfully or failed with a recorded reason."""
        return self.state in (RequestState.FINISHED, RequestState.FAILED)

    @property
    def effective_arrival_time(self) -> float:
        """When the request (re-)enters admission: the retry time after a
        fault kill, the original arrival otherwise."""
        return self.arrival_time if self.retry_time is None else self.retry_time

    # -- metric views ---------------------------------------------------- #

    @property
    def ttft(self) -> float | None:
        """Time to first token, or None if not yet produced."""
        if self.first_token_time is None:
            return None
        return self.first_token_time - self.arrival_time

    @property
    def e2e_latency(self) -> float | None:
        if self.finish_time is None:
            return None
        return self.finish_time - self.arrival_time

    def reset_for_recompute(self) -> None:
        """Preemption by recomputation: drop KV state; the prompt and the
        already-generated prefix are re-prefilled on resume."""
        self.kv_tokens = 0
        self.state = RequestState.PREEMPTED
        self.num_preemptions += 1

    def reset_for_retry(self, retry_time: float) -> None:
        """Fault kill + retry: generation restarts from scratch at
        ``retry_time`` (client-side resubmission semantics).  TTFT/E2E stay
        anchored to the original ``arrival_time``, so latency metrics price
        the outage."""
        self.kv_tokens = 0
        self.generated_tokens = 0
        self.first_scheduled_time = None
        self.first_token_time = None
        self.state = RequestState.WAITING
        self.fault_retries += 1
        self.retry_time = retry_time

    def fail(self, reason: str) -> None:
        """Terminal failure with a recorded reason (never silent)."""
        if not reason:
            raise ValueError("a failure needs a non-empty reason")
        self.kv_tokens = 0
        self.state = RequestState.FAILED
        self.failure_reason = reason
