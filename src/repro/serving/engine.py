"""Discrete-event serving engine (the vLLM substitute).

Drives the continuous-batching scheduler and paged KV cache through
simulated time, with iteration costs supplied by the analytical performance
model.  One engine iteration is either a prefill batch or a decode step
over all running sequences; its duration advances the simulation clock and
every request records its own TTFT / E2E timestamps.

This is the substrate behind the paper's serving-level measurements: the
same model/hardware deployment measured through the engine (with admission
queueing, KV pressure and preemption) rather than the closed-form phase
model.  An ablation bench compares the two.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

import numpy as np

from repro.core.metrics import GenerationShape, InferenceMetrics

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.faults.injector import FaultInjector
    from repro.obs.instrument import Instrumentation
from repro.perfmodel.inference import InferencePerfModel
from repro.serving.events import Event, EventLog, EventType
from repro.serving.fastpath import EngineFastPath, engine_vectorize_enabled
from repro.serving.kv_cache import DEFAULT_BLOCK_SIZE, PagedKVCache
from repro.serving.request import Request, RequestState, SamplingParams
from repro.serving.scheduler import ScheduledBatch, Scheduler, SchedulerConfig

__all__ = ["ServingResult", "ServingEngine", "serve_static_batch"]


@dataclass
class ServingResult:
    """Outcome of one engine run."""

    requests: list[Request]
    makespan: float
    log: EventLog
    kv_hit_rate: float = 0.0
    """Prefix-cache hit rate (0 when prefix caching is disabled)."""

    # latency-value lists are immutable once the engine has drained, so
    # the percentile accessors memoize them (p50+p99+mean would otherwise
    # each rescan ``requests``); nothing ever invalidates these
    _ttft_cache: list[float] | None = field(default=None, init=False, repr=False)
    _e2e_cache: list[float] | None = field(default=None, init=False, repr=False)
    _itl_cache: list[float] | None = field(default=None, init=False, repr=False)
    _agg_cache: tuple[int, int, int, int, int, int] | None = field(
        default=None, init=False, repr=False)
    _by_id_cache: dict[int, Request] | None = field(
        default=None, init=False, repr=False)

    def _aggregates(self) -> tuple[int, int, int, int, int, int]:
        """One pass over ``requests`` for every whole-run integer sum:
        ``(finished, failed, fault_retries, preemptions, prompt+generated
        tokens, generated tokens)``.  The aggregate properties each used
        to rescan the full list per access — analysis code reads several
        of them per run, so a single memoized scan replaces O(properties
        × requests) work.  Integer sums are order-independent, so the
        values are exactly what the per-property scans produced."""
        if self._agg_cache is None:
            finished = failed = retries = preemptions = 0
            total_tokens = generated = 0
            for r in self.requests:
                if r.is_finished:
                    finished += 1
                if r.is_failed:
                    failed += 1
                retries += r.fault_retries
                preemptions += r.num_preemptions
                total_tokens += r.prompt_tokens + r.generated_tokens
                generated += r.generated_tokens
            self._agg_cache = (finished, failed, retries, preemptions,
                               total_tokens, generated)
        return self._agg_cache

    @property
    def num_requests(self) -> int:
        return len(self.requests)

    @property
    def num_failed(self) -> int:
        """Requests that ended in terminal failure (fault injection)."""
        return self._aggregates()[1]

    @property
    def num_fault_retries(self) -> int:
        """Total fault-kill resubmissions across all requests."""
        return self._aggregates()[2]

    @property
    def availability(self) -> float:
        """Fraction of submitted requests served to completion — the
        serving-level availability under fault injection (1.0 on any
        healthy run)."""
        if not self.requests:
            return 1.0
        return self._aggregates()[0] / len(self.requests)

    @property
    def total_tokens(self) -> int:
        """Prompt + generated tokens over all requests (Eq. 2 numerator)."""
        return self._aggregates()[4]

    @property
    def throughput_tok_s(self) -> float:
        if self.makespan <= 0:
            return 0.0
        return self.total_tokens / self.makespan

    @property
    def generation_throughput_tok_s(self) -> float:
        if self.makespan <= 0:
            return 0.0
        return self._aggregates()[5] / self.makespan

    def _ttft_values(self) -> list[float]:
        if self._ttft_cache is None:
            vals = [r.ttft for r in self.requests if r.ttft is not None]
            if not vals:
                raise ValueError("no request produced a first token")
            self._ttft_cache = vals
        return self._ttft_cache

    def _e2e_values(self) -> list[float]:
        if self._e2e_cache is None:
            vals = [r.e2e_latency for r in self.requests if r.e2e_latency is not None]
            if not vals:
                raise ValueError("no request finished")
            self._e2e_cache = vals
        return self._e2e_cache

    def mean_ttft(self) -> float:
        return float(np.mean(self._ttft_values()))

    def mean_e2e(self) -> float:
        return float(np.mean(self._e2e_values()))

    def p50_ttft(self) -> float:
        return float(np.percentile(self._ttft_values(), 50))

    def p99_ttft(self) -> float:
        return float(np.percentile(self._ttft_values(), 99))

    def p99_e2e(self) -> float:
        return float(np.percentile(self._e2e_values(), 99))

    @staticmethod
    def _mean_itl(r: Request) -> float | None:
        """Per-request mean inter-token latency, or None when undefined
        (unfinished, no first token, or a single-token generation)."""
        if r.ttft is None or r.e2e_latency is None or r.generated_tokens <= 1:
            return None
        return (r.e2e_latency - r.ttft) / (r.generated_tokens - 1)

    def _itl_values(self) -> list[float]:
        if self._itl_cache is None:
            vals = [itl for r in self.requests
                    if (itl := self._mean_itl(r)) is not None]
            if not vals:
                raise ValueError(
                    "no request generated a second token (ITL undefined)"
                )
            self._itl_cache = vals
        return self._itl_cache

    @property
    def p50_itl(self) -> float:
        """Median of the per-request mean inter-token latencies."""
        return float(np.percentile(self._itl_values(), 50))

    @property
    def p99_itl(self) -> float:
        """p99 of the per-request mean inter-token latencies."""
        return float(np.percentile(self._itl_values(), 99))

    @property
    def num_preemptions(self) -> int:
        return self._aggregates()[3]

    def request(self, request_id: int) -> Request:
        """The request with ``request_id`` (lazily indexed: the first
        lookup builds an id → request dict, replacing the per-call linear
        scan; duplicate ids keep first-match semantics)."""
        if self._by_id_cache is None:
            index: dict[int, Request] = {}
            for r in self.requests:
                index.setdefault(r.request_id, r)
            self._by_id_cache = index
        try:
            return self._by_id_cache[request_id]
        except KeyError:
            raise KeyError(f"no request with id {request_id}") from None

    def token_times(self, request_id: int) -> list[float]:
        """Timestamps at which ``request_id`` received each output token
        (first token at prefill completion, then one per decode event) —
        the per-request ITL time-series."""
        times: list[float] = []
        for e in self.log.events:
            if request_id not in e.request_ids:
                continue
            if e.type is EventType.PREFILL:
                req = self.request(request_id)
                if req.first_token_time is not None and \
                        abs(req.first_token_time - e.time) < 1e-12:
                    times.append(e.time)
            elif e.type is EventType.DECODE:
                times.append(e.time)
        return times

    def slo_attainment(self, ttft_slo_s: float,
                       itl_slo_s: float | None = None) -> float:
        """Fraction of finished requests meeting the latency SLOs.

        A request attains when its TTFT is within ``ttft_slo_s`` and (when
        given) its *average* inter-token latency is within ``itl_slo_s`` —
        the standard goodput definition for LLM serving.
        """
        if ttft_slo_s <= 0:
            raise ValueError("ttft_slo_s must be positive")
        if itl_slo_s is not None and itl_slo_s <= 0:
            raise ValueError("itl_slo_s must be positive")
        finished = [r for r in self.requests if r.is_finished]
        if not finished:
            return 0.0
        ok = 0
        for r in finished:
            if r.ttft is None or r.ttft > ttft_slo_s:
                continue
            if itl_slo_s is not None:
                itl = self._mean_itl(r)
                if itl is not None and itl > itl_slo_s:
                    continue
            ok += 1
        return ok / len(finished)

    def goodput_tok_s(self, ttft_slo_s: float,
                      itl_slo_s: float | None = None) -> float:
        """Generated tokens/s counting only SLO-attaining requests."""
        if self.makespan <= 0:
            return 0.0
        total = 0
        for r in self.requests:
            if not r.is_finished or r.ttft is None or r.ttft > ttft_slo_s:
                continue
            if itl_slo_s is not None:
                itl = self._mean_itl(r)
                if itl is not None and itl > itl_slo_s:
                    continue
            total += r.generated_tokens
        return total / self.makespan


class ServingEngine:
    """Continuous-batching engine over a simulated deployment."""

    def __init__(
        self,
        perf_model: InferencePerfModel,
        scheduler_config: SchedulerConfig | None = None,
        block_size: int = DEFAULT_BLOCK_SIZE,
        kv_pool_tokens: int | None = None,
        rng: np.random.Generator | None = None,
        enable_prefix_caching: bool = False,
        instrumentation: "Instrumentation | None" = None,
        fault_injector: "FaultInjector | None" = None,
    ) -> None:
        self.perf = perf_model
        if kv_pool_tokens is None:
            kv_pool_tokens = perf_model.memory.max_context_tokens()
        if kv_pool_tokens < block_size:
            raise ValueError(
                f"{perf_model.model.name}: KV pool of {kv_pool_tokens} tokens "
                "is smaller than one block — the model's weights do not leave "
                "room for a cache on this deployment (OOM)"
            )
        if enable_prefix_caching:
            from repro.serving.prefix_cache import PrefixCachingKVCache

            self.kv: PagedKVCache = PrefixCachingKVCache(
                kv_pool_tokens // block_size, block_size
            )
        else:
            self.kv = PagedKVCache(kv_pool_tokens // block_size, block_size)
        self.obs = instrumentation
        self.kv.obs = instrumentation
        self.scheduler = Scheduler(scheduler_config or SchedulerConfig(), self.kv,
                                   instrumentation=instrumentation)
        self.clock = 0.0
        self.log = EventLog()
        self._rng = rng or np.random.default_rng(0)
        self._pending: list[Request] = []  # future arrivals, sorted
        self._all: list[Request] = []
        self.faults = fault_injector
        """Optional fault injector; ``None`` (or an unarmed schedule)
        leaves the engine's behaviour bit-identical to the default."""
        stats = perf_model.steps.cache_stats()
        self._stepcache_at_start = (stats.hits, stats.misses)
        """Step-cache counter snapshot; ``run()`` reports the run's own
        hit/miss delta through the metrics registry."""
        self.fastpath = EngineFastPath(self) if engine_vectorize_enabled() \
            else None
        """Batched decode-window advance (phase-2 fast path), or ``None``
        under ``REPRO_NO_VECTORIZE_ENGINE``.  Bit-identical to repeated
        ``step()`` calls by construction; it additionally falls back
        per-window whenever instrumentation is active, a fault schedule
        is armed, or the next iteration is not a quiet decode step (see
        :mod:`repro.serving.fastpath`)."""

    def _active_obs(self) -> "Instrumentation | None":
        obs = self.obs
        return obs if obs is not None and obs.active else None

    # ------------------------------------------------------------------ #
    # submission
    # ------------------------------------------------------------------ #

    def submit(self, request: Request) -> None:
        """Queue a request (rejects shapes that can never fit the pool)."""
        capacity = self.kv.num_blocks * self.kv.block_size
        if request.total_length_budget > capacity:
            raise ValueError(
                f"request {request.request_id} needs {request.total_length_budget} "
                f"KV slots but the pool holds {capacity}"
            )
        self._all.append(request)
        self._pending.append(request)
        self._pending.sort(key=lambda r: r.effective_arrival_time)
        obs = self._active_obs()
        if obs is not None:
            obs.metrics.counter(
                "requests_submitted_total", "requests submitted to the engine"
            ).inc()

    def requeue(self, request: Request) -> None:
        """Resubmit a fault-killed request for a later retry: it re-enters
        admission at ``request.effective_arrival_time`` (the backoff
        deadline), while latency metrics stay anchored to the original
        arrival."""
        self._pending.append(request)
        self._pending.sort(key=lambda r: r.effective_arrival_time)

    def in_flight(self) -> list[Request]:
        """Admitted, non-terminal requests (running first, then waiting) —
        the population a fault can kill.  Requests still in ``_pending``
        are client-side and unaffected by cluster faults."""
        return list(self.scheduler.running) + list(self.scheduler.waiting)

    # ------------------------------------------------------------------ #
    # simulation loop
    # ------------------------------------------------------------------ #

    def _admit_arrivals(self) -> None:
        obs = self._active_obs()
        while self._pending and \
                self._pending[0].effective_arrival_time <= self.clock + 1e-12:
            req = self._pending.pop(0)
            self.log.record(Event(self.clock, EventType.ARRIVAL, (req.request_id,)))
            if obs is not None:
                obs.tracer.instant("arrival", self.clock, cat="engine",
                                   request_id=req.request_id)
                if obs.reqtrace is not None:
                    obs.reqtrace.on_admit(req, self.clock)
            self.scheduler.add_request(req)

    def _iteration_cost(
        self, batch: ScheduledBatch, want_components: bool = False
    ) -> tuple[float, dict[str, float] | None,
               tuple[float, float, float, float | None]]:
        """Duration of one iteration, optionally with its per-component
        decomposition (profiler spans), plus the perf-model step shape
        ``(num_tokens, batch, kv_len, attended_len)`` so cluster telemetry
        can re-derive link bytes and sparse/dense costs from the exact
        step that advanced the clock.  The duration is computed through
        the exact same perf-model calls either way, so enabling components
        cannot perturb simulated results."""
        reqs = batch.requests
        if batch.phase == "prefill":
            # exact np.mean replay: the pairwise float64 sum of integer
            # token counts is the exact integer sum (< 2**53), and the
            # division is the same correctly-rounded float64 op
            mean_ctx = sum(r.kv_tokens + self.scheduler._prefill_tokens_for(r)
                           for r in reqs) / len(reqs)
            shape = (float(batch.num_tokens), float(batch.batch_size),
                     mean_ctx, (mean_ctx + 1) / 2.0)
            if not want_components:
                t = self._step_total(batch.num_tokens, batch.batch_size,
                                     mean_ctx, "prefill", (mean_ctx + 1) / 2.0)
                images = sum(r.num_images for r in reqs)
                if images:
                    t += self.perf.steps.vision_encode_time(images)
                return t, None, shape
            bd = self.perf.steps.step_breakdown(
                num_tokens=batch.num_tokens,
                batch=batch.batch_size,
                kv_len=mean_ctx,
                phase="prefill",
                attended_len=(mean_ctx + 1) / 2.0,
            )
            t = bd.total
            vision = 0.0
            images = sum(r.num_images for r in reqs)
            if images:
                vision = self.perf.steps.vision_encode_time(images)
                t += vision
            return t, self._components_of(bd, vision), shape
        mean_ctx = sum(r.kv_tokens for r in reqs) / len(reqs)
        ctx = max(1, int(mean_ctx))
        shape = (float(batch.batch_size), float(batch.batch_size),
                 float(ctx), None)
        if not want_components:
            return (self._step_total(batch.batch_size, batch.batch_size,
                                     ctx, "decode"), None, shape)
        # decode_step_time is step_breakdown().total — same floats, but the
        # breakdown is kept so the profiler can attribute the step
        bd = self.perf.steps.step_breakdown(
            num_tokens=batch.batch_size, batch=batch.batch_size,
            kv_len=ctx, phase="decode",
        )
        return bd.total, self._components_of(bd, 0.0), shape

    def _step_total(self, num_tokens: int, batch: int, kv_len: float,
                    phase: str, attended_len: float | None = None) -> float:
        """One iteration's total seconds without the component breakdown:
        the bit-identical one-point vectorized evaluation when the fast
        path is attached (skipping the per-layer scalar loop on step-cache
        misses), else the scalar perf-model call through the step cache."""
        fastpath = self.fastpath
        if fastpath is not None and fastpath.vector is not None:
            return fastpath.step_total(num_tokens, batch, kv_len, phase,
                                       attended_len)
        if phase == "decode":
            return self.perf.steps.decode_step_time(batch, kv_len)
        return self.perf.steps.step_breakdown(
            num_tokens=num_tokens, batch=batch, kv_len=kv_len,
            phase=phase, attended_len=attended_len,
        ).total

    @staticmethod
    def _components_of(bd, vision: float) -> dict[str, float]:
        """Profiler component taxonomy from a :class:`PhaseBreakdown`:
        the router is carved out of the expert FFN, collectives map to
        ``interconnect``; zero components are dropped.

        The taxonomy of a breakdown never changes, and step-cached
        breakdowns recur across iterations, so the vision-free dict is
        built once and memoized on ``bd``.  Callers get a fresh copy each
        time because the fault injector scales components in place."""
        comps = bd.__dict__.get("_serving_components")
        if comps is None:
            router = bd.subcomponents.get("router", 0.0)
            comps = {
                "attention": bd.components.get("attention", 0.0),
                "router": router,
                "expert_ffn": bd.components.get("moe_ffn", 0.0) - router,
                "dense_ffn": bd.components.get("dense_ffn", 0.0),
                "embedding": bd.components.get("embedding", 0.0),
                "lm_head": bd.components.get("lm_head", 0.0),
                "interconnect": bd.comm,
                "pipeline": bd.pipeline,
                "overhead": bd.overhead,
            }
            comps = {k: v for k, v in comps.items() if v > 0}
            bd.__dict__["_serving_components"] = comps
        out = dict(comps)
        if vision > 0:
            out["vision_encode"] = vision
        return out

    def advance_window(self, horizon: float = math.inf) -> int:
        """Advance a run of pure decode iterations in one batched pass,
        bounded by ``horizon`` (an iteration starts only while
        ``clock < horizon``; the last one may overshoot, exactly like a
        scalar iteration).  Returns the iterations advanced; 0 means the
        next iteration needs the scalar :meth:`step` — admission, prefill,
        completion, preemption, faults, or instrumentation."""
        if self.fastpath is None:
            return 0
        return self.fastpath.decode_window(horizon)

    def step(self) -> bool:
        """Run one engine iteration; returns False when nothing remains."""
        faults = self.faults if self.faults is not None and \
            self.faults.active else None
        if faults is not None:
            faults.advance_to(self.clock, self)
        self._admit_arrivals()
        if not self.scheduler.has_unfinished:
            if not self._pending:
                return False
            self.clock = self._pending[0].effective_arrival_time
            if faults is not None:
                # apply faults/heals due before the next arrival is admitted
                faults.advance_to(self.clock, self)
            self._admit_arrivals()

        obs = self._active_obs()
        if obs is not None:
            obs.now = self.clock
            obs.tracer.begin("engine.step", self.clock, cat="engine",
                             iteration=self.log.num_iterations)
            obs.tracer.begin("scheduler.schedule", self.clock, cat="scheduler")
        batch = self.scheduler.schedule()
        if obs is not None:
            obs.tracer.end(self.clock, phase=batch.phase,
                           batch_size=batch.batch_size,
                           num_tokens=batch.num_tokens,
                           preempted=len(batch.preempted))
        if batch.is_empty:
            if batch.preempted:
                self.log.record(Event(
                    self.clock, EventType.PREEMPTION,
                    tuple(r.request_id for r in batch.preempted),
                ))
                if obs is not None:
                    obs.tracer.end(self.clock, outcome="all_preempted")
                return True
            if self._pending:
                self.clock = self._pending[0].effective_arrival_time
                if obs is not None:
                    obs.tracer.end(self.clock, outcome="idle_until_arrival")
                return True
            if faults is not None and self._resolve_starvation(faults, obs):
                return True
            raise RuntimeError("scheduler starved with no pending arrivals")

        if obs is not None:
            obs.tracer.begin("perfmodel.iteration_cost", self.clock,
                             cat="perfmodel")
        duration_s, components, step_shape = self._iteration_cost(
            batch,
            want_components=obs is not None
            or (faults is not None and faults.needs_components),
        )
        if faults is not None:
            # price degraded links / lost devices / reduced top-k through
            # the component breakdown (no-op while the cluster is healthy)
            duration_s = faults.adjust(duration_s, components)
        t_start = self.clock
        if obs is not None:
            obs.tracer.end(self.clock, phase=batch.phase, seconds=duration_s)
        self.clock += duration_s
        if obs is not None:
            obs.now = self.clock
            obs.tracer.begin(f"engine.{batch.phase}", t_start, cat=batch.phase,
                             batch_size=batch.batch_size,
                             num_tokens=batch.num_tokens,
                             kv_utilization=round(self.kv.utilization, 4))
            if components:
                self._emit_component_spans(obs, batch.phase, components,
                                           t_start)

        if batch.preempted:
            self.log.record(Event(
                self.clock, EventType.PREEMPTION,
                tuple(r.request_id for r in batch.preempted),
            ))

        if batch.phase == "prefill":
            for req in batch.requests:
                if req.first_scheduled_time is None:
                    req.first_scheduled_time = self.clock - duration_s
                if obs is not None and obs.reqtrace is not None:
                    obs.reqtrace.on_prefill(
                        req, self.clock - duration_s, self.clock,
                        tokens=self.scheduler._prefill_tokens_for(req))
            self.scheduler.on_prefill_done(batch)
            for req in batch.requests:
                if not req.is_prefill_pending and req.first_token_time is None:
                    # the prefill iteration samples the first output token
                    req.generated_tokens = 1
                    req.first_token_time = self.clock
                    if obs is not None:
                        trace_id = None
                        if obs.reqtrace is not None:
                            trace_id = obs.reqtrace.on_first_token(
                                req, self.clock)
                        obs.metrics.histogram(
                            "ttft_seconds", "time to first token"
                        ).observe(req.ttft, trace_id=trace_id)
            self.log.record(Event(
                self.clock, EventType.PREFILL,
                tuple(r.request_id for r in batch.requests),
                num_tokens=batch.num_tokens, duration_s=duration_s,
                kv_utilization=self.kv.utilization,
            ))
            self._finish_completed(batch.requests)
        else:
            finished: list[Request] = []
            for req in batch.requests:
                req.generated_tokens += 1
                req.kv_tokens += 1
                if obs is not None and obs.reqtrace is not None:
                    obs.reqtrace.on_decode(req, t_start, self.clock,
                                           batch_size=batch.batch_size)
                if self._is_done(req):
                    finished.append(req)
            self.log.record(Event(
                self.clock, EventType.DECODE,
                tuple(r.request_id for r in batch.requests),
                num_tokens=batch.num_tokens, duration_s=duration_s,
                kv_utilization=self.kv.utilization,
            ))
            self._complete(finished)
        if obs is not None:
            self._observe_iteration(obs, batch, duration_s, components,
                                    step_shape)
        return True

    def _resolve_starvation(self, faults: "FaultInjector",
                            obs: "Instrumentation | None") -> bool:
        """Starved under an armed fault schedule: idle-advance to the next
        fault/heal that may unblock the pool, or fail the requests that can
        never fit.  Returns True when the run can make progress again
        (including by draining doomed work), False for a genuine livelock.
        """
        next_time = faults.next_event_time(self.clock)
        if next_time is not None:
            # a future heal may release the reservation blocking admission
            self.clock = next_time
            if obs is not None:
                obs.tracer.end(self.clock, outcome="idle_until_fault_event")
            return True
        doomed = self.scheduler.never_schedulable()
        if doomed:
            for req in doomed:
                self.scheduler.evict(req)
                req.fail(
                    "insufficient KV capacity: the fault reservation leaves "
                    f"room for {self.kv.available_blocks} blocks but the "
                    f"request needs {self.kv.blocks_needed(req.prefill_target)}"
                )
                if obs is not None:
                    if obs.reqtrace is not None:
                        obs.reqtrace.on_fail(req, self.clock,
                                             reason="never_schedulable")
                    if obs.slo is not None:
                        obs.slo.on_request_terminal(req, self.clock)
            self.log.record(Event(
                self.clock, EventType.FAIL,
                tuple(r.request_id for r in doomed),
                detail="never schedulable under permanent KV reservation",
            ))
            if obs is not None:
                obs.tracer.end(self.clock, outcome="failed_unschedulable")
            return True
        return False

    def _emit_component_spans(self, obs: "Instrumentation", phase: str,
                              components: dict[str, float],
                              t_start: float) -> None:
        """Tile this iteration's per-component times onto the dedicated
        ``components`` track as nested simulated-time spans.

        Components are laid out sequentially from ``t_start``; the last
        span is clamped to the iteration end, so the track tiles the
        engine's busy time exactly and folded-stack totals sum to the
        simulated time (up to float accumulation)."""
        tracer = obs.tracer
        tracer.begin(phase, t_start, track="components", cat="component")
        t = t_start
        last = len(components) - 1
        for i, (name, secs) in enumerate(components.items()):
            tracer.begin(name, t, track="components", cat="component")
            t = self.clock if i == last else min(t + secs, self.clock)
            tracer.end(t, track="components", seconds=secs)
        tracer.end(self.clock, track="components")

    def _observe_iteration(
        self, obs: "Instrumentation", batch: ScheduledBatch,
        duration_s: float, components: dict[str, float] | None = None,
        step_shape: tuple[float, float, float, float | None] | None = None,
    ) -> None:
        """Close the phase/step spans and update per-iteration metrics."""
        tracer = obs.tracer
        tracer.end(self.clock)  # engine.<phase>
        tracer.end(self.clock)  # engine.step
        tracer.counter("kv_utilization", self.clock,
                       {"utilization": self.kv.utilization})
        tracer.counter("scheduler_queues", self.clock,
                       {"running": self.scheduler.num_running,
                        "waiting": len(self.scheduler.waiting)})
        phase = {"phase": batch.phase}
        obs.metrics.counter(
            "engine_iterations_total", "engine iterations", labels=phase
        ).inc()
        obs.metrics.counter(
            "tokens_processed_total", "new tokens processed", labels=phase
        ).inc(batch.num_tokens)
        obs.metrics.histogram(
            "step_time_seconds", "simulated iteration duration", labels=phase
        ).observe(duration_s)
        if obs.routing is not None:
            obs.routing.on_tokens(batch.num_tokens)
        if obs.cluster is not None and step_shape is not None:
            # after the routing probe, so heat windows closing at this
            # iteration's end include its routed tokens
            num_tokens, batch_size, kv_len, attended_len = step_shape
            obs.cluster.on_iteration(
                self.clock - duration_s, self.clock, components or {},
                phase=batch.phase, num_tokens=num_tokens, batch=batch_size,
                kv_len=kv_len, attended_len=attended_len)
        if obs.alerts is not None:
            obs.alerts.on_iteration(self)

    def _is_done(self, req: Request) -> bool:
        if req.generated_tokens >= req.sampling.max_tokens:
            return True
        if not req.sampling.ignore_eos and req.sampling.eos_probability > 0:
            return bool(self._rng.random() < req.sampling.eos_probability)
        return False

    def _finish_completed(self, reqs: list[Request]) -> None:
        """Handle max_tokens==1 requests that finish at prefill.

        The freshly sampled first token's KV slot is only appended on the
        next decode step, so ``is_prefill_pending`` is momentarily true
        here — completion is judged on the sampled-token count instead.
        """
        done = [r for r in reqs if r.first_token_time is not None
                and r.state is RequestState.RUNNING and self._is_done(r)]
        self._complete(done)

    def _complete(self, finished: list[Request]) -> None:
        if not finished:
            return
        self.scheduler.on_decode_done(
            ScheduledBatch(phase="decode", requests=finished, num_tokens=0), finished
        )
        obs = self._active_obs()
        for req in finished:
            req.finish_time = self.clock
            self.log.record(Event(self.clock, EventType.FINISH, (req.request_id,)))
            if obs is None:
                continue
            obs.tracer.instant("finish", self.clock, cat="engine",
                               request_id=req.request_id)
            trace_id = None
            if obs.reqtrace is not None:
                trace_id = obs.reqtrace.on_finish(req, self.clock)
            if obs.slo is not None:
                obs.slo.on_request_terminal(req, self.clock)
            obs.metrics.counter(
                "requests_finished_total", "requests served to completion"
            ).inc()
            obs.metrics.histogram(
                "e2e_latency_seconds", "arrival-to-finish latency"
            ).observe(req.e2e_latency, trace_id=trace_id)
            itl = ServingResult._mean_itl(req)
            if itl is not None:
                obs.metrics.histogram(
                    "itl_seconds", "mean inter-token latency per request"
                ).observe(itl, trace_id=trace_id)

    def run(self, max_iterations: int = 10_000_000) -> ServingResult:
        """Run until every submitted request is terminal (finished, or —
        under fault injection — failed with a recorded reason)."""
        iterations = 0
        while True:
            advanced = self.advance_window()
            if advanced:
                iterations += advanced
            elif self.step():
                iterations += 1
            else:
                break
            if iterations > max_iterations:
                raise RuntimeError(f"engine exceeded {max_iterations} iterations")
        stats = getattr(self.kv, "stats", None)
        result = ServingResult(
            requests=list(self._all), makespan=self.clock, log=self.log,
            kv_hit_rate=stats.hit_rate if stats is not None else 0.0,
        )
        obs = self._active_obs()
        if obs is not None:
            obs.metrics.gauge(
                "engine_makespan_seconds", "simulated time to drain the run"
            ).set(result.makespan)
            obs.metrics.gauge(
                "engine_throughput_tok_s", "prompt+generated tokens per second"
            ).set(result.throughput_tok_s)
            stats = self.perf.steps.cache_stats()
            h0, m0 = self._stepcache_at_start
            obs.metrics.gauge(
                "stepcache_hits_total", "step-cache hits since engine construction"
            ).set(stats.hits - h0)
            obs.metrics.gauge(
                "stepcache_misses_total", "step-cache misses since engine construction"
            ).set(stats.misses - m0)
            if obs.cluster is not None:
                # before alerts, so end-of-run rules see final gauges
                obs.cluster.on_run_end(result.makespan, obs.metrics)
            if obs.alerts is not None:
                obs.alerts.on_run_end(self, result)
        return result


def serve_static_batch(
    perf_model: InferencePerfModel,
    batch: int,
    input_tokens: int,
    output_tokens: int,
    scheduler_config: SchedulerConfig | None = None,
) -> tuple[InferenceMetrics, ServingResult]:
    """Serve a fixed batch through the engine and report paper metrics.

    The engine-measured counterpart of
    :meth:`repro.perfmodel.InferencePerfModel.generate` — same shape,
    measured through admission/scheduling instead of closed form.
    """
    engine = ServingEngine(perf_model, scheduler_config=scheduler_config)
    for i in range(batch):
        engine.submit(Request(
            request_id=i,
            prompt_tokens=input_tokens,
            sampling=SamplingParams(max_tokens=output_tokens),
        ))
    result = engine.run()
    shape = GenerationShape(batch, input_tokens, output_tokens)
    metrics = InferenceMetrics(
        shape=shape, ttft_s=result.mean_ttft(), e2e_latency_s=result.makespan
    )
    return metrics, result
