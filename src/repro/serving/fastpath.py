"""Batched decode advance for the serving engine (fast path, phase 2).

The engine's inner loop is one Python iteration per decode step: schedule
(grow every running sequence by one KV slot), price the step through the
perf model, advance the clock, record one event.  Between scheduling
boundaries — an arrival being admitted, a sequence finishing, the KV pool
running dry — nothing about the *decision structure* of those iterations
changes: the batch is the same ``running`` list every time, no request
finishes, no preemption fires.  :class:`EngineFastPath` detects such a
run and advances the whole window at once: the per-iteration step costs
are priced in one :class:`~repro.perfmodel.vectorized.VectorizedStepModel`
array pass, KV block-crossing iterations are precomputed arithmetically,
and request/block-table counters are committed with one addition per
sequence instead of one per token.

The iterations a window cannot take — admission prefills and the
completing decode step at each request's end — still run through the
scalar ``step()``, but their durations are priced through
:meth:`EngineFastPath.step_total`: a decode memo keyed on
``(batch, context)`` (pre-filled by the window plans, which price one
step past their own end exactly so the completing iteration hits), with
one-point vectorized evaluation as the miss path.  This replaces the
scalar per-layer Python loop on every step-cache miss, which profiling
shows dominates serving-heavy wallclock.

**Bit-identity contract.**  The fingerprint gate digests ``repr()`` of
every float and the chaos/fleet digests hash the event stream via
``float.hex``, so the fast path must reproduce the scalar path operand
for operand:

* the clock stays *sequential* accumulation (``clock = clock + d`` per
  iteration — ``n`` additions are not a multiplication in IEEE-754);
* the mean context of ``_iteration_cost`` is replayed as the exact
  integer sum ``(kv_sum + j * batch) / batch`` (``np.mean`` over Python
  ints is a pairwise float64 sum, exact below 2**53, divided by the
  batch — the same correctly-rounded division);
* durations come from the ``VectorizedStepModel`` mirrors, proven
  bit-identical to ``decode_step_time`` / ``step_breakdown().total`` by
  the PR-4 parity suite, or from the scalar calls themselves (through
  the step cache) when the deployment uses a :class:`StepModel` subclass
  the vectorized mirror does not support;
* KV blocks are popped through ``PagedKVCache.append_block`` in the
  scalar order — iteration-major, then running order — so prefix-cache
  eviction (which pops LRU reusable blocks) sees the identical request
  stream.

**Fallback rules.**  A window is only entered when the scalar iteration
would be "quiet"; anything else returns 0 and the caller runs the plain
``step()``.  The window refuses to start (or breaks) when:

* ``REPRO_NO_VECTORIZE_ENGINE`` is set (checked once at engine
  construction — see ``ServingEngine.fastpath``);
* instrumentation is active (spans, metrics and step-cache gauges must
  see every iteration) or a fault schedule is armed (faults advance on
  the scalar clock and may perturb durations);
* the waiting queue is non-empty (the next iteration may prefill) or a
  pending arrival is due at or before the current clock;
* any running request samples EOS (``eos_probability > 0`` without
  ``ignore_eos``) — those draw engine RNG once per token, and RNG order
  is part of the replay contract;
* the next iteration would finish a request (windows stop one iteration
  short of the earliest ``max_tokens`` completion) or needs more KV
  blocks than are available (the preemption decision stays scalar).

A window bounded by a fleet horizon resumes on the next
``Replica.advance_to`` with every remaining duration already in the
decode memo — this is what amortizes replica stepping across fleet
events.
"""

from __future__ import annotations

import os
from typing import TYPE_CHECKING

from repro.perfmodel import stepcache
from repro.perfmodel.vectorized import VectorizedStepModel, supports
from repro.serving.events import Event, EventType

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.serving.engine import ServingEngine

__all__ = ["EngineFastPath", "engine_vectorize_enabled"]

_MAX_WINDOW = 4096
"""Iterations priced per array pass (bounds plan memory; windows longer
than this simply split, resuming against the warmed decode memo)."""


def engine_vectorize_enabled() -> bool:
    """Whether the batched decode window is enabled (the escape hatch is
    ``REPRO_NO_VECTORIZE_ENGINE=1``, mirroring ``REPRO_NO_VECTORIZE`` for
    the sweep fast path)."""
    return os.environ.get("REPRO_NO_VECTORIZE_ENGINE", "") in ("", "0")


class EngineFastPath:
    """Batched decode-window advance for one :class:`ServingEngine`."""

    def __init__(self, engine: "ServingEngine") -> None:
        self.engine = engine
        steps = engine.perf.steps
        self.vector = VectorizedStepModel(steps) if supports(steps) else None
        """Array mirror of the deployment's step model, or ``None`` for
        step-model subclasses (ablations) — those fall back to scalar
        perf-model calls through the step cache, keeping the window's
        bookkeeping wins."""
        self._cache = stepcache.GLOBAL
        shared = self._cache.enabled
        self._totals = self._cache.totals if shared else {}
        """Prefill-shape → step-total-seconds memo, filled one point at a
        time by :meth:`step_total` misses and keyed
        ``(setup_id, num_tokens, batch, kv_len, attended_len)``.  Shared
        through the global step cache so fleet replicas (one perf model,
        many engines) and sweep points (equal setups intern to one id)
        reuse each other's evaluations.  Values are bit-identical to the
        scalar calls, so sharing affects wallclock only.  Private
        per-engine when the step cache is disabled."""
        self._decode_plans = self._cache.decode_plans if shared else {}
        """``(setup_id, batch) -> {context: seconds}`` decode memo (see
        ``StepCache.decode_plans``), filled array-at-a-time by the window
        plans and one point at a time by :meth:`step_total` misses."""
        self._plan_by_batch: dict[int, dict[int, float]] = {}
        """This engine's view of :attr:`_decode_plans` keyed by batch
        alone (the setup id is fixed per engine), so hot probes skip the
        outer tuple key."""
        self._sid = steps.setup_id

    # ------------------------------------------------------------------ #

    def _put(self, key: tuple, total: float) -> None:
        """Bounded memo insert (deterministic wholesale clear, matching the
        step cache's eviction discipline)."""
        memo = self._totals
        if len(memo) >= self._cache.max_entries:
            memo.clear()
        memo[key] = total

    def _plan(self, batch: int) -> dict[int, float]:
        """The shared ``{context: seconds}`` decode memo for ``batch``."""
        plan = self._plan_by_batch.get(batch)
        if plan is None:
            plans = self._decode_plans
            if len(plans) >= self._cache.max_entries:
                plans.clear()
                self._plan_by_batch.clear()
            plan = plans.setdefault((self._sid, batch), {})
            self._plan_by_batch[batch] = plan
        return plan

    def step_total(self, num_tokens: int, batch: int, kv_len: float,
                   phase: str, attended_len: float | None = None) -> float:
        """One iteration's total seconds through the vectorized mirror —
        the values ``step_breakdown(...).total`` / ``decode_step_time``
        produce, without the per-layer scalar loop.  Every shape memoizes
        in the shared totals tables (windows pre-fill decode entries,
        including one step past their own end for the completing
        iteration).  Callers must check :attr:`vector` is not ``None``."""
        if phase == "decode":
            plan = self._plan(batch)
            total = plan.get(kv_len)
            if total is None:
                total = self.vector.step_total_one(batch, batch, kv_len)
                plan[kv_len] = total
            return total
        key = (self._sid, num_tokens, batch, kv_len, attended_len)
        total = self._totals.get(key)
        if total is None:
            total = self.vector.step_total_one(
                num_tokens, batch, kv_len, attended_len)
            self._put(key, total)
        return total

    def _window_durations(self, batch: int, kv_sum: int,
                          limit: int) -> list[float] | None:
        """Per-iteration decode durations for a window of ``limit`` steps
        starting from total context ``kv_sum`` over ``batch`` sequences,
        or ``None`` to use scalar ``decode_step_time`` probes.

        Iteration ``j`` (0-based) prices at context
        ``max(1, int((kv_sum + j * batch) / batch))`` — the exact value
        ``_iteration_cost`` computes from the pre-iteration ``kv_tokens``.
        One extra point past the window end is priced into the memo: that
        is the completing iteration the scalar ``step()`` takes next, so
        its :meth:`step_total` lookup hits.  Windows resumed after a
        fleet-horizon break find every remaining context memoized."""
        if self.vector is None:
            return None
        plan = self._plan(batch)
        contexts = [max(1, int((kv_sum + j * batch) / batch))
                    for j in range(limit + 1)]
        missing = sorted({c for c in contexts if c not in plan})
        if missing:
            totals = self.vector.decode_totals([batch] * len(missing), missing)
            for c, t in zip(missing, totals):
                plan[c] = t
        return [plan[contexts[j]] for j in range(limit)]

    def decode_window(self, horizon: float) -> int:
        """Advance as many pure decode iterations as possible, bounded by
        ``horizon`` (exclusive on entry: an iteration starts only while
        ``clock < horizon``, matching ``Replica.advance_to``'s may-
        overshoot-by-one contract).  Returns the number of iterations
        advanced; 0 means the scalar ``step()`` must take the next one.
        State is untouched whenever 0 is returned."""
        engine = self.engine
        if engine._active_obs() is not None:
            return 0
        if engine.faults is not None and engine.faults.active:
            return 0
        scheduler = engine.scheduler
        running = scheduler.running
        if not running or scheduler.waiting:
            return 0
        pending = engine._pending
        next_arrival = pending[0].effective_arrival_time if pending else None
        clock = engine.clock
        if next_arrival is not None and next_arrival <= clock + 1e-12:
            return 0
        if clock >= horizon:
            return 0

        # window length: one short of the earliest max_tokens finish (the
        # completing iteration mutates the running set, so step() owns it)
        limit = _MAX_WINDOW
        kv_sum = 0
        for req in running:
            sampling = req.sampling
            if not sampling.ignore_eos and sampling.eos_probability > 0:
                return 0  # per-token EOS draws: the scalar path owns the RNG
            headroom = sampling.max_tokens - req.generated_tokens - 1
            if headroom < limit:
                limit = headroom
            kv_sum += req.kv_tokens
        if limit < 1:
            return 0

        # KV block-crossing schedule: sequence i first needs a block at
        # the iteration its free slots run out, then every block_size
        # steps.  Tuple sort yields the scalar pop order (iteration-major,
        # then running order within one step).
        kv = engine.kv
        batch = len(running)
        block_size = kv.block_size
        kv_tables = kv._tables
        tables = [kv_tables[r.request_id] for r in running]
        crossings: list[tuple[int, int]] = []
        add_crossing = crossings.append
        for i, table in enumerate(tables):
            j = len(table.blocks) * block_size - table.num_tokens + 1
            while j <= limit:
                add_crossing((j, i))
                j += block_size
        crossings.sort()
        total_pops = len(crossings)

        durations = self._window_durations(batch, kv_sum, limit)
        steps = engine.perf.steps
        request_ids = tuple(r.request_id for r in running)
        num_blocks = kv.num_blocks
        free = kv.free_blocks
        available = kv.available_blocks
        events: list[Event] = []
        record = events.append
        decode = EventType.DECODE
        pop_at = 0
        done = 0
        while done < limit:
            if clock >= horizon:
                break
            if next_arrival is not None and next_arrival <= clock + 1e-12:
                break
            pops = 0
            while (pop_at + pops < total_pops
                   and crossings[pop_at + pops][0] == done + 1):
                pops += 1
            if pops:
                if pops > available:
                    break  # pool dry: the preemption decision stays scalar
                for k in range(pops):
                    kv.append_block(tables[crossings[pop_at + k][1]])
                pop_at += pops
                free -= pops
                available -= pops
            if durations is not None:
                duration_s = durations[done]
            else:
                # mirror of _iteration_cost's decode branch: np.mean over
                # pre-iteration kv_tokens is an exact integer sum < 2**53
                ctx = max(1, int((kv_sum + done * batch) / batch))
                duration_s = steps.decode_step_time(batch, ctx)
            clock = clock + duration_s
            record(Event(
                clock, decode, request_ids,
                num_tokens=batch, duration_s=duration_s,
                kv_utilization=(num_blocks - free) / num_blocks,
            ))
            done += 1

        if not done:
            return 0
        for req in running:
            req.generated_tokens += done
            req.kv_tokens += done
        for table in tables:
            table.num_tokens += done
        engine.clock = clock
        engine.log.extend(events)
        return done
