"""Paged KV-cache block manager (the PagedAttention substrate).

Device KV memory is divided into fixed-size blocks of ``block_size`` token
slots.  Each sequence owns a block table; blocks are allocated on demand as
the sequence grows and returned on free.  This is the allocator behind
vLLM's continuous batching: the scheduler asks ``can_allocate`` /
``can_append_slot`` before admitting or stepping sequences and preempts
when the pool runs dry.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.obs.instrument import Instrumentation

__all__ = ["BlockTable", "PagedKVCache", "DEFAULT_BLOCK_SIZE"]

DEFAULT_BLOCK_SIZE = 16


@dataclass
class BlockTable:
    """Blocks owned by one sequence plus its filled-slot count."""

    blocks: list[int]
    num_tokens: int = 0

    def slots(self, block_size: int) -> int:
        return len(self.blocks) * block_size


class PagedKVCache:
    """Fixed-pool block allocator with per-sequence block tables."""

    def __init__(self, num_blocks: int, block_size: int = DEFAULT_BLOCK_SIZE) -> None:
        if num_blocks <= 0:
            raise ValueError(f"num_blocks must be positive, got {num_blocks}")
        if block_size <= 0:
            raise ValueError(f"block_size must be positive, got {block_size}")
        self.num_blocks = num_blocks
        self.block_size = block_size
        self._free: list[int] = list(range(num_blocks - 1, -1, -1))
        self._tables: dict[int, BlockTable] = {}
        self.reserved_blocks = 0
        """Blocks withheld from allocation (fault injection: a lost
        device's share of the pool, or a transient pressure spike).  The
        reservation is logical — already-allocated blocks stay valid, but
        new allocations only see ``available_blocks``.  Always 0 outside
        fault experiments, so the default path is untouched."""
        self.obs: Instrumentation | None = None
        """Optional observability handle (set by the owning engine); when
        active, allocate/append/free emit spans at the simulated time the
        handle mirrors and maintain the KV metrics."""

    def _observe(self, op: str, seq_id: int, blocks: int) -> None:
        obs = self.obs
        if obs is None or not obs.active:
            return
        tracer = obs.tracer
        tracer.begin(f"kv.{op}", obs.now, cat="kv", seq_id=seq_id, blocks=blocks)
        tracer.end(obs.now)
        obs.metrics.counter(
            "kv_ops_total", "KV-cache block-manager operations",
            labels={"op": op},
        ).inc()
        if blocks:
            obs.metrics.counter(
                "kv_blocks_total", "blocks moved by KV operations",
                labels={"op": op},
            ).inc(blocks)
        obs.metrics.gauge(
            "kv_utilization", "fraction of KV blocks in use"
        ).set(self.utilization)

    # ------------------------------------------------------------------ #
    # queries
    # ------------------------------------------------------------------ #

    @property
    def free_blocks(self) -> int:
        return len(self._free)

    @property
    def used_blocks(self) -> int:
        return self.num_blocks - self.free_blocks

    @property
    def available_blocks(self) -> int:
        """Free blocks net of the fault reservation (what allocation and
        growth may actually consume)."""
        return max(0, self.free_blocks - self.reserved_blocks)

    @property
    def utilization(self) -> float:
        return self.used_blocks / self.num_blocks

    def reserve(self, num_blocks: int) -> None:
        """Withhold ``num_blocks`` more blocks from future allocation (the
        reservation may exceed what is currently free; in-use blocks drain
        into it as sequences free)."""
        if num_blocks < 0:
            raise ValueError("num_blocks must be non-negative")
        self.reserved_blocks += num_blocks

    def release_reserved(self, num_blocks: int) -> None:
        """Return previously reserved blocks to the allocatable pool."""
        if num_blocks < 0 or num_blocks > self.reserved_blocks:
            raise ValueError(
                f"cannot release {num_blocks} blocks: {self.reserved_blocks} reserved"
            )
        self.reserved_blocks -= num_blocks

    def blocks_needed(self, num_tokens: int) -> int:
        return math.ceil(num_tokens / self.block_size)

    def can_allocate(self, num_tokens: int, watermark_blocks: int = 0) -> bool:
        """Whether a new sequence of ``num_tokens`` fits, keeping a reserve
        of ``watermark_blocks`` free (vLLM's anti-thrash watermark)."""
        return self.blocks_needed(num_tokens) + watermark_blocks <= self.available_blocks

    def has_sequence(self, seq_id: int) -> bool:
        return seq_id in self._tables

    def num_tokens(self, seq_id: int) -> int:
        return self._table(seq_id).num_tokens

    def block_table(self, seq_id: int) -> tuple[int, ...]:
        return tuple(self._table(seq_id).blocks)

    def _table(self, seq_id: int) -> BlockTable:
        try:
            return self._tables[seq_id]
        except KeyError:
            raise KeyError(f"sequence {seq_id} has no allocation") from None

    def _take_free_block(self) -> int:
        """Pop one free block (subclasses may evict cached content here)."""
        return self._free.pop()

    def _take_free_blocks(self, need: int) -> list[int]:
        """Pop ``need`` free blocks, bulk-slicing the free list for the
        common all-free case.  The slice reproduces the exact id sequence
        ``need`` successive :meth:`_take_free_block` calls would return
        (both the base pool and the prefix cache drain ``_free`` before
        evicting), so allocation order — and with it every downstream
        digest — is unchanged."""
        free = self._free
        n = min(need, len(free))
        blocks = free[-1 : -n - 1 : -1] if n else []
        del free[len(free) - n:]
        for _ in range(need - n):
            blocks.append(self._take_free_block())
        return blocks

    # ------------------------------------------------------------------ #
    # mutation
    # ------------------------------------------------------------------ #

    def allocate(self, seq_id: int, num_tokens: int) -> None:
        """Allocate blocks for a new sequence holding ``num_tokens``."""
        if seq_id in self._tables:
            raise ValueError(f"sequence {seq_id} already allocated")
        if num_tokens <= 0:
            raise ValueError("num_tokens must be positive")
        need = self.blocks_needed(num_tokens)
        if need > self.available_blocks:
            raise MemoryError(
                f"KV pool exhausted: need {need} blocks, "
                f"{self.available_blocks} available"
            )
        blocks = self._take_free_blocks(need)
        self._tables[seq_id] = BlockTable(blocks=blocks, num_tokens=num_tokens)
        self._observe("allocate", seq_id, need)

    def can_append_slots(self, seq_id: int, num_new_tokens: int = 1) -> bool:
        table = self._table(seq_id)
        free_slots = table.slots(self.block_size) - table.num_tokens
        extra = max(0, num_new_tokens - free_slots)
        return self.blocks_needed(extra) <= self.available_blocks if extra else True

    def append_slots(self, seq_id: int, num_new_tokens: int = 1) -> None:
        """Grow a sequence by ``num_new_tokens`` slots (decode step or
        chunked-prefill continuation)."""
        if num_new_tokens <= 0:
            raise ValueError("num_new_tokens must be positive")
        table = self._table(seq_id)
        free_slots = table.slots(self.block_size) - table.num_tokens
        extra_tokens = max(0, num_new_tokens - free_slots)
        need = self.blocks_needed(extra_tokens)
        if need > self.available_blocks:
            raise MemoryError(
                f"KV pool exhausted appending to seq {seq_id}: need {need} "
                f"blocks, {self.available_blocks} available"
            )
        for _ in range(need):
            table.blocks.append(self._take_free_block())
        table.num_tokens += num_new_tokens
        self._observe("append", seq_id, need)

    def try_append_slot(self, seq_id: int) -> bool:
        """``can_append_slots(seq_id, 1)`` + ``append_slots(seq_id, 1)``
        fused to one table lookup — the scheduler's per-sequence decode
        hot call.  Returns ``False`` (state untouched) instead of raising
        when growth would need a block the pool cannot provide; otherwise
        grows the sequence by one slot and observes exactly as
        ``append_slots`` would."""
        table = self._tables.get(seq_id)
        if table is None:
            raise KeyError(f"sequence {seq_id} has no allocation")
        if len(table.blocks) * self.block_size - table.num_tokens >= 1:
            table.num_tokens += 1
            self._observe("append", seq_id, 0)
            return True
        if self.available_blocks < 1:
            return False
        table.blocks.append(self._take_free_block())
        table.num_tokens += 1
        self._observe("append", seq_id, 1)
        return True

    def append_block(self, table: BlockTable) -> None:
        """Grow ``table`` by one block from the pool — the block-crossing
        branch of :meth:`append_slots`, split out so the engine fast path
        can apply a precomputed crossing schedule.  Pops through
        :meth:`_take_free_block`, so subclass eviction (prefix caching)
        sees the identical request stream; the caller owns availability
        checks, ``num_tokens`` bookkeeping and observability."""
        table.blocks.append(self._take_free_block())

    def free(self, seq_id: int) -> None:
        """Return a sequence's blocks to the pool."""
        table = self._tables.pop(seq_id, None)
        if table is None:
            raise KeyError(f"sequence {seq_id} has no allocation")
        self._free.extend(reversed(table.blocks))
        self._observe("free", seq_id, len(table.blocks))

    def reset(self) -> None:
        self._free = list(range(self.num_blocks - 1, -1, -1))
        self._tables.clear()
        self.reserved_blocks = 0
