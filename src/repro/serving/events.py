"""Event log for the discrete-event serving engine.

Every iteration, admission, preemption and completion is recorded with its
simulated timestamp so tests and analyses can replay exactly what the
engine did (per-step batch composition, KV utilization over time, ...).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

__all__ = ["EventType", "Event", "EventLog"]


class EventType(enum.Enum):
    ARRIVAL = "arrival"
    PREFILL = "prefill"
    DECODE = "decode"
    PREEMPTION = "preemption"
    FINISH = "finish"
    FAULT = "fault"
    """A fault-schedule event was applied to the deployment."""
    RECOVERY = "recovery"
    """A transient fault healed (device replaced, link restored, ...)."""
    RETRY = "retry"
    """Requests killed by a fault were resubmitted with backoff."""
    FAIL = "fail"
    """Requests were terminally failed with a recorded reason."""


@dataclass(frozen=True)
class Event:
    """One timestamped engine event."""

    time: float
    type: EventType
    request_ids: tuple[int, ...] = ()
    num_tokens: int = 0
    duration_s: float = 0.0
    kv_utilization: float = 0.0
    detail: str = ""
    """Free-form annotation: fault kind/target, failure reason, ..."""


@dataclass
class EventLog:
    """Append-only, time-ordered event record.

    Per-type indices are maintained incrementally by :meth:`record`, so
    the query helpers (``of_type``, ``num_iterations``, ...) cost O(1)
    bookkeeping instead of rescanning the full log inside benchmark loops.
    Append through :meth:`record`; mutating ``events`` directly bypasses
    the indices.
    """

    events: list[Event] = field(default_factory=list)

    def __post_init__(self) -> None:
        self._by_type: dict[EventType, list[Event]] = {t: [] for t in EventType}
        self._total_busy = 0.0
        self._peak_kv = 0.0
        for event in self.events:
            self._index(event)

    def _index(self, event: Event) -> None:
        self._by_type[event.type].append(event)
        self._total_busy += event.duration_s
        if event.kv_utilization > self._peak_kv:
            self._peak_kv = event.kv_utilization

    def record(self, event: Event) -> None:
        if self.events and event.time < self.events[-1].time - 1e-12:
            raise ValueError(
                f"events must be recorded in time order: {event.time} < "
                f"{self.events[-1].time}"
            )
        self.events.append(event)
        self._index(event)

    def extend(self, batch: list[Event]) -> None:
        """Append a time-ordered batch in one call (the engine fast path
        records a whole decode window at once).  Only the batch head is
        checked against the log tail; within-batch order is the caller's
        contract (the window clock is monotone by construction)."""
        if not batch:
            return
        if self.events and batch[0].time < self.events[-1].time - 1e-12:
            raise ValueError(
                f"events must be recorded in time order: {batch[0].time} < "
                f"{self.events[-1].time}"
            )
        self.events.extend(batch)
        for event in batch:
            self._index(event)

    def of_type(self, event_type: EventType) -> list[Event]:
        return list(self._by_type[event_type])

    def of_type_since(self, event_type: EventType, start: int) -> list[Event]:
        """Events of ``event_type`` from index ``start`` on — a tail slice,
        so pollers that keep a cursor (the fleet's new-terminal feed) pay
        for fresh events only instead of copying the full type index."""
        return self._by_type[event_type][start:]

    def count(self, event_type: EventType) -> int:
        """Number of recorded events of ``event_type`` (O(1))."""
        return len(self._by_type[event_type])

    @property
    def num_iterations(self) -> int:
        return self.count(EventType.PREFILL) + self.count(EventType.DECODE)

    def total_busy_time(self) -> float:
        return self._total_busy

    def peak_kv_utilization(self) -> float:
        return self._peak_kv
