"""Event log for the discrete-event serving engine.

Every iteration, admission, preemption and completion is recorded with its
simulated timestamp so tests and analyses can replay exactly what the
engine did (per-step batch composition, KV utilization over time, ...).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

__all__ = ["EventType", "Event", "EventLog"]


class EventType(enum.Enum):
    ARRIVAL = "arrival"
    PREFILL = "prefill"
    DECODE = "decode"
    PREEMPTION = "preemption"
    FINISH = "finish"


@dataclass(frozen=True)
class Event:
    """One timestamped engine event."""

    time: float
    type: EventType
    request_ids: tuple[int, ...] = ()
    num_tokens: int = 0
    duration: float = 0.0
    kv_utilization: float = 0.0


@dataclass
class EventLog:
    """Append-only, time-ordered event record."""

    events: list[Event] = field(default_factory=list)

    def record(self, event: Event) -> None:
        if self.events and event.time < self.events[-1].time - 1e-12:
            raise ValueError(
                f"events must be recorded in time order: {event.time} < "
                f"{self.events[-1].time}"
            )
        self.events.append(event)

    def of_type(self, event_type: EventType) -> list[Event]:
        return [e for e in self.events if e.type is event_type]

    @property
    def num_iterations(self) -> int:
        return sum(1 for e in self.events if e.type in (EventType.PREFILL, EventType.DECODE))

    def total_busy_time(self) -> float:
        return sum(e.duration for e in self.events)

    def peak_kv_utilization(self) -> float:
        return max((e.kv_utilization for e in self.events), default=0.0)
