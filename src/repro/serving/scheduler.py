"""Continuous-batching scheduler (vLLM-style iteration-level scheduling).

Each engine iteration the scheduler emits one :class:`ScheduledBatch`:

* **prefill batch** — waiting/preempted requests are admitted FCFS while
  the KV pool can hold their prompts and the token budget
  (``max_num_batched_tokens``) is not exceeded;
* otherwise a **decode batch** — every running sequence advances one token.

When a decode step cannot grow some sequence (KV pool dry), the most
recently admitted sequence is preempted by recomputation and requeued —
exactly vLLM's default policy.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.serving.kv_cache import PagedKVCache
from repro.serving.request import Request, RequestState

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.obs.instrument import Instrumentation

__all__ = ["SchedulerConfig", "ScheduledBatch", "Scheduler"]


@dataclass(frozen=True)
class SchedulerConfig:
    """Scheduler limits (vLLM knob names).

    ``policy`` selects which phase an iteration prefers when both are
    possible: ``"prefill_first"`` (vLLM v0 — new requests jump the queue,
    best TTFT) or ``"decode_first"`` (running sequences advance before new
    admissions, best ITL/tail-token latency).
    """

    max_num_seqs: int = 256
    max_num_batched_tokens: int = 8192
    watermark_blocks: int = 1
    enable_chunked_prefill: bool = False
    chunk_size: int = 2048
    policy: str = "prefill_first"

    def __post_init__(self) -> None:
        if self.max_num_seqs <= 0:
            raise ValueError("max_num_seqs must be positive")
        if self.max_num_batched_tokens <= 0:
            raise ValueError("max_num_batched_tokens must be positive")
        if self.watermark_blocks < 0:
            raise ValueError("watermark_blocks must be non-negative")
        if self.chunk_size <= 0:
            raise ValueError("chunk_size must be positive")
        if self.policy not in ("prefill_first", "decode_first"):
            raise ValueError(
                f"policy must be 'prefill_first' or 'decode_first', "
                f"got {self.policy!r}"
            )


@dataclass
class ScheduledBatch:
    """One engine iteration's work."""

    phase: str  # "prefill" | "decode"
    requests: list[Request]
    num_tokens: int
    """New tokens processed this iteration (prompt tokens or one per seq)."""
    preempted: list[Request] = field(default_factory=list)

    @property
    def batch_size(self) -> int:
        return len(self.requests)

    @property
    def is_empty(self) -> bool:
        return not self.requests


class Scheduler:
    """FCFS continuous-batching scheduler over a paged KV pool."""

    def __init__(self, config: SchedulerConfig, kv_cache: PagedKVCache,
                 instrumentation: "Instrumentation | None" = None) -> None:
        self.config = config
        self.kv = kv_cache
        self.waiting: deque[Request] = deque()
        self.running: list[Request] = []
        self.obs = instrumentation

    # ------------------------------------------------------------------ #

    def add_request(self, request: Request) -> None:
        if request.state not in (RequestState.WAITING, RequestState.PREEMPTED):
            raise ValueError(
                f"request {request.request_id} in state {request.state} cannot be queued"
            )
        self.waiting.append(request)

    @property
    def has_unfinished(self) -> bool:
        return bool(self.waiting or self.running)

    @property
    def num_running(self) -> int:
        return len(self.running)

    # ------------------------------------------------------------------ #

    def schedule(self) -> ScheduledBatch:
        """Produce the next iteration's batch (may be empty if starved)."""
        if self.config.policy == "decode_first" and self.running:
            decode = self._schedule_decode()
            if not decode.is_empty:
                return decode
        prefill = self._schedule_prefill()
        if not prefill.is_empty:
            return prefill
        return self._schedule_decode()

    def _prefill_tokens_for(self, req: Request) -> int:
        """Tokens of ``req`` to prefill this iteration (whole prompt, or one
        chunk under chunked prefill)."""
        remaining = req.remaining_prefill
        if self.config.enable_chunked_prefill:
            return min(remaining, self.config.chunk_size)
        return remaining

    def _schedule_prefill(self) -> ScheduledBatch:
        batch: list[Request] = []
        tokens = 0
        # FCFS scan with one exception: once the queue head cannot be
        # admitted (KV pressure), requests that already HOLD their
        # allocation — chunked-prefill continuations requeued behind a
        # preempted head — may still continue, since they need no new
        # blocks.  Strict head-blocking here deadlocks: the preempted head
        # cannot allocate precisely because the continuations behind it
        # hold the blocks it is waiting for, and with nothing running the
        # engine starves (latent bug surfaced by the chaos invariant
        # suite).  When nothing is allocation-blocked the scan is
        # identical to plain FCFS.
        blocked = False
        scheduled: list[Request] = []
        for req in self.waiting:
            holds_allocation = self.kv.has_sequence(req.request_id)
            if blocked and not holds_allocation:
                continue
            take = self._prefill_tokens_for(req)
            if batch and tokens + take > self.config.max_num_batched_tokens:
                break
            if len(self.running) + len(batch) + 1 > self.config.max_num_seqs:
                break
            if not holds_allocation:
                # admit: the whole prompt's KV must fit (vLLM allocates the
                # full prompt at admission even under chunked prefill)
                if not self.kv.can_allocate(
                    req.prefill_target, self.config.watermark_blocks
                ):
                    blocked = True
                    continue
                if req.prompt_block_hashes and hasattr(self.kv, "allocate_with_prefix"):
                    cached = self.kv.allocate_with_prefix(
                        req.request_id, req.prefill_target,
                        req.prompt_block_hashes,
                    )
                    # at least the final position must be recomputed so the
                    # engine has logits to sample the first token from
                    req.kv_tokens = min(cached, req.prefill_target - 1)
                    take = self._prefill_tokens_for(req)
                else:
                    self.kv.allocate(req.request_id, req.prefill_target)
            scheduled.append(req)
            req.state = RequestState.RUNNING
            obs = self.obs
            if obs is not None and obs.active and req.first_scheduled_time is None:
                obs.metrics.counter(
                    "scheduler_admissions_total",
                    "requests admitted from the waiting queue",
                ).inc()
                obs.metrics.histogram(
                    "queue_wait_seconds",
                    "arrival-to-first-schedule wait",
                ).observe(max(0.0, obs.now - req.arrival_time))
            batch.append(req)
            tokens += take
            if not self.config.enable_chunked_prefill and tokens >= self.config.max_num_batched_tokens:
                break
        if scheduled:
            taken = set(map(id, scheduled))
            self.waiting = deque(r for r in self.waiting if id(r) not in taken)
        return ScheduledBatch(phase="prefill", requests=batch, num_tokens=tokens)

    def _schedule_decode(self) -> ScheduledBatch:
        preempted: list[Request] = []
        # grow each running sequence by one slot, preempting LIFO on pressure
        runnable: list[Request] = list(self.running)
        victims: list[Request] = []
        for req in list(runnable):
            if req in victims:
                continue
            appended = False
            while not appended:
                if self.kv.try_append_slot(req.request_id):
                    appended = True
                    break
                # free the most recently admitted other sequence; if none is
                # left, this sequence itself yields (recompute later)
                candidates = [r for r in runnable if r is not req and r not in victims]
                victim = candidates[-1] if candidates else req
                victims.append(victim)
                self._preempt(victim)
                if victim is req:
                    break
        if victims:
            for v in victims:
                runnable.remove(v)
                preempted.append(v)
            self.running = [r for r in self.running if r not in victims]
        return ScheduledBatch(
            phase="decode",
            requests=list(self.running),
            num_tokens=len(self.running),
            preempted=preempted,
        )

    def _preempt(self, req: Request) -> None:
        self.kv.free(req.request_id)
        req.reset_for_recompute()
        self.waiting.appendleft(req)
        obs = self.obs
        if obs is not None and obs.active:
            obs.metrics.counter(
                "scheduler_preemptions_total",
                "recompute preemptions under KV pressure",
            ).inc()
            obs.tracer.instant("preempt", obs.now, cat="scheduler",
                               request_id=req.request_id)
            if obs.reqtrace is not None:
                obs.reqtrace.on_preempt(req, obs.now)

    # ------------------------------------------------------------------ #

    def on_prefill_done(self, batch: ScheduledBatch) -> None:
        """Advance KV bookkeeping after a prefill iteration."""
        for req in batch.requests:
            take = self._prefill_tokens_for(req)
            req.kv_tokens += take
            if req.is_prefill_pending:
                # chunked prefill: requeue at the front to continue next time
                req.state = RequestState.WAITING
                self.waiting.appendleft(req)
            else:
                self.running.append(req)

    def on_decode_done(self, batch: ScheduledBatch, finished: list[Request]) -> None:
        """Remove finished sequences and release their KV."""
        for req in finished:
            req.state = RequestState.FINISHED
            self.kv.free(req.request_id)
            self.running.remove(req)

    # ------------------------------------------------------------------ #
    # fault-injection support
    # ------------------------------------------------------------------ #

    def evict(self, req: Request) -> None:
        """Forcibly remove ``req`` from the scheduler (fault kill),
        releasing any KV it holds.  The caller decides what happens to the
        request next (retry resubmission or terminal failure)."""
        if any(r is req for r in self.running):
            self.running = [r for r in self.running if r is not req]
        elif any(r is req for r in self.waiting):
            self.waiting = deque(r for r in self.waiting if r is not req)
        if self.kv.has_sequence(req.request_id):
            self.kv.free(req.request_id)

    def never_schedulable(self) -> list[Request]:
        """Waiting requests that cannot be admitted even by an otherwise
        empty pool (shape vs. ``num_blocks`` net of the fault reservation
        and watermark) — candidates for fail-with-reason instead of an
        engine livelock."""
        usable = self.kv.num_blocks - self.kv.reserved_blocks \
            - self.config.watermark_blocks
        doomed = []
        for req in self.waiting:
            if self.kv.has_sequence(req.request_id):
                continue  # holds its allocation; always resumable
            if self.kv.blocks_needed(req.prefill_target) > usable:
                doomed.append(req)
        return doomed
