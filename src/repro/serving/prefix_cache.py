"""Prefix-caching paged KV cache (vLLM automatic prefix caching).

Extends the paged allocator with content-addressed block sharing: a
sequence's prompt is described by a list of per-block *hashes* (one per
``block_size`` tokens); full blocks whose hash is already resident are
shared by bumping a reference count instead of re-prefilled.  Freed blocks
whose content may be reused are parked in an LRU pool and only truly
evicted when the allocator runs dry — so a popular system prompt's KV
survives across requests.

The scheduler consumes ``cached_prefix_tokens`` to skip the prefill work
for shared blocks, which is exactly where the production win (TTFT for
templated prompts) comes from.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field

from repro.serving.kv_cache import DEFAULT_BLOCK_SIZE, BlockTable, PagedKVCache

__all__ = ["PrefixCachingKVCache", "PrefixStats"]


@dataclass
class PrefixStats:
    """Hit/miss counters for the prefix cache."""

    lookups: int = 0
    hits: int = 0
    evictions: int = 0

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0


@dataclass
class _SharedBlock:
    block_id: int
    refcount: int


class PrefixCachingKVCache(PagedKVCache):
    """Paged KV cache with content-hash block sharing.

    Sequences allocated through :meth:`allocate_with_prefix` share full
    prompt blocks by hash; everything else behaves like the base
    allocator (decode growth, free, watermarks).
    """

    def __init__(self, num_blocks: int, block_size: int = DEFAULT_BLOCK_SIZE) -> None:
        super().__init__(num_blocks, block_size)
        self._by_hash: dict[int, _SharedBlock] = {}
        self._hash_of_block: dict[int, int] = {}
        # blocks with refcount 0 whose contents are still valid, LRU order
        self._reusable: OrderedDict[int, int] = OrderedDict()  # hash -> block
        self._seq_shared: dict[int, list[int]] = {}
        self.stats = PrefixStats()

    # ------------------------------------------------------------------ #
    # internals
    # ------------------------------------------------------------------ #

    @property
    def free_blocks(self) -> int:  # type: ignore[override]
        """Truly free plus evictable (refcount-0 cached) blocks."""
        return len(self._free) + len(self._reusable)

    def _take_free_block(self) -> int:
        if self._free:
            return self._free.pop()
        if self._reusable:
            # evict the least-recently-used cached block (reusable blocks
            # are keyed only by _reusable/_hash_of_block, not _by_hash)
            h, block = self._reusable.popitem(last=False)
            del self._hash_of_block[block]
            self.stats.evictions += 1
            return block
        raise MemoryError("KV pool exhausted")

    # ------------------------------------------------------------------ #
    # prefix-aware allocation
    # ------------------------------------------------------------------ #

    def cached_prefix_tokens(self, block_hashes: tuple[int, ...]) -> int:
        """Tokens of the prompt prefix already resident (full blocks whose
        hash hits, counted from the front until the first miss)."""
        cached = 0
        for h in block_hashes:
            if h in self._by_hash or h in self._reusable:
                cached += self.block_size
            else:
                break
        return cached

    def allocate_with_prefix(
        self, seq_id: int, num_tokens: int, block_hashes: tuple[int, ...]
    ) -> int:
        """Allocate ``num_tokens`` for ``seq_id``, sharing hash-matching
        prompt blocks.  Returns the number of prefix tokens served from
        cache (multiple of ``block_size``).

        ``block_hashes`` describes the leading *full* blocks of the prompt;
        trailing partial blocks and generated tokens always get private
        blocks.
        """
        if seq_id in self._tables:
            raise ValueError(f"sequence {seq_id} already allocated")
        if num_tokens <= 0:
            raise ValueError("num_tokens must be positive")
        max_hashed = num_tokens // self.block_size
        if len(block_hashes) > max_hashed:
            raise ValueError(
                f"{len(block_hashes)} block hashes exceed the {max_hashed} "
                f"full blocks of a {num_tokens}-token prompt"
            )
        if len(set(block_hashes)) != len(block_hashes):
            raise ValueError(
                "duplicate block hashes — prefix hashes must incorporate "
                "the preceding context and therefore be unique per request"
            )
        need_total = self.blocks_needed(num_tokens)

        blocks: list[int] = []
        shared: list[int] = []
        cached_tokens = 0
        hit_streak = True
        by_hash = self._by_hash
        reusable = self._reusable
        stats = self.stats
        stats.lookups += len(block_hashes)
        for h in block_hashes:
            entry = by_hash.get(h)
            if entry is None and h in reusable:
                block = reusable.pop(h)
                entry = _SharedBlock(block_id=block, refcount=0)
                by_hash[h] = entry
            if entry is not None and hit_streak:
                stats.hits += 1
                entry.refcount += 1
                blocks.append(entry.block_id)
                shared.append(entry.block_id)
                cached_tokens += self.block_size
                continue
            hit_streak = False
            block = self._take_free_block()
            blocks.append(block)
            if h not in by_hash:
                # register this request's content for future sharers
                by_hash[h] = _SharedBlock(block_id=block, refcount=1)
                self._hash_of_block[block] = h
                shared.append(block)
            # else: identical content is resident under another sequence's
            # block; keep this copy private to avoid refcount aliasing
        # private blocks for the unhashed remainder (bulk take: same pop
        # order as one-at-a-time, see _take_free_blocks)
        if len(blocks) < need_total:
            blocks.extend(self._take_free_blocks(need_total - len(blocks)))

        self._tables[seq_id] = BlockTable(blocks=blocks, num_tokens=num_tokens)
        self._seq_shared[seq_id] = shared
        self._observe("allocate", seq_id, need_total - len(shared))
        return cached_tokens

    def free(self, seq_id: int) -> None:  # type: ignore[override]
        """Release a sequence; shared blocks decrement refcounts and park
        in the reusable pool when they reach zero."""
        table = self._tables.pop(seq_id, None)
        if table is None:
            raise KeyError(f"sequence {seq_id} has no allocation")
        shared = set(self._seq_shared.pop(seq_id, []))
        if not shared:
            # nothing content-addressed: identical to the base free
            self._free.extend(reversed(table.blocks))
            self._observe("free", seq_id, len(table.blocks))
            return
        for block in reversed(table.blocks):
            if block in shared:
                h = self._hash_of_block[block]
                entry = self._by_hash[h]
                entry.refcount -= 1
                if entry.refcount == 0:
                    del self._by_hash[h]
                    self._reusable[h] = block
                    self._reusable.move_to_end(h)
            else:
                self._free.append(block)
        self._observe("free", seq_id, len(table.blocks))

    def reset(self) -> None:  # type: ignore[override]
        super().reset()
        self._by_hash.clear()
        self._hash_of_block.clear()
        self._reusable.clear()
        self._seq_shared.clear()
        self.stats = PrefixStats()
