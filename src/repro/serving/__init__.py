"""vLLM-substitute serving substrate: paged KV cache, continuous batching,
discrete-event engine."""

from repro.serving.engine import ServingEngine, ServingResult, serve_static_batch
from repro.serving.events import Event, EventLog, EventType
from repro.serving.kv_cache import DEFAULT_BLOCK_SIZE, BlockTable, PagedKVCache
from repro.serving.prefix_cache import PrefixCachingKVCache, PrefixStats
from repro.serving.request import Request, RequestState, SamplingParams
from repro.serving.scheduler import ScheduledBatch, Scheduler, SchedulerConfig

__all__ = [
    "ServingEngine",
    "ServingResult",
    "serve_static_batch",
    "Event",
    "EventLog",
    "EventType",
    "DEFAULT_BLOCK_SIZE",
    "BlockTable",
    "PagedKVCache",
    "PrefixCachingKVCache",
    "PrefixStats",
    "Request",
    "RequestState",
    "SamplingParams",
    "ScheduledBatch",
    "Scheduler",
    "SchedulerConfig",
]
