"""Deterministic multiprocessing experiment runner.

``repro run --jobs N`` / ``repro bench --jobs N`` fan registered
experiments out across worker processes.  The determinism contract:

* **Merge order is fixed.**  Results are always yielded in the caller's
  input order, regardless of which worker finishes first, so anything
  derived from the stream — fingerprints, table digests, summary
  markdown, ``BENCH_<figure>.json`` trajectories — is byte-stable for
  any ``--jobs`` value.
* **Workers are hermetic.**  Each experiment function is pure given the
  process environment; the only cross-experiment state (the step cache,
  ``lru_cache``'d parameter counts) is an exact memo, so a cold worker
  computes the same floats a warm serial loop replays.  ``jobs <= 1``
  does not touch multiprocessing at all and is the exact historical
  serial loop.
* **Scheduling only affects wall time.**  Submission order is a
  longest-first heuristic fed by the recorded wall metrics in
  ``BENCH_<figure>.json`` (when present) so the slowest figure does not
  become the tail of the pool; it cannot affect results, only speedup.

Workers inherit ``os.environ`` (fork or spawn), so escape hatches such
as ``REPRO_NO_VECTORIZE`` / ``REPRO_NO_STEPCACHE`` exported by the CLI
apply to every process in the pool.
"""

from __future__ import annotations

import multiprocessing
import os
import pathlib
from concurrent.futures import ProcessPoolExecutor
from typing import Iterator, Sequence

from repro.core.experiment import ExperimentResult
from repro.core.registry import run_experiment

__all__ = ["default_jobs", "iter_experiments", "run_experiments"]


def default_jobs() -> int:
    """Worker-count default: ``REPRO_JOBS`` if set, else 1 (serial)."""
    env = os.environ.get("REPRO_JOBS", "").strip()
    if env:
        try:
            return max(1, int(env))
        except ValueError:
            pass
    return 1


def _pool_context() -> multiprocessing.context.BaseContext:
    """Prefer fork (cheap, inherits the warmed import state); fall back to
    spawn where fork is unavailable."""
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context("fork" if "fork" in methods else "spawn")


def _worker_run(exp_id: str) -> ExperimentResult:
    """Module-level so it pickles under the spawn start method."""
    return run_experiment(exp_id)


#: approximate wall runtimes (seconds) for experiments that dominate the
#: pool tail, used when no ``BENCH_<figure>.json`` baseline has been
#: recorded yet (fresh clone, newly added figure).  Without a hint a
#: first run submits in input order and the slowest figure can land
#: last, serializing the pool; the values only need the right ordering,
#: not precision.  Recorded baselines always win over this table.
_RUNTIME_SEED_S: dict[str, float] = {
    "ext_fleet_capacity": 3.1,
    "ext_fleet_diurnal": 2.1,
    "ext_fleet_policy": 2.0,
}


def _recorded_runtime(exp_id: str, root: pathlib.Path) -> float:
    """Last recorded wall runtime for ``exp_id``, falling back to the
    static seed table and then 0.0 for unknown experiments."""
    try:
        from repro.obs.regress import BaselineStore

        fp = BaselineStore(root).latest_fingerprint(exp_id)
        if fp is not None:
            return float(fp.wall.get("runtime_s", 0.0))
    except Exception:  # noqa: BLE001 - scheduling hint only, never fatal
        pass
    return _RUNTIME_SEED_S.get(exp_id, 0.0)


def _submission_order(exp_ids: Sequence[str],
                      baseline_dir: str | os.PathLike | None) -> list[str]:
    """Longest-first submission keeps the pool packed; ties (and figures
    without a recorded baseline) keep input order.  Purely a wall-clock
    heuristic — the merge order is always the input order."""
    root = pathlib.Path(baseline_dir) if baseline_dir is not None else pathlib.Path(".")
    index = {eid: i for i, eid in enumerate(exp_ids)}
    return sorted(exp_ids,
                  key=lambda eid: (-_recorded_runtime(eid, root), index[eid]))


def iter_experiments(
    exp_ids: Sequence[str],
    jobs: int = 1,
    return_exceptions: bool = False,
    baseline_dir: str | os.PathLike | None = None,
) -> Iterator[tuple[str, "ExperimentResult | Exception"]]:
    """Run experiments, yielding ``(exp_id, outcome)`` in input order.

    ``jobs <= 1`` runs in-process (the exact historical serial loop);
    otherwise a process pool computes results while this generator yields
    each experiment as soon as it — and everything before it — is done.
    With ``return_exceptions`` a failing experiment yields its exception
    instead of raising, so one broken figure cannot hide the rest
    (``repro run-all`` semantics).
    """
    exp_ids = list(exp_ids)
    if jobs <= 1 or len(exp_ids) <= 1:
        for exp_id in exp_ids:
            try:
                yield exp_id, run_experiment(exp_id)
            except Exception as exc:  # noqa: BLE001 - optional run-all mode
                if not return_exceptions:
                    raise
                yield exp_id, exc
        return

    ctx = _pool_context()
    with ProcessPoolExecutor(max_workers=min(jobs, len(exp_ids)),
                             mp_context=ctx) as pool:
        futures = {exp_id: pool.submit(_worker_run, exp_id)
                   for exp_id in _submission_order(exp_ids, baseline_dir)}
        for exp_id in exp_ids:  # fixed merge order
            try:
                yield exp_id, futures[exp_id].result()
            except Exception as exc:  # noqa: BLE001 - optional run-all mode
                if not return_exceptions:
                    raise
                yield exp_id, exc


def run_experiments(
    exp_ids: Sequence[str],
    jobs: int = 1,
    return_exceptions: bool = False,
    baseline_dir: str | os.PathLike | None = None,
) -> list["ExperimentResult | Exception"]:
    """:func:`iter_experiments`, gathered into an input-ordered list."""
    return [outcome for _, outcome in
            iter_experiments(exp_ids, jobs=jobs,
                             return_exceptions=return_exceptions,
                             baseline_dir=baseline_dir)]
