"""One serving replica inside a fleet: an engine plus lifecycle state.

A :class:`Replica` wraps a :class:`~repro.serving.engine.ServingEngine`
with what the front door needs to reason about it: identity, liveness
(alive / draining / retired), load snapshots for routing and autoscaling,
and a bounded ``advance_to`` that steps the engine's own simulated clock
up to the fleet's global event time — replicas never idle-jump past the
fleet clock, so a request routed to an idle replica at time *t* is served
at *t*, not at the replica's next internal arrival.

Replica objects are immortal records: a replica killed by a
``REPLICA_LOSS`` fault stays dead (its event log is preserved for the
fleet digest and conservation audit); healing brings up a *replacement*
replica with a fresh id and empty caches, which is what a real
orchestrator does.
"""

from __future__ import annotations

import numpy as np

from repro.perfmodel.inference import InferencePerfModel
from repro.serving.engine import ServingEngine
from repro.serving.events import Event, EventType
from repro.serving.request import Request
from repro.serving.scheduler import SchedulerConfig

__all__ = ["Replica"]


class Replica:
    """A fleet member: engine, liveness, and load accounting."""

    def __init__(
        self,
        replica_id: int,
        perf: InferencePerfModel,
        scheduler_config: SchedulerConfig,
        kv_pool_tokens: int,
        enable_prefix_caching: bool = False,
        now: float = 0.0,
    ) -> None:
        self.replica_id = replica_id
        self.engine = ServingEngine(
            perf,
            scheduler_config=scheduler_config,
            kv_pool_tokens=kv_pool_tokens,
            rng=np.random.default_rng(replica_id),
            enable_prefix_caching=enable_prefix_caching,
        )
        self.engine.clock = now
        self.started_at = now
        self.retired_at: float | None = None
        self.alive = True
        self.draining = False
        """Scale-down in progress: the router skips this replica, the
        engine drains its admitted work, then the replica retires."""
        self.assigned = 0
        """Requests the router has ever sent here (including reroutes)."""
        self.clock_violations: list[str] = []
        """Monotonicity breaches seen by ``advance_to`` (always empty on a
        healthy simulator; audited by the invariant suite)."""
        self._fin_idx = 0
        self._fail_idx = 0

    # ------------------------------------------------------------------ #
    # load snapshots (what routing / admission / autoscaling read)
    # ------------------------------------------------------------------ #

    @property
    def routable(self) -> bool:
        return self.alive and not self.draining

    @property
    def clock(self) -> float:
        return self.engine.clock

    @property
    def free_kv_blocks(self) -> int:
        """Allocatable KV blocks right now (the least-loaded-KV signal)."""
        return self.engine.kv.available_blocks

    @property
    def num_running(self) -> int:
        return self.engine.scheduler.num_running

    @property
    def backlog(self) -> int:
        """Requests waiting to run here: scheduler queue plus client-side
        pending submissions (the admission / autoscaling queue-depth
        signal)."""
        return len(self.engine.scheduler.waiting) + len(self.engine._pending)

    @property
    def load(self) -> int:
        """Total non-terminal requests owned by this replica."""
        return self.backlog + self.num_running

    @property
    def has_work(self) -> bool:
        return bool(self.engine.scheduler.has_unfinished
                    or self.engine._pending)

    def busy_s(self) -> float:
        """Cumulative simulated busy seconds (prefill + decode time)."""
        return self.engine.log.total_busy_time()

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #

    def advance_to(self, t: float) -> None:
        """Step the engine until its clock reaches ``t`` or it runs out of
        work actionable before ``t``.

        The engine may overshoot ``t`` by one iteration (iterations are
        atomic — exactly continuous batching's admission granularity) but
        never idle-jumps past it: a pending arrival later than ``t`` stays
        pending, so the replica looks idle-at-``t`` to the router rather
        than busy-at-some-future-time.
        """
        if not self.alive:
            return
        engine = self.engine
        while engine.clock < t:
            actionable = engine.scheduler.has_unfinished or (
                engine._pending
                and engine._pending[0].effective_arrival_time <= t)
            if not actionable:
                break
            before = engine.clock
            # batched event advance: a quiet decode run up to t goes
            # through the engine fast path in one pass (its duration plan
            # is cached across calls, so replica stepping amortizes over
            # consecutive fleet events); everything else falls back to
            # one scalar iteration
            if not engine.advance_window(t) and not engine.step():
                break
            if engine.clock < before - 1e-12:
                self.clock_violations.append(
                    f"replica {self.replica_id}: clock moved backwards "
                    f"{before} -> {engine.clock}")

    def drain(self, max_iterations: int = 1_000_000) -> None:
        """Run the engine to completion (end-of-trace flush)."""
        if not self.alive:
            return
        iterations = 0
        while self.has_work:
            before = self.engine.clock
            advanced = self.engine.advance_window()
            if not advanced and not self.engine.step():
                break
            if self.engine.clock < before - 1e-12:
                self.clock_violations.append(
                    f"replica {self.replica_id}: clock moved backwards "
                    f"{before} -> {self.engine.clock}")
            iterations += advanced if advanced else 1
            if iterations > max_iterations:
                raise RuntimeError(
                    f"replica {self.replica_id} exceeded {max_iterations} "
                    "drain iterations")

    def kill(self, now: float) -> list[Request]:
        """Replica loss: evict everything non-terminal and go dark.

        Returns the orphaned requests — admitted work first (reset for
        retry so their restart is priced), then client-side pending
        submissions (untouched; they never started) — in deterministic
        order for the fleet to re-route.  The engine keeps only the
        requests that reached a terminal state *here*, so its log and
        ``_all`` stay a self-consistent record for the digest.
        """
        if not self.alive:
            raise ValueError(f"replica {self.replica_id} is already dead")
        engine = self.engine
        admitted = engine.in_flight()
        pending = list(engine._pending)
        for req in admitted:
            engine.scheduler.evict(req)
        engine._pending.clear()
        orphans = admitted + pending
        if orphans:
            gone = set(map(id, orphans))
            engine._all = [r for r in engine._all if id(r) not in gone]
        engine.clock = max(engine.clock, now)
        engine.log.record(Event(
            engine.clock, EventType.FAULT,
            tuple(r.request_id for r in orphans),
            detail=f"replica {self.replica_id} lost "
                   f"({len(admitted)} in flight, {len(pending)} pending)",
        ))
        for req in admitted:
            req.reset_for_retry(retry_time=engine.clock)
        self.alive = False
        self.draining = False
        self.retired_at = engine.clock
        return orphans

    def retire_if_drained(self, now: float) -> bool:
        """Complete a scale-down once the drain has finished."""
        if self.alive and self.draining and not self.has_work:
            self.alive = False
            self.retired_at = max(now, self.engine.clock)
            return True
        return False

    def new_terminals(self) -> list[tuple[float, int]]:
        """``(terminal_time, request_id)`` pairs newly finished or failed
        since the last call — the fleet's feed into SLO scoring."""
        log = self.engine.log
        fresh: list[tuple[float, int]] = []
        for e in log.of_type_since(EventType.FINISH, self._fin_idx):
            fresh.extend((e.time, rid) for rid in e.request_ids)
        for e in log.of_type_since(EventType.FAIL, self._fail_idx):
            fresh.extend((e.time, rid) for rid in e.request_ids)
        self._fin_idx = log.count(EventType.FINISH)
        self._fail_idx = log.count(EventType.FAIL)
        return fresh

    def describe(self) -> str:
        state = ("draining" if self.draining else
                 "alive" if self.alive else "dead")
        return (f"replica {self.replica_id} [{state}] clock={self.clock:.3f}s "
                f"running={self.num_running} backlog={self.backlog} "
                f"free_kv={self.free_kv_blocks}")
