"""SLO-aware admission control: shed at the front door, not in the queue.

The controller keeps its own :class:`~repro.obs.slo.SloTracker` — this is
*simulation state*, not observability: shed/admit decisions depend on it,
so it runs on every fleet configuration and the default-off
``Instrumentation`` handle stays purely additive.  Every terminal request
(finished, failed, or shed) is scored against the declared objectives;
once the error budget of any objective is spent past
``burned_threshold``, the backlog cap tightens by
``burned_backlog_factor`` — the SRE move of trading admission for
recovery when the budget is already gone.

Sheds are terminal failures with a recorded reason (the conservation
invariant counts them), and they score as *bad* against every objective —
shedding spends availability budget, it does not hide latency misses.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.fleet.replica import Replica
from repro.obs.slo import SLO, ErrorBudget, SloTracker
from repro.serving.request import Request

__all__ = ["AdmissionConfig", "AdmissionDecision", "AdmissionController"]

DEFAULT_SLO_SPECS: tuple[str, ...] = ("p99 ttft < 0.5s",
                                      "availability >= 99%")


@dataclass(frozen=True)
class AdmissionConfig:
    """Front-door admission knobs."""

    max_backlog_per_replica: int = 64
    """Hard cap: shed when total fleet backlog reaches this many requests
    per routable replica."""
    slo_specs: tuple[str, ...] = DEFAULT_SLO_SPECS
    """Objectives the controller scores (``SLO.parse`` syntax)."""
    burned_threshold: float = 1.0
    """Budget-consumed level (1.0 = budget exhausted) past which the
    backlog cap tightens."""
    burned_backlog_factor: float = 0.25
    """Cap multiplier while any objective's budget is burned."""
    min_samples: int = 20
    """Terminal requests required before budget burn can tighten the cap
    (a single early failure must not flap admission)."""

    def __post_init__(self) -> None:
        if self.max_backlog_per_replica <= 0:
            raise ValueError("max_backlog_per_replica must be positive")
        if not self.slo_specs:
            raise ValueError("admission needs at least one SLO spec")
        if self.burned_threshold <= 0:
            raise ValueError("burned_threshold must be positive")
        if not (0.0 < self.burned_backlog_factor <= 1.0):
            raise ValueError("burned_backlog_factor must be in (0, 1]")
        if self.min_samples < 1:
            raise ValueError("min_samples must be >= 1")


@dataclass(frozen=True)
class AdmissionDecision:
    """Outcome of one front-door decision."""

    admit: bool
    reason: str


class AdmissionController:
    """Scores outcomes, tracks budgets, and decides admit-vs-shed."""

    def __init__(self, config: AdmissionConfig | None = None) -> None:
        self.config = config or AdmissionConfig()
        self.slos: tuple[SLO, ...] = tuple(
            SLO.parse(spec) for spec in self.config.slo_specs)
        self.tracker = SloTracker(self.slos)
        self.num_shed = 0
        self.num_admitted = 0

    # ------------------------------------------------------------------ #
    # outcome feed
    # ------------------------------------------------------------------ #

    def on_terminal(self, request: Request, now: float) -> None:
        """Score one terminal request (the fleet feeds these in
        deterministic ``(time, request_id)`` order)."""
        self.tracker.on_request_terminal(request, now)

    def budgets(self) -> list[ErrorBudget]:
        return [self.tracker.budget(slo.name) for slo in self.slos]

    def worst_budget_consumed(self) -> float:
        """Largest budget-consumed fraction across objectives with enough
        samples to mean anything."""
        worst = 0.0
        for slo in self.slos:
            budget = self.tracker.budget(slo.name)
            if budget.total >= self.config.min_samples:
                worst = max(worst, budget.budget_consumed)
        return worst

    # ------------------------------------------------------------------ #
    # the decision
    # ------------------------------------------------------------------ #

    def backlog_cap(self, num_routable: int) -> int:
        """Current fleet-wide backlog cap (tightened when burned)."""
        cap = self.config.max_backlog_per_replica * num_routable
        if self.worst_budget_consumed() >= self.config.burned_threshold:
            cap = max(1, int(cap * self.config.burned_backlog_factor))
        return cap

    def decide(self, request: Request, replicas: Sequence[Replica],
               now: float) -> AdmissionDecision:
        """Admit or shed one arriving request against the routable
        snapshot.  Shedding callers must ``fail()`` the request with the
        returned reason so the outcome is recorded, scored, and counted
        by the conservation audit."""
        if not replicas:
            return AdmissionDecision(
                admit=False, reason="admission shed: no live replica")
        capacity = (replicas[0].engine.kv.num_blocks
                    * replicas[0].engine.kv.block_size)
        if request.total_length_budget > capacity:
            return AdmissionDecision(
                admit=False,
                reason=(f"admission shed: request needs "
                        f"{request.total_length_budget} KV slots but a "
                        f"replica pool holds {capacity}"))
        backlog = sum(r.backlog for r in replicas)
        cap = self.backlog_cap(len(replicas))
        if backlog >= cap:
            tightened = cap < self.config.max_backlog_per_replica * len(replicas)
            return AdmissionDecision(
                admit=False,
                reason=(f"admission shed: fleet backlog {backlog} >= cap "
                        f"{cap}" + (" (error budget burned)" if tightened
                                    else "")))
        return AdmissionDecision(admit=True, reason="admitted")

    def record(self, decision: AdmissionDecision) -> None:
        if decision.admit:
            self.num_admitted += 1
        else:
            self.num_shed += 1
