"""Cluster-scale fleet serving: a deterministic multi-replica layer.

``repro.fleet`` puts a front door in front of N
:class:`~repro.serving.engine.ServingEngine` replicas: pluggable routing
policies (round-robin, least-loaded-KV, prefix-affinity), SLO-aware
admission control, a metrics-driven autoscaler, diurnal/templated traffic
synthesis, and whole-replica kill/heal chaos via
:func:`repro.faults.schedule.replica_storm`.  The whole stack is a pure
function of ``(FleetConfig, trace)`` — see
:func:`repro.fleet.invariants.fleet_digest` for the replay contract and
``docs/fleet.md`` for the knobs.
"""

from repro.fleet.admission import (
    AdmissionConfig,
    AdmissionController,
    AdmissionDecision,
)
from repro.fleet.autoscaler import Autoscaler, AutoscalerConfig, ScaleDecision
from repro.fleet.invariants import check_fleet_invariants, fleet_digest
from repro.fleet.replica import Replica
from repro.fleet.router import (
    ROUTER_POLICIES,
    LeastLoadedKVRouter,
    PrefixAffinityRouter,
    RoundRobinRouter,
    Router,
    make_router,
)
from repro.fleet.simulator import FleetConfig, FleetResult, FleetSimulator
from repro.fleet.traffic import (
    DiurnalSpec,
    TemplateMix,
    diurnal_arrivals,
    diurnal_rate,
    synthesize_requests,
    template_block_hashes,
)

__all__ = [
    "AdmissionConfig",
    "AdmissionController",
    "AdmissionDecision",
    "Autoscaler",
    "AutoscalerConfig",
    "ScaleDecision",
    "check_fleet_invariants",
    "fleet_digest",
    "Replica",
    "ROUTER_POLICIES",
    "Router",
    "RoundRobinRouter",
    "LeastLoadedKVRouter",
    "PrefixAffinityRouter",
    "make_router",
    "FleetConfig",
    "FleetResult",
    "FleetSimulator",
    "DiurnalSpec",
    "TemplateMix",
    "diurnal_rate",
    "diurnal_arrivals",
    "template_block_hashes",
    "synthesize_requests",
]
