"""Metrics-driven autoscaling: replica count follows occupancy and queues.

The autoscaler evaluates at a fixed simulated cadence (``interval_s``) on
the two gauges cluster telemetry exposes for capacity decisions — busy
occupancy over the elapsed window and queue depth per routable replica —
and emits one bounded step per tick: scale **up** when either signal says
the fleet is saturated, scale **down** when both say it is idle, hold
otherwise.  Every decision is recorded with the signals it read and the
before/after replica counts; the invariant suite asserts the *after*
count never leaves ``[min_replicas, max_replicas]`` (faults may push the
live count below the floor — healing and the next ticks pull it back, and
those excursions are the fault's doing, not the autoscaler's).

Decisions are pure functions of the signals, so a fleet replay reproduces
the exact same scaling trajectory.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["AutoscalerConfig", "ScaleDecision", "Autoscaler"]


@dataclass(frozen=True)
class AutoscalerConfig:
    """Scaling bounds, cadence, and thresholds."""

    min_replicas: int = 1
    max_replicas: int = 4
    interval_s: float = 0.5
    """Simulated seconds between evaluations (the control-loop tick)."""
    scale_up_backlog: float = 8.0
    """Mean backlog per routable replica that triggers a scale-up."""
    scale_up_occupancy: float = 0.85
    """Window busy fraction that triggers a scale-up."""
    scale_down_occupancy: float = 0.30
    """Window busy fraction below which (with an empty backlog) one
    replica is drained."""
    cooldown_ticks: int = 2
    """Ticks to hold after any scale action before acting again."""

    def __post_init__(self) -> None:
        if self.min_replicas < 1:
            raise ValueError("min_replicas must be >= 1")
        if self.max_replicas < self.min_replicas:
            raise ValueError("max_replicas must be >= min_replicas")
        if self.interval_s <= 0:
            raise ValueError("interval_s must be positive")
        if self.scale_up_backlog <= 0:
            raise ValueError("scale_up_backlog must be positive")
        if not (0.0 < self.scale_up_occupancy <= 1.0):
            raise ValueError("scale_up_occupancy must be in (0, 1]")
        if not (0.0 <= self.scale_down_occupancy < self.scale_up_occupancy):
            raise ValueError(
                "scale_down_occupancy must be in [0, scale_up_occupancy)")
        if self.cooldown_ticks < 0:
            raise ValueError("cooldown_ticks must be non-negative")


@dataclass(frozen=True)
class ScaleDecision:
    """One evaluated tick (held ticks are recorded too — the trajectory
    is the whole control history, not just the actions)."""

    time: float
    action: str
    """``"up"`` | ``"down"`` | ``"hold"``"""
    occupancy: float
    mean_backlog: float
    replicas_before: int
    replicas_after: int
    reason: str


class Autoscaler:
    """Bounded single-step controller over the fleet's replica count."""

    def __init__(self, config: AutoscalerConfig | None = None) -> None:
        self.config = config or AutoscalerConfig()
        self.decisions: list[ScaleDecision] = []
        self._cooldown = 0

    def evaluate(self, now: float, num_routable: int, occupancy: float,
                 mean_backlog: float) -> str:
        """Decide this tick's action from the window signals.

        ``num_routable`` is the routable replica count *before* the
        action; the caller applies the action and reports the resulting
        count through :meth:`record_applied`.
        """
        config = self.config
        action = "hold"
        reason = "signals nominal"
        if self._cooldown > 0:
            self._cooldown -= 1
            reason = f"cooldown ({self._cooldown + 1} tick(s) left)"
        elif num_routable < config.min_replicas:
            action = "up"
            reason = (f"routable {num_routable} below floor "
                      f"{config.min_replicas}")
        elif (mean_backlog >= config.scale_up_backlog
              or occupancy >= config.scale_up_occupancy):
            if num_routable < config.max_replicas:
                action = "up"
                reason = (f"occupancy {occupancy:.2f} / backlog "
                          f"{mean_backlog:.1f} over thresholds")
            else:
                reason = (f"saturated but at ceiling "
                          f"{config.max_replicas}")
        elif (occupancy <= config.scale_down_occupancy
              and mean_backlog < 1.0):
            if num_routable > config.min_replicas:
                action = "down"
                reason = f"occupancy {occupancy:.2f} under idle threshold"
            else:
                reason = f"idle but at floor {config.min_replicas}"
        if action != "hold":
            self._cooldown = config.cooldown_ticks
        self.decisions.append(ScaleDecision(
            time=now, action=action, occupancy=occupancy,
            mean_backlog=mean_backlog, replicas_before=num_routable,
            replicas_after=num_routable, reason=reason))
        return action

    def record_applied(self, replicas_after: int) -> None:
        """Patch the latest decision with the post-action replica count
        (what the bounds invariant audits)."""
        last = self.decisions[-1]
        self.decisions[-1] = ScaleDecision(
            time=last.time, action=last.action, occupancy=last.occupancy,
            mean_backlog=last.mean_backlog,
            replicas_before=last.replicas_before,
            replicas_after=replicas_after, reason=last.reason)

    @property
    def num_actions(self) -> int:
        return sum(1 for d in self.decisions if d.action != "hold")
