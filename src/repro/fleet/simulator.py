"""Deterministic multi-replica fleet simulator.

The :class:`FleetSimulator` is the front door plus control plane over N
:class:`~repro.fleet.replica.Replica` engines: it merges request
arrivals, replica kill/heal faults, and autoscaler control ticks into one
global time-ordered event stream, advances every live replica's engine to
each event time, and then lets the admission controller and router act on
deterministic replica snapshots.

Determinism contract (audited by ``repro fleet --smoke`` and the
hypothesis suite): the entire run is a pure function of
``(FleetConfig, request list)`` — replica lists are iterated in id order,
simultaneous events are ordered (heal < kill < scale tick < arrival,
then submission sequence), and ties inside policies break by replica id.
Two runs with the same inputs produce byte-identical
:func:`~repro.fleet.invariants.fleet_digest` values, in-process or
across worker processes.

Observability is additive: pass an armed
:class:`~repro.obs.instrument.Instrumentation` to get fleet gauges,
counters and trace instants, but no decision ever reads it — a disabled
run is bit-identical to an observed one.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Sequence

import numpy as np

from repro.faults.schedule import FaultEvent, FaultKind, FaultSchedule
from repro.fleet.admission import AdmissionConfig, AdmissionController
from repro.fleet.autoscaler import Autoscaler, AutoscalerConfig, ScaleDecision
from repro.fleet.replica import Replica
from repro.fleet.router import Router, make_router
from repro.hardware.gpus import H100_SXM
from repro.models.zoo import get_model
from repro.obs.slo import ErrorBudget
from repro.perfmodel.inference import InferencePerfModel
from repro.serving.request import Request
from repro.serving.scheduler import SchedulerConfig

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.obs.instrument import Instrumentation

__all__ = ["FleetConfig", "FleetResult", "FleetSimulator"]


@dataclass(frozen=True)
class FleetConfig:
    """Everything that determines a fleet's behaviour (the replay key)."""

    model_name: str = "OLMoE-1B-7B"
    num_replicas: int = 2
    policy: str = "round_robin"
    kv_pool_tokens: int = 65_536
    max_num_seqs: int = 32
    max_num_batched_tokens: int = 8192
    enable_prefix_caching: bool = False
    router_slack: int | None = 8
    """Prefix-affinity load escape: how far beyond the least-loaded
    replica the home's queue may run before a request detours (None
    pins templates to their home unconditionally; ignored by the other
    policies)."""
    admission: AdmissionConfig = AdmissionConfig()
    autoscaler: AutoscalerConfig | None = None
    replica_kills: FaultSchedule | None = None
    """``REPLICA_LOSS``-only fault schedule (see
    :func:`repro.faults.schedule.replica_storm`); other fault kinds are
    engine-scoped and rejected here."""

    def __post_init__(self) -> None:
        if self.num_replicas < 1:
            raise ValueError("num_replicas must be >= 1")
        if self.replica_kills is not None:
            for event in self.replica_kills:
                if event.kind is not FaultKind.REPLICA_LOSS:
                    raise ValueError(
                        f"fleet kill schedules take REPLICA_LOSS events "
                        f"only, got {event.kind.value} at t={event.time}")


@dataclass
class FleetResult:
    """Outcome of one fleet run (holds the live replica records so the
    digest and invariant audit can replay every event log)."""

    policy: str
    requests: list[Request]
    shed: list[Request]
    replicas: list[Replica]
    assignments: tuple[tuple[float, int, int], ...]
    """``(time, request_id, replica_id)`` routing log, submission order."""
    kills: tuple[tuple[float, int], ...]
    heals: tuple[tuple[float, int], ...]
    scale_decisions: tuple[ScaleDecision, ...]
    makespan: float
    budgets: list[ErrorBudget]
    num_rerouted: int = 0

    _ttft_cache: list[float] | None = field(default=None, init=False,
                                            repr=False)

    @property
    def num_requests(self) -> int:
        return len(self.requests)

    @property
    def num_finished(self) -> int:
        return sum(1 for r in self.requests if r.is_finished)

    @property
    def num_shed(self) -> int:
        return len(self.shed)

    @property
    def availability(self) -> float:
        if not self.requests:
            return 1.0
        return self.num_finished / len(self.requests)

    @property
    def shed_rate(self) -> float:
        if not self.requests:
            return 0.0
        return self.num_shed / len(self.requests)

    def _ttft_values(self) -> list[float]:
        if self._ttft_cache is None:
            vals = [r.ttft for r in self.requests
                    if r.is_finished and r.ttft is not None]
            if not vals:
                raise ValueError("no fleet request produced a first token")
            self._ttft_cache = vals
        return self._ttft_cache

    def mean_ttft(self) -> float:
        return float(np.mean(self._ttft_values()))

    def p50_ttft(self) -> float:
        return float(np.percentile(self._ttft_values(), 50))

    def p99_ttft(self) -> float:
        return float(np.percentile(self._ttft_values(), 99))

    @property
    def served_tokens(self) -> int:
        return sum(r.prompt_tokens + r.generated_tokens
                   for r in self.requests if r.is_finished)

    @property
    def throughput_tok_s(self) -> float:
        if self.makespan <= 0:
            return 0.0
        return self.served_tokens / self.makespan

    @property
    def kv_lookups(self) -> int:
        return sum(getattr(r.engine.kv, "stats").lookups
                   for r in self.replicas
                   if hasattr(r.engine.kv, "stats"))

    @property
    def kv_hits(self) -> int:
        return sum(getattr(r.engine.kv, "stats").hits
                   for r in self.replicas
                   if hasattr(r.engine.kv, "stats"))

    @property
    def kv_hit_rate(self) -> float:
        lookups = self.kv_lookups
        return self.kv_hits / lookups if lookups else 0.0

    @property
    def num_kills(self) -> int:
        return sum(1 for _, rid in self.kills if rid >= 0)

    @property
    def peak_replicas(self) -> int:
        """Most replicas ever routable at once (scale-decision view plus
        the static fleet size)."""
        peak = max((d.replicas_after for d in self.scale_decisions),
                   default=0)
        static = sum(1 for r in self.replicas if r.started_at == 0.0)
        return max(peak, static)

    def budget_consumed(self, slo_name: str) -> float:
        for budget in self.budgets:
            if budget.slo == slo_name:
                return budget.budget_consumed
        raise KeyError(f"no tracked SLO named {slo_name!r}")

    def replica_summaries(self) -> list[dict]:
        """Deterministic per-replica accounting rows."""
        return [{
            "replica_id": r.replica_id,
            "state": ("draining" if r.draining and r.alive else
                      "alive" if r.alive else "dead"),
            "started_at_s": r.started_at,
            "retired_at_s": r.retired_at,
            "assigned": r.assigned,
            "finished": sum(1 for q in r.engine._all if q.is_finished),
            "busy_s": r.busy_s(),
            "clock_s": r.clock,
        } for r in self.replicas]


class FleetSimulator:
    """Route, admit, autoscale and fault a fleet of serving replicas."""

    def __init__(self, config: FleetConfig,
                 instrumentation: "Instrumentation | None" = None) -> None:
        self.config = config
        self.obs = instrumentation
        model = get_model(config.model_name)
        self.perf = InferencePerfModel(model, H100_SXM)
        self._scheduler_config = SchedulerConfig(
            max_num_seqs=config.max_num_seqs,
            max_num_batched_tokens=config.max_num_batched_tokens,
        )
        self.replicas: list[Replica] = []
        self._next_replica_id = 0
        for _ in range(config.num_replicas):
            self._spawn(0.0)
        self.router: Router = make_router(config.policy,
                                          load_slack=config.router_slack)
        self.admission = AdmissionController(config.admission)
        self.autoscaler: Autoscaler | None = (
            Autoscaler(config.autoscaler)
            if config.autoscaler is not None else None)
        self.assignments: list[tuple[float, int, int]] = []
        self.shed: list[Request] = []
        self.kills: list[tuple[float, int]] = []
        self.heals: list[tuple[float, int]] = []
        self.num_rerouted = 0
        self._by_id: dict[int, Request] = {}
        self._kill_landed: dict[int, int] = {}
        """schedule-event index → replica id actually killed (heals spawn
        replacements only for kills that landed)."""
        self._busy_snapshot: dict[int, float] = {}
        self._last_tick = 0.0
        self._next_tick = (config.autoscaler.interval_s
                           if config.autoscaler is not None else 0.0)
        self._ran = False

    # ------------------------------------------------------------------ #
    # fleet membership
    # ------------------------------------------------------------------ #

    def _spawn(self, now: float) -> Replica:
        replica = Replica(
            self._next_replica_id,
            self.perf,
            scheduler_config=self._scheduler_config,
            kv_pool_tokens=self.config.kv_pool_tokens,
            enable_prefix_caching=self.config.enable_prefix_caching,
            now=now,
        )
        self._next_replica_id += 1
        self.replicas.append(replica)
        return replica

    def _routable(self) -> list[Replica]:
        return [r for r in self.replicas if r.routable]

    def _active_obs(self) -> "Instrumentation | None":
        obs = self.obs
        return obs if obs is not None and obs.active else None

    # ------------------------------------------------------------------ #
    # the run
    # ------------------------------------------------------------------ #

    def run(self, requests: Sequence[Request]) -> FleetResult:
        """Drive the trace through the fleet and return the outcome.

        Single-shot: the simulator's routing/admission/autoscaler state
        belongs to exactly one trace.
        """
        if self._ran:
            raise RuntimeError("FleetSimulator.run is single-shot; build a "
                               "fresh simulator for each trace")
        self._ran = True
        ordered = sorted(requests,
                         key=lambda r: (r.arrival_time, r.request_id))
        ids = [r.request_id for r in ordered]
        if len(set(ids)) != len(ids):
            raise ValueError("fleet traces need unique request ids")
        self._by_id = {r.request_id: r for r in ordered}

        # one global event stream: heals before kills before arrivals at a
        # tie (a replacement landing exactly when another replica dies must
        # be routable for the re-route), stable sequence numbers last
        events: list[tuple[float, int, int, str, object]] = []
        seq = 0
        if self.config.replica_kills is not None:
            for idx, fault in enumerate(self.config.replica_kills):
                events.append((fault.time, 1, idx, "kill", fault))
                if not fault.is_permanent:
                    events.append((fault.heal_time, 0, idx, "heal", fault))
        for r in ordered:
            events.append((r.arrival_time, 2, seq, "arrival", r))
            seq += 1
        events.sort(key=lambda e: (e[0], e[1], e[2]))

        for time, _, idx, kind, payload in events:
            self._tick_through(time)
            self._advance_all(time)
            if kind == "arrival":
                self._handle_arrival(payload, time)
            elif kind == "kill":
                self._handle_kill(payload, idx, time)
            else:
                self._handle_heal(payload, idx, time)
        self._final_drain(events[-1][0] if events else 0.0)
        return self._build_result()

    # ------------------------------------------------------------------ #
    # time advancement
    # ------------------------------------------------------------------ #

    def _tick_through(self, t: float) -> None:
        """Run autoscaler control ticks due strictly before ``t``."""
        if self.autoscaler is None:
            return
        interval = self.autoscaler.config.interval_s
        guard = 0
        while self._next_tick <= t:
            self._advance_all(self._next_tick)
            self._autoscale(self._next_tick)
            self._next_tick += interval
            guard += 1
            if guard > 1_000_000:
                raise RuntimeError("autoscaler tick runaway")

    def _advance_all(self, t: float) -> None:
        for replica in self.replicas:
            replica.advance_to(t)
        self._collect_terminals()
        for replica in self.replicas:
            replica.retire_if_drained(t)

    def _collect_terminals(self) -> None:
        fresh: list[tuple[float, int]] = []
        for replica in self.replicas:
            fresh.extend(replica.new_terminals())
        fresh.sort()
        obs = self._active_obs()
        for time, rid in fresh:
            req = self._by_id[rid]
            self.admission.on_terminal(req, time)
            if obs is not None and obs.slo is not None:
                obs.slo.on_request_terminal(req, time)

    # ------------------------------------------------------------------ #
    # event handlers
    # ------------------------------------------------------------------ #

    def _handle_arrival(self, req: Request, now: float) -> None:
        routable = self._routable()
        decision = self.admission.decide(req, routable, now)
        self.admission.record(decision)
        if not decision.admit:
            self._shed(req, decision.reason, now)
            return
        replica = self.router.choose(req, routable, now)
        assert replica is not None  # decide() admits only with replicas
        self._assign(req, replica, now)

    def _shed(self, req: Request, reason: str, now: float) -> None:
        req.fail(reason)
        self.shed.append(req)
        self.admission.on_terminal(req, now)
        obs = self._active_obs()
        if obs is not None:
            obs.now = max(obs.now, now)
            obs.metrics.counter(
                "fleet_requests_shed_total",
                "requests shed by fleet admission control").inc()
            if obs.slo is not None:
                obs.slo.on_request_terminal(req, now)

    def _assign(self, req: Request, replica: Replica, now: float) -> None:
        replica.engine.submit(req)
        replica.assigned += 1
        self.assignments.append((now, req.request_id, replica.replica_id))
        obs = self._active_obs()
        if obs is not None:
            obs.now = max(obs.now, now)
            obs.metrics.counter(
                "fleet_requests_routed_total",
                "requests routed to a replica",
                labels={"policy": self.router.name}).inc()

    def _handle_kill(self, fault: FaultEvent, idx: int, now: float) -> None:
        pool = [r for r in self.replicas if r.alive]
        if not pool:
            self.kills.append((now, -1))
            return
        victim = pool[fault.target % len(pool)]
        orphans = victim.kill(now)
        self.kills.append((now, victim.replica_id))
        self._kill_landed[idx] = victim.replica_id
        obs = self._active_obs()
        if obs is not None:
            obs.now = max(obs.now, now)
            obs.tracer.instant("fleet.replica_loss", now, cat="fleet",
                               replica_id=victim.replica_id,
                               orphans=len(orphans))
            obs.metrics.counter(
                "fleet_replica_kills_total",
                "replicas lost to REPLICA_LOSS faults").inc()
            obs.metrics.gauge(
                "fleet_routable_replicas_count",
                "replicas accepting traffic").set(len(self._routable()))
        for req in orphans:
            routable = self._routable()
            target = self.router.choose(req, routable, now)
            if target is None:
                self._shed(req, f"replica {victim.replica_id} lost and no "
                                "live replica remains to re-route", now)
                continue
            self._assign(req, target, now)
            self.num_rerouted += 1

    def _handle_heal(self, fault: FaultEvent, idx: int, now: float) -> None:
        if idx not in self._kill_landed:
            return  # the paired kill found no replica to kill
        replacement = self._spawn(now)
        self.heals.append((now, replacement.replica_id))
        obs = self._active_obs()
        if obs is not None:
            obs.now = max(obs.now, now)
            obs.tracer.instant("fleet.replica_heal", now, cat="fleet",
                               replica_id=replacement.replica_id)
            obs.metrics.counter(
                "fleet_replica_heals_total",
                "replacement replicas brought up after an outage").inc()
            obs.metrics.gauge(
                "fleet_routable_replicas_count",
                "replicas accepting traffic").set(len(self._routable()))

    # ------------------------------------------------------------------ #
    # autoscaling
    # ------------------------------------------------------------------ #

    def _autoscale(self, now: float) -> None:
        assert self.autoscaler is not None
        routable = self._routable()
        elapsed = now - self._last_tick
        busy = 0.0
        for replica in routable:
            busy += (replica.busy_s()
                     - self._busy_snapshot.get(replica.replica_id, 0.0))
        for replica in self.replicas:
            self._busy_snapshot[replica.replica_id] = replica.busy_s()
        occupancy = (busy / (elapsed * len(routable))
                     if routable and elapsed > 0 else 0.0)
        mean_backlog = (sum(r.backlog for r in routable) / len(routable)
                        if routable else 0.0)
        action = self.autoscaler.evaluate(now, len(routable), occupancy,
                                          mean_backlog)
        if action == "up":
            self._spawn(now)
        elif action == "down":
            # drain the least-loaded routable replica; newest on a tie, so
            # long-lived replicas keep their warm prefix caches
            victim = min(routable, key=lambda r: (r.load, -r.replica_id))
            victim.draining = True
            victim.retire_if_drained(now)
        self.autoscaler.record_applied(len(self._routable()))
        self._last_tick = now
        obs = self._active_obs()
        if obs is not None:
            obs.now = max(obs.now, now)
            obs.metrics.gauge(
                "fleet_occupancy_fraction",
                "fleet busy fraction over the last control window",
            ).set(occupancy)
            obs.metrics.gauge(
                "fleet_backlog_count",
                "queued + pending requests across routable replicas",
            ).set(sum(r.backlog for r in routable))
            obs.metrics.gauge(
                "fleet_routable_replicas_count",
                "replicas accepting traffic").set(len(self._routable()))
            if action != "hold":
                obs.tracer.instant(f"fleet.scale_{action}", now, cat="fleet",
                                   occupancy=round(occupancy, 4),
                                   mean_backlog=round(mean_backlog, 2))
                obs.metrics.counter(
                    "fleet_scale_actions_total",
                    "autoscaler scale actions",
                    labels={"action": action}).inc()

    # ------------------------------------------------------------------ #
    # drain and result
    # ------------------------------------------------------------------ #

    def _final_drain(self, last_event_time: float) -> None:
        if self.autoscaler is None:
            for replica in self.replicas:
                replica.drain()
            self._collect_terminals()
            horizon = max([last_event_time]
                          + [r.clock for r in self.replicas])
            for replica in self.replicas:
                replica.retire_if_drained(horizon)
            return
        interval = self.autoscaler.config.interval_s
        guard = 0
        while any(r.alive and r.has_work for r in self.replicas):
            self._advance_all(self._next_tick)
            self._autoscale(self._next_tick)
            self._next_tick += interval
            guard += 1
            if guard > 1_000_000:
                raise RuntimeError("fleet drain exceeded 1M control ticks")

    def _build_result(self) -> FleetResult:
        makespan = max([r.clock for r in self.replicas]
                       + [t for t, _, _ in self.assignments] + [0.0])
        result = FleetResult(
            policy=self.router.name,
            requests=sorted(self._by_id.values(),
                            key=lambda r: r.request_id),
            shed=list(self.shed),
            replicas=list(self.replicas),
            assignments=tuple(self.assignments),
            kills=tuple(self.kills),
            heals=tuple(self.heals),
            scale_decisions=tuple(self.autoscaler.decisions
                                  if self.autoscaler is not None else ()),
            makespan=makespan,
            budgets=self.admission.budgets(),
            num_rerouted=self.num_rerouted,
        )
        obs = self._active_obs()
        if obs is not None:
            obs.metrics.gauge(
                "fleet_makespan_seconds",
                "simulated time to drain the fleet").set(result.makespan)
            obs.metrics.gauge(
                "fleet_availability_ratio",
                "finished fraction of offered requests",
            ).set(result.availability)
        return result
