"""Canonical fleet scenarios shared by the CLI, tests, and experiments.

One reference scenario — a diurnal templated trace on a prefix-affinity
fleet with an armed replica storm and the autoscaler on — exercised by
``repro fleet --smoke`` (replay gate), the determinism regression tests,
and the hypothesis suite's worked examples.  Everything here is a pure
function of its arguments; module-level functions (not closures) so the
multiprocessing determinism tests can ship them to worker processes.
"""

from __future__ import annotations

import numpy as np

from repro.faults.schedule import FaultSchedule, replica_storm
from repro.fleet.admission import AdmissionConfig
from repro.fleet.autoscaler import AutoscalerConfig
from repro.fleet.invariants import check_fleet_invariants, fleet_digest
from repro.fleet.simulator import FleetConfig, FleetResult, FleetSimulator
from repro.fleet.traffic import DiurnalSpec, TemplateMix, diurnal_arrivals, \
    synthesize_requests
from repro.serving.request import Request
from repro.workloads.generator import LengthDistribution

__all__ = [
    "SMOKE_SEED",
    "smoke_fleet_config",
    "smoke_trace",
    "run_fleet",
    "fleet_smoke_run",
    "fleet_smoke_digest",
]

SMOKE_SEED = 23
"""Seed of the canonical smoke scenario (trace and storm both derive
from it)."""


def smoke_fleet_config(policy: str = "prefix_affinity",
                       with_storm: bool = True,
                       with_autoscaler: bool = True) -> FleetConfig:
    """The reference fleet: 3 replicas, prefix caching on, a replica
    storm that lands at least one kill and one heal, and a 1..4 bounded
    autoscaler."""
    kills: FaultSchedule | None = None
    if with_storm:
        kills = replica_storm(SMOKE_SEED, horizon_s=4.0, rate_per_s=0.75,
                              num_replicas=3, mean_outage_s=1.5,
                              permanent_fraction=0.25)
    autoscaler = AutoscalerConfig(min_replicas=1, max_replicas=4,
                                  interval_s=0.5) if with_autoscaler else None
    return FleetConfig(
        num_replicas=3,
        policy=policy,
        kv_pool_tokens=32_768,
        max_num_seqs=16,
        enable_prefix_caching=True,
        admission=AdmissionConfig(max_backlog_per_replica=48),
        autoscaler=autoscaler,
        replica_kills=kills,
    )


def smoke_trace(num_requests: int = 96,
                seed: int = SMOKE_SEED) -> list[Request]:
    """Diurnal templated trace sized so the storm catches work in flight."""
    rng = np.random.default_rng(seed)
    spec = DiurnalSpec(base_rps=8.0, peak_rps=48.0, period_s=4.0)
    arrivals = diurnal_arrivals(spec, num_requests, rng)
    return synthesize_requests(
        num_requests, rng, arrivals,
        lengths=LengthDistribution(mean_input=192, mean_output=48,
                                   sigma=0.35),
        templates=TemplateMix(num_templates=6, templated_fraction=0.8,
                              prefix_tokens=128),
    )


def run_fleet(config: FleetConfig, requests: list[Request],
              instrumentation=None) -> FleetResult:
    """Build a simulator, run the trace, return the result."""
    return FleetSimulator(config, instrumentation=instrumentation) \
        .run(requests)


def fleet_smoke_run(policy: str = "prefix_affinity") -> FleetResult:
    """One canonical smoke run (fresh simulator and trace each call)."""
    return run_fleet(smoke_fleet_config(policy), smoke_trace())


def fleet_smoke_digest(policy: str = "prefix_affinity") -> str:
    """Digest of one smoke run, with the invariant audit applied first.

    Module-level (not a closure) so the cross-process determinism tests
    can run it under ``multiprocessing``.
    """
    config = smoke_fleet_config(policy)
    result = run_fleet(config, smoke_trace())
    check_fleet_invariants(result, config.autoscaler)
    return fleet_digest(result)
