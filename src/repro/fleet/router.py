"""Front-door routing policies: which replica serves the next request.

Three pluggable policies, all pure functions of the replica snapshots
they are shown (deterministic ties broken by replica id, never by dict or
set order):

* **round_robin** — cycle through routable replica ids.  The cursor
  tracks the last *id* chosen, not an index, so membership churn (kills,
  scale events) never skips or double-serves a replica.
* **least_kv** — pick the replica with the most allocatable KV blocks
  (ties: smaller total load, then lower id).  KV headroom is the binding
  resource for long-context serving, so this is "least-loaded" measured
  in the unit that actually runs out.
* **prefix_affinity** — templated requests (those advertising
  ``prompt_block_hashes``) stick to the replica that served their
  template before, so its ``PrefixCachingKVCache`` entries get reused;
  untemplated requests and first-seen templates fall through to
  least-KV.  When the affine replica is dead or draining the template is
  re-homed through the fallback — affinity degrades to least-KV, it never
  blackholes.  A bounded load escape (``load_slack``) caps how deep the
  home replica's queue may run beyond the fleet minimum before a request
  temporarily detours to least-KV *without* re-homing: stickiness when
  balanced, round-robin-like tails when a template runs hot.  Set
  ``load_slack=None`` for pure affinity — the mode under which affinity
  provably never loses cache hits to round-robin on a kill-free
  templated trace.
"""

from __future__ import annotations

from typing import Sequence

from repro.fleet.replica import Replica
from repro.serving.request import Request

__all__ = [
    "Router",
    "RoundRobinRouter",
    "LeastLoadedKVRouter",
    "PrefixAffinityRouter",
    "ROUTER_POLICIES",
    "make_router",
]


class Router:
    """Base policy: choose a replica for each request."""

    name = "base"

    def choose(self, request: Request, replicas: Sequence[Replica],
               now: float) -> Replica | None:
        """Pick a replica from the routable snapshot (sorted by id), or
        None when the snapshot is empty.  Implementations must be
        deterministic functions of ``(request, snapshot, policy state)``.
        """
        raise NotImplementedError

    def describe(self) -> str:
        return self.name


class RoundRobinRouter(Router):
    name = "round_robin"

    def __init__(self) -> None:
        self._last_id: int | None = None

    def choose(self, request: Request, replicas: Sequence[Replica],
               now: float) -> Replica | None:
        if not replicas:
            return None
        if self._last_id is not None:
            for replica in replicas:
                if replica.replica_id > self._last_id:
                    self._last_id = replica.replica_id
                    return replica
        chosen = replicas[0]
        self._last_id = chosen.replica_id
        return chosen


class LeastLoadedKVRouter(Router):
    name = "least_kv"

    def choose(self, request: Request, replicas: Sequence[Replica],
               now: float) -> Replica | None:
        if not replicas:
            return None
        return min(replicas, key=lambda r: (-r.free_kv_blocks, r.load,
                                            r.replica_id))


class PrefixAffinityRouter(Router):
    name = "prefix_affinity"

    def __init__(self, load_slack: int | None = 8) -> None:
        self._home: dict[int, int] = {}
        """template key (first prefix-block hash) → home replica id."""
        self._fallback = LeastLoadedKVRouter()
        self.load_slack = load_slack
        """Max requests the home replica may hold beyond the least-loaded
        replica before a request detours (None disables the escape)."""

    def choose(self, request: Request, replicas: Sequence[Replica],
               now: float) -> Replica | None:
        if not replicas:
            return None
        if not request.prompt_block_hashes:
            return self._fallback.choose(request, replicas, now)
        key = request.prompt_block_hashes[0]
        home_id = self._home.get(key)
        if home_id is not None:
            for replica in replicas:
                if replica.replica_id == home_id:
                    if self.load_slack is not None:
                        floor = min(r.load for r in replicas)
                        if replica.load > floor + self.load_slack:
                            # detour, keep the home: the cached prefix is
                            # still there once the queue drains
                            return self._fallback.choose(request, replicas,
                                                         now)
                    return replica
        chosen = self._fallback.choose(request, replicas, now)
        if chosen is not None:
            self._home[key] = chosen.replica_id
        return chosen


ROUTER_POLICIES: tuple[str, ...] = ("round_robin", "least_kv",
                                    "prefix_affinity")


def make_router(policy: str, load_slack: int | None = 8) -> Router:
    """Instantiate a routing policy by name.  ``load_slack`` configures
    the prefix-affinity escape valve and is ignored by the other
    policies."""
    if policy == "prefix_affinity":
        return PrefixAffinityRouter(load_slack=load_slack)
    factories = {
        "round_robin": RoundRobinRouter,
        "least_kv": LeastLoadedKVRouter,
    }
    if policy not in factories:
        raise ValueError(
            f"unknown router policy {policy!r} "
            f"(choose from {', '.join(ROUTER_POLICIES)})")
    return factories[policy]()
