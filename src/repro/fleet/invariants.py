"""Fleet-level invariants and the replay digest.

The per-engine contract lives in :mod:`repro.faults.invariants`; these
checks add what only exists at fleet scope:

* **conservation** — every offered request is terminal, and it became
  terminal *exactly once* across the whole fleet: one FINISH/FAIL event
  in exactly one replica's log, or one front-door shed — never both,
  never twice (a request killed mid-flight and re-routed must finish on
  exactly one survivor).
* **per-replica coherence** — every replica's event log and final engine
  state pass the single-engine final invariants (dead replicas included:
  a kill must leave the engine a clean record of only the work that
  terminated there), and no replica's clock ever moved backwards.
* **autoscaler bounds** — every control decision left the routable count
  inside ``[min_replicas, max_replicas]``.
* :func:`fleet_digest` — SHA-256 over every replica's event log, every
  request outcome, and the full routing/shed/kill/heal/scale history,
  floats hashed via ``float.hex`` so two runs agree iff they are
  bit-identical.
"""

from __future__ import annotations

import hashlib
from typing import TYPE_CHECKING

from repro.faults.invariants import (
    InvariantViolation,
    check_final_invariants,
)
from repro.serving.engine import ServingResult
from repro.serving.events import EventType

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.fleet.autoscaler import AutoscalerConfig
    from repro.fleet.simulator import FleetResult

__all__ = ["check_fleet_invariants", "fleet_digest"]


def _violate(message: str) -> None:
    raise InvariantViolation(message)


def check_fleet_invariants(
    result: "FleetResult",
    autoscaler_config: "AutoscalerConfig | None" = None,
) -> None:
    """Audit one drained fleet run; raises
    :class:`~repro.faults.invariants.InvariantViolation` on the first
    breach.  Pass the run's :class:`~repro.fleet.autoscaler.
    AutoscalerConfig` to additionally audit the scaling bounds."""
    offered = {r.request_id for r in result.requests}
    shed_ids = [r.request_id for r in result.shed]
    if len(set(shed_ids)) != len(shed_ids):
        _violate("a request was shed more than once")

    # -- conservation: terminal exactly once across the fleet ----------- #
    terminal_counts: dict[int, int] = {rid: 0 for rid in sorted(offered)}
    for replica in result.replicas:
        for etype in (EventType.FINISH, EventType.FAIL):
            for event in replica.engine.log.of_type(etype):
                for rid in event.request_ids:
                    if rid not in terminal_counts:
                        _violate(f"replica {replica.replica_id} terminated "
                                 f"unknown request {rid}")
                    terminal_counts[rid] += 1
    for rid in shed_ids:
        if rid not in terminal_counts:
            _violate(f"shed list contains unknown request {rid}")
        terminal_counts[rid] += 1
    for req in result.requests:
        if not req.is_terminal:
            _violate(f"request {req.request_id} ended the run in state "
                     f"{req.state.value} — every offered request must "
                     "finish, fail, or be shed")
        count = terminal_counts[req.request_id]
        if count != 1:
            _violate(f"request {req.request_id} became terminal {count} "
                     "times across the fleet (must be exactly once)")
        if req.is_failed and not req.failure_reason:
            _violate(f"failed request {req.request_id} has no reason")

    # -- routing log sanity --------------------------------------------- #
    replica_ids = {r.replica_id for r in result.replicas}
    for time, rid, target in result.assignments:
        if rid not in offered:
            _violate(f"assignment at t={time} names unknown request {rid}")
        if target not in replica_ids:
            _violate(f"assignment at t={time} names unknown replica "
                     f"{target}")
    assigned_ids = {rid for _, rid, _ in result.assignments}
    for req in result.requests:
        if req.is_finished and req.request_id not in assigned_ids:
            _violate(f"request {req.request_id} finished without ever "
                     "being routed")

    # -- per-replica engine coherence ----------------------------------- #
    for replica in result.replicas:
        engine = replica.engine
        if replica.clock_violations:
            _violate(replica.clock_violations[0])
        if engine.clock < replica.started_at - 1e-12:
            _violate(f"replica {replica.replica_id} clock {engine.clock} "
                     f"precedes its start {replica.started_at}")
        if replica.alive and replica.has_work:
            _violate(f"replica {replica.replica_id} still has work after "
                     "the fleet drained")
        local = ServingResult(requests=list(engine._all),
                              makespan=engine.clock, log=engine.log)
        check_final_invariants(local, engine)

    # -- autoscaler bounds ---------------------------------------------- #
    if autoscaler_config is not None:
        lo = autoscaler_config.min_replicas
        hi = autoscaler_config.max_replicas
        for decision in result.scale_decisions:
            if decision.action == "hold":
                continue
            # the ceiling is the autoscaler's own hard bound; the floor
            # can only be transiently violated by replica-loss faults,
            # which scale *decisions* must still never make worse
            if decision.replicas_after > hi:
                _violate(f"autoscaler scaled above the ceiling: "
                         f"{decision.replicas_after} > {hi} at "
                         f"t={decision.time}")
            if (decision.action == "down"
                    and decision.replicas_after < lo):
                _violate(f"autoscaler drained below the floor: "
                         f"{decision.replicas_after} < {lo} at "
                         f"t={decision.time}")


def _hex(x: float | None) -> str:
    return "None" if x is None else float(x).hex()


def fleet_digest(result: "FleetResult") -> str:
    """Deterministic SHA-256 of the complete fleet trajectory."""
    h = hashlib.sha256()
    h.update(result.policy.encode())
    for replica in result.replicas:
        h.update(repr((replica.replica_id, _hex(replica.started_at),
                       _hex(replica.retired_at), replica.alive,
                       replica.draining, replica.assigned)).encode())
        for e in replica.engine.log.events:
            h.update(repr((
                _hex(e.time), e.type.value, e.request_ids, e.num_tokens,
                _hex(e.duration_s), _hex(e.kv_utilization), e.detail,
            )).encode())
    for r in result.requests:
        h.update(repr((
            r.request_id, r.state.value, r.prompt_tokens,
            r.generated_tokens, r.kv_tokens, _hex(r.arrival_time),
            _hex(r.first_scheduled_time), _hex(r.first_token_time),
            _hex(r.finish_time), r.num_preemptions, r.fault_retries,
            _hex(r.retry_time), r.failure_reason,
        )).encode())
    for time, rid, target in result.assignments:
        h.update(repr((_hex(time), rid, target)).encode())
    for time, rid in result.kills:
        h.update(repr(("kill", _hex(time), rid)).encode())
    for time, rid in result.heals:
        h.update(repr(("heal", _hex(time), rid)).encode())
    for d in result.scale_decisions:
        h.update(repr((_hex(d.time), d.action, _hex(d.occupancy),
                       _hex(d.mean_backlog), d.replicas_before,
                       d.replicas_after)).encode())
    return h.hexdigest()
