"""Synthetic fleet traffic: diurnal arrival curves and templated prompts.

Front-door load differs from the single-engine traces in two ways.  First,
arrival *rates* move: production traffic follows a diurnal curve (a slow
sinusoid between a night-time base and a daytime peak) with bursts riding
on top.  Second, prompts are not independent: a large share of requests
instantiate a small set of prompt *templates* (system prompts, few-shot
preambles), which is exactly the structure prefix caching and
prefix-affinity routing exploit.

Everything is a pure function of ``(spec, seed)``: arrival timestamps come
from a seeded thinning of a homogeneous Poisson process, template
assignment from the same generator, so a trace replays bit-identically.
Arrival generation is vectorized numpy and comfortably scales to millions
of timestamps; request materialisation is O(n) python objects, so for
fleet-scale counts keep the ``Request`` horizon bounded and reuse the raw
timestamp arrays for capacity math.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.serving.request import Request, SamplingParams
from repro.workloads.generator import LengthDistribution

__all__ = [
    "DiurnalSpec",
    "TemplateMix",
    "diurnal_rate",
    "diurnal_arrivals",
    "template_block_hashes",
    "synthesize_requests",
]


@dataclass(frozen=True)
class DiurnalSpec:
    """A sinusoidal day/night arrival-rate curve.

    The instantaneous rate starts at ``base_rps`` (simulated midnight),
    peaks at ``peak_rps`` half a ``period_s`` later, and returns — one
    simulated "day" per period.
    """

    base_rps: float
    peak_rps: float
    period_s: float

    def __post_init__(self) -> None:
        if self.base_rps <= 0:
            raise ValueError("base_rps must be positive")
        if self.peak_rps < self.base_rps:
            raise ValueError("peak_rps must be >= base_rps")
        if self.period_s <= 0:
            raise ValueError("period_s must be positive")


def diurnal_rate(spec: DiurnalSpec, t: float) -> float:
    """Instantaneous arrival rate (requests/s) at simulated time ``t``."""
    swing = 0.5 * (1.0 - math.cos(2.0 * math.pi * t / spec.period_s))
    return spec.base_rps + (spec.peak_rps - spec.base_rps) * swing


def diurnal_arrivals(
    spec: DiurnalSpec, n: int, rng: np.random.Generator, start: float = 0.0
) -> np.ndarray:
    """``n`` arrival timestamps of a nonhomogeneous Poisson process.

    Standard thinning (Lewis & Shedler): candidates are drawn at the
    envelope rate ``peak_rps`` and accepted with probability
    ``rate(t) / peak_rps``.  Candidates are drawn in vectorized chunks so
    million-request traces stay cheap; acceptance consumes the PRNG in a
    fixed order, so the trace is a pure function of ``(spec, rng state)``.
    """
    if n <= 0:
        raise ValueError("n must be positive")
    out = np.empty(n)
    filled = 0
    t = start
    chunk = max(256, min(1 << 16, 4 * n))
    while filled < n:
        gaps = rng.exponential(1.0 / spec.peak_rps, size=chunk)
        times = t + np.cumsum(gaps)
        accept = rng.random(chunk)
        swing = 0.5 * (1.0 - np.cos(2.0 * np.pi * times / spec.period_s))
        rates = spec.base_rps + (spec.peak_rps - spec.base_rps) * swing
        kept = times[accept < rates / spec.peak_rps]
        take = min(n - filled, kept.size)
        out[filled:filled + take] = kept[:take]
        filled += take
        t = float(times[-1])
    return out


@dataclass(frozen=True)
class TemplateMix:
    """Templated-prompt structure of a trace.

    A ``templated_fraction`` share of requests draws one of
    ``num_templates`` templates uniformly; its prompt then starts with that
    template's ``prefix_tokens``-token preamble, whose full KV blocks carry
    content hashes (:func:`template_block_hashes`) so a
    ``PrefixCachingKVCache`` can reuse them and the prefix-affinity router
    can steer the request to the replica already holding them.
    """

    num_templates: int = 8
    templated_fraction: float = 0.9
    prefix_tokens: int = 256
    block_size: int = 16

    def __post_init__(self) -> None:
        if self.num_templates <= 0:
            raise ValueError("num_templates must be positive")
        if not (0.0 <= self.templated_fraction <= 1.0):
            raise ValueError("templated_fraction must be in [0, 1]")
        if self.prefix_tokens < self.block_size:
            raise ValueError("prefix_tokens must cover at least one block")
        if self.block_size <= 0:
            raise ValueError("block_size must be positive")

    @property
    def prefix_blocks(self) -> int:
        return self.prefix_tokens // self.block_size


def template_block_hashes(template_id: int, num_blocks: int) -> tuple[int, ...]:
    """Content hashes of one template's leading KV blocks.

    Each hash must incorporate its preceding context (the prefix-cache
    contract), so block ``i`` of template ``t`` gets the unique value
    ``((t + 1) << 32) + i`` — distinct across templates and positions,
    identical for every request instantiating the same template.
    """
    if template_id < 0:
        raise ValueError("template_id must be non-negative")
    base = (template_id + 1) << 32
    return tuple(base + i for i in range(num_blocks))


def synthesize_requests(
    n: int,
    rng: np.random.Generator,
    arrival_times: np.ndarray,
    lengths: LengthDistribution | None = None,
    templates: TemplateMix | None = None,
    start_id: int = 0,
) -> list[Request]:
    """Materialise a trace as engine requests.

    Lengths are drawn first (one vectorized pass through ``lengths``),
    then template membership and template ids — a fixed PRNG consumption
    order, so adding templates to a spec never perturbs the length draws
    of an untemplated baseline.  Templated prompts are extended to at
    least the template's prefix so the advertised block hashes are real.
    """
    if n <= 0:
        raise ValueError("n must be positive")
    if len(arrival_times) != n:
        raise ValueError("arrival_times length must equal n")
    lengths = lengths or LengthDistribution()
    pairs = lengths.sample(n, rng)
    if templates is not None and templates.templated_fraction > 0:
        is_templated = rng.random(n) < templates.templated_fraction
        template_ids = rng.integers(templates.num_templates, size=n)
    else:
        is_templated = np.zeros(n, dtype=bool)
        template_ids = np.zeros(n, dtype=np.int64)
    requests: list[Request] = []
    for i, ((prompt, output), t) in enumerate(zip(pairs, arrival_times)):
        hashes: tuple[int, ...] = ()
        if is_templated[i]:
            assert templates is not None
            prompt = max(prompt, templates.prefix_tokens + 1)
            hashes = template_block_hashes(
                int(template_ids[i]), templates.prefix_blocks)
        requests.append(Request(
            request_id=start_id + i,
            prompt_tokens=prompt,
            sampling=SamplingParams(max_tokens=output),
            arrival_time=float(t),
            prompt_block_hashes=hashes,
        ))
    return requests
