"""Multimodal (MME-like) sample streams and the expert-activation study.

The paper's Fig. 15 routes the MME benchmark (2,374 image+question samples)
through DeepSeek-VL2-family models and MolmoE-1B and plots per-(layer,
expert) activation counts.  We reproduce the *mechanism*: a synthetic
stream with MME's token volume is routed through real top-k routers whose
per-expert bias concentration is calibrated to the training regime
(aux-loss-balanced → near-zero bias; unbalanced → wide bias), and the same
activation tracker produces the heatmap.

Routing statistics are invariant to hidden width, so the study runs
routers at a reduced ``hidden_size`` and, optionally, on a token subsample
whose counts are rescaled to the full stream volume.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.models.config import ModelConfig
from repro.moe.router import TopKRouter
from repro.moe.stats import ExpertActivationTracker

__all__ = [
    "MME_NUM_SAMPLES",
    "MMEStream",
    "BALANCED_ROUTER_BIAS_STD",
    "UNBALANCED_ROUTER_BIAS_STD",
    "router_bias_std_for",
    "build_layer_routers",
    "run_activation_study",
]

MME_NUM_SAMPLES = 2374
"""Number of samples in the MME perception+cognition benchmark."""

BALANCED_ROUTER_BIAS_STD = 0.15
"""Router logit-bias spread of an aux-loss-balanced model (DeepSeek family):
produces the paper's 'relatively uniform' heatmap with peak ≈ 2x mean."""

UNBALANCED_ROUTER_BIAS_STD = 0.75
"""Bias spread of a model trained without strong balancing (MolmoE):
produces the paper's sparse heatmap with peak ≈ 5x mean."""


@dataclass(frozen=True)
class MMEStream:
    """A synthetic stream of image+question samples."""

    num_samples: int = MME_NUM_SAMPLES
    image_tokens: int = 576
    mean_text_tokens: int = 48

    def __post_init__(self) -> None:
        if self.num_samples <= 0:
            raise ValueError("num_samples must be positive")
        if self.image_tokens < 0 or self.mean_text_tokens <= 0:
            raise ValueError("token counts must be positive")

    def sample_lengths(self, rng: np.random.Generator) -> np.ndarray:
        """Per-sample LM token counts (image tokens + ~geometric text)."""
        text = rng.geometric(1.0 / self.mean_text_tokens, size=self.num_samples)
        return self.image_tokens + text

    def total_tokens(self, rng: np.random.Generator) -> int:
        return int(self.sample_lengths(rng).sum())


def router_bias_std_for(model: ModelConfig) -> float:
    """Calibrated router concentration from the model's training regime."""
    if model.moe is None:
        raise ValueError(f"{model.name} has no MoE block")
    return (
        BALANCED_ROUTER_BIAS_STD if model.moe.balanced_routing
        else UNBALANCED_ROUTER_BIAS_STD
    )


def build_layer_routers(
    model: ModelConfig,
    router_hidden: int = 128,
    rng: np.random.Generator | None = None,
) -> list[TopKRouter]:
    """One calibrated router per MoE layer of ``model``.

    Each router gets independent weights and a per-expert bias with the
    spread calibrated to the model's training regime.  Router seeds are
    drawn from ``rng`` one per layer, in layer order — the shared
    construction path of :func:`run_activation_study` and the live-engine
    routing probe (:class:`repro.obs.routing.EngineRoutingProbe`), so both
    see identical routers given identically-advanced generators.
    """
    if model.moe is None:
        raise ValueError(f"{model.name} has no MoE layers")
    rng = rng or np.random.default_rng(0)
    bias_std = router_bias_std_for(model)
    return [
        TopKRouter(
            router_hidden,
            model.moe.num_experts,
            model.moe.top_k,
            renormalize=model.moe.renormalize,
            expert_bias_std=bias_std,
            rng=np.random.default_rng(rng.integers(2**63)),
        )
        for _ in model.moe_layer_indices()
    ]


def run_activation_study(
    model: ModelConfig,
    stream: MMEStream | None = None,
    rng: np.random.Generator | None = None,
    router_hidden: int = 128,
    max_routed_tokens: int = 200_000,
    chunk: int = 16_384,
) -> ExpertActivationTracker:
    """Route an MME-like stream through the model's routers (Fig. 15).

    Each MoE layer gets its own router (independent weights + per-expert
    bias with the calibrated spread).  At most ``max_routed_tokens`` are
    actually routed; counts are rescaled to the full stream volume, which
    preserves the frequency map up to sampling noise.
    """
    if model.moe is None:
        raise ValueError(f"{model.name} has no MoE layers")
    stream = stream or MMEStream()
    rng = rng or np.random.default_rng(0)
    moe_layers = model.moe_layer_indices()
    tracker = ExpertActivationTracker(len(moe_layers), model.moe.num_experts)

    total_tokens = stream.total_tokens(rng)
    routed = min(total_tokens, max_routed_tokens)
    scale = total_tokens / routed

    routers = build_layer_routers(model, router_hidden, rng)

    remaining = routed
    while remaining > 0:
        n = min(chunk, remaining)
        x = rng.normal(size=(n, router_hidden)).astype(np.float32)
        for slot, router in enumerate(routers):
            counts = router.route_counts(x)
            tracker.record_counts(slot, np.round(counts * scale).astype(np.int64))
        remaining -= n
    tracker.tokens_seen = total_tokens
    return tracker
