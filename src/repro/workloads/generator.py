"""Workload generators: request shapes and token batches.

The paper's sweeps use fixed-shape workloads (every request has the same
input/output length, paper §3.2); real serving studies use distributions.
Both are provided, along with synthetic token/hidden-state batches for the
functional engine.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.serving.request import Request, SamplingParams

__all__ = [
    "PAPER_SEQUENCE_LENGTHS",
    "PAPER_BATCH_SIZES",
    "FixedShapeWorkload",
    "LengthDistribution",
    "synthetic_hidden_states",
    "synthetic_token_ids",
]

PAPER_SEQUENCE_LENGTHS = (128, 256, 512, 1024, 2048)
"""Input/output lengths evaluated throughout the paper (§3.2)."""

PAPER_BATCH_SIZES = (1, 16, 32, 64)
"""Batch sizes evaluated throughout the paper (§3.2)."""


@dataclass(frozen=True)
class FixedShapeWorkload:
    """Every request: the same prompt length and generation budget."""

    batch_size: int
    input_tokens: int
    output_tokens: int
    num_images: int = 0

    def __post_init__(self) -> None:
        if self.batch_size <= 0 or self.input_tokens <= 0 or self.output_tokens <= 0:
            raise ValueError("batch_size, input_tokens and output_tokens must be positive")
        if self.num_images < 0:
            raise ValueError("num_images must be non-negative")

    def requests(self, arrival_time: float = 0.0, start_id: int = 0) -> list[Request]:
        """Materialise the workload as engine requests (simultaneous arrival)."""
        return [
            Request(
                request_id=start_id + i,
                prompt_tokens=self.input_tokens,
                sampling=SamplingParams(max_tokens=self.output_tokens),
                arrival_time=arrival_time,
                num_images=self.num_images,
            )
            for i in range(self.batch_size)
        ]


@dataclass(frozen=True)
class LengthDistribution:
    """Log-normal prompt/output length distribution (ShareGPT-like shape)."""

    mean_input: float = 512.0
    mean_output: float = 256.0
    sigma: float = 0.6
    min_tokens: int = 8
    max_tokens: int = 8192

    def sample(self, n: int, rng: np.random.Generator) -> list[tuple[int, int]]:
        """Draw ``n`` (input, output) length pairs."""
        if n <= 0:
            raise ValueError("n must be positive")
        mu_in = np.log(self.mean_input) - self.sigma**2 / 2
        mu_out = np.log(self.mean_output) - self.sigma**2 / 2
        ins = np.exp(rng.normal(mu_in, self.sigma, n))
        outs = np.exp(rng.normal(mu_out, self.sigma, n))
        clip = lambda x: int(np.clip(round(x), self.min_tokens, self.max_tokens))
        return [(clip(i), clip(o)) for i, o in zip(ins, outs)]

    def requests(
        self, n: int, rng: np.random.Generator, arrival_times: np.ndarray | None = None
    ) -> list[Request]:
        pairs = self.sample(n, rng)
        if arrival_times is None:
            arrival_times = np.zeros(n)
        if len(arrival_times) != n:
            raise ValueError("arrival_times length must equal n")
        return [
            Request(
                request_id=i,
                prompt_tokens=pi,
                sampling=SamplingParams(max_tokens=po),
                arrival_time=float(t),
            )
            for i, ((pi, po), t) in enumerate(zip(pairs, arrival_times))
        ]


def synthetic_hidden_states(
    rng: np.random.Generator, num_tokens: int, hidden_size: int, scale: float = 1.0
) -> np.ndarray:
    """Gaussian hidden states for driving the functional MoE engine."""
    if num_tokens <= 0 or hidden_size <= 0:
        raise ValueError("num_tokens and hidden_size must be positive")
    return rng.normal(0.0, scale, size=(num_tokens, hidden_size)).astype(np.float32)


def synthetic_token_ids(
    rng: np.random.Generator, batch: int, seq_len: int, vocab_size: int,
    zipf_a: float = 1.2,
) -> np.ndarray:
    """Zipf-distributed token ids (natural-language-like frequency skew)."""
    if batch <= 0 or seq_len <= 0 or vocab_size <= 1:
        raise ValueError("batch, seq_len must be positive and vocab_size > 1")
    raw = rng.zipf(zipf_a, size=(batch, seq_len))
    return ((raw - 1) % vocab_size).astype(np.int64)
