"""Workload generators: fixed shapes, length distributions, arrival traces,
multimodal streams."""

from repro.workloads.generator import (
    PAPER_BATCH_SIZES,
    PAPER_SEQUENCE_LENGTHS,
    FixedShapeWorkload,
    LengthDistribution,
    synthetic_hidden_states,
    synthetic_token_ids,
)
from repro.workloads.multimodal import (
    BALANCED_ROUTER_BIAS_STD,
    MME_NUM_SAMPLES,
    UNBALANCED_ROUTER_BIAS_STD,
    MMEStream,
    router_bias_std_for,
    run_activation_study,
)
from repro.workloads.traces import BurstSpec, burst_arrivals, poisson_arrivals

__all__ = [
    "PAPER_BATCH_SIZES",
    "PAPER_SEQUENCE_LENGTHS",
    "FixedShapeWorkload",
    "LengthDistribution",
    "synthetic_hidden_states",
    "synthetic_token_ids",
    "BALANCED_ROUTER_BIAS_STD",
    "MME_NUM_SAMPLES",
    "UNBALANCED_ROUTER_BIAS_STD",
    "MMEStream",
    "router_bias_std_for",
    "run_activation_study",
    "BurstSpec",
    "burst_arrivals",
    "poisson_arrivals",
]
