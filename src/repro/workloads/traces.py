"""Arrival traces for serving simulations: Poisson, bursty, closed-loop."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["poisson_arrivals", "burst_arrivals", "BurstSpec"]


def poisson_arrivals(
    rate_per_s: float, n: int, rng: np.random.Generator, start: float = 0.0
) -> np.ndarray:
    """``n`` arrival timestamps of a Poisson process at ``rate_per_s``."""
    if rate_per_s <= 0:
        raise ValueError("rate_per_s must be positive")
    if n <= 0:
        raise ValueError("n must be positive")
    gaps = rng.exponential(1.0 / rate_per_s, size=n)
    return start + np.cumsum(gaps)


@dataclass(frozen=True)
class BurstSpec:
    """A burst of ``size`` simultaneous requests every ``period_s`` seconds."""

    size: int
    period_s: float

    def __post_init__(self) -> None:
        if self.size <= 0:
            raise ValueError("size must be positive")
        if self.period_s <= 0:
            raise ValueError("period_s must be positive")


def burst_arrivals(spec: BurstSpec, num_bursts: int, start: float = 0.0) -> np.ndarray:
    """Timestamps of ``num_bursts`` bursts (each of ``spec.size`` requests)."""
    if num_bursts <= 0:
        raise ValueError("num_bursts must be positive")
    times = np.repeat(start + np.arange(num_bursts) * spec.period_s, spec.size)
    return times
