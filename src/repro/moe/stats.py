"""Expert activation statistics (paper §8.3, Fig. 15).

Tracks how often each expert of each layer is selected during inference and
derives standard load-balance measures: max/mean imbalance, coefficient of
variation, normalized entropy, and the Gini coefficient of the activation
distribution.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.moe.router import RoutingResult

__all__ = ["balance_metrics", "ExpertActivationTracker", "BalanceMetrics"]


@dataclass(frozen=True)
class BalanceMetrics:
    """Summary statistics of one activation-count vector."""

    imbalance: float
    """max load / mean load; 1.0 is perfectly balanced."""
    cv: float
    """coefficient of variation (std / mean)."""
    entropy: float
    """entropy of the normalized counts, in nats."""
    normalized_entropy: float
    """entropy / log(num_experts); 1.0 is uniform."""
    gini: float
    """Gini coefficient; 0 uniform, →1 concentrated."""
    max_count: int
    min_count: int


def balance_metrics(counts: np.ndarray) -> BalanceMetrics:
    """Compute :class:`BalanceMetrics` from raw per-expert counts."""
    counts = np.asarray(counts, dtype=np.float64)
    if counts.ndim != 1 or counts.size == 0:
        raise ValueError("counts must be a non-empty 1-D array")
    if np.any(counts < 0):
        raise ValueError("counts must be non-negative")
    total = counts.sum()
    n = counts.size
    if total == 0:
        return BalanceMetrics(1.0, 0.0, np.log(n), 1.0, 0.0, 0, 0)
    mean = total / n
    p = counts / total
    nz = p[p > 0]
    entropy = float(-np.sum(nz * np.log(nz)))
    sorted_c = np.sort(counts)
    # Gini via the mean-difference formula on sorted values
    index = np.arange(1, n + 1)
    gini = float((2.0 * np.sum(index * sorted_c) - (n + 1) * total) / (n * total))
    return BalanceMetrics(
        imbalance=float(counts.max() / mean),
        cv=float(counts.std() / mean),
        entropy=entropy,
        normalized_entropy=float(entropy / np.log(n)) if n > 1 else 1.0,
        gini=gini,
        max_count=int(counts.max()),
        min_count=int(counts.min()),
    )


class ExpertActivationTracker:
    """Accumulates per-(layer, expert) activation counts across batches.

    The resulting ``heatmap()`` is the quantity plotted in the paper's
    Fig. 15 (expert activation frequency across layers).
    """

    def __init__(self, num_layers: int, num_experts: int) -> None:
        if num_layers <= 0 or num_experts <= 0:
            raise ValueError("num_layers and num_experts must be positive")
        self.num_layers = num_layers
        self.num_experts = num_experts
        self._counts = np.zeros((num_layers, num_experts), dtype=np.int64)
        self.tokens_seen = 0

    def record(self, layer_idx: int, routing: RoutingResult) -> None:
        """Record one routing decision for ``layer_idx``."""
        if not (0 <= layer_idx < self.num_layers):
            raise IndexError(f"layer_idx {layer_idx} out of range")
        if routing.num_experts != self.num_experts:
            raise ValueError(
                f"routing has {routing.num_experts} experts, tracker expects "
                f"{self.num_experts}"
            )
        self._counts[layer_idx] += routing.expert_counts()
        if layer_idx == 0:
            self.tokens_seen += routing.num_tokens

    def record_counts(self, layer_idx: int, counts: np.ndarray) -> None:
        """Record precomputed per-expert counts (for streaming use)."""
        counts = np.asarray(counts)
        if counts.shape != (self.num_experts,):
            raise ValueError(f"counts must have shape ({self.num_experts},)")
        self._counts[layer_idx] += counts.astype(np.int64)

    def heatmap(self) -> np.ndarray:
        """``(num_layers, num_experts)`` activation counts (copy)."""
        return self._counts.copy()

    def layer_metrics(self, layer_idx: int) -> BalanceMetrics:
        return balance_metrics(self._counts[layer_idx])

    def overall_metrics(self) -> BalanceMetrics:
        """Balance metrics over the per-expert totals summed across layers."""
        return balance_metrics(self._counts.sum(axis=0))

    def peak_activation(self) -> int:
        """Largest single (layer, expert) count — the paper quotes ~1M for
        MolmoE-1B vs ~290K for DeepSeek-VL2."""
        return int(self._counts.max())

    def reset(self) -> None:
        self._counts[:] = 0
        self.tokens_seen = 0
