"""Expert capacity limits and token dropping (Switch-Transformer style).

Production MoE systems bound each expert's per-batch load with a *capacity
factor*: expert ``e`` may process at most

    capacity = ceil(capacity_factor * num_tokens * top_k / num_experts)

tokens; the lowest-priority overflow tokens are dropped (their expert slot
contributes nothing and the residual passes through).  This is the
mechanism behind the paper's load-imbalance discussion: a skewed router
either drops tokens (capacity-limited systems) or stalls the hot expert's
device (capacity-free systems like vLLM).

:func:`apply_capacity` turns a routing decision into a capacity-limited
one, reporting exactly which (token, slot) assignments were dropped, and
:func:`drop_statistics` summarises drop rates for a router + workload.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.moe.router import RoutingResult, TopKRouter

__all__ = ["CapacityResult", "expert_capacity", "apply_capacity", "drop_statistics"]


def expert_capacity(num_tokens: int, num_experts: int, top_k: int,
                    capacity_factor: float) -> int:
    """Per-expert token budget for one batch."""
    if num_tokens <= 0 or num_experts <= 0 or top_k <= 0:
        raise ValueError("num_tokens, num_experts and top_k must be positive")
    if capacity_factor <= 0:
        raise ValueError("capacity_factor must be positive")
    return max(1, math.ceil(capacity_factor * num_tokens * top_k / num_experts))


@dataclass(frozen=True)
class CapacityResult:
    """A routing decision after capacity enforcement."""

    routing: RoutingResult
    kept_mask: np.ndarray
    """(num_tokens, top_k) bool: which assignments survived."""
    capacity: int

    @property
    def num_dropped(self) -> int:
        return int((~self.kept_mask).sum())

    @property
    def drop_rate(self) -> float:
        return self.num_dropped / self.kept_mask.size

    def dropped_tokens(self) -> np.ndarray:
        """Tokens that lost *all* their expert slots (pure residual)."""
        return np.nonzero(~self.kept_mask.any(axis=1))[0]


def apply_capacity(routing: RoutingResult, capacity: int) -> CapacityResult:
    """Enforce a per-expert capacity on a routing decision.

    Assignments are prioritised by router weight (highest first), matching
    the standard implementation; ties break by token order for determinism.
    """
    if capacity <= 0:
        raise ValueError("capacity must be positive")
    n, k = routing.indices.shape
    kept = np.zeros((n, k), dtype=bool)
    flat_w = routing.weights.ravel()
    order = np.argsort(-flat_w, kind="stable")
    fill = np.zeros(routing.num_experts, dtype=np.int64)
    for flat_idx in order:
        t, s = divmod(int(flat_idx), k)
        e = routing.indices[t, s]
        if fill[e] < capacity:
            fill[e] += 1
            kept[t, s] = True
    return CapacityResult(routing=routing, kept_mask=kept, capacity=capacity)


def drop_statistics(
    router: TopKRouter,
    hidden: np.ndarray,
    capacity_factor: float,
) -> dict[str, float]:
    """Route ``hidden`` and report drop statistics at ``capacity_factor``.

    Returns ``drop_rate`` (fraction of assignments dropped),
    ``token_drop_rate`` (tokens with every slot dropped) and the capacity.
    """
    routing = router.route(hidden)
    cap = expert_capacity(routing.num_tokens, routing.num_experts,
                          routing.top_k, capacity_factor)
    result = apply_capacity(routing, cap)
    return {
        "capacity": float(cap),
        "drop_rate": result.drop_rate,
        "token_drop_rate": len(result.dropped_tokens()) / routing.num_tokens,
    }
