"""Top-k softmax router (gating network) with load-balancing statistics.

The router maps each token's hidden state to logits over the experts,
selects the top-k, and produces combine weights.  It also exposes the two
standard auxiliary statistics used to reason about balance:

* the Switch-Transformer load-balancing loss ``E * sum_i f_i * P_i``
  (1.0 == perfectly balanced), and
* the router z-loss ``mean(logsumexp(logits)^2)``.

A ``expert_bias_std`` knob injects a systematic per-expert preference into
the router, calibrating how *unbalanced* a trained router is.  Models
trained with a strong balancing auxiliary loss (DeepSeek family) correspond
to ``expert_bias_std ≈ 0``; models without (MolmoE in the paper's Fig. 15)
to a larger value.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.tensor.functional import softmax, top_k_indices

__all__ = ["RoutingResult", "TopKRouter"]


@dataclass(frozen=True)
class RoutingResult:
    """Routing decision for a batch of tokens.

    Attributes
    ----------
    indices:
        ``(num_tokens, top_k)`` selected expert ids, best first.
    weights:
        ``(num_tokens, top_k)`` combine weights (sum to 1 per token when the
        router renormalizes).
    probs:
        ``(num_tokens, num_experts)`` full softmax distribution.
    """

    indices: np.ndarray
    weights: np.ndarray
    probs: np.ndarray

    @property
    def num_tokens(self) -> int:
        return self.indices.shape[0]

    @property
    def top_k(self) -> int:
        return self.indices.shape[1]

    @property
    def num_experts(self) -> int:
        return self.probs.shape[1]

    def expert_counts(self) -> np.ndarray:
        """``(num_experts,)`` number of tokens routed to each expert."""
        return np.bincount(self.indices.ravel(), minlength=self.num_experts)

    def load_balance_loss(self) -> float:
        """Switch-Transformer auxiliary loss; 1.0 means perfectly balanced."""
        f = self.expert_counts() / max(1, self.num_tokens * self.top_k)
        p = self.probs.mean(axis=0)
        return float(self.num_experts * np.sum(f * p))

    def tokens_per_expert(self) -> np.ndarray:
        """Alias of :meth:`expert_counts` (vLLM naming)."""
        return self.expert_counts()


class TopKRouter:
    """Learnable-gate simulation: ``logits = x @ W + b``; top-k softmax.

    Parameters
    ----------
    hidden_size, num_experts, top_k:
        Geometry.
    renormalize:
        If True, the top-k probabilities are renormalized to sum to one
        (Mixtral-style); otherwise raw softmax values are used as combine
        weights (Switch-style).
    expert_bias_std:
        Standard deviation of a fixed per-expert logit bias; 0 gives a
        balanced router, larger values give progressively skewed routing.
    rng:
        Generator used for weight/bias init (reproducibility).
    """

    def __init__(
        self,
        hidden_size: int,
        num_experts: int,
        top_k: int,
        renormalize: bool = True,
        expert_bias_std: float = 0.0,
        rng: np.random.Generator | None = None,
    ) -> None:
        if not (1 <= top_k <= num_experts):
            raise ValueError(
                f"top_k must be in [1, num_experts]; got {top_k} / {num_experts}"
            )
        if expert_bias_std < 0:
            raise ValueError("expert_bias_std must be non-negative")
        rng = rng or np.random.default_rng(0)
        self.hidden_size = hidden_size
        self.num_experts = num_experts
        self.top_k = top_k
        self.renormalize = renormalize
        self.weight = rng.normal(
            0.0, 1.0 / np.sqrt(hidden_size), size=(hidden_size, num_experts)
        ).astype(np.float32)
        self.bias = rng.normal(0.0, expert_bias_std, size=num_experts).astype(np.float32)
        self._observers: list[Callable[[RoutingResult], None]] = []

    # ------------------------------------------------------------------ #
    # telemetry subscription
    # ------------------------------------------------------------------ #

    def subscribe(self, observer: Callable[[RoutingResult], None]) -> None:
        """Call ``observer`` with every future :meth:`route` result.

        The hook behind live expert-routing telemetry
        (:class:`repro.obs.routing.RoutingTelemetry`); costs one truthiness
        check per route when nobody subscribes.
        """
        self._observers.append(observer)

    def unsubscribe(self, observer: Callable[[RoutingResult], None]) -> None:
        """Detach a previously subscribed observer."""
        self._observers.remove(observer)

    def logits(self, x: np.ndarray) -> np.ndarray:
        """Raw router logits for tokens ``x`` of shape ``(num_tokens, hidden)``."""
        x = np.asarray(x, dtype=np.float32)
        if x.ndim != 2 or x.shape[1] != self.hidden_size:
            raise ValueError(
                f"x must be (num_tokens, {self.hidden_size}), got {x.shape}"
            )
        return x @ self.weight + self.bias

    def route(self, x: np.ndarray) -> RoutingResult:
        """Route tokens to their top-k experts."""
        logits = self.logits(x)
        probs = softmax(logits, axis=-1)
        idx = top_k_indices(logits, self.top_k, axis=-1)
        w = np.take_along_axis(probs, idx, axis=-1)
        if self.renormalize:
            w = w / np.sum(w, axis=-1, keepdims=True)
        result = RoutingResult(indices=idx, weights=w.astype(np.float32), probs=probs)
        if self._observers:
            for observer in self._observers:
                observer(result)
        return result

    def route_counts(self, x: np.ndarray) -> np.ndarray:
        """Per-expert token counts of the top-k decision for ``x``.

        Bit-identical to ``route(x).expert_counts()`` — counts depend only
        on *which* experts win, so the softmax, combine weights and
        within-top-k ordering are skipped (the argpartition that fixes the
        winning set is the same call :func:`top_k_indices` makes).  Falls
        back to the full path when observers are subscribed so telemetry
        still sees complete :class:`RoutingResult` objects.
        """
        if self._observers:
            return self.route(x).expert_counts()
        logits = self.logits(x)
        part = np.argpartition(-logits, self.top_k - 1, axis=-1)
        return np.bincount(
            part[..., : self.top_k].ravel(), minlength=self.num_experts
        )

    def z_loss(self, x: np.ndarray) -> float:
        """Router z-loss: mean squared logsumexp of the logits."""
        logits = self.logits(x)
        m = logits.max(axis=-1, keepdims=True)
        lse = (m + np.log(np.sum(np.exp(logits - m), axis=-1, keepdims=True))).ravel()
        return float(np.mean(lse**2))

    def drop_experts(self, remove: np.ndarray) -> "TopKRouter":
        """Return a router with the given expert columns removed
        (inter-expert pruning keeps routing weights of survivors)."""
        remove = np.asarray(remove)
        keep = np.setdiff1d(np.arange(self.num_experts), remove)
        if len(keep) == 0:
            raise ValueError("cannot remove every expert")
        out = TopKRouter.__new__(TopKRouter)
        out.hidden_size = self.hidden_size
        out.num_experts = len(keep)
        out.top_k = min(self.top_k, len(keep))
        out.renormalize = self.renormalize
        out.weight = np.ascontiguousarray(self.weight[:, keep])
        out.bias = np.ascontiguousarray(self.bias[keep])
        out._observers = []  # observers are bound to this router's geometry
        return out
