"""Closed-form routing statistics under uniform top-k routing.

Leaf module (NumPy-free) shared by the performance model and the
expert-parallel analysis:

* :func:`expected_expert_coverage` — distinct experts a token batch touches,
  which sets the expert weight bytes a decode step streams from HBM and
  drives the batch-size × top-k interaction (paper Fig. 5);
* :func:`expected_group_imbalance` — expected max/mean load across EP
  groups (multinomial maximum), the stall factor of expert parallelism
  (paper Fig. 13).
"""

from __future__ import annotations

import math

__all__ = ["expected_expert_coverage", "expected_group_imbalance"]


def expected_expert_coverage(num_experts: int, top_k: int, num_tokens: float) -> float:
    """Expected number of distinct experts activated by ``num_tokens`` tokens.

    Under uniform routing each token selects ``top_k`` distinct experts, so
    the probability a given expert is untouched by one token is
    ``1 - k/E`` and by ``m`` independent tokens ``(1 - k/E)^m``::

        E[coverage] = E * (1 - (1 - k/E)^m)

    Small batches touch few experts (decode streams only those experts'
    weights); large batches touch all of them, which is why larger batches
    are *more* sensitive to extra active experts (compute term) while small
    batches are dominated by fixed costs.
    """
    if num_experts <= 0:
        raise ValueError("num_experts must be positive")
    if not (1 <= top_k <= num_experts):
        raise ValueError(f"top_k must be in [1, {num_experts}], got {top_k}")
    if num_tokens < 0:
        raise ValueError("num_tokens must be non-negative")
    if num_tokens == 0:
        return 0.0
    p_untouched = (1.0 - top_k / num_experts) ** num_tokens
    return num_experts * (1.0 - p_untouched)


def expected_group_imbalance(num_groups: int, total_assignments: float) -> float:
    """Expected max/mean load over ``num_groups`` under uniform multinomial
    routing of ``total_assignments`` token-expert assignments.

    Poisson/Gaussian approximation of the multinomial maximum::

        max/mean ≈ 1 + sqrt(2 ln(g) / lambda),  lambda = assignments/group

    Exact enough for the EP stall model: imbalance → 1 as load grows, and
    explodes for tiny per-group loads (the paper's "EP's load-balancing and
    dispatch costs offset potential gains, especially for smaller expert
    activations").
    """
    if num_groups < 1:
        raise ValueError("num_groups must be >= 1")
    if total_assignments < 0:
        raise ValueError("total_assignments must be non-negative")
    if num_groups == 1 or total_assignments == 0:
        return 1.0
    lam = total_assignments / num_groups
    return 1.0 + math.sqrt(2.0 * math.log(num_groups) / lam)
