"""Expert feed-forward networks (SwiGLU / plain MLP)."""

from __future__ import annotations

import numpy as np

from repro.tensor.dtypes import DType, FP32
from repro.tensor.functional import swiglu
from repro.tensor.linear import Linear

__all__ = ["ExpertFFN"]


class ExpertFFN:
    """One expert: a gated (SwiGLU, 3-matrix) or plain (2-matrix) MLP.

    Shapes: ``gate/up: (hidden, ffn_dim)``, ``down: (ffn_dim, hidden)``.
    """

    def __init__(
        self,
        hidden_size: int,
        ffn_dim: int,
        rng: np.random.Generator,
        gated: bool = True,
        weight_dtype: DType | str = FP32,
    ) -> None:
        if hidden_size <= 0 or ffn_dim <= 0:
            raise ValueError("hidden_size and ffn_dim must be positive")
        self.hidden_size = hidden_size
        self.ffn_dim = ffn_dim
        self.gated = gated
        self.up = Linear.random(rng, hidden_size, ffn_dim, weight_dtype)
        self.down = Linear.random(rng, ffn_dim, hidden_size, weight_dtype)
        self.gate = (
            Linear.random(rng, hidden_size, ffn_dim, weight_dtype) if gated else None
        )

    @property
    def num_params(self) -> int:
        n = self.up.num_params + self.down.num_params
        if self.gate is not None:
            n += self.gate.num_params
        return n

    def __call__(self, x: np.ndarray) -> np.ndarray:
        """Apply the expert to ``(num_tokens, hidden)`` (empty input ok)."""
        x = np.asarray(x, dtype=np.float32)
        if x.shape[0] == 0:
            return np.zeros((0, self.hidden_size), dtype=np.float32)
        if self.gate is not None:
            h = swiglu(self.gate(x), self.up(x))
        else:
            h = np.maximum(self.up(x), 0.0)  # ReLU MLP
        return self.down(h)

    def pruned_to_ffn_dim(self, new_dim: int, importance: np.ndarray | None = None) -> "ExpertFFN":
        """Intra-expert pruning: keep the ``new_dim`` most important FFN
        channels (by L2 norm of the down-projection rows unless an explicit
        ``importance`` vector is given)."""
        if not (1 <= new_dim <= self.ffn_dim):
            raise ValueError(f"new_dim must be in [1, {self.ffn_dim}], got {new_dim}")
        if importance is None:
            importance = np.linalg.norm(self.down.weight, axis=1)
        if importance.shape != (self.ffn_dim,):
            raise ValueError(
                f"importance must have shape ({self.ffn_dim},), got {importance.shape}"
            )
        keep = np.sort(np.argsort(-importance)[:new_dim])
        out = ExpertFFN.__new__(ExpertFFN)
        out.hidden_size = self.hidden_size
        out.ffn_dim = new_dim
        out.gated = self.gated
        out.up = Linear(self.up.weight[:, keep], self.up.dtype)
        out.down = Linear(self.down.weight[keep, :], self.down.dtype)
        out.gate = (
            Linear(self.gate.weight[:, keep], self.gate.dtype)
            if self.gate is not None
            else None
        )
        return out
