"""Expert pruning transforms (paper §6.2).

Two families, matching the paper:

* **Inter-expert pruning** removes whole experts (and their router columns),
  keeping top-k unchanged — less resident memory, same per-token compute.
* **Intra-expert pruning** shrinks every expert's FFN width, keeping the
  expert count — less per-token compute, same routing.

Config-level transforms (for the analytical performance model) and
functional transforms (operating on a live :class:`MoELayer`) are both
provided; the paper's ratios {12.5%, 25%, 50%} are exposed as
``PAPER_PRUNING_RATIOS``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.models.config import ModelConfig, MoEConfig
from repro.moe.layer import MoELayer

__all__ = [
    "PAPER_PRUNING_RATIOS",
    "PruningSpec",
    "inter_expert_prune_config",
    "intra_expert_prune_config",
    "prune_model_config",
    "select_experts_to_drop",
    "inter_expert_prune_layer",
    "intra_expert_prune_layer",
]

PAPER_PRUNING_RATIOS = (0.125, 0.25, 0.50)


@dataclass(frozen=True)
class PruningSpec:
    """One pruning configuration: ``kind`` in {"inter", "intra"} and the
    fraction removed."""

    kind: str
    ratio: float

    def __post_init__(self) -> None:
        if self.kind not in ("inter", "intra"):
            raise ValueError(f"kind must be 'inter' or 'intra', got {self.kind!r}")
        if not (0.0 < self.ratio < 1.0):
            raise ValueError(f"ratio must be in (0, 1), got {self.ratio}")

    @property
    def label(self) -> str:
        return f"{self.kind}-{self.ratio * 100:g}%"


def inter_expert_prune_config(moe: MoEConfig, ratio: float) -> MoEConfig:
    """Remove ``ratio`` of the experts (e.g. 0.125 removes 8 of 64)."""
    removed = int(round(moe.num_experts * ratio))
    keep = moe.num_experts - removed
    if keep < 1:
        raise ValueError(f"ratio {ratio} would remove all {moe.num_experts} experts")
    if keep < moe.top_k:
        raise ValueError(
            f"ratio {ratio} leaves {keep} experts < top_k {moe.top_k}"
        )
    return moe.with_pruned_experts(keep)


def intra_expert_prune_config(moe: MoEConfig, ratio: float) -> MoEConfig:
    """Shrink every expert's FFN width by ``ratio`` (0.25 keeps 3/4)."""
    new_dim = max(1, int(round(moe.expert_ffn_dim * (1.0 - ratio))))
    return moe.with_ffn_dim(new_dim)


def prune_model_config(model: ModelConfig, spec: PruningSpec) -> ModelConfig:
    """Apply a pruning spec to a whole model config."""
    if model.moe is None:
        raise ValueError(f"{model.name} has no MoE block to prune")
    if spec.kind == "inter":
        moe = inter_expert_prune_config(model.moe, spec.ratio)
    else:
        moe = intra_expert_prune_config(model.moe, spec.ratio)
    return model.with_moe(moe).with_name(f"{model.name}[{spec.label}]")


def select_experts_to_drop(
    activation_counts: np.ndarray, ratio: float
) -> np.ndarray:
    """Frequency-based expert selection: drop the least-activated experts.

    This is the criterion of Lu et al. ("Not all experts are equal"), the
    inter-expert pruning method the paper cites.
    """
    counts = np.asarray(activation_counts)
    if counts.ndim != 1:
        raise ValueError("activation_counts must be 1-D")
    n_drop = int(round(counts.size * ratio))
    if n_drop >= counts.size:
        raise ValueError("ratio would drop every expert")
    if n_drop == 0:
        return np.empty(0, dtype=np.intp)
    order = np.argsort(counts, kind="stable")  # ascending: least-used first
    return np.sort(order[:n_drop])


def inter_expert_prune_layer(
    layer: MoELayer, ratio: float, activation_counts: np.ndarray | None = None
) -> MoELayer:
    """Functional inter-expert pruning of a live layer.

    Without activation statistics, experts are dropped by smallest router
    column norm (a weight-only criterion usable at load time).
    """
    if activation_counts is None:
        activation_counts = np.linalg.norm(layer.router.weight, axis=0)
    drop = select_experts_to_drop(activation_counts, ratio)
    if drop.size == 0:
        return layer
    return layer.pruned_experts(drop)


def intra_expert_prune_layer(layer: MoELayer, ratio: float) -> MoELayer:
    """Functional intra-expert pruning of a live layer."""
    return layer.pruned_ffn(ratio)
