"""A complete functional MoE transformer (NumPy execution).

Builds a runnable decoder-only model from any :class:`ModelConfig` —
embedding, per-layer attention + (MoE or dense) FFN with pre-RMSNorm and
residuals, final norm and LM head.  Used with reduced-width configs
(:meth:`ModelConfig.scaled`) for functional studies: routing statistics,
pruning semantics, quantization agreement, and greedy generation through a
real KV cache.
"""

from __future__ import annotations

import numpy as np

from repro.models.config import ModelConfig
from repro.moe.experts import ExpertFFN
from repro.moe.layer import MoELayer
from repro.moe.stats import ExpertActivationTracker
from repro.tensor.attention import Attention, KVCache
from repro.tensor.dtypes import DType, FP32
from repro.tensor.functional import rms_norm
from repro.tensor.linear import Linear

__all__ = ["MoETransformer"]


class _DecoderLayer:
    """One decoder layer: pre-norm attention + pre-norm FFN (MoE or dense)."""

    def __init__(
        self,
        model: ModelConfig,
        layer_idx: int,
        rng: np.random.Generator,
        max_positions: int,
        expert_bias_std: float,
        weight_dtype: DType | str,
    ) -> None:
        h = model.hidden_size
        self.layer_idx = layer_idx
        self.is_moe = model.is_moe_layer(layer_idx)
        self.attn = Attention(model.attention, h, rng, max_positions=max_positions)
        self.norm1 = np.ones(h, dtype=np.float32)
        self.norm2 = np.ones(h, dtype=np.float32)
        if self.is_moe:
            assert model.moe is not None
            self.ffn: MoELayer | ExpertFFN = MoELayer(
                h, model.moe, rng=rng, expert_bias_std=expert_bias_std,
                weight_dtype=weight_dtype,
            )
        else:
            self.ffn = ExpertFFN(h, model.dense_ffn_dim, rng, gated=True,
                                 weight_dtype=weight_dtype)

    def __call__(
        self,
        x: np.ndarray,
        cache: KVCache | None,
        mode: str,
        tracker: ExpertActivationTracker | None,
        moe_slot: int,
    ) -> np.ndarray:
        b, s, h = x.shape
        x = x + self.attn(rms_norm(x, self.norm1), cache)
        normed = rms_norm(x, self.norm2)
        if self.is_moe:
            assert isinstance(self.ffn, MoELayer)
            out = self.ffn(normed.reshape(b * s, h), mode=mode)
            if tracker is not None:
                tracker.record(moe_slot, out.routing)
            return x + out.hidden.reshape(b, s, h)
        assert isinstance(self.ffn, ExpertFFN)
        return x + self.ffn(normed.reshape(b * s, h)).reshape(b, s, h)


class MoETransformer:
    """Runnable decoder-only MoE model.

    Parameters
    ----------
    config:
        Architecture; use :meth:`ModelConfig.scaled` for affordable widths.
    seed:
        Weight-init seed (models with equal seeds are weight-identical).
    expert_bias_std:
        Router concentration (see :class:`repro.moe.TopKRouter`).
    weight_dtype:
        Storage dtype for all projection weights (fake-quantized once).
    """

    def __init__(
        self,
        config: ModelConfig,
        seed: int = 0,
        max_positions: int = 512,
        expert_bias_std: float = 0.0,
        weight_dtype: DType | str = FP32,
        track_activations: bool = False,
    ) -> None:
        self.config = config
        rng = np.random.default_rng(seed)
        h, v = config.hidden_size, config.vocab_size
        self.embedding = (rng.normal(0, 1.0, size=(v, h)) / np.sqrt(h)).astype(np.float32)
        self.layers = [
            _DecoderLayer(config, i, rng, max_positions, expert_bias_std, weight_dtype)
            for i in range(config.num_layers)
        ]
        self.final_norm = np.ones(h, dtype=np.float32)
        if config.tie_embeddings:
            self.lm_head = Linear(self.embedding.T.copy())
        else:
            self.lm_head = Linear.random(rng, h, v, weight_dtype)
        self.max_positions = max_positions
        self._moe_slots = {
            idx: slot for slot, idx in enumerate(config.moe_layer_indices())
        }
        self.tracker = (
            ExpertActivationTracker(len(self._moe_slots), config.moe.num_experts)
            if track_activations and config.moe is not None and self._moe_slots
            else None
        )

    # ------------------------------------------------------------------ #

    def new_caches(self, batch: int, max_seq: int | None = None) -> list[KVCache]:
        """One KV cache per layer for incremental decoding."""
        max_seq = max_seq or self.max_positions
        return [layer.attn.new_cache(batch, max_seq) for layer in self.layers]

    def forward(
        self,
        token_ids: np.ndarray,
        caches: list[KVCache] | None = None,
        mode: str = "fused",
    ) -> np.ndarray:
        """Logits of shape ``(batch, seq, vocab)`` for ``(batch, seq)`` ids."""
        token_ids = np.asarray(token_ids)
        if token_ids.ndim != 2:
            raise ValueError(f"token_ids must be (batch, seq), got {token_ids.shape}")
        if token_ids.min() < 0 or token_ids.max() >= self.config.vocab_size:
            raise ValueError("token ids out of vocabulary range")
        if caches is not None and len(caches) != len(self.layers):
            raise ValueError("need one cache per layer")
        x = self.embedding[token_ids]
        for i, layer in enumerate(self.layers):
            cache = caches[i] if caches is not None else None
            slot = self._moe_slots.get(i, -1)
            x = layer(x, cache, mode, self.tracker, slot)
        x = rms_norm(x, self.final_norm)
        return self.lm_head(x)

    __call__ = forward

    def generate(
        self,
        prompt_ids: np.ndarray,
        max_new_tokens: int,
        temperature: float = 0.0,
        top_p: float = 1.0,
        rng: np.random.Generator | None = None,
        mode: str = "fused",
    ) -> np.ndarray:
        """Sampled decoding with a real KV cache.

        ``temperature == 0`` is greedy; otherwise logits are divided by the
        temperature and sampled after nucleus (top-p) truncation.
        """
        if temperature < 0:
            raise ValueError("temperature must be non-negative")
        if not (0.0 < top_p <= 1.0):
            raise ValueError("top_p must be in (0, 1]")
        if temperature == 0.0:
            return self.generate_greedy(prompt_ids, max_new_tokens, mode)
        rng = rng or np.random.default_rng(0)
        prompt_ids = np.asarray(prompt_ids)
        if prompt_ids.ndim != 2:
            raise ValueError("prompt_ids must be (batch, seq)")
        b, s = prompt_ids.shape
        if s + max_new_tokens > self.max_positions:
            raise ValueError("prompt + new tokens exceeds max_positions")
        caches = self.new_caches(b, s + max_new_tokens)
        logits = self.forward(prompt_ids, caches, mode)
        out = np.empty((b, max_new_tokens), dtype=np.int64)
        next_ids = self._sample(logits[:, -1, :], temperature, top_p, rng)
        for t in range(max_new_tokens):
            out[:, t] = next_ids
            if t == max_new_tokens - 1:
                break
            logits = self.forward(next_ids[:, None], caches, mode)
            next_ids = self._sample(logits[:, -1, :], temperature, top_p, rng)
        return out

    @staticmethod
    def _sample(logits: np.ndarray, temperature: float, top_p: float,
                rng: np.random.Generator) -> np.ndarray:
        """Nucleus sampling of one token per row."""
        from repro.tensor.functional import softmax

        probs = softmax(logits / temperature, axis=-1)
        out = np.empty(probs.shape[0], dtype=np.int64)
        for i, p in enumerate(probs):
            if top_p < 1.0:
                order = np.argsort(-p)
                csum = np.cumsum(p[order])
                cutoff = int(np.searchsorted(csum, top_p)) + 1
                keep = order[:cutoff]
                p_kept = p[keep] / p[keep].sum()
                out[i] = rng.choice(keep, p=p_kept)
            else:
                out[i] = rng.choice(len(p), p=p / p.sum())
        return out

    def generate_greedy(
        self, prompt_ids: np.ndarray, max_new_tokens: int, mode: str = "fused"
    ) -> np.ndarray:
        """Greedy decoding with a real KV cache; returns generated ids of
        shape ``(batch, max_new_tokens)``."""
        prompt_ids = np.asarray(prompt_ids)
        if prompt_ids.ndim != 2:
            raise ValueError("prompt_ids must be (batch, seq)")
        if max_new_tokens <= 0:
            raise ValueError("max_new_tokens must be positive")
        b, s = prompt_ids.shape
        if s + max_new_tokens > self.max_positions:
            raise ValueError(
                f"prompt ({s}) + new tokens ({max_new_tokens}) exceeds "
                f"max_positions ({self.max_positions})"
            )
        caches = self.new_caches(b, s + max_new_tokens)
        logits = self.forward(prompt_ids, caches, mode)
        out = np.empty((b, max_new_tokens), dtype=np.int64)
        next_ids = np.argmax(logits[:, -1, :], axis=-1)
        for t in range(max_new_tokens):
            out[:, t] = next_ids
            if t == max_new_tokens - 1:
                break
            logits = self.forward(next_ids[:, None], caches, mode)
            next_ids = np.argmax(logits[:, -1, :], axis=-1)
        return out
