"""MoE substrate: router, experts, fused/unfused layer, stats, pruning."""

from repro.moe.experts import ExpertFFN
from repro.moe.layer import MoELayer, MoELayerOutput
from repro.moe.model import MoETransformer
from repro.moe.pruning import (
    PAPER_PRUNING_RATIOS,
    PruningSpec,
    inter_expert_prune_config,
    inter_expert_prune_layer,
    intra_expert_prune_config,
    intra_expert_prune_layer,
    prune_model_config,
    select_experts_to_drop,
)
from repro.moe.router import RoutingResult, TopKRouter
from repro.moe.routing_math import expected_expert_coverage, expected_group_imbalance
from repro.moe.stats import BalanceMetrics, ExpertActivationTracker, balance_metrics

__all__ = [
    "ExpertFFN",
    "MoELayer",
    "MoELayerOutput",
    "MoETransformer",
    "PAPER_PRUNING_RATIOS",
    "PruningSpec",
    "inter_expert_prune_config",
    "inter_expert_prune_layer",
    "intra_expert_prune_config",
    "intra_expert_prune_layer",
    "prune_model_config",
    "select_experts_to_drop",
    "RoutingResult",
    "TopKRouter",
    "expected_expert_coverage",
    "expected_group_imbalance",
    "BalanceMetrics",
    "ExpertActivationTracker",
    "balance_metrics",
]
