"""The MoE layer: routing + expert execution + combine.

Two execution paths are provided, mirroring the paper's §7.2 (Fused MoE):

* ``mode="fused"`` — tokens are sorted by expert once and each expert
  processes one contiguous slab; routing, dispatch and combine happen in a
  single pass over the data (the NumPy analogue of a fused grouped-GEMM
  kernel).  Kernel-launch count is O(1) per layer.
* ``mode="unfused"`` — the naive implementation: for every expert, a mask
  is built over *all* tokens, tokens are gathered, processed and scattered
  back in separate steps, with intermediate buffers in between.  Kernel
  launch count is O(num_experts).

Both paths compute the same function; a test asserts elementwise agreement.
The simulated ``kernel_launches`` counter feeds the fused-vs-unfused
performance comparison (Fig. 14).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.models.config import MoEConfig
from repro.moe.experts import ExpertFFN
from repro.moe.router import RoutingResult, TopKRouter
from repro.tensor.dtypes import DType, FP32

__all__ = ["MoELayerOutput", "MoELayer"]

_MODES = ("fused", "unfused")


@dataclass
class MoELayerOutput:
    """Result of one MoE layer forward."""

    hidden: np.ndarray
    routing: RoutingResult
    kernel_launches: int


class MoELayer:
    """Router + routed experts (+ optional always-on shared experts)."""

    def __init__(
        self,
        hidden_size: int,
        cfg: MoEConfig,
        rng: np.random.Generator | None = None,
        expert_bias_std: float = 0.0,
        weight_dtype: DType | str = FP32,
    ) -> None:
        rng = rng or np.random.default_rng(0)
        self.hidden_size = hidden_size
        self.cfg = cfg
        self.router = TopKRouter(
            hidden_size,
            cfg.num_experts,
            cfg.top_k,
            renormalize=cfg.renormalize,
            expert_bias_std=expert_bias_std,
            rng=rng,
        )
        self.experts = [
            ExpertFFN(hidden_size, cfg.expert_ffn_dim, rng, cfg.gated, weight_dtype)
            for _ in range(cfg.num_experts)
        ]
        self.shared_experts = [
            ExpertFFN(hidden_size, cfg.shared_expert_ffn_dim, rng, cfg.gated, weight_dtype)
            for _ in range(cfg.num_shared_experts)
        ]

    @property
    def num_params(self) -> int:
        n = self.router.weight.size + sum(e.num_params for e in self.experts)
        n += sum(e.num_params for e in self.shared_experts)
        return n

    def subscribe(self, observer) -> None:
        """Stream this layer's routing decisions to ``observer``.

        Observers see the raw router output (before any capacity-factor
        token dropping), matching what the activation-frequency telemetry
        counts.
        """
        self.router.subscribe(observer)

    def unsubscribe(self, observer) -> None:
        self.router.unsubscribe(observer)

    # ------------------------------------------------------------------ #
    # forward
    # ------------------------------------------------------------------ #

    def __call__(self, x: np.ndarray, mode: str = "fused",
                 capacity_factor: float | None = None) -> MoELayerOutput:
        """Apply the layer to ``(num_tokens, hidden)`` tokens.

        ``capacity_factor`` optionally enforces Switch-style per-expert
        capacity: overflow assignments are dropped (their combine weight is
        zeroed), so hot experts never exceed their budget.
        """
        if mode not in _MODES:
            raise ValueError(f"mode must be one of {_MODES}, got {mode!r}")
        x = np.asarray(x, dtype=np.float32)
        if x.ndim != 2 or x.shape[1] != self.hidden_size:
            raise ValueError(f"x must be (num_tokens, {self.hidden_size}), got {x.shape}")
        routing = self.router.route(x)
        if capacity_factor is not None:
            from repro.moe.capacity import apply_capacity, expert_capacity

            cap = expert_capacity(routing.num_tokens, self.cfg.num_experts,
                                  routing.top_k, capacity_factor)
            kept = apply_capacity(routing, cap).kept_mask
            from repro.moe.router import RoutingResult

            routing = RoutingResult(
                indices=routing.indices,
                weights=np.where(kept, routing.weights, 0.0).astype(np.float32),
                probs=routing.probs,
            )
        if mode == "fused":
            out, launches = self._forward_fused(x, routing)
        else:
            out, launches = self._forward_unfused(x, routing)
        for shared in self.shared_experts:
            out = out + shared(x)
            launches += 1 if mode == "fused" else 3
        return MoELayerOutput(hidden=out, routing=routing, kernel_launches=launches)

    def _forward_fused(
        self, x: np.ndarray, routing: RoutingResult
    ) -> tuple[np.ndarray, int]:
        """Sort token-expert pairs by expert; one contiguous slab per expert."""
        n, k = routing.indices.shape
        flat_expert = routing.indices.ravel()  # (n*k,)
        flat_token = np.repeat(np.arange(n), k)
        flat_weight = routing.weights.ravel()

        order = np.argsort(flat_expert, kind="stable")
        sorted_expert = flat_expert[order]
        sorted_token = flat_token[order]
        sorted_weight = flat_weight[order]

        out = np.zeros_like(x)
        # boundaries of each expert's contiguous slab
        boundaries = np.searchsorted(sorted_expert, np.arange(self.cfg.num_experts + 1))
        for e in range(self.cfg.num_experts):
            lo, hi = boundaries[e], boundaries[e + 1]
            if lo == hi:
                continue
            toks = sorted_token[lo:hi]
            y = self.experts[e](x[toks])
            np.add.at(out, toks, y * sorted_weight[lo:hi, None])
        # one routing kernel + one grouped-GEMM pass + one combine
        return out, 3

    def _forward_unfused(
        self, x: np.ndarray, routing: RoutingResult
    ) -> tuple[np.ndarray, int]:
        """Naive per-expert mask/gather/compute/scatter with intermediates."""
        out = np.zeros_like(x)
        launches = 1  # router
        for e in range(self.cfg.num_experts):
            mask = routing.indices == e  # (n, k)
            token_idx, slot_idx = np.nonzero(mask)
            launches += 4  # mask build, gather, expert GEMMs, scatter
            if len(token_idx) == 0:
                continue
            gathered = x[token_idx].copy()  # explicit intermediate buffer
            y = self.experts[e](gathered)
            w = routing.weights[token_idx, slot_idx][:, None]
            np.add.at(out, token_idx, y * w)
        return out, launches

    # ------------------------------------------------------------------ #
    # pruning transforms (functional counterparts of moe.pruning)
    # ------------------------------------------------------------------ #

    def pruned_experts(self, remove: np.ndarray) -> "MoELayer":
        """Inter-expert pruning: drop the given experts and their router
        columns; surviving experts keep their weights."""
        remove = np.unique(np.asarray(remove))
        keep = np.setdiff1d(np.arange(self.cfg.num_experts), remove)
        if len(keep) == 0:
            raise ValueError("cannot remove every expert")
        out = MoELayer.__new__(MoELayer)
        out.hidden_size = self.hidden_size
        out.cfg = self.cfg.with_pruned_experts(len(keep))
        out.router = self.router.drop_experts(remove)
        out.experts = [self.experts[i] for i in keep]
        out.shared_experts = list(self.shared_experts)
        return out

    def pruned_ffn(self, ratio: float) -> "MoELayer":
        """Intra-expert pruning: shrink every expert's FFN width by ``ratio``
        (0.25 keeps 75% of channels)."""
        if not (0.0 < ratio < 1.0):
            raise ValueError(f"ratio must be in (0, 1), got {ratio}")
        new_dim = max(1, int(round(self.cfg.expert_ffn_dim * (1.0 - ratio))))
        out = MoELayer.__new__(MoELayer)
        out.hidden_size = self.hidden_size
        out.cfg = self.cfg.with_ffn_dim(new_dim)
        out.router = self.router
        out.experts = [e.pruned_to_ffn_dim(new_dim) for e in self.experts]
        out.shared_experts = list(self.shared_experts)
        return out
