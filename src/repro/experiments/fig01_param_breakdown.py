"""Figure 1: layer-wise total and active parameter breakdown."""

from __future__ import annotations

from repro.core.experiment import ExperimentResult
from repro.core.registry import experiment
from repro.core.results import ResultTable
from repro.models.params import model_params
from repro.models.zoo import get_model

_MODELS = ("Mixtral-8x7B", "OLMoE-1B-7B", "Qwen1.5-MoE-A2.7B")


@experiment("fig1")
def run() -> ExperimentResult:
    result = ExperimentResult(
        exp_id="fig1",
        title="Layer-wise total and active parameter breakdown",
        paper_claim=(
            "MoE layers dominate both total and active parameters across "
            "Mixtral-8x7B, OLMoE-1B-7B and Qwen1.5-MoE."
        ),
    )
    comp = ResultTable(
        "component breakdown",
        ("model", "component", "total_params_B", "active_params_B"),
    )
    frac = ResultTable(
        "moe dominance",
        ("model", "moe_fraction_total", "moe_fraction_active",
         "per_layer_total_M", "per_layer_active_M"),
    )
    for name in _MODELS:
        model = get_model(name)
        pb = model_params(model)
        totals = pb.component_totals()
        actives = pb.component_actives()
        for component in totals:
            comp.add(
                model=name,
                component=component,
                total_params_B=totals[component] / 1e9,
                active_params_B=actives[component] / 1e9,
            )
        lp = pb.layers[len(pb.layers) // 2]
        frac.add(
            model=name,
            moe_fraction_total=pb.moe_fraction_total,
            moe_fraction_active=pb.moe_fraction_active,
            per_layer_total_M=lp.total / 1e6,
            per_layer_active_M=lp.active / 1e6,
        )
    result.tables += [comp, frac]
    min_frac = min(r["moe_fraction_total"] for r in frac)
    result.observe(
        f"MoE blocks hold {100 * min_frac:.0f}%+ of total parameters in every "
        "model — they dominate memory footprint exactly as Fig. 1 shows."
    )
    return result
