"""Figure 5: impact of batch size under varying active experts (top-k)."""

from __future__ import annotations

import itertools

from repro.core.experiment import ExperimentResult
from repro.core.registry import experiment
from repro.core.results import ResultTable
from repro.experiments.common import metrics_rows, perf_model
from repro.models.zoo import get_model

MODELS = ("DeepSeek-V2-Lite", "Qwen1.5-MoE-A2.7B")
BATCHES = (1, 16, 32, 64, 128)
TOPKS = (1, 2, 4, 8, 16, 32)
IO_TOKENS = 1024  # context length 2048 = input + output


@experiment("fig5")
def run() -> ExperimentResult:
    result = ExperimentResult(
        exp_id="fig5",
        title="Batch size x active experts (top-k), context length 2048",
        paper_claim=(
            "Throughput decreases with active experts for all batch sizes, "
            "more pronounced at large batches (DeepSeek-V2-Lite drops "
            "~15-20% at bs 64/128 from top-k 1->32); batch scaling is "
            "sub-linear."
        ),
    )
    table = ResultTable(
        "throughput",
        ("model", "batch", "top_k", "throughput_tok_s", "fits"),
    )

    # one deployment per (model, top_k); the batch axis is evaluated
    # vectorized in a single pass.  Rows land in a dict first because the
    # recorded table order is model -> batch -> top_k (batch is *not* the
    # innermost sweep axis) and digests are order-sensitive.
    cells: dict[tuple[str, int, int], dict] = {}
    for model in MODELS:
        cfg = get_model(model)
        for top_k in TOPKS:
            variant = cfg.with_moe(cfg.moe.with_top_k(top_k))
            pm = perf_model(variant)
            rows = metrics_rows(pm, [(b, IO_TOKENS, IO_TOKENS) for b in BATCHES])
            for batch, row in zip(BATCHES, rows):
                cells[(model, batch, top_k)] = {
                    "throughput_tok_s": row["throughput_tok_s"],
                    "fits": row["fits"],
                }
    for model, batch, top_k in itertools.product(MODELS, BATCHES, TOPKS):
        table.add(model=model, batch=batch, top_k=top_k,
                  **cells[(model, batch, top_k)])
    result.tables.append(table)

    from repro.core.charts import line_chart

    for model in MODELS:
        series = {
            f"bs={b}": [(r["top_k"], r["throughput_tok_s"])
                        for r in table.where(model=model, batch=b)]
            for b in BATCHES
        }
        result.add_chart(line_chart(
            series, title=f"{model}: throughput (tok/s) vs active experts",
            logx=True,
        ))

    for model in MODELS:
        sub = table.where(model=model)
        for batch in (1, 128):
            at_bs = sub.where(batch=batch)
            thr = {r["top_k"]: r["throughput_tok_s"] for r in at_bs}
            drop = 100 * (1 - thr[max(TOPKS)] / thr[min(TOPKS)])
            result.observe(
                f"{model} bs={batch}: top-k 1->32 throughput drop {drop:.0f}%."
            )
        scale = (
            sub.where(batch=128, top_k=4).rows[0]["throughput_tok_s"]
            / sub.where(batch=1, top_k=4).rows[0]["throughput_tok_s"]
        )
        result.observe(
            f"{model}: batch 1->128 scales throughput {scale:.0f}x "
            "(sub-linear, < 128x)."
        )
    return result
