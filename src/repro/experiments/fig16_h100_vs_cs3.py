"""Figure 16: Llama-4-Scout-17B-16E on H100 vs Cerebras CS-3."""

from __future__ import annotations

from repro.core.experiment import ExperimentResult, sweep
from repro.core.registry import experiment
from repro.core.results import ResultTable
from repro.experiments.common import H100
from repro.hardware.gpus import CS3
from repro.models.zoo import LLAMA4_SCOUT_17B_16E
from repro.optim.quantization import FP8_CONFIG
from repro.parallel.plan import ParallelPlan
from repro.perfmodel.inference import InferencePerfModel
from repro.workloads.generator import PAPER_SEQUENCE_LENGTHS

# batch 64 keeps the H100 KV-cache term visible (the mechanism behind its
# steep context growth); CS-3's SRAM bandwidth makes the same term free
BATCH = 64
# the paper's CS-3 replica stores weights at FP8; we deploy H100 at FP8 too
# (Scout FP16 would need >2 nodes), keeping precision matched
_H100_PLAN = ParallelPlan(tp=4)
_CS3_PLAN = ParallelPlan(pp=4)  # cross-wafer weight pipelining


@experiment("fig16")
def run() -> ExperimentResult:
    result = ExperimentResult(
        exp_id="fig16",
        title="Llama-4-Scout: H100 (TP4, FP8) vs Cerebras CS-3",
        paper_claim=(
            "H100 latency rises steeply with context (sharp beyond 1024 "
            "tokens); CS-3 stays much lower with gradual growth thanks to "
            "orders-of-magnitude higher memory bandwidth."
        ),
    )
    table = ResultTable(
        "latency/throughput vs length",
        ("hardware", "io_tokens", "e2e_s", "itl_per_step_ms", "decode_tok_s",
         "throughput_tok_s"),
    )

    def point(hardware: str, io_tokens: int) -> dict:
        hw, plan = ((H100, _H100_PLAN) if hardware == "H100"
                    else (CS3, _CS3_PLAN))
        pm = InferencePerfModel(LLAMA4_SCOUT_17B_16E, hw, plan=plan,
                                quant=FP8_CONFIG)
        m = pm.generate(BATCH, io_tokens, io_tokens, check_memory=False)
        return {
            "e2e_s": m.e2e_latency_s,
            "itl_per_step_ms": m.itl_per_step_s * 1e3,
            "decode_tok_s": m.decode_throughput_tok_s,
            "throughput_tok_s": m.throughput_tok_s,
        }

    sweep(table, {"hardware": ("H100", "CS-3"),
                  "io_tokens": PAPER_SEQUENCE_LENGTHS}, point)
    result.tables.append(table)

    from repro.core.charts import line_chart

    result.add_chart(line_chart(
        {hwn: [(r["io_tokens"], r["e2e_s"]) for r in table.where(hardware=hwn)]
         for hwn in ("H100", "CS-3")},
        title="Llama-4-Scout E2E latency (s) vs io length", logx=True,
    ))

    h100 = {r["io_tokens"]: r["itl_per_step_ms"] for r in table.where(hardware="H100")}
    cs3 = {r["io_tokens"]: r["itl_per_step_ms"] for r in table.where(hardware="CS-3")}
    result.observe(
        f"H100 per-step decode latency grows {100 * (h100[2048] / h100[128] - 1):.0f}% "
        f"from context 128 to 2048 (growing KV reads); CS-3 grows "
        f"{100 * (cs3[2048] / cs3[128] - 1):.0f}% — nearly flat, as the paper "
        "reports for the wafer's SRAM bandwidth."
    )
    result.observe(
        f"Per-sequence decode rate at length 2048: CS-3 "
        f"{table.where(hardware='CS-3', io_tokens=2048).rows[0]['decode_tok_s'] / BATCH:.0f} tok/s/seq vs "
        f"H100 {table.where(hardware='H100', io_tokens=2048).rows[0]['decode_tok_s'] / BATCH:.0f} tok/s/seq "
        "(Cerebras quotes ~2,600 tok/s for Scout)."
    )
    return result
