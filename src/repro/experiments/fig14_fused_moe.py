"""Figure 14: Mixtral-8x7B with and without Fused MoE (4xH100)."""

from __future__ import annotations

from repro.core.experiment import ExperimentResult, sweep
from repro.core.registry import experiment
from repro.core.results import ResultTable
from repro.experiments.common import H100
from repro.models.zoo import MIXTRAL_8X7B
from repro.optim.fused_moe import compare_fused_unfused, moe_kernel_launches_per_layer
from repro.parallel.plan import ParallelPlan
from repro.workloads.generator import PAPER_BATCH_SIZES, PAPER_SEQUENCE_LENGTHS

_PLAN = ParallelPlan(tp=4)
_FIXED_IO = 1024
_FIXED_BATCH = 64


@experiment("fig14")
def run() -> ExperimentResult:
    result = ExperimentResult(
        exp_id="fig14",
        title="Fused vs non-fused MoE, Mixtral-8x7B on 4xH100",
        paper_claim=(
            "Fused MoE wins consistently: ~15-20% higher throughput across "
            "batch sizes and 12-18% across sequence lengths; the naive path "
            "declines faster at long sequences."
        ),
    )
    batch_table = ResultTable(
        "batch sweep",
        ("batch", "fused_tok_s", "unfused_tok_s", "gain_pct"),
    )

    def batch_point(batch: int) -> dict:
        c = compare_fused_unfused(MIXTRAL_8X7B, H100, batch, _FIXED_IO, _FIXED_IO,
                                  plan=_PLAN)
        return {"fused_tok_s": c.fused_throughput_tok_s,
                "unfused_tok_s": c.unfused_throughput_tok_s,
                "gain_pct": c.gain_percent}

    sweep(batch_table, {"batch": PAPER_BATCH_SIZES}, batch_point)

    len_table = ResultTable(
        "length sweep",
        ("io_tokens", "fused_tok_s", "unfused_tok_s", "gain_pct"),
    )

    def len_point(io_tokens: int) -> dict:
        c = compare_fused_unfused(MIXTRAL_8X7B, H100, _FIXED_BATCH, io_tokens,
                                  io_tokens, plan=_PLAN)
        return {"fused_tok_s": c.fused_throughput_tok_s,
                "unfused_tok_s": c.unfused_throughput_tok_s,
                "gain_pct": c.gain_percent}

    sweep(len_table, {"io_tokens": PAPER_SEQUENCE_LENGTHS}, len_point)

    result.tables += [batch_table, len_table]

    from repro.core.charts import line_chart

    result.add_chart(line_chart(
        {"fused": [(r["batch"], r["fused_tok_s"]) for r in batch_table],
         "naive": [(r["batch"], r["unfused_tok_s"]) for r in batch_table]},
        title="Mixtral-8x7B throughput (tok/s) vs batch", logx=True,
    ))
    bg = batch_table.column("gain_pct")
    lg = len_table.column("gain_pct")
    result.observe(
        f"Fused MoE gain across batches: {min(bg):.0f}%-{max(bg):.0f}% "
        "(paper: ~15-20%)."
    )
    result.observe(
        f"Fused MoE gain across lengths: {min(lg):.0f}%-{max(lg):.0f}% "
        "(paper: 12-18%)."
    )
    result.observe(
        "Kernel launches per MoE layer: "
        f"{moe_kernel_launches_per_layer(MIXTRAL_8X7B, fused=True)} fused vs "
        f"{moe_kernel_launches_per_layer(MIXTRAL_8X7B, fused=False)} naive."
    )
    return result
