"""Extension experiment: SLO error-budget burn under load and faults.

The paper reports raw TTFT/ITL/E2E curves; operators run serving against
*objectives* — MoE-CAP argues cost/performance must be judged by delivered
service quality.  ``ext_slo`` scores the canonical objectives (``p99 ttft
< 0.5s``, ``availability >= 99.9%``, :data:`repro.obs.slo.DEFAULT_SLOS`)
over two sweeps: offered load on a healthy deployment (the
``ext_serving_load`` workload), and fault-storm intensity on the chaos
deployment.  Each point reports budget consumption and how many SRE
multi-window burn-rate pages fired — all on the simulated clock, so every
cell is deterministic and fingerprint-gated.
"""

from __future__ import annotations

import dataclasses

from repro.core.experiment import ExperimentResult, sweep
from repro.core.registry import experiment
from repro.core.results import ResultTable
from repro.faults.harness import chaos_serving_run
from repro.obs.alerts import AlertMonitor
from repro.obs.harness import poisson_serving_run
from repro.obs.instrument import Instrumentation
from repro.obs.slo import (
    DEFAULT_SLOS,
    SLO,
    SloTracker,
    fault_storm_config,
    sre_burn_rules,
)
from repro.obs.trace import SpanTracer

LOAD_SLOS = (SLO.parse("p99 ttft < 0.015s"), DEFAULT_SLOS[1])
"""Objectives for the healthy load sweep.  This deployment serves TTFTs
of 8-30ms, so the chaos-scenario 0.5s objective never burns under pure
queueing; 15ms separates the unloaded knee from saturation."""


def _lean_slo_obs(slos=DEFAULT_SLOS) -> Instrumentation:
    """Instrumentation carrying only the SLO machinery: tracer disabled
    and no per-request tracer, so sweep points stay cheap while budgets
    and burn-rate paging still see every terminal request."""
    tracker = SloTracker(slos)
    monitor = AlertMonitor(rules=sre_burn_rules(slos))
    obs = Instrumentation(tracer=SpanTracer(enabled=False), alerts=monitor,
                          slo=tracker)
    tracker.align_buckets(obs.metrics)
    return obs


def _budget_columns(obs: Instrumentation, makespan: float) -> dict:
    budgets = {b["slo"]: b
               for b in obs.slo.report(makespan)["budgets"]}
    return {
        "ttft_attainment": budgets["ttft_p99"]["attainment"],
        "ttft_budget_consumed": budgets["ttft_p99"]["budget_consumed"],
        "availability": budgets["availability"]["attainment"],
        "avail_budget_consumed": budgets["availability"]["budget_consumed"],
        "burn_alerts": len(obs.alerts.fired),
    }


@experiment("ext_slo")
def run_slo() -> ExperimentResult:
    result = ExperimentResult(
        exp_id="ext_slo",
        title="Extension: SLO error-budget burn vs load and fault storms",
        paper_claim=(
            "(extension) The paper reports raw latency curves; operators "
            "budget against SLOs — attainment and burn-rate paging are "
            "the serving-quality view of the same runs."
        ),
    )

    load_table = ResultTable(
        "budget burn vs offered load",
        ("arrival_rate_rps", "ttft_attainment", "ttft_budget_consumed",
         "availability", "avail_budget_consumed", "burn_alerts"),
    )

    def load_point(arrival_rate_rps: float) -> dict:
        obs = _lean_slo_obs(LOAD_SLOS)
        res = poisson_serving_run(
            arrival_rate_rps=arrival_rate_rps, num_requests=120,
            instrumentation=obs,
        )
        return _budget_columns(obs, res.makespan)

    sweep(load_table, {"arrival_rate_rps": (2.0, 8.0, 32.0, 128.0)},
          load_point)
    result.tables.append(load_table)

    storm_table = ResultTable(
        "budget burn vs fault-storm intensity",
        ("fault_rate_per_s", "ttft_attainment", "ttft_budget_consumed",
         "availability", "avail_budget_consumed", "burn_alerts",
         "fault_retries"),
    )
    storm_base = fault_storm_config()

    def storm_point(fault_rate_per_s: float) -> dict:
        obs = _lean_slo_obs()
        config = dataclasses.replace(storm_base,
                                     fault_rate=fault_rate_per_s)
        run = chaos_serving_run(config, instrumentation=obs)
        cols = _budget_columns(obs, run.result.makespan)
        cols["fault_retries"] = run.result.num_fault_retries
        return cols

    sweep(storm_table, {"fault_rate_per_s": (2.0, 5.0, 8.0)}, storm_point)
    result.tables.append(storm_table)

    loads = {r["arrival_rate_rps"]: r for r in load_table}
    result.observe(
        "On the healthy deployment the TTFT error budget survives low "
        f"load (consumed {loads[2.0]['ttft_budget_consumed']:.2f}x at "
        "2 req/s) and is blown through at saturation "
        f"({loads[128.0]['ttft_budget_consumed']:.2f}x at 128 req/s, "
        f"{loads[128.0]['burn_alerts']} burn-rate pages) — queueing alone "
        "exhausts a p99 objective long before requests fail."
    )
    storms = {r["fault_rate_per_s"]: r for r in storm_table}
    result.observe(
        "Fault storms burn the two budgets differently: at 5 faults/s "
        f"every kill is retried to completion (availability "
        f"{storms[5.0]['availability']:.3f}, "
        f"{storms[5.0]['fault_retries']} retries) yet the TTFT budget is "
        f"already {storms[5.0]['ttft_budget_consumed']:.1f}x consumed — "
        "retry backoff lands on first-token latency long before requests "
        f"fail; at 8 faults/s availability itself collapses to "
        f"{storms[8.0]['availability']:.3f} and "
        f"{storms[8.0]['burn_alerts']} burn-rate pages fire."
    )
    return result
