"""Figure 11: intra- and inter-expert pruning across top-k values."""

from __future__ import annotations

from repro.core.experiment import ExperimentResult, sweep
from repro.core.registry import experiment
from repro.core.results import ResultTable
from repro.experiments.common import H100
from repro.models.zoo import get_model
from repro.moe.pruning import PAPER_PRUNING_RATIOS, PruningSpec, prune_model_config
from repro.parallel.plan import ParallelPlan
from repro.perfmodel.inference import InferencePerfModel

MODELS = ("OLMoE-1B-7B", "Qwen1.5-MoE-A2.7B")
BATCH = 16
IO_TOKENS = 2048
_PLAN = ParallelPlan(tp=4)


@experiment("fig11")
def run() -> ExperimentResult:
    result = ExperimentResult(
        exp_id="fig11",
        title="Intra vs inter expert pruning (batch 16, io 2048, 4xH100)",
        paper_claim=(
            "Throughput generally decreases with active experts; 50% "
            "pruning (especially intra-expert) sustains or improves "
            "throughput at larger top-k, while low ratios (12.5/25%) give "
            "small or even inverse effects."
        ),
    )
    table = ResultTable(
        "pruning sweep",
        ("model", "kind", "ratio_pct", "top_k", "throughput_tok_s",
         "gain_vs_unpruned_pct"),
    )

    def point(model: str, kind: str, ratio: float, top_k: int) -> dict | None:
        cfg = get_model(model)
        if top_k > cfg.moe.top_k:
            return None  # paper evaluates top-k up to the pretrained value
        base_cfg = cfg.with_moe(cfg.moe.with_top_k(top_k))
        if kind == "none":
            pruned = base_cfg
        else:
            pruned = prune_model_config(base_cfg, PruningSpec(kind=kind, ratio=ratio))
        pm = InferencePerfModel(pruned, H100, plan=_PLAN)
        thr = pm.generate(BATCH, IO_TOKENS, IO_TOKENS, check_memory=False).throughput_tok_s
        base_pm = InferencePerfModel(base_cfg, H100, plan=_PLAN)
        base = base_pm.generate(BATCH, IO_TOKENS, IO_TOKENS, check_memory=False).throughput_tok_s
        return {
            "throughput_tok_s": thr,
            "gain_vs_unpruned_pct": 100 * (thr / base - 1),
        }

    for model in MODELS:
        max_k = get_model(model).moe.top_k
        topks = tuple(range(1, max_k + 1))
        for kind in ("inter", "intra"):
            for ratio in PAPER_PRUNING_RATIOS:
                for top_k in topks:
                    row = point(model, kind, ratio, top_k)
                    if row is None:
                        continue
                    table.add(model=model, kind=kind, ratio_pct=100 * ratio,
                              top_k=top_k, **row)
    result.tables.append(table)

    for model in MODELS:
        hi = table.where(model=model, kind="intra", ratio_pct=50.0)
        max_k_rows = [r for r in hi if r["top_k"] == max(r2["top_k"] for r2 in hi)]
        if max_k_rows:
            result.observe(
                f"{model}: 50% intra-expert pruning at the pretrained top-k "
                f"improves throughput {max_k_rows[0]['gain_vs_unpruned_pct']:+.0f}% "
                "(paper: sustains or improves)."
            )
        lo = [r["gain_vs_unpruned_pct"] for r in table.where(model=model)
              if r["ratio_pct"] == 12.5]
        result.observe(
            f"{model}: 12.5% pruning changes throughput only "
            f"{min(lo):+.0f}%..{max(lo):+.0f}% — small effects at low "
            "ratios (the paper additionally observed occasional inversions "
            "from kernel autotuning/load imbalance, which a deterministic "
            "roofline cannot produce)."
        )
    return result
