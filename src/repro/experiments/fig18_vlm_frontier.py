"""Figure 18: throughput/latency vs accuracy for the DeepSeek-VL2 family."""

from __future__ import annotations

from repro.core.experiment import ExperimentResult
from repro.core.registry import experiment
from repro.core.results import ResultTable
from repro.evals.harness import accuracy_efficiency_frontier
from repro.experiments.common import H100, PAPER_VLMS
from repro.models.zoo import get_model
from repro.parallel.plan import SINGLE_DEVICE

BATCH = 16
IO_TOKENS = 1024


@experiment("fig18")
def run() -> ExperimentResult:
    result = ExperimentResult(
        exp_id="fig18",
        title="Throughput/latency vs average VLMEvalKit accuracy (VLMs)",
        paper_claim=(
            "DeepSeek-VL2-Tiny: highest throughput, lowest accuracy; "
            "DeepSeek-VL2: highest accuracy, lowest throughput/highest "
            "latency; Small sits between — a clean speed/accuracy ladder."
        ),
    )
    # the whole family fits one H100 at FP16, so a single-GPU deployment
    # (the paper's setup) gives the cleanest speed/accuracy ladder
    models = [get_model(n) for n in PAPER_VLMS]
    plans = {m.name: SINGLE_DEVICE for m in models}
    points = accuracy_efficiency_frontier(
        models, H100, BATCH, IO_TOKENS, IO_TOKENS, plans=plans
    )
    table = ResultTable(
        "frontier",
        ("model", "accuracy_pct", "throughput_tok_s", "e2e_latency_s"),
    )
    for p in points:
        table.add(model=p.model_name, accuracy_pct=p.accuracy,
                  throughput_tok_s=p.throughput_tok_s,
                  e2e_latency_s=p.e2e_latency_s)
    result.tables.append(table)

    by_thr = sorted(points, key=lambda p: -p.throughput_tok_s)
    by_acc = sorted(points, key=lambda p: -p.accuracy)
    result.observe(
        f"Fastest: {by_thr[0].model_name}; most accurate: "
        f"{by_acc[0].model_name} (paper: Tiny fastest, base most accurate)."
    )
    monotone = [p.model_name for p in by_thr] == [p.model_name for p in reversed(by_acc)]
    result.observe(
        f"Throughput and accuracy are inversely ordered across the family: "
        f"{monotone} (paper: a clean trade-off ladder)."
    )
    return result
