"""Extension experiments: cluster-scale fleet serving.

The paper benchmarks one engine; production deployments put a router,
admission control and an autoscaler in front of N replicas.  Three
experiments measure what that control plane buys on the paper's own
metrics (throughput, tail TTFT, availability):

* ``ext_fleet_capacity`` — fixed offered load against 1/2/4/8 replicas:
  served throughput scales with replica count up to the knee where the
  fleet stops being the bottleneck, and admission shedding vanishes.
* ``ext_fleet_policy`` — round-robin vs least-loaded-KV vs
  prefix-affinity on a heavily templated RAG-shaped trace: affinity
  concentrates each template's ``PrefixCachingKVCache`` entries on a
  home replica, lifting the fleet hit rate and cutting both mean and
  p99 TTFT.
* ``ext_fleet_diurnal`` — a diurnal wave with and without a replica-loss
  storm, served by a static fleet vs the occupancy-driven autoscaler:
  kills are survived by re-routing orphans with bounded error-budget
  burn, and scaling tracks the wave.

Every run is a pure function of ``(FleetConfig, trace)`` — see
:mod:`repro.fleet` — so all three experiments fingerprint exactly.
"""

from __future__ import annotations

import numpy as np

from repro.core.experiment import ExperimentResult, sweep
from repro.core.registry import experiment
from repro.core.results import ResultTable
from repro.fleet.admission import AdmissionConfig
from repro.fleet.autoscaler import AutoscalerConfig
from repro.fleet.simulator import FleetConfig, FleetResult, FleetSimulator
from repro.fleet.traffic import (
    DiurnalSpec,
    TemplateMix,
    diurnal_arrivals,
    synthesize_requests,
)
from repro.faults.schedule import replica_storm
from repro.serving.request import Request
from repro.workloads.generator import LengthDistribution

_MODEL = "OLMoE-1B-7B"
_SEED = 23


def _trace(num_requests: int, spec: DiurnalSpec,
           lengths: LengthDistribution,
           templates: TemplateMix | None = None,
           seed: int = _SEED) -> list[Request]:
    rng = np.random.default_rng(seed)
    arrivals = diurnal_arrivals(spec, num_requests, rng)
    return synthesize_requests(num_requests, rng, arrivals,
                               lengths=lengths, templates=templates)


def _run(config: FleetConfig, requests: list[Request]) -> FleetResult:
    return FleetSimulator(config).run(requests)


@experiment("ext_fleet_capacity")
def run_fleet_capacity() -> ExperimentResult:
    result = ExperimentResult(
        exp_id="ext_fleet_capacity",
        title="Extension: fleet capacity vs replica count",
        paper_claim=(
            "(extension) The paper serves one engine; a fleet's served "
            "throughput should scale with replica count until the "
            "offered load, not the fleet, is the bottleneck."
        ),
    )
    # constant-rate offered load sized to saturate small fleets: the
    # trace is identical for every row, only the fleet width changes
    trace_args = dict(
        num_requests=512,
        spec=DiurnalSpec(base_rps=160.0, peak_rps=160.0, period_s=4.0),
        lengths=LengthDistribution(mean_input=512, mean_output=64,
                                   sigma=0.3),
    )
    table = ResultTable(
        "served capacity vs fleet width",
        ("replicas", "throughput_tok_s", "availability", "shed_rate",
         "p99_ttft_ms", "makespan_s"),
    )

    def point(replicas: int) -> dict:
        run = _run(FleetConfig(
            model_name=_MODEL,
            num_replicas=replicas,
            policy="least_kv",
            kv_pool_tokens=65_536,
            admission=AdmissionConfig(max_backlog_per_replica=64),
        ), _trace(**trace_args))
        return {
            "throughput_tok_s": run.throughput_tok_s,
            "availability": run.availability,
            "shed_rate": run.shed_rate,
            "p99_ttft_ms": run.p99_ttft() * 1e3,
            "makespan_s": run.makespan,
        }

    sweep(table, {"replicas": (1, 2, 4, 8)}, point)
    result.tables.append(table)

    by_width = {r["replicas"]: r for r in table.rows}
    speedup = (by_width[4]["throughput_tok_s"]
               / by_width[1]["throughput_tok_s"])
    result.observe(
        f"Served throughput scales {speedup:.2f}x from 1 to 4 replicas "
        f"({by_width[1]['throughput_tok_s']:,.0f} -> "
        f"{by_width[4]['throughput_tok_s']:,.0f} tok/s) and flattens at 8 "
        f"({by_width[8]['throughput_tok_s']:,.0f} tok/s): past the knee "
        "the offered load, not the fleet, is the bottleneck."
    )
    result.observe(
        f"Admission shedding tells the same story from the loss side: "
        f"{by_width[1]['shed_rate']:.0%} of requests shed at 1 replica, "
        f"{by_width[2]['shed_rate']:.0%} at 2, none at the knee — "
        "capacity bought back as availability "
        f"({by_width[1]['availability']:.0%} -> "
        f"{by_width[8]['availability']:.0%})."
    )
    return result


@experiment("ext_fleet_policy")
def run_fleet_policy() -> ExperimentResult:
    result = ExperimentResult(
        exp_id="ext_fleet_policy",
        title="Extension: routing policy vs prefix-cache locality",
        paper_claim=(
            "(extension) On templated workloads, cache-aware routing "
            "(prefix affinity with a bounded load escape) should beat "
            "load-only policies on both hit rate and tail TTFT."
        ),
    )
    # RAG-shaped trace: long templated prompts, tiny outputs, so prefill
    # — the work prefix caching saves — dominates each request.  Rebuilt
    # per policy: requests are stateful and belong to exactly one run.
    trace_args = dict(
        num_requests=768,
        spec=DiurnalSpec(base_rps=200.0, peak_rps=600.0, period_s=6.0),
        lengths=LengthDistribution(mean_input=1024, mean_output=8,
                                   sigma=0.3),
        templates=TemplateMix(num_templates=96, templated_fraction=0.95,
                              prefix_tokens=768),
    )
    table = ResultTable(
        "routing policy on a templated trace (3 replicas)",
        ("policy", "kv_hit_rate", "p99_ttft_ms", "mean_ttft_ms",
         "throughput_tok_s", "shed_rate"),
    )

    def point(policy: str) -> dict:
        run = _run(FleetConfig(
            model_name=_MODEL,
            num_replicas=3,
            policy=policy,
            kv_pool_tokens=131_072,
            enable_prefix_caching=True,
            admission=AdmissionConfig(max_backlog_per_replica=256),
        ), _trace(**trace_args))
        return {
            "kv_hit_rate": run.kv_hit_rate,
            "p99_ttft_ms": run.p99_ttft() * 1e3,
            "mean_ttft_ms": run.mean_ttft() * 1e3,
            "throughput_tok_s": run.throughput_tok_s,
            "shed_rate": run.shed_rate,
        }

    sweep(table, {"policy": ("round_robin", "least_kv", "prefix_affinity")},
          point)
    result.tables.append(table)

    rows = {r["policy"]: r for r in table.rows}
    rr, pa = rows["round_robin"], rows["prefix_affinity"]
    result.observe(
        f"Prefix affinity lifts the fleet KV hit rate from "
        f"{rr['kv_hit_rate']:.0%} (round-robin re-prefills every "
        f"template on every replica) to {pa['kv_hit_rate']:.0%} — each "
        "template's blocks live on one home replica."
    )
    result.observe(
        f"The avoided prefill shows up in the tail: p99 TTFT "
        f"{rr['p99_ttft_ms']:.1f} ms -> {pa['p99_ttft_ms']:.1f} ms "
        f"({rr['p99_ttft_ms'] / pa['p99_ttft_ms']:.2f}x) and mean "
        f"{rr['mean_ttft_ms']:.1f} -> {pa['mean_ttft_ms']:.1f} ms; the "
        "bounded load escape keeps hot templates from turning affinity "
        "into a hotspot."
    )
    return result


@experiment("ext_fleet_diurnal")
def run_fleet_diurnal() -> ExperimentResult:
    result = ExperimentResult(
        exp_id="ext_fleet_diurnal",
        title="Extension: diurnal load, replica loss and autoscaling",
        paper_claim=(
            "(extension) A fleet must ride a diurnal wave and survive "
            "replica loss: orphans re-route, error-budget burn stays "
            "bounded, and the autoscaler tracks the wave instead of "
            "provisioning for the peak."
        ),
    )
    trace_args = dict(
        num_requests=512,
        spec=DiurnalSpec(base_rps=30.0, peak_rps=180.0, period_s=6.0),
        lengths=LengthDistribution(mean_input=512, mean_output=32,
                                   sigma=0.3),
        templates=TemplateMix(num_templates=24, templated_fraction=0.7,
                              prefix_tokens=256),
    )
    storm = replica_storm(_SEED, horizon_s=5.0, rate_per_s=0.6,
                          num_replicas=3, mean_outage_s=1.5,
                          permanent_fraction=0.25)
    # a TTFT objective tight enough that re-routed orphans actually burn
    # budget — the default 0.5 s objective never notices a 270 ms tail
    slo_specs = ("p99 ttft < 0.25s", "availability >= 99%")
    table = ResultTable(
        "diurnal wave x replica-loss storm",
        ("scaling", "storm", "availability", "shed_rate", "p99_ttft_ms",
         "kills", "rerouted", "peak_replicas",
         "availability_burn", "ttft_burn"),
    )

    def point(scaling: str, with_storm: bool) -> dict:
        autoscaler = (AutoscalerConfig(min_replicas=2, max_replicas=6,
                                       interval_s=0.25)
                      if scaling == "autoscale" else None)
        run = _run(FleetConfig(
            model_name=_MODEL,
            num_replicas=3,
            policy="least_kv",
            kv_pool_tokens=65_536,
            enable_prefix_caching=True,
            admission=AdmissionConfig(max_backlog_per_replica=48,
                                      slo_specs=slo_specs),
            autoscaler=autoscaler,
            replica_kills=storm if with_storm else None,
        ), _trace(**trace_args))
        return {
            "storm": "on" if with_storm else "off",
            "availability": run.availability,
            "shed_rate": run.shed_rate,
            "p99_ttft_ms": run.p99_ttft() * 1e3,
            "kills": run.num_kills,
            "rerouted": run.num_rerouted,
            "peak_replicas": run.peak_replicas,
            "availability_burn": run.budget_consumed("availability"),
            "ttft_burn": run.budget_consumed("ttft_p99"),
        }

    sweep(table, {"scaling": ("static", "autoscale"),
                  "with_storm": (False, True)}, point)
    result.tables.append(table)

    def row(scaling: str, storm_state: str) -> dict:
        return table.where(scaling=scaling, storm=storm_state).rows[0]

    calm, stormy = row("static", "off"), row("static", "on")
    auto_stormy = row("autoscale", "on")
    result.observe(
        f"The static fleet survives {stormy['kills']} replica kills: "
        f"{stormy['rerouted']} orphans re-route and availability holds at "
        f"{stormy['availability']:.1%} (calm: {calm['availability']:.1%}) "
        "— the 99%-availability error budget is untouched "
        f"({stormy['availability_burn']:.2f}x burned)."
    )
    result.observe(
        f"Replica loss is a tail event, not an outage: p99 TTFT moves "
        f"{calm['p99_ttft_ms']:.0f} -> {stormy['p99_ttft_ms']:.0f} ms "
        f"under the storm and the 250 ms TTFT budget burns "
        f"{stormy['ttft_burn']:.2f}x — bounded, not blown."
    )
    result.observe(
        f"Under the same storm the autoscaler rides the wave to "
        f"{auto_stormy['peak_replicas']} replicas at peak, so a kill "
        "lands on a fleet with headroom: "
        f"{auto_stormy['rerouted']} orphan(s), p99 TTFT "
        f"{auto_stormy['p99_ttft_ms']:.0f} ms, TTFT burn back to "
        f"{auto_stormy['ttft_burn']:.2f}x."
    )
    return result
