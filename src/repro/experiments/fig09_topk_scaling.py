"""Figure 9: throughput vs active expert count (Mixtral skeleton, 4xH100)."""

from __future__ import annotations

from repro.core.experiment import ExperimentResult
from repro.core.registry import experiment
from repro.experiments.hyperparam_grid import grid_table


@experiment("fig9")
def run() -> ExperimentResult:
    result = ExperimentResult(
        exp_id="fig9",
        title="Throughput vs active experts (batch 16, io 2048, 4xH100)",
        paper_claim=(
            "Throughput degrades consistently from 1 to 8 active experts; "
            "single-active configurations deliver 50-80% higher throughput; "
            "the 1-vs-8 gap is modest at small FFN (20-30%) and expands to "
            "60-80% at large FFN."
        ),
    )
    table = grid_table()
    result.tables.append(table)

    for ffn_dim in (1792, 14336):
        sub = [r for r in table
               if r["ffn_dim"] == ffn_dim and r["num_experts"] == 8
               and r["throughput_tok_s"] is not None]
        thr = {r["top_k"]: r["throughput_tok_s"] for r in sub}
        if 1 in thr and 8 in thr:
            gain = 100 * (thr[1] / thr[8] - 1)
            result.observe(
                f"FFN {ffn_dim} (8 experts): top-k 1 delivers {gain:.0f}% "
                "higher throughput than top-k 8."
            )
    # monotonicity check across the whole feasible grid
    violations = 0
    combos = {(r["ffn_dim"], r["num_experts"]) for r in table}
    for f, e in sorted(combos):
        thr = [r["throughput_tok_s"] for r in table
               if r["ffn_dim"] == f and r["num_experts"] == e
               and r["throughput_tok_s"] is not None]
        violations += sum(1 for a, b in zip(thr, thr[1:]) if b > a * 1.001)
    result.observe(
        f"Throughput decreases monotonically with top-k in the feasible "
        f"grid ({violations} violations)."
    )
    return result
