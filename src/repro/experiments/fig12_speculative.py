"""Figure 12: speculative decoding of Qwen3-30B-A3B with four drafts."""

from __future__ import annotations

from repro.core.experiment import ExperimentResult, sweep
from repro.core.registry import experiment
from repro.core.results import ResultTable
from repro.experiments.common import H100
from repro.models.zoo import QWEN3_30B_A3B, get_model
from repro.optim.speculative import SpeculativeDecodingModel

DRAFTS = ("Qwen3-0.6B", "Qwen3-1.7B", "Qwen3-4B", "Qwen3-8B")
INPUT_LENGTHS = (128, 256, 512, 1024, 2048)
DRAFT_TOKENS = (1, 2, 4, 8)
BATCH = 1


def _model(draft: str, k: int) -> SpeculativeDecodingModel:
    return SpeculativeDecodingModel(
        target=QWEN3_30B_A3B,
        draft=get_model(draft),
        hardware=H100,
        num_draft_tokens=k,
    )


@experiment("fig12")
def run() -> ExperimentResult:
    result = ExperimentResult(
        exp_id="fig12",
        title="Speculative decoding: Qwen3-30B-A3B target, 4 Qwen3 drafts",
        paper_claim=(
            "Qwen3-1.7B delivers the highest throughput (up to ~20% over "
            "8B at short inputs, ~15% over 4B at long); 0.6B lags 25-35%; "
            "throughput declines with input length and monotonically with "
            "draft-token count."
        ),
    )
    len_table = ResultTable(
        "input length sweep (k=4)",
        ("draft", "input_len", "decode_tok_s", "alpha"),
    )

    def len_point(draft: str, input_len: int) -> dict:
        m = _model(draft, 4)
        return {
            "decode_tok_s": m.decode_throughput(BATCH, input_len),
            "alpha": m.alpha(input_len),
        }

    sweep(len_table, {"draft": DRAFTS, "input_len": INPUT_LENGTHS}, len_point)

    k_table = ResultTable(
        "draft token sweep (input 512)",
        ("draft", "num_draft_tokens", "decode_tok_s"),
    )

    def k_point(draft: str, num_draft_tokens: int) -> dict:
        m = _model(draft, num_draft_tokens)
        return {"decode_tok_s": m.decode_throughput(BATCH, 512)}

    sweep(k_table, {"draft": DRAFTS, "num_draft_tokens": DRAFT_TOKENS}, k_point)

    result.tables += [len_table, k_table]

    from repro.core.charts import line_chart

    result.add_chart(line_chart(
        {d: [(r["input_len"], r["decode_tok_s"])
             for r in len_table.where(draft=d)] for d in DRAFTS},
        title="decode tok/s vs input length (k=4)", logx=True,
    ))
    result.add_chart(line_chart(
        {d: [(r["num_draft_tokens"], r["decode_tok_s"])
             for r in k_table.where(draft=d)] for d in DRAFTS},
        title="decode tok/s vs draft tokens (input 512)",
    ))

    short = {r["draft"]: r["decode_tok_s"] for r in len_table.where(input_len=128)}
    long = {r["draft"]: r["decode_tok_s"] for r in len_table.where(input_len=2048)}
    best_short = max(short, key=short.get)
    result.observe(
        f"Best draft at short inputs: {best_short} "
        f"(+{100 * (short['Qwen3-1.7B'] / short['Qwen3-8B'] - 1):.0f}% over 8B; "
        "paper: 1.7B, ~20% over 8B)."
    )
    result.observe(
        f"At input 2048, 1.7B leads 4B by "
        f"{100 * (long['Qwen3-1.7B'] / long['Qwen3-4B'] - 1):.0f}% (paper: ~15%)."
    )
    lag = 100 * (1 - short["Qwen3-0.6B"] / short[best_short])
    result.observe(f"0.6B lags the leader by {lag:.0f}% (paper: 25-35%).")
    # monotone decline with k for every draft
    violations = 0
    for d in DRAFTS:
        thr = [r["decode_tok_s"] for r in k_table.where(draft=d)]
        violations += sum(1 for a, b in zip(thr, thr[1:]) if b > a * 1.001)
    result.observe(
        f"Throughput declines monotonically with draft-token count "
        f"({violations} violations across drafts)."
    )
    return result
