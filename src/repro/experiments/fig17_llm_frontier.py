"""Figure 17: throughput/latency vs accuracy for LLMs."""

from __future__ import annotations

from repro.core.experiment import ExperimentResult
from repro.core.registry import experiment
from repro.core.results import ResultTable
from repro.evals.harness import accuracy_efficiency_frontier
from repro.experiments.common import H100, PAPER_LLMS, default_plan
from repro.models.zoo import get_model

BATCH = 16
IO_TOKENS = 1024


@experiment("fig17")
def run() -> ExperimentResult:
    result = ExperimentResult(
        exp_id="fig17",
        title="Throughput/latency vs average lm-eval accuracy (LLMs)",
        paper_claim=(
            "OLMoE-1B-7B has the highest throughput (>40% over the next "
            "best) but lower accuracy; Qwen3-30B-A3B and Mixtral lead "
            "accuracy at 30-50% lower throughput; Phi-3.5-MoE has the "
            "lowest throughput despite competitive accuracy."
        ),
    )
    models = [get_model(n) for n in PAPER_LLMS]
    plans = {m.name: default_plan(m) for m in models}
    points = accuracy_efficiency_frontier(
        models, H100, BATCH, IO_TOKENS, IO_TOKENS, plans=plans,
        # PhiMoE had no fused-MoE kernel in the benchmarked vLLM release —
        # its experts ran through the naive sequential path, the origin of
        # the paper's "lowest throughput despite competitive accuracy"
        fused_moe_overrides={"Phi-3.5-MoE": False},
    )
    table = ResultTable(
        "frontier",
        ("model", "accuracy_pct", "throughput_tok_s", "e2e_latency_s"),
    )
    for p in sorted(points, key=lambda p: -p.throughput_tok_s):
        table.add(model=p.model_name, accuracy_pct=p.accuracy,
                  throughput_tok_s=p.throughput_tok_s,
                  e2e_latency_s=p.e2e_latency_s)
    result.tables.append(table)

    from repro.core.charts import bar_chart

    result.add_chart(bar_chart(
        {p.model_name: p.throughput_tok_s for p in points},
        title="throughput (tok/s) — accuracy in the table",
    ))

    thr = {p.model_name: p.throughput_tok_s for p in points}
    acc = {p.model_name: p.accuracy for p in points}
    ranked = sorted(thr, key=thr.get, reverse=True)
    margin = 100 * (thr[ranked[0]] / thr[ranked[1]] - 1)
    result.observe(
        f"Highest throughput: {ranked[0]} (+{margin:.0f}% over {ranked[1]}; "
        "paper: OLMoE, >40%)."
    )
    best_acc = max(acc, key=acc.get)
    result.observe(
        f"Highest accuracy: {best_acc} ({acc[best_acc]:.1f}%) at "
        f"{100 * (1 - thr[best_acc] / thr[ranked[0]]):.0f}% lower throughput "
        "than the fastest model (paper: 30-50%)."
    )
    result.observe(
        f"Lowest throughput: {ranked[-1]} (paper: Phi-3.5-MoE)."
    )
    return result
