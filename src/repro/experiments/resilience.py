"""Extension experiment: serving resilience under deterministic chaos.

The paper benchmarks healthy deployments; production MoE serving loses
devices, expert shards and links.  ``ext_resilience`` sweeps a seeded
fault schedule's event rate against the recovery policy and measures what
the paper's metrics (availability, throughput, tail latency) pay — plus
the accuracy price of gracefully degrading the router's top-k when expert
replicas run out, using the same capability regression as the frontier
figures.
"""

from __future__ import annotations

from repro.core.experiment import ExperimentResult, sweep
from repro.core.registry import experiment
from repro.core.results import ResultTable
from repro.evals.accuracy import degraded_topk_accuracy
from repro.faults.harness import ChaosConfig, chaos_serving_run
from repro.models.zoo import get_model

_MODEL = "OLMoE-1B-7B"


@experiment("ext_resilience")
def run_resilience() -> ExperimentResult:
    result = ExperimentResult(
        exp_id="ext_resilience",
        title="Extension: fault injection, recovery policies and graceful "
              "degradation",
        paper_claim=(
            "(extension) The paper serves healthy clusters; real EP "
            "deployments lose devices, shards and links — availability "
            "and the degradation trade-off are part of the benchmark."
        ),
    )

    table = ResultTable(
        "fault rate x recovery policy",
        ("fault_rate_per_s", "policy", "availability", "failed",
         "fault_retries", "faults_applied", "makespan_s",
         "throughput_tok_s"),
    )

    def point(fault_rate_per_s: float, policy: str) -> dict:
        run = chaos_serving_run(ChaosConfig(
            model_name=_MODEL,
            fault_seed=7,
            fault_rate=fault_rate_per_s,
            policy=policy,
        ))
        res = run.result
        return {
            "availability": res.availability,
            "failed": res.num_failed,
            "fault_retries": res.num_fault_retries,
            "faults_applied": run.injector.counts["faults_applied"],
            "makespan_s": res.makespan,
            "throughput_tok_s": res.throughput_tok_s,
        }

    sweep(table, {"fault_rate_per_s": (0.0, 1.0, 4.0),
                  "policy": ("retry", "failfast")}, point)
    result.tables.append(table)

    # graceful degradation: the accuracy a reduced top-k costs (anchored at
    # the model's reference accuracy, walked down the cross-model
    # log(active)-parameter capability slope)
    model = get_model(_MODEL)
    acc_table = ResultTable(
        "degraded top-k accuracy", ("top_k", "predicted_accuracy_pct"),
    )
    for k in (model.moe.top_k, model.moe.top_k // 2, 1):
        acc_table.add(top_k=k,
                      predicted_accuracy_pct=degraded_topk_accuracy(model, k))
    result.tables.append(acc_table)

    healthy = {r["policy"]: r for r in table.where(fault_rate_per_s=0.0)}
    stormy = {r["policy"]: r for r in table.where(fault_rate_per_s=4.0)}
    result.observe(
        "With no faults armed the engine is bit-identical to the default "
        f"path: availability {healthy['retry']['availability']:.0%}, zero "
        "retries, and both policies produce the same "
        f"{healthy['retry']['throughput_tok_s']:,.0f} tok/s."
    )
    result.observe(
        f"At 4 faults/s, capped-backoff retry holds availability at "
        f"{stormy['retry']['availability']:.0%} (with "
        f"{stormy['retry']['fault_retries']} resubmissions stretching the "
        f"makespan {stormy['retry']['makespan_s'] / healthy['retry']['makespan_s']:.2f}x), "
        f"while fail-fast drops to {stormy['failfast']['availability']:.0%} "
        "— retries buy availability with tail latency."
    )
    full = acc_table.rows[0]["predicted_accuracy_pct"]
    half = acc_table.rows[1]["predicted_accuracy_pct"]
    result.observe(
        "Graceful degradation to half the routed experts is predicted to "
        f"cost {full - half:.1f} accuracy points "
        f"({full:.1f} -> {half:.1f}, anchored capability slope) — the "
        "price of staying up when expert replicas run out."
    )
    return result
