"""Extension experiments beyond the paper's figures.

The paper's conclusion and related-work sections point at several studies
it does not run; these experiments fill them in with the same machinery:

* ``ext_a100`` — cross-generation hardware comparison (H100 vs A100),
  including energy efficiency (the paper motivates "energy-efficient
  execution" but reports no energy numbers).
* ``ext_kv_quant`` — FP8 KV-cache quantization: throughput and the
  serving-capacity (max concurrent context) gains.
* ``ext_serving_load`` — online-serving saturation: TTFT percentiles and
  sustained throughput vs Poisson arrival rate through the
  continuous-batching engine (the vLLM-level view the paper's static
  batches cannot show).
* ``ext_spec_batch`` — speculative decoding vs batch size: where the
  draft-verify trade-off stops paying for a fine-grained MoE target.
"""

from __future__ import annotations

import numpy as np

from repro.core.experiment import ExperimentResult, sweep
from repro.core.registry import experiment
from repro.core.results import ResultTable
from repro.experiments.common import H100
from repro.hardware.gpus import A100_SXM
from repro.models.zoo import QWEN3_1_7B, QWEN3_30B_A3B, get_model
from repro.optim.quantization import FP8_CONFIG, FP16_CONFIG, QuantConfig
from repro.optim.speculative import SpeculativeDecodingModel
from repro.parallel.plan import SINGLE_DEVICE, ParallelPlan
from repro.perfmodel.energy import energy_for_generation
from repro.perfmodel.inference import InferencePerfModel
from repro.serving.engine import ServingEngine
from repro.serving.scheduler import SchedulerConfig
from repro.workloads.generator import LengthDistribution
from repro.workloads.traces import poisson_arrivals


@experiment("ext_a100")
def run_a100() -> ExperimentResult:
    result = ExperimentResult(
        exp_id="ext_a100",
        title="Extension: H100 vs A100 throughput and energy efficiency",
        paper_claim=(
            "(extension) The paper evaluates H100 only; its motivation "
            "includes energy-efficient execution across accelerators."
        ),
    )
    table = ResultTable(
        "cross-hardware",
        ("model", "hardware", "quant", "throughput_tok_s", "tokens_per_joule",
         "mean_power_w"),
    )
    models = ("OLMoE-1B-7B", "DeepSeek-V2-Lite", "Qwen3-30B-A3B")

    def point(model: str, hardware: str, quant: str) -> dict:
        hw = H100 if hardware == "H100" else A100_SXM
        q = FP16_CONFIG if quant == "fp16" else FP8_CONFIG
        pm = InferencePerfModel(get_model(model), hw, quant=q)
        m = pm.generate(32, 1024, 1024, check_memory=False)
        energy = energy_for_generation(pm, m)
        return {
            "throughput_tok_s": m.throughput_tok_s,
            "tokens_per_joule": energy.tokens_per_joule(m.shape.total_tokens),
            "mean_power_w": energy.mean_power_w,
        }

    sweep(table, {"model": models, "hardware": ("H100", "A100"),
                  "quant": ("fp16", "fp8")}, point)
    result.tables.append(table)

    for model in models:
        h = table.where(model=model, hardware="H100", quant="fp16").rows[0]
        a = table.where(model=model, hardware="A100", quant="fp16").rows[0]
        result.observe(
            f"{model}: H100 is {h['throughput_tok_s'] / a['throughput_tok_s']:.2f}x "
            f"faster than A100 at fp16 and "
            f"{h['tokens_per_joule'] / a['tokens_per_joule']:.2f}x more "
            "energy-efficient despite the higher TDP."
        )
    # A100 has no FP8 tensor cores: fp8 only saves bandwidth there
    h8 = table.where(model="Qwen3-30B-A3B", hardware="H100", quant="fp8").rows[0]
    a8 = table.where(model="Qwen3-30B-A3B", hardware="A100", quant="fp8").rows[0]
    h16 = table.where(model="Qwen3-30B-A3B", hardware="H100", quant="fp16").rows[0]
    a16 = table.where(model="Qwen3-30B-A3B", hardware="A100", quant="fp16").rows[0]
    result.observe(
        f"FP8 gain on H100: {100 * (h8['throughput_tok_s'] / h16['throughput_tok_s'] - 1):.0f}% "
        f"vs A100 (no FP8 tensor cores, bandwidth-only benefit): "
        f"{100 * (a8['throughput_tok_s'] / a16['throughput_tok_s'] - 1):.0f}%."
    )
    return result


@experiment("ext_kv_quant")
def run_kv_quant() -> ExperimentResult:
    result = ExperimentResult(
        exp_id="ext_kv_quant",
        title="Extension: FP8 KV-cache quantization",
        paper_claim=(
            "(extension) The paper's FP8 study quantizes weights and "
            "activations; the KV cache is the other memory consumer."
        ),
    )
    fp8_kv = QuantConfig.make("fp8+fp8kv", "fp8_e4m3", "fp8_e4m3",
                              kv_cache="fp8_e4m3", compute="fp8_e4m3")
    table = ResultTable(
        "kv quantization",
        ("model", "config", "throughput_tok_s", "kv_gb_per_1k_tokens",
         "max_context_tokens"),
    )
    models = ("OLMoE-1B-7B", "Qwen1.5-MoE-A2.7B")

    def point(model: str, config: str) -> dict:
        q = {"fp16": FP16_CONFIG, "fp8": FP8_CONFIG, "fp8+fp8kv": fp8_kv}[config]
        pm = InferencePerfModel(get_model(model), H100, quant=q)
        m = pm.generate(32, 1024, 1024, check_memory=False)
        return {
            "throughput_tok_s": m.throughput_tok_s,
            "kv_gb_per_1k_tokens": pm.memory.kv_bytes_per_token_per_device() * 1e3 / 1e9,
            "max_context_tokens": pm.memory.max_context_tokens(),
        }

    sweep(table, {"model": models, "config": ("fp16", "fp8", "fp8+fp8kv")}, point)
    result.tables.append(table)

    for model in models:
        base = table.where(model=model, config="fp8").rows[0]
        kv8 = table.where(model=model, config="fp8+fp8kv").rows[0]
        result.observe(
            f"{model}: FP8 KV adds "
            f"{100 * (kv8['throughput_tok_s'] / base['throughput_tok_s'] - 1):.0f}% "
            f"throughput over FP8-weights-only and raises serving capacity "
            f"{kv8['max_context_tokens'] / base['max_context_tokens']:.2f}x "
            "(KV pool tokens)."
        )
    return result


@experiment("ext_serving_load")
def run_serving_load() -> ExperimentResult:
    result = ExperimentResult(
        exp_id="ext_serving_load",
        title="Extension: online-serving saturation under Poisson load",
        paper_claim=(
            "(extension) The paper measures static batches; production "
            "serving cares about TTFT percentiles vs arrival rate."
        ),
    )
    table = ResultTable(
        "load sweep",
        ("arrival_rate_rps", "mean_ttft_s", "p99_ttft_s",
         "throughput_tok_s", "mean_decode_batch", "preemptions"),
    )
    model = get_model("OLMoE-1B-7B")
    n_requests = 120

    def point(arrival_rate_rps: float) -> dict:
        rng = np.random.default_rng(11)
        pm = InferencePerfModel(model, H100)
        engine = ServingEngine(
            pm, scheduler_config=SchedulerConfig(max_num_seqs=128),
            kv_pool_tokens=262_144,
        )
        arrivals = poisson_arrivals(arrival_rate_rps, n_requests, rng)
        dist = LengthDistribution(mean_input=512, mean_output=128, sigma=0.4)
        for req in dist.requests(n_requests, rng, arrival_times=arrivals):
            engine.submit(req)
        res = engine.run()
        from repro.serving.events import EventType

        decodes = res.log.of_type(EventType.DECODE)
        mean_batch = (float(np.mean([len(e.request_ids) for e in decodes]))
                      if decodes else 0.0)
        return {
            "mean_ttft_s": res.mean_ttft(),
            "p99_ttft_s": res.p99_ttft(),
            "throughput_tok_s": res.throughput_tok_s,
            "mean_decode_batch": mean_batch,
            "preemptions": res.num_preemptions,
        }

    sweep(table, {"arrival_rate_rps": (2.0, 8.0, 32.0, 128.0)}, point)
    result.tables.append(table)

    rows = {r["arrival_rate_rps"]: r for r in table}
    result.observe(
        f"TTFT p99 grows from {rows[2.0]['p99_ttft_s']:.3f}s at 2 req/s to "
        f"{rows[128.0]['p99_ttft_s']:.3f}s at 128 req/s as admission queues "
        "build; decode batches grow "
        f"{rows[2.0]['mean_decode_batch']:.0f} -> "
        f"{rows[128.0]['mean_decode_batch']:.0f} seqs."
    )
    result.observe(
        "Sustained token throughput saturates once the engine is "
        "continuously batched — beyond that, extra load only adds queueing "
        "delay (the classic serving saturation curve)."
    )
    return result


@experiment("ext_spec_batch")
def run_spec_batch() -> ExperimentResult:
    result = ExperimentResult(
        exp_id="ext_spec_batch",
        title="Extension: speculative decoding vs batch size",
        paper_claim=(
            "(extension) The paper studies drafts at one batch size; "
            "speculation competes with batching for the same idle compute."
        ),
    )
    table = ResultTable(
        "speculation vs batching",
        ("batch", "autoregressive_tok_s", "speculative_tok_s", "speedup"),
    )

    def point(batch: int) -> dict:
        spec = SpeculativeDecodingModel(
            QWEN3_30B_A3B, QWEN3_1_7B, H100, num_draft_tokens=2,
        )
        base_pm = InferencePerfModel(QWEN3_30B_A3B, H100)
        base = batch / base_pm.steps.decode_step_time(batch, 512)
        fast = spec.decode_throughput(batch, 512)
        return {
            "autoregressive_tok_s": base,
            "speculative_tok_s": fast,
            "speedup": fast / base,
        }

    sweep(table, {"batch": (1, 4, 16, 64)}, point)
    result.tables.append(table)

    speedups = {r["batch"]: r["speedup"] for r in table}
    result.observe(
        f"Speculation speedup GROWS from {speedups[1]:.2f}x at bs=1 to "
        f"{speedups[64]:.2f}x at bs=64 for this fine-grained-MoE target: "
        "at bs=1 verifying k+1 positions touches ~(k+1)x more experts "
        "(weights dominate, speculation loses), while at large batch the "
        "expert coverage is already saturated, so the verification step "
        "costs barely more than a plain decode step and the accepted "
        "tokens come almost for free."
    )
    return result


@experiment("ext_placement")
def run_placement() -> ExperimentResult:
    result = ExperimentResult(
        exp_id="ext_placement",
        title="Extension: activation-aware expert placement for EP",
        paper_claim=(
            "(extension) Fig. 15 shows skewed routing and §7.1 blames EP "
            "scaling on load imbalance; frequency-aware placement connects "
            "the two."
        ),
    )
    from repro.parallel.placement_opt import compare_placements
    from repro.workloads.multimodal import run_activation_study

    table = ResultTable(
        "placement comparison",
        ("model", "ep", "default_imbalance", "optimized_imbalance",
         "improvement_pct"),
    )
    models = ("DeepSeek-VL2-Tiny", "MolmoE-1B")

    def point(model: str, ep: int) -> dict:
        tracker = run_activation_study(
            get_model(model), rng=np.random.default_rng(5),
            max_routed_tokens=20_000,
        )
        loads = tracker.heatmap().sum(axis=0).astype(float)
        cmp = compare_placements(loads, ep)
        return {
            "default_imbalance": cmp["default_imbalance"],
            "optimized_imbalance": cmp["optimized_imbalance"],
            "improvement_pct": 100 * (1 - cmp["optimized_imbalance"]
                                      / cmp["default_imbalance"]),
        }

    sweep(table, {"model": models, "ep": (2, 4, 8)}, point)
    result.tables.append(table)

    molmo = table.where(model="MolmoE-1B", ep=8).rows[0]
    ds = table.where(model="DeepSeek-VL2-Tiny", ep=8).rows[0]
    result.observe(
        f"MolmoE-1B (skewed routing): LPT placement cuts EP-8 load "
        f"imbalance from {molmo['default_imbalance']:.2f} to "
        f"{molmo['optimized_imbalance']:.2f} "
        f"({molmo['improvement_pct']:.0f}% better)."
    )
    result.observe(
        f"DeepSeek-VL2-Tiny (aux-loss balanced): little to gain "
        f"({ds['default_imbalance']:.2f} -> {ds['optimized_imbalance']:.2f}) "
        "— balanced training already did the placement's job."
    )
    return result


@experiment("ext_multinode")
def run_multinode() -> ExperimentResult:
    result = ExperimentResult(
        exp_id="ext_multinode",
        title="Extension: EP dispatch cost across node boundaries",
        paper_claim=(
            "(extension) §5.3 concludes extreme-scale MoEs need "
            "'distributed placement across multi-node architectures'; this "
            "quantifies the fabric tax of doing so."
        ),
    )
    from repro.hardware.cluster import ClusterSpec

    cluster = ClusterSpec(node=H100, num_nodes=8)
    table = ResultTable(
        "multinode dispatch",
        ("ep", "nodes", "alltoall_ms", "allreduce_ms"),
    )
    # prefill-scale dispatch: 4096 routed tokens per MoE layer
    tokens, hidden, top_k = 4096, 4096, 2
    payload = tokens * hidden * 2.0  # fp16 hidden states

    def point(ep: int) -> dict:
        nodes = -(-ep // H100.max_devices)
        return {
            "nodes": nodes,
            "alltoall_ms": 1e3 * cluster.ep_dispatch_time(tokens, hidden, top_k, ep),
            "allreduce_ms": 1e3 * cluster.allreduce_time(payload, ep),
        }

    sweep(table, {"ep": (2, 4, 8, 16, 32, 64)}, point)
    result.tables.append(table)

    intra = table.where(ep=8).rows[0]
    inter = table.where(ep=16).rows[0]
    result.observe(
        f"Crossing the node boundary multiplies EP dispatch cost "
        f"{inter['alltoall_ms'] / intra['alltoall_ms']:.1f}x (8 -> 16 "
        "devices): the InfiniBand leg is ~9x slower per byte than NVLink, "
        "so experts should fill nodes before spilling across them."
    )
    return result


@experiment("ext_offload")
def run_offload() -> ExperimentResult:
    result = ExperimentResult(
        exp_id="ext_offload",
        title="Extension: CPU expert offloading and frequency-aware caching",
        paper_claim=(
            "(extension) When total experts exceed device memory, cold "
            "experts can live in host RAM — at what cost, and how much "
            "does Fig. 15-style frequency data recover?"
        ),
    )
    from repro.perfmodel.offload import (
        OffloadPlan,
        offload_throughput_estimate,
        traffic_hit_fraction,
    )
    from repro.workloads.multimodal import run_activation_study

    # MolmoE-1B: 64 experts with the measured Fig. 15 skew — the natural
    # offloading candidate (its own activation profile drives the cache)
    model = get_model("MolmoE-1B")
    tracker = run_activation_study(
        model, rng=np.random.default_rng(9), max_routed_tokens=15_000,
    )
    counts = tracker.heatmap().sum(axis=0)

    table = ResultTable(
        "offload sweep",
        ("hot_fraction", "policy", "hit_fraction", "decode_tok_s"),
    )

    def point(hot_fraction: float, policy: str) -> dict:
        if policy == "random":
            hit = hot_fraction
        else:
            hit = traffic_hit_fraction(counts, hot_fraction)
        plan = OffloadPlan(hot_fraction=hot_fraction, hit_fraction=hit)
        return {
            "hit_fraction": hit,
            "decode_tok_s": offload_throughput_estimate(
                model, 16, 1024, plan, H100,
            ),
        }

    sweep(table, {"hot_fraction": (1.0, 0.75, 0.5, 0.25),
                  "policy": ("random", "frequency")}, point)
    result.tables.append(table)

    r50 = table.where(hot_fraction=0.5, policy="random").rows[0]
    f50 = table.where(hot_fraction=0.5, policy="frequency").rows[0]
    full = table.where(hot_fraction=1.0, policy="random").rows[0]
    result.observe(
        f"Offloading is a cliff: evicting half the experts costs "
        f"{100 * (1 - r50['decode_tok_s'] / full['decode_tok_s']):.0f}% of "
        "decode throughput with random caching — PCIe is ~50x slower than "
        "HBM3, so even rare misses dominate the step."
    )
    result.observe(
        f"Frequency-aware caching lifts the hit rate to "
        f"{100 * f50['hit_fraction']:.0f}% at 50% residency and recovers "
        f"{f50['decode_tok_s'] / r50['decode_tok_s']:.2f}x of the random-"
        "cache throughput — real, but nowhere near full residency "
        "(consistent with the tok/s rates of Mixtral-offloading systems)."
    )
    return result


@experiment("ext_capacity")
def run_capacity() -> ExperimentResult:
    result = ExperimentResult(
        exp_id="ext_capacity",
        title="Extension: expert capacity factor vs token dropping",
        paper_claim=(
            "(extension) Capacity-limited systems trade the paper's "
            "load-imbalance stalls for dropped tokens; this quantifies the "
            "drop rate as a function of capacity factor and router skew."
        ),
    )
    from repro.moe.capacity import drop_statistics
    from repro.moe.router import TopKRouter

    table = ResultTable(
        "capacity sweep",
        ("router", "capacity_factor", "drop_rate_pct", "token_drop_rate_pct"),
    )
    rng = np.random.default_rng(21)
    hidden = 64
    tokens = rng.normal(size=(4096, hidden)).astype(np.float32)
    routers = {
        "balanced": TopKRouter(hidden, 64, 8, expert_bias_std=0.0,
                               rng=np.random.default_rng(1)),
        "skewed": TopKRouter(hidden, 64, 8, expert_bias_std=0.75,
                             rng=np.random.default_rng(1)),
    }

    def point(router: str, capacity_factor: float) -> dict:
        stats = drop_statistics(routers[router], tokens, capacity_factor)
        return {
            "drop_rate_pct": 100 * stats["drop_rate"],
            "token_drop_rate_pct": 100 * stats["token_drop_rate"],
        }

    sweep(table, {"router": ("balanced", "skewed"),
                  "capacity_factor": (1.0, 1.25, 1.5, 2.0)}, point)
    result.tables.append(table)

    bal = table.where(router="balanced", capacity_factor=1.25).rows[0]
    skw = table.where(router="skewed", capacity_factor=1.25).rows[0]
    result.observe(
        f"At capacity factor 1.25, a balanced router drops "
        f"{bal['drop_rate_pct']:.1f}% of assignments while a MolmoE-grade "
        f"skewed router drops {skw['drop_rate_pct']:.1f}% — skew converts "
        "directly into either stalls (capacity-free vLLM) or quality loss "
        "(capacity-limited systems)."
    )
    skw2 = table.where(router="skewed", capacity_factor=2.0).rows[0]
    result.observe(
        f"Even capacity factor 2.0 leaves the skewed router dropping "
        f"{skw2['drop_rate_pct']:.1f}% of assignments."
    )
    return result


@experiment("ext_prefix_cache")
def run_prefix_cache() -> ExperimentResult:
    result = ExperimentResult(
        exp_id="ext_prefix_cache",
        title="Extension: automatic prefix caching for templated prompts",
        paper_claim=(
            "(extension) Agent/RAG workloads share long system prompts; "
            "content-hashed KV block sharing skips their prefill."
        ),
    )
    from repro.serving.engine import ServingEngine
    from repro.serving.request import Request, SamplingParams

    table = ResultTable(
        "prefix caching",
        ("shared_prefix_tokens", "caching", "mean_ttft_ms", "makespan_s",
         "kv_hit_rate_pct"),
    )
    model = get_model("OLMoE-1B-7B")
    n_requests, block = 16, 16

    def point(shared_prefix_tokens: int, caching: str) -> dict:
        pm = InferencePerfModel(model, H100)
        engine = ServingEngine(pm, kv_pool_tokens=131_072,
                               enable_prefix_caching=(caching == "on"))
        hashes = tuple(range(shared_prefix_tokens // block))
        for i in range(n_requests):
            engine.submit(Request(
                request_id=i,
                prompt_tokens=shared_prefix_tokens + 64,
                sampling=SamplingParams(max_tokens=32),
                prompt_block_hashes=hashes,
            ))
        res = engine.run()
        return {
            "mean_ttft_ms": 1e3 * res.mean_ttft(),
            "makespan_s": res.makespan,
            "kv_hit_rate_pct": 100 * res.kv_hit_rate,
        }

    sweep(table, {"shared_prefix_tokens": (256, 1024, 4096),
                  "caching": ("off", "on")}, point)
    result.tables.append(table)

    off = table.where(shared_prefix_tokens=4096, caching="off").rows[0]
    on = table.where(shared_prefix_tokens=4096, caching="on").rows[0]
    result.observe(
        f"With a 4k-token shared system prompt, prefix caching cuts mean "
        f"TTFT {off['mean_ttft_ms'] / on['mean_ttft_ms']:.1f}x and makespan "
        f"{off['makespan_s'] / on['makespan_s']:.2f}x at a "
        f"{on['kv_hit_rate_pct']:.0f}% block hit rate."
    )
    return result
