"""Figure 4: TTFT, ITL and end-to-end latency of VLMs."""

from __future__ import annotations

from repro.core.experiment import ExperimentResult
from repro.core.registry import experiment
from repro.core.results import ResultTable
from repro.experiments.common import PAPER_VLMS, metrics_row, perf_model
from repro.models.zoo import get_model

BATCH = 64
IO_TOKENS = 2048
IMAGES_PER_SAMPLE = 1


@experiment("fig4")
def run() -> ExperimentResult:
    result = ExperimentResult(
        exp_id="fig4",
        title="TTFT, ITL and E2E latency of VLMs (1 image/sample)",
        paper_claim=(
            "DeepSeek-VL2-Tiny's TTFT is ~30% faster than DeepSeek-VL2; the "
            "ITL gap is ~240% and E2E exceeds 260% — much larger spreads "
            "than among LLMs, due to multimodal overhead."
        ),
    )
    table = ResultTable(
        "vlm latency",
        ("model", "plan", "ttft_s", "itl_ms", "e2e_s", "samples_per_s", "fits"),
    )
    rows: dict[str, dict] = {}
    for name in PAPER_VLMS:
        model = get_model(name)
        pm = perf_model(model)
        row = metrics_row(pm, BATCH, IO_TOKENS, IO_TOKENS, images=IMAGES_PER_SAMPLE)
        rows[name] = row
        table.add(model=name, plan=pm.setup.plan.label,
                  **{k: row[k] for k in table.columns if k in row})
    result.tables.append(table)

    from repro.core.charts import bar_chart

    result.add_chart(bar_chart(
        {name: r["e2e_s"] for name, r in rows.items()},
        title="E2E latency (s), batch 64, io 2048, 1 image",
    ))

    tiny, base = rows["DeepSeek-VL2-Tiny"], rows["DeepSeek-VL2"]
    result.observe(
        f"VL2-Tiny TTFT is {100 * (base['ttft_s'] - tiny['ttft_s']) / base['ttft_s']:.0f}% "
        "faster than VL2 (paper: ~30%)."
    )
    result.observe(
        f"ITL gap tiny-to-base: {100 * (base['itl_ms'] / tiny['itl_ms'] - 1):.0f}% "
        "(paper: ~240%); E2E gap: "
        f"{100 * (base['e2e_s'] / tiny['e2e_s'] - 1):.0f}% (paper: >260%)."
    )
    return result
