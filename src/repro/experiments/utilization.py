"""Extension experiment: MoE-CAP sparse vs dense utilization gauges.

MoE-CAP (arXiv 2505.11415) observes that the standard MFU/MBU gauges —
which score an accelerator as if every expert's FLOPs executed and every
expert's weights streamed each step — systematically overstate how close
a sparse model runs to its roofline.  ``ext_utilization`` quantifies that
gap across the MoE zoo with :func:`repro.obs.cluster.step_utilization`:
for each model and batch size, the dense MFU/MBU counterfactual next to
the Sparse-MFU/Sparse-MBU correction that counts only activated-expert
FLOPs and coverage-scaled expert weight traffic.  The divergence is the
experiment's result: it is largest exactly where MoE serving lives
(small-batch decode, where a step touches a fraction of the experts).
"""

from __future__ import annotations

from repro.core.experiment import ExperimentResult, sweep
from repro.core.registry import experiment
from repro.core.results import ResultTable
from repro.hardware.gpus import H100_SXM
from repro.models.zoo import get_model
from repro.obs.cluster import step_utilization
from repro.perfmodel.inference import InferencePerfModel

MODELS = (
    "OLMoE-1B-7B",
    "Qwen1.5-MoE-A2.7B",
    "DeepSeek-V2-Lite",
    "Mixtral-8x7B",
    "Qwen3-30B-A3B",
)
"""MoE zoo slice spanning expert counts (8-128) and top-k (2-8)."""

DECODE_CTX = 1024
PREFILL_TOKENS = 2048


def _point(model_name: str, batch: int) -> dict:
    model = get_model(model_name)
    perf = InferencePerfModel(model, H100_SXM)
    u = step_utilization(perf.steps, num_tokens=batch, batch=batch,
                         kv_len=DECODE_CTX, phase="decode")
    moe = model.moe
    return {
        "experts": moe.num_experts,
        "top_k": moe.top_k,
        "dense_mfu": round(u["dense_mfu"], 6),
        "sparse_mfu": round(u["sparse_mfu"], 6),
        "mfu_overstatement": round(u["dense_mfu"] / u["sparse_mfu"], 3),
        "dense_mbu": round(u["dense_mbu"], 6),
        "sparse_mbu": round(u["sparse_mbu"], 6),
        "mbu_overstatement": round(u["dense_mbu"] / u["sparse_mbu"], 3),
    }


@experiment("ext_utilization")
def run_utilization() -> ExperimentResult:
    result = ExperimentResult(
        exp_id="ext_utilization",
        title="Extension: Sparse-MBU/MFU vs the dense gauges (MoE-CAP)",
        paper_claim=(
            "(extension) Dense MFU/MBU assume every expert computes and "
            "streams each step; MoE-CAP's sparse gauges count only "
            "activated experts — the dense gauges overstate utilization "
            "across the MoE zoo, most at small-batch decode."
        ),
    )

    decode = ResultTable(
        "sparse vs dense utilization, decode @ ctx 1024",
        ("model", "batch", "experts", "top_k",
         "dense_mfu", "sparse_mfu", "mfu_overstatement",
         "dense_mbu", "sparse_mbu", "mbu_overstatement"),
    )
    sweep(decode, {"model": MODELS, "batch": (1, 16, 64)},
          lambda model, batch: _point(model, batch))
    result.tables.append(decode)

    prefill = ResultTable(
        "sparse vs dense utilization, prefill",
        ("model", "dense_mfu", "sparse_mfu", "mfu_overstatement",
         "dense_mbu", "sparse_mbu", "mbu_overstatement"),
    )

    def prefill_point(model: str) -> dict:
        m = get_model(model)
        perf = InferencePerfModel(m, H100_SXM)
        u = step_utilization(
            perf.steps, num_tokens=PREFILL_TOKENS, batch=1,
            kv_len=PREFILL_TOKENS, phase="prefill",
            attended_len=(PREFILL_TOKENS + 1) / 2.0)
        return {
            "dense_mfu": round(u["dense_mfu"], 6),
            "sparse_mfu": round(u["sparse_mfu"], 6),
            "mfu_overstatement": round(u["dense_mfu"] / u["sparse_mfu"], 3),
            "dense_mbu": round(u["dense_mbu"], 6),
            "sparse_mbu": round(u["sparse_mbu"], 6),
            "mbu_overstatement": round(u["dense_mbu"] / u["sparse_mbu"], 3),
        }

    sweep(prefill, {"model": MODELS}, prefill_point)
    result.tables.append(prefill)

    bs1 = {r["model"]: r for r in decode if r["batch"] == 1}
    worst = max(bs1.values(), key=lambda r: r["mbu_overstatement"])
    mildest = min(bs1.values(), key=lambda r: r["mbu_overstatement"])
    result.observe(
        "At batch-1 decode the dense gauges overstate bandwidth "
        f"utilization by {worst['mbu_overstatement']:.1f}x on "
        f"{worst['model']} ({worst['experts']} experts, top-"
        f"{worst['top_k']}) and by {mildest['mbu_overstatement']:.1f}x "
        f"even on {mildest['model']} — a single decode step streams only "
        "the activated experts' weights, so MBU computed against all "
        "expert weights misreads an idle fabric as a busy one."
    )
    bs64 = {r["model"]: r for r in decode if r["batch"] == 64}
    olmoe1, olmoe64 = bs1["OLMoE-1B-7B"], bs64["OLMoE-1B-7B"]
    result.observe(
        "The gap closes as batching activates more of the expert pool: "
        f"OLMoE's MBU overstatement falls from "
        f"{olmoe1['mbu_overstatement']:.1f}x at batch 1 to "
        f"{olmoe64['mbu_overstatement']:.1f}x at batch 64, while the MFU "
        f"overstatement stays near {olmoe64['mfu_overstatement']:.1f}x — "
        "FLOPs scale with top-k regardless of batch, but weight traffic "
        "saturates once every expert is touched (MoE-CAP's core caveat: "
        "correct the two gauges separately)."
    )
    pf = {r["model"]: r for r in prefill}
    result.observe(
        "Prefill at 2048 tokens activates essentially the whole expert "
        f"pool, so the sparse/dense MBU gap nearly vanishes (OLMoE "
        f"{pf['OLMoE-1B-7B']['mbu_overstatement']:.2f}x) — but the MFU "
        f"overstatement persists ({pf['OLMoE-1B-7B']['mfu_overstatement']:.1f}x), "
        "because top-k routing skips the non-activated experts' FLOPs at "
        "any batch size."
    )
    return result
