"""Figure 8: throughput vs total expert count (Mixtral skeleton, 4xH100)."""

from __future__ import annotations

from repro.core.experiment import ExperimentResult
from repro.core.registry import experiment
from repro.experiments.hyperparam_grid import EXPERT_COUNTS, grid_table


@experiment("fig8")
def run() -> ExperimentResult:
    result = ExperimentResult(
        exp_id="fig8",
        title="Throughput vs number of experts (batch 16, io 2048, 4xH100)",
        paper_claim=(
            "For small FFN dims (1792/3584), raising experts 8->64 "
            "maintains or slightly changes throughput (5-15% band); at "
            "large FFN dims extra experts cannot be utilised and OOM "
            "boundaries appear."
        ),
    )
    table = grid_table()
    result.tables.append(table)

    for ffn_dim in (1792, 14336):
        sub = [r for r in table
               if r["ffn_dim"] == ffn_dim and r["top_k"] == 2
               and r["throughput_tok_s"] is not None]
        thr = {r["num_experts"]: r["throughput_tok_s"] for r in sub}
        if min(EXPERT_COUNTS) in thr:
            have = sorted(thr)
            change = 100 * (thr[have[-1]] / thr[have[0]] - 1)
            result.observe(
                f"FFN {ffn_dim}, top-k 2: experts {have[0]}->{have[-1]} "
                f"changes throughput {change:+.0f}%."
            )
    oom_large = sum(
        1 for r in table if r["ffn_dim"] == 14336 and r["oom"]
    )
    result.observe(
        f"OOM points at FFN 14336: {oom_large} of "
        f"{len([r for r in table if r['ffn_dim'] == 14336])} "
        "(expert capacity hits the memory wall first at large FFN)."
    )
    return result
