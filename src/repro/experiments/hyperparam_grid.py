"""Shared Mixtral-skeleton hyperparameter grid for Figures 7-9.

The paper sweeps one MoE layer's hyperparameters on a Mixtral-8x7B
skeleton: FFN dimension {1792, 3584, 7168, 14336} x total experts
{8, 16, 32, 64} x active experts {1, 2, 4, 8}, at batch 16 and
input/output 2048 on 4 H100s.  Missing points indicate OOM.  The grid is
computed once and shared by the three figures (they pivot the same data).
"""

from __future__ import annotations

import dataclasses
import functools

from repro.core.results import ResultTable
from repro.models.config import MoEConfig
from repro.models.zoo import MIXTRAL_8X7B
from repro.parallel.plan import ParallelPlan
from repro.perfmodel.inference import InferencePerfModel
from repro.experiments.common import H100

__all__ = [
    "FFN_DIMS",
    "EXPERT_COUNTS",
    "TOP_KS",
    "BATCH",
    "IO_TOKENS",
    "grid_table",
]

FFN_DIMS = (1792, 3584, 7168, 14336)
EXPERT_COUNTS = (8, 16, 32, 64)
TOP_KS = (1, 2, 4, 8)
BATCH = 16
IO_TOKENS = 2048
_PLAN = ParallelPlan(tp=4)


def _variant(ffn_dim: int, num_experts: int, top_k: int):
    moe = MoEConfig(num_experts=num_experts, top_k=top_k, expert_ffn_dim=ffn_dim)
    return dataclasses.replace(
        MIXTRAL_8X7B,
        moe=moe,
        name=f"Mixtral-skeleton[f{ffn_dim}-e{num_experts}-k{top_k}]",
        published_total_params=0.0,
        published_active_params=0.0,
    )


@functools.lru_cache(maxsize=1)
def grid_table() -> ResultTable:
    """The full 4x4x4 grid; OOM points carry ``throughput_tok_s=None``."""
    table = ResultTable(
        "hyperparameter grid",
        ("ffn_dim", "num_experts", "top_k", "throughput_tok_s",
         "weights_gb_per_gpu", "oom"),
    )
    for ffn_dim in FFN_DIMS:
        for num_experts in EXPERT_COUNTS:
            for top_k in TOP_KS:
                model = _variant(ffn_dim, num_experts, top_k)
                pm = InferencePerfModel(model, H100, plan=_PLAN)
                oom = not pm.fits(BATCH, 2 * IO_TOKENS)
                thr = None
                if not oom:
                    thr = pm.generate(
                        BATCH, IO_TOKENS, IO_TOKENS, check_memory=False
                    ).throughput_tok_s
                table.add(
                    ffn_dim=ffn_dim,
                    num_experts=num_experts,
                    top_k=top_k,
                    throughput_tok_s=thr,
                    weights_gb_per_gpu=pm.memory.weight_bytes_per_device() / 1e9,
                    oom=oom,
                )
    return table
