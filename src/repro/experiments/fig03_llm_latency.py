"""Figure 3: TTFT, ITL and end-to-end latency of LLMs (bs=64, io=2048)."""

from __future__ import annotations

from repro.core.experiment import ExperimentResult
from repro.core.registry import experiment
from repro.core.results import ResultTable
from repro.experiments.common import PAPER_LLMS, metrics_row, perf_model
from repro.models.zoo import get_model

BATCH = 64
IO_TOKENS = 2048


@experiment("fig3")
def run() -> ExperimentResult:
    result = ExperimentResult(
        exp_id="fig3",
        title="TTFT, ITL and E2E latency of LLMs (batch 64, in/out 2048)",
        paper_claim=(
            "OLMoE-1B-7B achieves the fastest TTFT, ~70% faster than "
            "DeepSeek-V2-Lite; ITL varies ~100% best-to-worst; E2E gap >120%."
        ),
    )
    table = ResultTable(
        "llm latency",
        ("model", "plan", "ttft_s", "itl_ms", "e2e_s", "throughput_tok_s", "fits"),
    )
    rows: dict[str, dict] = {}
    for name in PAPER_LLMS:
        model = get_model(name)
        pm = perf_model(model)
        row = metrics_row(pm, BATCH, IO_TOKENS, IO_TOKENS)
        rows[name] = row
        table.add(model=name, plan=pm.setup.plan.label,
                  **{k: row[k] for k in table.columns if k in row})
    result.tables.append(table)

    from repro.core.charts import bar_chart

    result.add_chart(bar_chart(
        {name: r["e2e_s"] for name, r in rows.items()},
        title="E2E latency (s), batch 64, io 2048",
    ))
    result.add_chart(bar_chart(
        {name: r["ttft_s"] for name, r in rows.items()},
        title="TTFT (s)",
    ))

    olmoe, dsv2 = rows["OLMoE-1B-7B"], rows["DeepSeek-V2-Lite"]
    ttft_gain = 100 * (dsv2["ttft_s"] - olmoe["ttft_s"]) / dsv2["ttft_s"]
    itls = [r["itl_ms"] for r in rows.values()]
    e2es = [r["e2e_s"] for r in rows.values()]
    result.observe(
        f"OLMoE TTFT is {ttft_gain:.0f}% faster than DeepSeek-V2-Lite "
        "(paper: ~70%)."
    )
    result.observe(
        f"ITL spread best-to-worst: {100 * (max(itls) / min(itls) - 1):.0f}% "
        "(paper: ~100%)."
    )
    result.observe(
        f"E2E spread best-to-worst: {100 * (max(e2es) / min(e2es) - 1):.0f}% "
        "(paper: >120%)."
    )
    return result
