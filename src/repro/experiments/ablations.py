"""Ablation benches for the design choices DESIGN.md calls out.

Each ablation switches off one modelling mechanism and quantifies its
effect, so the repository documents *why* the simulator is built the way
it is.
"""

from __future__ import annotations

import numpy as np

from repro.core.experiment import ExperimentResult
from repro.core.registry import experiment
from repro.core.results import ResultTable
from repro.experiments.common import H100, perf_model
from repro.hardware.roofline import KernelCost, kernel_time
from repro.models.zoo import MIXTRAL_8X7B, get_model
from repro.moe.routing_math import expected_expert_coverage
from repro.parallel.expert_parallel import simulate_ep_imbalance
from repro.parallel.plan import ParallelPlan
from repro.perfmodel.flops import ComponentCost
from repro.perfmodel.inference import InferencePerfModel
from repro.perfmodel.phases import StepModel
from repro.serving.engine import serve_static_batch


@experiment("ablation_coverage")
def run_coverage() -> ExperimentResult:
    """Expert-coverage model vs naive 'all experts stream every step'."""
    result = ExperimentResult(
        exp_id="ablation_coverage",
        title="Ablation: expected-coverage weight streaming vs all-expert streaming",
        paper_claim=(
            "(design choice) Decode steps stream only the experts the batch "
            "touches; ignoring that overstates small-batch decode cost."
        ),
    )
    table = ResultTable(
        "decode step time",
        ("batch", "coverage_experts", "with_coverage_ms", "all_experts_ms",
         "overstatement_pct"),
    )
    model = get_model("DeepSeek-V2-Lite")
    moe = model.moe
    pm = perf_model(model)
    per_expert_bytes = 3 * model.hidden_size * moe.expert_ffn_dim * 2.0
    for batch in (1, 4, 16, 64, 256):
        cov = expected_expert_coverage(moe.num_experts, moe.top_k, batch)
        t_cov = pm.steps.decode_step_time(batch, 1024)
        # naive: charge all experts' weights every layer regardless of batch
        extra_bytes = (moe.num_experts - cov) * per_expert_bytes
        extra_s = model.num_moe_layers * extra_bytes / H100.mem_bytes_per_s
        t_all = t_cov + extra_s
        table.add(batch=batch, coverage_experts=cov,
                  with_coverage_ms=t_cov * 1e3, all_experts_ms=t_all * 1e3,
                  overstatement_pct=100 * (t_all / t_cov - 1))
    result.tables.append(table)
    worst = max(r["overstatement_pct"] for r in table)
    result.observe(
        f"Ignoring coverage overstates decode cost by up to {worst:.0f}% at "
        "batch 1 and converges to 0% at large batch — the mechanism behind "
        "Fig. 5's batch-dependent top-k sensitivity."
    )
    return result


class _FlatEfficiencyStepModel(StepModel):
    """StepModel variant with a flat (shape-independent) GEMM efficiency."""

    def _component_time(self, cost: ComponentCost, shard: float = 1.0,
                        kv_shard: float = 1.0, dtype: str | None = None) -> float:
        if cost.launches == 0 and cost.flops == 0 and cost.bytes == 0:
            return 0.0
        w_bytes = cost.weight_bytes / shard
        if self.quant.weights.is_quantized:
            w_bytes /= self.hardware.quant_mem_derate
        a_bytes = cost.act_bytes / kv_shard if kv_shard != 1.0 else cost.act_bytes / shard
        kc = KernelCost(
            flops=cost.flops / shard,
            bytes=w_bytes + a_bytes,
            dtype=dtype if dtype is not None else self.quant.compute_dtype_name,
            launches=cost.launches,
        )
        return kernel_time(kc, self.hardware)  # flat max efficiency


@experiment("ablation_efficiency")
def run_efficiency() -> ExperimentResult:
    """Shape-aware GEMM efficiency curve vs flat peak efficiency."""
    result = ExperimentResult(
        exp_id="ablation_efficiency",
        title="Ablation: shape-aware GEMM efficiency vs flat efficiency",
        paper_claim=(
            "(design choice) Small-token GEMMs run far below tensor-core "
            "peak; a flat-efficiency model overstates small-batch compute "
            "throughput."
        ),
    )
    table = ResultTable(
        "prefill time",
        ("batch", "curve_ms", "flat_ms", "flat_understates_pct"),
    )
    plan = ParallelPlan(tp=4)
    curve = StepModel(MIXTRAL_8X7B, H100, plan=plan)
    flat = _FlatEfficiencyStepModel(MIXTRAL_8X7B, H100, plan=plan)
    for batch in (1, 4, 16, 64):
        t_curve = curve.prefill_time(batch, 512)
        t_flat = flat.prefill_time(batch, 512)
        table.add(batch=batch, curve_ms=t_curve * 1e3, flat_ms=t_flat * 1e3,
                  flat_understates_pct=100 * (1 - t_flat / t_curve))
    result.tables.append(table)
    result.observe(
        "The efficiency curve matters most for small batches "
        f"(understatement {table.rows[0]['flat_understates_pct']:.0f}% at "
        f"bs=1 vs {table.rows[-1]['flat_understates_pct']:.0f}% at bs=64)."
    )
    return result


@experiment("ablation_engine")
def run_engine_vs_closed_form() -> ExperimentResult:
    """Discrete-event serving engine vs closed-form phase model."""
    result = ExperimentResult(
        exp_id="ablation_engine",
        title="Ablation: discrete-event engine vs closed-form phase model",
        paper_claim=(
            "(design choice) With no queueing or KV pressure the two must "
            "agree; the engine adds fidelity only under contention."
        ),
    )
    table = ResultTable(
        "agreement",
        ("batch", "io_tokens", "closed_e2e_s", "engine_e2e_s", "delta_pct"),
    )
    model = get_model("OLMoE-1B-7B")
    pm = InferencePerfModel(model, H100)
    for batch, io in ((1, 256), (16, 512), (64, 512)):
        closed = pm.generate(batch, io, io)
        engine_metrics, _ = serve_static_batch(pm, batch, io, io)
        delta = 100 * (engine_metrics.e2e_latency_s / closed.e2e_latency_s - 1)
        table.add(batch=batch, io_tokens=io, closed_e2e_s=closed.e2e_latency_s,
                  engine_e2e_s=engine_metrics.e2e_latency_s, delta_pct=delta)
    result.tables.append(table)
    worst = max(abs(r["delta_pct"]) for r in table)
    result.observe(
        f"Engine and closed form agree within {worst:.1f}% on uncontended "
        "static batches."
    )
    return result


@experiment("ablation_ep_imbalance")
def run_ep_imbalance() -> ExperimentResult:
    """Analytic multinomial-max EP imbalance vs Monte-Carlo simulation."""
    result = ExperimentResult(
        exp_id="ablation_ep_imbalance",
        title="Ablation: analytic EP load-imbalance vs Monte-Carlo routing",
        paper_claim=(
            "(design choice) The EP stall factor uses a closed-form "
            "multinomial-max approximation; it must track simulated routing."
        ),
    )
    table = ResultTable(
        "imbalance factor",
        ("ep", "tokens", "simulated", "analytic", "abs_error"),
    )
    model = get_model("Mixtral-8x7B")
    rng = np.random.default_rng(3)
    for ep in (2, 4, 8):
        for tokens in (16, 64, 256):
            sim, analytic = simulate_ep_imbalance(
                model.moe, ep, tokens, num_trials=64, rng=rng
            )
            table.add(ep=ep, tokens=tokens, simulated=sim, analytic=analytic,
                      abs_error=abs(sim - analytic))
    result.tables.append(table)
    worst = max(r["abs_error"] for r in table)
    result.observe(
        f"Analytic approximation tracks Monte-Carlo within {worst:.2f} "
        "(absolute max/mean units) across EP degrees and token counts."
    )
    return result
