"""Experiment implementations — one module per paper table/figure.

Importing this package registers every experiment with
:mod:`repro.core.registry`.
"""

from repro.experiments import (  # noqa: F401  (imports register experiments)
    ablations,
    extensions,
    fig01_param_breakdown,
    fig03_llm_latency,
    fig04_vlm_latency,
    fig05_batch_topk,
    fig06_batch_seqlen,
    fig07_ffn_scaling,
    fig08_expert_scaling,
    fig09_topk_scaling,
    fig10_quantization,
    fig11_pruning,
    fig12_speculative,
    fig13_parallelism,
    fig14_fused_moe,
    fig15_activation_freq,
    fig16_h100_vs_cs3,
    fig17_llm_frontier,
    fig18_vlm_frontier,
    fleet,
    resilience,
    slo,
    table1_architectures,
    utilization,
)

__all__ = ["common", "hyperparam_grid"]
