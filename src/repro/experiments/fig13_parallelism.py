"""Figure 13: TP / PP / EP parallelism scaling of Mixtral-8x7B and OLMoE."""

from __future__ import annotations

from repro.core.experiment import ExperimentResult
from repro.core.registry import experiment
from repro.core.results import ResultTable
from repro.experiments.common import H100
from repro.models.zoo import get_model
from repro.parallel.plan import ParallelPlan
from repro.perfmodel.inference import InferencePerfModel

MODELS = ("Mixtral-8x7B", "OLMoE-1B-7B")
GPU_COUNTS = (1, 2, 4)
BATCH = 16
IO_TOKENS = 1024

# vLLM's expert-parallel flag acts on the TP group; with TP=1 (pure PP) it
# is a no-op, which is why the paper's "PP w/ EP" and "PP w/o EP" curves
# nearly coincide.
_STRATEGIES: dict[str, dict[int, ParallelPlan]] = {
    "TP": {n: ParallelPlan(tp=n) for n in GPU_COUNTS},
    "TP+EP": {n: ParallelPlan(tp=n, ep=n) for n in GPU_COUNTS},
    "PP": {n: ParallelPlan(pp=n) for n in GPU_COUNTS},
    "PP+EP": {n: ParallelPlan(pp=n) for n in GPU_COUNTS},
}


@experiment("fig13")
def run() -> ExperimentResult:
    result = ExperimentResult(
        exp_id="fig13",
        title="TP / PP / EP scaling on 1-4 H100s",
        paper_claim=(
            "TP without EP scales best (>2x from 1 to 4 GPUs); TP with EP "
            "scales less efficiently; PP (with or without EP) stays almost "
            "flat."
        ),
    )
    table = ResultTable(
        "parallelism scaling",
        ("model", "strategy", "gpus", "throughput_tok_s", "scaling_vs_1gpu"),
    )
    for model_name in MODELS:
        model = get_model(model_name)
        for strategy, plans in _STRATEGIES.items():
            base = None
            for n in GPU_COUNTS:
                plan = plans[n]
                if strategy.endswith("EP") and "TP" in strategy and model.moe:
                    if model.moe.num_experts % n != 0:
                        table.add(model=model_name, strategy=strategy, gpus=n,
                                  throughput_tok_s=None, scaling_vs_1gpu=None)
                        continue
                pm = InferencePerfModel(model, H100, plan=plan)
                thr = pm.generate(BATCH, IO_TOKENS, IO_TOKENS,
                                  check_memory=False).throughput_tok_s
                if base is None:
                    base = thr
                table.add(model=model_name, strategy=strategy, gpus=n,
                          throughput_tok_s=thr, scaling_vs_1gpu=thr / base)
    result.tables.append(table)

    from repro.core.charts import line_chart

    for model_name in MODELS:
        series = {
            s: [(r["gpus"], r["throughput_tok_s"])
                for r in table.where(model=model_name, strategy=s)
                if r["throughput_tok_s"] is not None]
            for s in _STRATEGIES
        }
        result.add_chart(line_chart(
            series, title=f"{model_name}: throughput (tok/s) vs GPUs",
        ))

    for model_name in MODELS:
        scal = {
            s: table.where(model=model_name, strategy=s, gpus=4).rows[0]["scaling_vs_1gpu"]
            for s in _STRATEGIES
        }
        result.observe(
            f"{model_name}: 1->4 GPU scaling — TP {scal['TP']:.2f}x, "
            f"TP+EP {scal['TP+EP']:.2f}x, PP {scal['PP']:.2f}x "
            "(paper: TP >2x, TP+EP lower, PP flat)."
        )
    return result
