"""Figure 10: Mixtral-8x7B under FP16 vs FP8 precision."""

from __future__ import annotations

from repro.core.experiment import ExperimentResult, sweep
from repro.core.registry import experiment
from repro.core.results import ResultTable
from repro.experiments.common import H100
from repro.models.zoo import MIXTRAL_8X7B
from repro.optim.quantization import FP8_CONFIG, FP16_CONFIG
from repro.parallel.plan import ParallelPlan
from repro.perfmodel.inference import InferencePerfModel
from repro.workloads.generator import PAPER_BATCH_SIZES, PAPER_SEQUENCE_LENGTHS

_PLAN = ParallelPlan(tp=4)
_FIXED_IO = 1024
_FIXED_BATCH = 64


def _throughput(quant, batch: int, io_tokens: int) -> float:
    pm = InferencePerfModel(MIXTRAL_8X7B, H100, plan=_PLAN, quant=quant)
    return pm.generate(batch, io_tokens, io_tokens, check_memory=False).throughput_tok_s


@experiment("fig10")
def run() -> ExperimentResult:
    result = ExperimentResult(
        exp_id="fig10",
        title="Mixtral-8x7B: FP16 vs FP8 (batch sweep and length sweep)",
        paper_claim=(
            "FP8 outperforms FP16 everywhere: up to 25-30% at the largest "
            "batch (gap widening with batch), and a stable 20-25% advantage "
            "across sequence lengths."
        ),
    )
    batch_table = ResultTable(
        "batch sweep",
        ("batch", "fp16_tok_s", "fp8_tok_s", "fp8_gain_pct"),
    )

    def batch_point(batch: int) -> dict:
        f16 = _throughput(FP16_CONFIG, batch, _FIXED_IO)
        f8 = _throughput(FP8_CONFIG, batch, _FIXED_IO)
        return {"fp16_tok_s": f16, "fp8_tok_s": f8,
                "fp8_gain_pct": 100 * (f8 / f16 - 1)}

    sweep(batch_table, {"batch": PAPER_BATCH_SIZES}, batch_point)

    len_table = ResultTable(
        "length sweep",
        ("io_tokens", "fp16_tok_s", "fp8_tok_s", "fp8_gain_pct"),
    )

    def len_point(io_tokens: int) -> dict:
        f16 = _throughput(FP16_CONFIG, _FIXED_BATCH, io_tokens)
        f8 = _throughput(FP8_CONFIG, _FIXED_BATCH, io_tokens)
        return {"fp16_tok_s": f16, "fp8_tok_s": f8,
                "fp8_gain_pct": 100 * (f8 / f16 - 1)}

    sweep(len_table, {"io_tokens": PAPER_SEQUENCE_LENGTHS}, len_point)

    result.tables += [batch_table, len_table]

    from repro.core.charts import line_chart

    result.add_chart(line_chart(
        {"fp16": [(r["batch"], r["fp16_tok_s"]) for r in batch_table],
         "fp8": [(r["batch"], r["fp8_tok_s"]) for r in batch_table]},
        title="Mixtral-8x7B throughput (tok/s) vs batch", logx=True,
    ))
    gains = batch_table.column("fp8_gain_pct")
    result.observe(
        f"FP8 gain grows from {gains[0]:.0f}% at bs=1 to {max(gains):.0f}% "
        f"at large batch (paper: up to 25-30%)."
    )
    lg = len_table.column("fp8_gain_pct")
    result.observe(
        f"Across lengths 128-2048 the FP8 gain stays in "
        f"[{min(lg):.0f}%, {max(lg):.0f}%] (paper: stable 20-25%)."
    )
    return result
