"""Figure 6: batch size vs input/output length."""

from __future__ import annotations

from repro.core.experiment import ExperimentResult
from repro.core.registry import experiment
from repro.core.results import ResultTable
from repro.experiments.common import metrics_rows, perf_model
from repro.models.zoo import get_model
from repro.workloads.generator import PAPER_SEQUENCE_LENGTHS

MODELS = ("DeepSeek-V2-Lite", "Qwen1.5-MoE-A2.7B")
BATCHES = (1, 16, 32, 64, 128)


@experiment("fig6")
def run() -> ExperimentResult:
    result = ExperimentResult(
        exp_id="fig6",
        title="Batch size vs input/output length",
        paper_claim=(
            "Throughput rises steeply with batch (>8x from 1 to 128); "
            "shorter sequences outperform longer ones (length 128 up to "
            "~30% above 2048 at large batch); Qwen1.5-MoE exceeds "
            "DeepSeek-V2-Lite by 20-30% across settings."
        ),
    )
    table = ResultTable(
        "throughput",
        ("model", "batch", "io_tokens", "throughput_tok_s", "fits"),
    )

    # one deployment per model; the whole (batch, io_tokens) grid is one
    # vectorized axis, emitted in the original sweep's product order
    for model in MODELS:
        pm = perf_model(get_model(model))
        grid = [(b, io) for b in BATCHES for io in PAPER_SEQUENCE_LENGTHS]
        rows = metrics_rows(pm, [(b, io, io) for b, io in grid])
        for (batch, io_tokens), row in zip(grid, rows):
            table.add(model=model, batch=batch, io_tokens=io_tokens,
                      throughput_tok_s=row["throughput_tok_s"],
                      fits=row["fits"])
    result.tables.append(table)

    from repro.core.charts import line_chart

    for model in MODELS:
        series = {
            f"bs={b}": [(r["io_tokens"], r["throughput_tok_s"])
                        for r in table.where(model=model, batch=b)]
            for b in BATCHES
        }
        result.add_chart(line_chart(
            series, title=f"{model}: throughput (tok/s) vs io length",
            logx=True,
        ))

    for model in MODELS:
        sub = table.where(model=model, batch=128)
        thr = {r["io_tokens"]: r["throughput_tok_s"] for r in sub}
        gap = 100 * (thr[128] / thr[2048] - 1)
        scale = (
            table.where(model=model, batch=128, io_tokens=512).rows[0]["throughput_tok_s"]
            / table.where(model=model, batch=1, io_tokens=512).rows[0]["throughput_tok_s"]
        )
        result.observe(
            f"{model}: length 128 beats 2048 by {gap:.0f}% at bs=128; "
            f"batch 1->128 scaling {scale:.1f}x."
        )
    return result
