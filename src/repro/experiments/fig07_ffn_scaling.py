"""Figure 7: throughput vs FFN dimension (Mixtral skeleton, 4xH100)."""

from __future__ import annotations

from repro.core.experiment import ExperimentResult
from repro.core.registry import experiment
from repro.experiments.hyperparam_grid import FFN_DIMS, TOP_KS, grid_table


@experiment("fig7")
def run() -> ExperimentResult:
    result = ExperimentResult(
        exp_id="fig7",
        title="Throughput vs FFN dimension (batch 16, io 2048, 4xH100)",
        paper_claim=(
            "Throughput declines ~50% on average from FFN 1792 to 14336, "
            "steepest from 1792 to 3584; at FFN 14336 the 1-active vs "
            "8-active gap reaches ~60%."
        ),
    )
    table = grid_table()
    result.tables.append(table)

    feasible = [r for r in table if r["throughput_tok_s"] is not None]
    by_k: dict[int, dict[int, list[float]]] = {}
    for r in feasible:
        by_k.setdefault(r["top_k"], {}).setdefault(r["ffn_dim"], []).append(
            r["throughput_tok_s"]
        )
    drops = []
    for k, by_f in by_k.items():
        if min(FFN_DIMS) in by_f and max(FFN_DIMS) in by_f:
            lo = sum(by_f[min(FFN_DIMS)]) / len(by_f[min(FFN_DIMS)])
            hi = sum(by_f[max(FFN_DIMS)]) / len(by_f[max(FFN_DIMS)])
            drops.append(100 * (1 - hi / lo))
    result.observe(
        f"Average throughput drop FFN 1792->14336: "
        f"{sum(drops) / len(drops):.0f}% (paper: ~50%)."
    )

    at_max = {r["top_k"]: r["throughput_tok_s"]
              for r in table.where(ffn_dim=max(FFN_DIMS), num_experts=8)
              if r["throughput_tok_s"] is not None}
    if min(TOP_KS) in at_max and max(TOP_KS) in at_max:
        gap = 100 * (1 - at_max[max(TOP_KS)] / at_max[min(TOP_KS)])
        result.observe(
            f"At FFN 14336 (8 experts), top-k 1 vs 8 gap: {gap:.0f}% "
            "(paper: ~60%)."
        )
    ooms = sum(1 for r in table if r["oom"])
    result.observe(f"{ooms} of {len(table)} grid points OOM on 4x80GB.")
    return result
