"""Shared helpers for the experiment implementations."""

from __future__ import annotations

from repro.hardware.gpus import H100_SXM
from repro.hardware.spec import HardwareSpec
from repro.models.config import ModelConfig
from repro.models.params import model_params
from repro.optim.quantization import FP16_CONFIG, QuantConfig
from repro.parallel.plan import SINGLE_DEVICE, ParallelPlan
from repro.perfmodel.inference import InferencePerfModel

__all__ = [
    "H100",
    "default_plan",
    "perf_model",
    "metrics_row",
    "PAPER_LLMS",
    "PAPER_VLMS",
]

H100 = H100_SXM

PAPER_LLMS = (
    "Mixtral-8x7B",
    "Qwen1.5-MoE-A2.7B",
    "Qwen3-30B-A3B",
    "DeepSeek-V2-Lite",
    "Phi-3.5-MoE",
    "OLMoE-1B-7B",
)

PAPER_VLMS = ("DeepSeek-VL2-Tiny", "DeepSeek-VL2-Small", "DeepSeek-VL2")


def default_plan(model: ModelConfig, hw: HardwareSpec = H100,
                 quant: QuantConfig = FP16_CONFIG) -> ParallelPlan:
    """Smallest TP degree whose weight shard leaves room for a KV cache.

    Mirrors how the paper deploys each model: single GPU when it fits,
    otherwise tensor parallel across the node.
    """
    total_bytes = model_params(model).total * quant.weight_bytes
    tp = 1
    while tp <= hw.max_devices:
        plan = ParallelPlan(tp=tp)
        try:
            plan.validate_for_model(model)
        except ValueError:
            tp *= 2
            continue
        if total_bytes / tp < 0.65 * hw.memory_bytes:
            return plan
        tp *= 2
    raise ValueError(f"{model.name} does not fit on a {hw.max_devices}x {hw.name} node")


def perf_model(
    model: ModelConfig,
    plan: ParallelPlan | None = None,
    quant: QuantConfig = FP16_CONFIG,
    hw: HardwareSpec = H100,
    fused_moe: bool = True,
) -> InferencePerfModel:
    """Build a perf model with the default deployment plan."""
    if plan is None:
        plan = default_plan(model, hw, quant)
    return InferencePerfModel(model, hw, plan=plan, quant=quant, fused_moe=fused_moe)


def metrics_row(pm: InferencePerfModel, batch: int, in_tok: int, out_tok: int,
                images: int = 0) -> dict[str, float | bool]:
    """Standard metric columns for one workload shape."""
    m = pm.generate(batch, in_tok, out_tok, images_per_sample=images,
                    check_memory=False)
    return {
        "ttft_s": m.ttft_s,
        "itl_ms": m.itl_s * 1e3,
        "e2e_s": m.e2e_latency_s,
        "throughput_tok_s": m.throughput_tok_s,
        "samples_per_s": m.samples_per_s,
        "fits": pm.fits(batch, in_tok + out_tok),
    }
