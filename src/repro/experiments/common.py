"""Shared helpers for the experiment implementations."""

from __future__ import annotations

import os

from repro.core.metrics import GenerationShape, InferenceMetrics
from repro.hardware.gpus import H100_SXM
from repro.hardware.spec import HardwareSpec
from repro.models.config import ModelConfig
from repro.models.params import model_params
from repro.optim.quantization import FP16_CONFIG, QuantConfig
from repro.parallel.plan import SINGLE_DEVICE, ParallelPlan
from repro.perfmodel.inference import _DECODE_SAMPLES, InferencePerfModel
from repro.perfmodel import vectorized as _vec

__all__ = [
    "H100",
    "default_plan",
    "perf_model",
    "metrics_row",
    "metrics_rows",
    "vectorize_enabled",
    "PAPER_LLMS",
    "PAPER_VLMS",
]

H100 = H100_SXM

PAPER_LLMS = (
    "Mixtral-8x7B",
    "Qwen1.5-MoE-A2.7B",
    "Qwen3-30B-A3B",
    "DeepSeek-V2-Lite",
    "Phi-3.5-MoE",
    "OLMoE-1B-7B",
)

PAPER_VLMS = ("DeepSeek-VL2-Tiny", "DeepSeek-VL2-Small", "DeepSeek-VL2")


def default_plan(model: ModelConfig, hw: HardwareSpec = H100,
                 quant: QuantConfig = FP16_CONFIG) -> ParallelPlan:
    """Smallest TP degree whose weight shard leaves room for a KV cache.

    Mirrors how the paper deploys each model: single GPU when it fits,
    otherwise tensor parallel across the node.
    """
    total_bytes = model_params(model).total * quant.weight_bytes
    tp = 1
    while tp <= hw.max_devices:
        plan = ParallelPlan(tp=tp)
        try:
            plan.validate_for_model(model)
        except ValueError:
            tp *= 2
            continue
        if total_bytes / tp < 0.65 * hw.memory_bytes:
            return plan
        tp *= 2
    raise ValueError(f"{model.name} does not fit on a {hw.max_devices}x {hw.name} node")


def perf_model(
    model: ModelConfig,
    plan: ParallelPlan | None = None,
    quant: QuantConfig = FP16_CONFIG,
    hw: HardwareSpec = H100,
    fused_moe: bool = True,
) -> InferencePerfModel:
    """Build a perf model with the default deployment plan."""
    if plan is None:
        plan = default_plan(model, hw, quant)
    return InferencePerfModel(model, hw, plan=plan, quant=quant, fused_moe=fused_moe)


def vectorize_enabled() -> bool:
    """Whether sweeps may use the vectorized fast path.  The escape hatch
    is ``--no-vectorize`` on the CLI (exported as ``REPRO_NO_VECTORIZE``
    so it also reaches parallel-runner workers)."""
    return os.environ.get("REPRO_NO_VECTORIZE", "") in ("", "0")


def _metric_columns(pm: InferencePerfModel, m: InferenceMetrics,
                    batch: int, in_tok: int, out_tok: int) -> dict[str, float | bool]:
    return {
        "ttft_s": m.ttft_s,
        "itl_ms": m.itl_s * 1e3,
        "e2e_s": m.e2e_latency_s,
        "throughput_tok_s": m.throughput_tok_s,
        "samples_per_s": m.samples_per_s,
        "fits": pm.fits(batch, in_tok + out_tok),
    }


def metrics_row(pm: InferencePerfModel, batch: int, in_tok: int, out_tok: int,
                images: int = 0) -> dict[str, float | bool]:
    """Standard metric columns for one workload shape."""
    m = pm.generate(batch, in_tok, out_tok, images_per_sample=images,
                    check_memory=False)
    return _metric_columns(pm, m, batch, in_tok, out_tok)


def metrics_rows(pm: InferencePerfModel, shapes, images: int = 0) -> list[dict[str, float | bool]]:
    """:func:`metrics_row` for an axis of ``(batch, in_tok, out_tok)``
    shapes against one deployment, evaluated as NumPy arrays in one pass.

    Bit-identical to the scalar loop (see :mod:`repro.perfmodel.vectorized`
    for the contract); falls back to it when vectorization is disabled,
    when the step model is a subclass the mirror does not cover, or when
    the perf model is instrumented (the scalar path owns the eval
    counters).
    """
    shapes = [(int(b), int(i), int(o)) for b, i, o in shapes]
    scalar_path = (
        not vectorize_enabled()
        or not _vec.supports(pm.steps)
        or (pm.obs is not None and pm.obs.active)
    )
    if scalar_path:
        return [metrics_row(pm, b, i, o, images=images) for b, i, o in shapes]

    vsm = _vec.VectorizedStepModel(pm.steps)
    ctx0s = [pm._context_tokens(i, images) for _, i, _ in shapes]
    ttfts = vsm.prefill_totals([b for b, _, _ in shapes], ctx0s)
    if images > 0:
        # vision encode is per-point scalar (cheap, batch-dependent only)
        ttfts = [t + pm.steps.vision_encode_time(b * images)
                 for t, (b, _, _) in zip(ttfts, shapes)]

    # decode integrates over sampled checkpoints of the growing context;
    # flatten every (point, checkpoint) pair into one vectorized axis
    flat_b: list[int] = []
    flat_ctx: list[int] = []
    spans: list[tuple[int, int, int] | None] = []
    for (b, _, o), ctx0 in zip(shapes, ctx0s):
        if o <= 1:
            spans.append(None)
            continue
        n_steps = o - 1
        samples = max(2, min(_DECODE_SAMPLES, n_steps))
        spans.append((len(flat_b), samples, n_steps))
        for s in range(samples):
            ctx = ctx0 + 1 + int(round(s * (n_steps - 1) / max(1, samples - 1)))
            flat_b.append(b)
            flat_ctx.append(ctx)
    step_times = vsm.decode_totals(flat_b, flat_ctx) if flat_b else []

    rows = []
    for (b, i, o), ttft, span in zip(shapes, ttfts, spans):
        if span is None:
            decode = 0.0
        else:
            start, samples, n_steps = span
            total = 0.0
            for idx in range(start, start + samples):
                total += step_times[idx]
            decode = total * n_steps / samples
        m = InferenceMetrics(shape=GenerationShape(b, i, o),
                             ttft_s=ttft, e2e_latency_s=ttft + decode)
        rows.append(_metric_columns(pm, m, b, i, o))
    return rows
