"""Table 1: architecture comparison of the MoE model zoo."""

from __future__ import annotations

from repro.core.experiment import ExperimentResult
from repro.core.registry import experiment
from repro.core.results import ResultTable
from repro.models.params import model_params
from repro.models.zoo import LLM_MODELS, VLM_MODELS


@experiment("table1")
def run() -> ExperimentResult:
    result = ExperimentResult(
        exp_id="table1",
        title="Comparison of Mixture of Expert model architectures",
        paper_claim=(
            "Models span 3B-47B total parameters with 1.0B-12.9B active; "
            "e.g. Mixtral-8x7B: 32 layers, 8 experts (2 active), 47B/12.9B."
        ),
    )
    table = ResultTable(
        "architectures",
        (
            "model", "modality", "layers", "hidden", "ffn_dim", "experts",
            "active_experts", "total_params_B", "active_params_B",
            "published_total_B", "published_active_B",
        ),
    )
    models = {**LLM_MODELS, **{k: v for k, v in VLM_MODELS.items() if k != "MolmoE-1B"}}
    for model in models.values():
        pb = model_params(model)
        moe = model.moe
        table.add(
            model=model.name,
            modality=model.modality,
            layers=model.num_layers,
            hidden=model.hidden_size,
            ffn_dim=moe.expert_ffn_dim if moe else model.dense_ffn_dim,
            experts=moe.num_experts if moe else 0,
            active_experts=moe.top_k if moe else 0,
            total_params_B=pb.total / 1e9,
            active_params_B=pb.active / 1e9,
            published_total_B=model.published_total_params / 1e9,
            published_active_B=model.published_active_params / 1e9,
        )
    result.tables.append(table)
    worst = max(
        abs(r["total_params_B"] / r["published_total_B"] - 1.0)
        for r in table if r["published_total_B"]
    )
    result.observe(
        f"Computed totals match published parameter counts within "
        f"{100 * worst:.1f}% across all {len(table)} models."
    )
    return result
