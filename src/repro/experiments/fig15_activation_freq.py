"""Figure 15: expert activation frequency heatmaps on an MME-like stream."""

from __future__ import annotations

import numpy as np

from repro.core.experiment import ExperimentResult
from repro.core.registry import experiment
from repro.core.results import ResultTable
from repro.models.zoo import get_model
from repro.workloads.multimodal import MMEStream, run_activation_study

MODELS = ("DeepSeek-VL2-Tiny", "DeepSeek-VL2-Small", "DeepSeek-VL2", "MolmoE-1B")
_MAX_ROUTED = 60_000


@experiment("fig15")
def run() -> ExperimentResult:
    result = ExperimentResult(
        exp_id="fig15",
        title="Expert activation frequency on the MME task stream",
        paper_claim=(
            "DeepSeek-VL2 family shows relatively uniform activation "
            "(aux-loss-balanced training), peaking around 290K; MolmoE-1B "
            "is sparse/concentrated, with specific experts reaching ~1M "
            "activations."
        ),
    )
    summary = ResultTable(
        "activation summary",
        ("model", "layers", "experts", "peak_activation", "mean_activation",
         "imbalance_max_over_mean", "gini", "normalized_entropy"),
    )
    heat = ResultTable(
        "layer0 heatmap sample",
        ("model", "expert", "count"),
    )
    for name in MODELS:
        model = get_model(name)
        tracker = run_activation_study(
            model, stream=MMEStream(), rng=np.random.default_rng(7),
            max_routed_tokens=_MAX_ROUTED,
        )
        overall = tracker.overall_metrics()
        hm = tracker.heatmap()
        summary.add(
            model=name,
            layers=hm.shape[0],
            experts=hm.shape[1],
            peak_activation=tracker.peak_activation(),
            mean_activation=float(hm.mean()),
            imbalance_max_over_mean=tracker.layer_metrics(0).imbalance,
            gini=overall.gini,
            normalized_entropy=overall.normalized_entropy,
        )
        for e in range(0, hm.shape[1], max(1, hm.shape[1] // 16)):
            heat.add(model=name, expert=e, count=int(hm[0, e]))

        from repro.core.charts import heatmap as render_heatmap

        result.add_chart(render_heatmap(
            hm[: min(8, hm.shape[0])],
            title=f"{name}: activation frequency (first layers x experts)",
        ))
    result.tables += [summary, heat]

    rows = {r["model"]: r for r in summary}
    molmo = rows["MolmoE-1B"]
    deepseek_peaks = [rows[m]["peak_activation"] for m in MODELS if m != "MolmoE-1B"]
    result.observe(
        f"MolmoE-1B peak activation {molmo['peak_activation']:,} vs DeepSeek "
        f"family max {max(deepseek_peaks):,} (paper: ~1M vs ~290K)."
    )
    result.observe(
        f"Gini coefficient: MolmoE {molmo['gini']:.3f} vs DeepSeek family "
        f"{max(rows[m]['gini'] for m in MODELS if m != 'MolmoE-1B'):.3f} — "
        "the balanced aux loss flattens utilisation."
    )
    return result
