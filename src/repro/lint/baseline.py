"""Committed lint baseline: the ``--check`` gate's grandfather list.

``LINT_BASELINE.json`` records the violation keys present when the gate
was last (re-)recorded; ``repro lint --check`` fails only on violations
*not* in the baseline, so a new rule can land before every legacy finding
is fixed — mirroring how ``repro bench --check`` gates fingerprint drift
against its recorded trajectories.  The repo's baseline is kept empty:
every finding the four rule families raised has been fixed or given a
reviewed inline suppression.
"""

from __future__ import annotations

import json
import pathlib
from typing import Iterable

from repro.lint.core import Violation

__all__ = ["BASELINE_NAME", "Baseline"]

BASELINE_NAME = "LINT_BASELINE.json"


class Baseline:
    """Load/diff/write the committed baseline file."""

    def __init__(self, path: pathlib.Path) -> None:
        self.path = path
        self.entries: list[dict] = []
        if path.is_file():
            doc = json.loads(path.read_text())
            self.entries = doc.get("entries", [])

    @classmethod
    def at_root(cls, root: pathlib.Path | str) -> "Baseline":
        return cls(pathlib.Path(root) / BASELINE_NAME)

    @property
    def exists(self) -> bool:
        return self.path.is_file()

    def known_keys(self) -> set[str]:
        return {e["key"] for e in self.entries}

    def diff(self, violations: Iterable[Violation]) -> tuple[list[Violation],
                                                             list[dict]]:
        """(new violations, stale baseline entries)."""
        violations = list(violations)
        known = self.known_keys()
        current = {v.key() for v in violations}
        new = [v for v in violations if v.key() not in known]
        stale = [e for e in self.entries if e["key"] not in current]
        return new, stale

    def write(self, violations: Iterable[Violation]) -> pathlib.Path:
        doc = {
            "version": 1,
            "comment": ("simlint grandfathered findings; re-record with "
                        "`repro lint --update-baseline` (prefer fixing or "
                        "inline-suppressing instead of baselining)"),
            "entries": [
                {"key": v.key(), "rule": v.rule, "path": v.path,
                 "message": v.message}
                for v in sorted(violations,
                                key=lambda v: (v.path, v.line, v.rule))
            ],
        }
        self.path.write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n")
        self.entries = doc["entries"]
        return self.path
