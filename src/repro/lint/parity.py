"""Fast-path parity lints (PAR0xx): scalar ↔ vectorized mirrors.

``repro.perfmodel.vectorized`` re-implements the scalar
:class:`~repro.perfmodel.phases.StepModel` arithmetic operand-for-operand
so sweeps can be priced as arrays while staying bit-identical (the PR-2
fingerprint gate digests ``repr()`` of every float).  That contract is
enforced dynamically by ``tests/test_perfmodel_vectorized.py`` — but only
for the shapes the tests happen to cover.  These rules prove the
*editing* invariant statically: you cannot change one side of a mirrored
cost expression without touching the other.

Two mechanisms per mirrored pair:

* **snapshot parity** (PAR001) — a normalized AST fingerprint of each
  side is recorded in the committed ``LINT_PARITY.json``; if exactly one
  side's fingerprint drifts, someone edited scalar *or* vectorized code
  without its mirror.  If both drift, the edit was paired — re-record
  with ``repro lint --update-parity`` (after the parity tests pass) so
  the manifest follows the code.
* **literal mirroring** (PAR002) — every distinct numeric literal of the
  vectorized side must appear among the scalar side's literals, after
  inlining the scalar cost helpers it delegates to (``qkvo_cost`` et
  al.) and the vectorized private helpers.  A coefficient changed on one
  side only breaks the set immediately, with no recorded state needed
  (multiplicity is deliberately ignored — array code legitimately
  repeats constants across scalar/ndarray branches; the snapshot rule
  owns same-value structural drift).
"""

from __future__ import annotations

import ast
import collections
import dataclasses
import hashlib
import json
import pathlib
from typing import Iterator

from repro.lint.core import LintProject, ProjectRule, Violation, register_rule

__all__ = ["PAIRS", "PairSpec", "function_fingerprint", "literal_multiset",
           "load_manifest", "update_manifest", "SnapshotParityRule",
           "LiteralMirrorRule", "MANIFEST_NAME"]

MANIFEST_NAME = "LINT_PARITY.json"

_SCALAR_PHASES = "src/repro/perfmodel/phases.py"
_SCALAR_FLOPS = "src/repro/perfmodel/flops.py"
_SCALAR_ROOF = "src/repro/hardware/roofline.py"
_SCALAR_ICN = "src/repro/hardware/interconnect.py"
_VECTOR = "src/repro/perfmodel/vectorized.py"
_ENGINE = "src/repro/serving/engine.py"
_FASTPATH = "src/repro/serving/fastpath.py"
_SCHED = "src/repro/serving/scheduler.py"
_KV = "src/repro/serving/kv_cache.py"


@dataclasses.dataclass(frozen=True)
class PairSpec:
    """One mirrored scalar/vectorized pair.

    ``scalar_inline`` / ``vector_inline`` name helper functions whose
    literals are merged into the respective side before the PAR002
    multiset comparison (the scalar side delegates coefficients to
    ``repro.perfmodel.flops``; the vectorized side to its private
    ``_``-helpers).  ``literal_mirror=False`` restricts a pair to
    snapshot parity when its sides legitimately use different constants
    (e.g. input-validation guards with no vectorized counterpart).
    """

    pair_id: str
    scalar: tuple[str, str]  # (repo-relative path, dotted qualname)
    vector: tuple[str, str]
    scalar_inline: tuple[tuple[str, str], ...] = ()
    vector_inline: tuple[tuple[str, str], ...] = ()
    literal_mirror: bool = True


PAIRS: tuple[PairSpec, ...] = (
    PairSpec(
        "attention",
        (_SCALAR_PHASES, "StepModel._attention_time"),
        (_VECTOR, "VectorizedStepModel._attention_time"),
        scalar_inline=((_SCALAR_FLOPS, "qkvo_cost"),
                       (_SCALAR_FLOPS, "attention_core_cost")),
    ),
    PairSpec(
        "moe_ffn",
        (_SCALAR_PHASES, "StepModel._moe_ffn_time"),
        (_VECTOR, "VectorizedStepModel._moe_ffn_time"),
        scalar_inline=((_SCALAR_FLOPS, "router_cost"),
                       (_SCALAR_FLOPS, "routed_experts_cost"),
                       (_SCALAR_FLOPS, "shared_expert_cost"),
                       (_SCALAR_ICN, "all_to_all_time")),
        vector_inline=((_VECTOR, "VectorizedStepModel._routed_experts_time"),
                       (_VECTOR, "VectorizedStepModel._all_to_all")),
    ),
    PairSpec(
        "dense_ffn",
        (_SCALAR_PHASES, "StepModel._dense_ffn_time"),
        (_VECTOR, "VectorizedStepModel._dense_ffn_time"),
        scalar_inline=((_SCALAR_FLOPS, "dense_ffn_cost"),),
    ),
    PairSpec(
        "step_total",
        (_SCALAR_PHASES, "StepModel._compute_step_breakdown"),
        (_VECTOR, "VectorizedStepModel._total"),
        scalar_inline=((_SCALAR_FLOPS, "embedding_cost"),
                       (_SCALAR_FLOPS, "lm_head_cost"),
                       (_SCALAR_ICN, "allreduce_time"),
                       (_SCALAR_ICN, "p2p_time")),
        vector_inline=((_VECTOR, "VectorizedStepModel._allreduce"),
                       (_VECTOR, "VectorizedStepModel._p2p")),
    ),
    PairSpec(
        # the batched and one-point entries into the shared _total core:
        # editing one validation/coercion path without the other silently
        # forks what "the vectorized model" means between the sweep fast
        # path (arrays) and the engine fast path (one-point probes)
        "step_total_entry",
        (_VECTOR, "VectorizedStepModel.step_totals"),
        (_VECTOR, "VectorizedStepModel.step_total_one"),
    ),
    PairSpec(
        "prefill",
        (_SCALAR_PHASES, "StepModel.prefill_time"),
        (_VECTOR, "VectorizedStepModel.prefill_totals"),
    ),
    PairSpec(
        "decode",
        (_SCALAR_PHASES, "StepModel.decode_step_time"),
        (_VECTOR, "VectorizedStepModel.decode_totals"),
    ),
    PairSpec(
        "component_time",
        (_SCALAR_PHASES, "StepModel._component_time"),
        (_VECTOR, "VectorizedStepModel._component_time"),
    ),
    PairSpec(
        "kernel_time",
        (_SCALAR_ROOF, "kernel_time"),
        (_VECTOR, "VectorizedStepModel._kernel_time"),
    ),
    PairSpec(
        "gemm_efficiency",
        (_SCALAR_ROOF, "gemm_efficiency"),
        (_VECTOR, "VectorizedStepModel._gemm_eff"),
        vector_inline=((_VECTOR, "_tile_quant"),),
    ),
    PairSpec(
        "allreduce",
        (_SCALAR_ICN, "allreduce_time"),
        (_VECTOR, "VectorizedStepModel._allreduce"),
    ),
    PairSpec(
        "all_to_all",
        (_SCALAR_ICN, "all_to_all_time"),
        (_VECTOR, "VectorizedStepModel._all_to_all"),
    ),
    PairSpec(
        "p2p",
        (_SCALAR_ICN, "p2p_time"),
        (_VECTOR, "VectorizedStepModel._p2p"),
    ),
    # ---- serving-engine fast path (phase 2): the batched decode window
    # must track the scalar iteration it replays, operand for operand ----
    PairSpec(
        "engine_decode_window",
        (_ENGINE, "ServingEngine.step"),
        (_FASTPATH, "EngineFastPath.decode_window"),
        scalar_inline=((_ENGINE, "ServingEngine._admit_arrivals"),
                       (_ENGINE, "ServingEngine._iteration_cost"),
                       (_SCHED, "Scheduler._schedule_decode"),
                       (_KV, "PagedKVCache.try_append_slot"),
                       (_KV, "PagedKVCache.utilization")),
        vector_inline=((_FASTPATH, "EngineFastPath._window_durations"),
                       (_FASTPATH, "EngineFastPath._plan")),
    ),
    PairSpec(
        "engine_step_total",
        (_ENGINE, "ServingEngine._step_total"),
        (_FASTPATH, "EngineFastPath.step_total"),
        vector_inline=((_FASTPATH, "EngineFastPath._plan"),
                       (_FASTPATH, "EngineFastPath._put")),
    ),
    PairSpec(
        "engine_decode_durations",
        (_ENGINE, "ServingEngine._iteration_cost"),
        (_FASTPATH, "EngineFastPath._window_durations"),
    ),
)


# --------------------------------------------------------------------- #
# AST utilities
# --------------------------------------------------------------------- #


def _function_index(tree: ast.Module) -> dict[str, ast.FunctionDef]:
    """Map dotted qualname (``Class.method`` / ``function``) → def node."""
    index: dict[str, ast.FunctionDef] = {}

    def visit(node: ast.AST, prefix: str) -> None:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                index[f"{prefix}{child.name}"] = child
                visit(child, f"{prefix}{child.name}.")
            elif isinstance(child, ast.ClassDef):
                visit(child, f"{prefix}{child.name}.")

    visit(tree, "")
    return index


def _body_sans_docstring(fn: ast.FunctionDef) -> list[ast.stmt]:
    body = fn.body
    if (body and isinstance(body[0], ast.Expr)
            and isinstance(body[0].value, ast.Constant)
            and isinstance(body[0].value.value, str)):
        body = body[1:]
    return body


def function_fingerprint(fn: ast.FunctionDef) -> str:
    """Normalized structural hash: docstring/decorators out, every
    operand, operator, literal and call in (``ast.dump`` excludes
    line/column attributes, so pure movement does not drift it)."""
    payload = ast.dump(fn.args) + "|" + "|".join(
        ast.dump(stmt) for stmt in _body_sans_docstring(fn))
    return hashlib.sha256(payload.encode()).hexdigest()


def literal_multiset(fn: ast.FunctionDef) -> collections.Counter:
    """Multiset of numeric literals in the function body (docstring
    excluded; bools excluded; ints and floats compare by value, since
    ``2`` and ``2.0`` price identically in float64)."""
    counts: collections.Counter = collections.Counter()
    for stmt in _body_sans_docstring(fn):
        for node in ast.walk(stmt):
            if (isinstance(node, ast.Constant)
                    and isinstance(node.value, (int, float))
                    and not isinstance(node.value, bool)):
                counts[float(node.value)] += 1
    return counts


# --------------------------------------------------------------------- #
# manifest
# --------------------------------------------------------------------- #


def _resolve(project: LintProject, side: tuple[str, str]) -> ast.FunctionDef | None:
    path, qualname = side
    sf = project.file(path)
    if sf is None:
        return None
    return _function_index(sf.tree).get(qualname)


def manifest_path(root: pathlib.Path | str) -> pathlib.Path:
    return pathlib.Path(root) / MANIFEST_NAME


def load_manifest(root: pathlib.Path | str) -> dict | None:
    path = manifest_path(root)
    if not path.is_file():
        return None
    return json.loads(path.read_text())


def current_fingerprints(project: LintProject) -> dict:
    pairs = {}
    for spec in PAIRS:
        entry = {}
        for side_name, side in (("scalar", spec.scalar), ("vector", spec.vector)):
            fn = _resolve(project, side)
            entry[side_name] = {
                "path": side[0],
                "qualname": side[1],
                "sha": function_fingerprint(fn) if fn is not None else None,
            }
        pairs[spec.pair_id] = entry
    return pairs


def update_manifest(root: pathlib.Path | str,
                    project: LintProject | None = None) -> pathlib.Path:
    """(Re-)record the parity snapshot — run after a *paired* edit, once
    ``tests/test_perfmodel_vectorized.py`` passes."""
    root = pathlib.Path(root)
    if project is None:
        project = LintProject(root)
    payload = {
        "version": 1,
        "comment": ("scalar<->vectorized parity snapshot; refresh with "
                    "`repro lint --update-parity` after a paired edit"),
        "pairs": current_fingerprints(project),
    }
    path = manifest_path(root)
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return path


# --------------------------------------------------------------------- #
# rules
# --------------------------------------------------------------------- #


@register_rule
class SnapshotParityRule(ProjectRule):
    id = "PAR001"
    name = "fastpath-snapshot-parity"
    severity = "error"
    description = (
        "a scalar StepModel cost expression and its vectorized mirror "
        "must change together (snapshot recorded in LINT_PARITY.json)"
    )

    def check_project(self, project: LintProject) -> Iterator[Violation]:
        manifest = load_manifest(project.root)
        if manifest is None:
            yield Violation(
                rule=self.id, severity=self.severity, path=MANIFEST_NAME,
                line=1, col=0, snippet="",
                message=("parity manifest missing — record it with "
                         "`repro lint --update-parity`"))
            return
        recorded = manifest.get("pairs", {})
        current = current_fingerprints(project)
        for spec in PAIRS:
            cur = current[spec.pair_id]
            for side_name in ("scalar", "vector"):
                side = cur[side_name]
                if side["sha"] is None:
                    yield Violation(
                        rule=self.id, severity=self.severity,
                        path=side["path"], line=1, col=0,
                        snippet=f"{spec.pair_id}:{side_name}:missing",
                        message=(f"parity pair {spec.pair_id!r}: "
                                 f"{side['qualname']} not found — renamed? "
                                 f"update repro.lint.parity.PAIRS and "
                                 f"re-record with --update-parity"))
            rec = recorded.get(spec.pair_id)
            if rec is None:
                yield Violation(
                    rule=self.id, severity=self.severity, path=MANIFEST_NAME,
                    line=1, col=0, snippet=f"{spec.pair_id}:unrecorded",
                    message=(f"pair {spec.pair_id!r} has no recorded "
                             f"snapshot — run `repro lint --update-parity`"))
                continue
            drifted = [s for s in ("scalar", "vector")
                       if cur[s]["sha"] is not None
                       and rec.get(s, {}).get("sha") != cur[s]["sha"]]
            if len(drifted) == 1:
                side = drifted[0]
                other = "vector" if side == "scalar" else "scalar"
                yield Violation(
                    rule=self.id, severity=self.severity,
                    path=cur[side]["path"], line=1, col=0,
                    snippet=f"{spec.pair_id}:{side}:one-sided",
                    message=(
                        f"one-sided fast-path edit: {cur[side]['qualname']} "
                        f"changed but its {other} mirror "
                        f"{cur[other]['qualname']} did not — the vectorized "
                        f"sweep path must stay operand-for-operand identical "
                        f"to the scalar model (mirror the edit, run "
                        f"`pytest tests/test_perfmodel_vectorized.py`, then "
                        f"`repro lint --update-parity`)"))
            elif len(drifted) == 2:
                yield Violation(
                    rule=self.id, severity=self.severity,
                    path=cur["scalar"]["path"], line=1, col=0,
                    snippet=f"{spec.pair_id}:paired",
                    message=(
                        f"paired fast-path edit to {spec.pair_id!r} — "
                        f"confirm bit parity (pytest "
                        f"tests/test_perfmodel_vectorized.py && repro bench "
                        f"--check) and re-record the snapshot with "
                        f"`repro lint --update-parity`"))


@register_rule
class LiteralMirrorRule(ProjectRule):
    id = "PAR002"
    name = "fastpath-literal-mirror"
    severity = "error"
    description = (
        "every numeric coefficient in a vectorized cost expression must "
        "appear in its scalar counterpart (helpers inlined)"
    )

    def check_project(self, project: LintProject) -> Iterator[Violation]:
        for spec in PAIRS:
            if not spec.literal_mirror:
                continue
            scalar_fn = _resolve(project, spec.scalar)
            vector_fn = _resolve(project, spec.vector)
            if scalar_fn is None or vector_fn is None:
                continue  # PAR001 reports the missing side
            scalar_lits = literal_multiset(scalar_fn)
            for side in spec.scalar_inline:
                fn = _resolve(project, side)
                if fn is not None:
                    scalar_lits += literal_multiset(fn)
            vector_lits = literal_multiset(vector_fn)
            for side in spec.vector_inline:
                fn = _resolve(project, side)
                if fn is not None:
                    vector_lits += literal_multiset(fn)
            missing = sorted(set(vector_lits) - set(scalar_lits))
            if missing:
                detail = ", ".join(f"{v:g}" for v in missing)
                yield Violation(
                    rule=self.id, severity=self.severity,
                    path=spec.vector[0],
                    line=vector_fn.lineno, col=vector_fn.col_offset,
                    snippet=f"{spec.pair_id}:literals:{detail}",
                    message=(
                        f"pair {spec.pair_id!r}: vectorized side uses "
                        f"coefficient(s) [{detail}] absent from the scalar "
                        f"side ({spec.scalar[1]} + inlined helpers) — a "
                        f"one-sided coefficient edit breaks bit parity"))
