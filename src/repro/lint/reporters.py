"""Violation reporters: reviewer-facing text and machine-readable JSON."""

from __future__ import annotations

import collections
import json
from typing import Iterable

from repro.lint.core import Violation, all_rules

__all__ = ["render_text", "render_json", "JSON_SCHEMA_VERSION"]

JSON_SCHEMA_VERSION = 1


def _summary(violations: list[Violation]) -> dict:
    by_rule: dict[str, int] = collections.Counter(v.rule for v in violations)
    by_severity: dict[str, int] = collections.Counter(
        v.severity for v in violations)
    return {
        "total": len(violations),
        "by_rule": dict(sorted(by_rule.items())),
        "by_severity": dict(sorted(by_severity.items())),
    }


def render_text(violations: Iterable[Violation],
                new_keys: set[str] | None = None) -> str:
    """One line per violation; ``new_keys`` (from a baseline diff) marks
    which findings are new since the committed baseline."""
    violations = list(violations)
    if not violations:
        return "simlint: clean — 0 violations"
    lines = []
    for v in violations:
        tag = ""
        if new_keys is not None:
            tag = " [NEW]" if v.key() in new_keys else " [baselined]"
        lines.append(v.format() + tag)
    s = _summary(violations)
    sev = ", ".join(f"{n} {k}" for k, n in sorted(s["by_severity"].items()))
    lines.append(f"simlint: {s['total']} violation(s) ({sev}) across "
                 f"{len(s['by_rule'])} rule(s)")
    return "\n".join(lines)


def render_json(violations: Iterable[Violation],
                new_keys: set[str] | None = None) -> str:
    """Stable JSON document (schema asserted by tests/test_lint_engine)."""
    violations = list(violations)
    doc = {
        "version": JSON_SCHEMA_VERSION,
        "violations": [
            {
                "rule": v.rule,
                "severity": v.severity,
                "path": v.path,
                "line": v.line,
                "end_line": v.end_line,
                "col": v.col,
                "message": v.message,
                "key": v.key(),
                **({"new": v.key() in new_keys} if new_keys is not None else {}),
            }
            for v in violations
        ],
        "summary": _summary(violations),
    }
    return json.dumps(doc, indent=2, sort_keys=True) + "\n"


def render_rule_catalog() -> str:
    """``--list-rules`` output: the rule catalog as a markdown table."""
    lines = ["| id | name | severity | description |", "|---|---|---|---|"]
    for rule in all_rules():
        lines.append(f"| {rule.id} | {rule.name} | {rule.severity} | "
                     f"{rule.description} |")
    return "\n".join(lines)
