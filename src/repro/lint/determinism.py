"""Determinism lints (DET0xx).

The whole reproduction is gated on bit-identical replays (fingerprint
baselines, chaos ``--smoke``), which only holds if simulated results never
observe the host: no wall clocks, no unseeded RNG, no hash-order
iteration.  The *wall channel* — the span tracer's wall clock, the
regression store's timestamps/overhead probe, and the parallel runner's
scheduling — is explicitly allowed to read the host; everything else in
``repro`` must not.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.core import (
    Rule,
    SourceFile,
    Violation,
    dotted_name,
    import_aliases,
    register_rule,
    resolve_call,
)

__all__ = ["WallClockRule", "UnseededRngRule", "SetIterationRule",
           "iter_wall_hits", "iter_rng_hits", "iter_set_order_hits"]

#: the wall channel + runner: code whose *job* is to observe the host.
#: Everything here is excluded from sim-determinism checks by design —
#: wall readings feed only the fingerprint ``wall`` section, never tables.
WALL_CHANNEL = (
    "src/repro/obs/trace.py",     # wall_span reads perf_counter
    "src/repro/obs/regress.py",   # recorded_at stamps + overhead probe
    "src/repro/runner.py",        # worker scheduling off recorded runtimes
    "src/repro/core/experiment.py",  # runtime_s stamping (wall channel)
)

_WALL_CALLS = {
    "time.time", "time.time_ns", "time.monotonic", "time.monotonic_ns",
    "time.perf_counter", "time.perf_counter_ns", "time.process_time",
    "time.process_time_ns",
    "datetime.datetime.now", "datetime.datetime.utcnow",
    "datetime.datetime.today", "datetime.date.today",
}

# the numpy legacy global RNG: seeded process-wide, order-dependent —
# banned outright in favour of explicit `np.random.default_rng(seed)`
_NP_LEGACY = {
    "seed", "rand", "randn", "randint", "random", "random_sample", "choice",
    "shuffle", "permutation", "normal", "uniform", "poisson", "exponential",
    "binomial", "standard_normal", "bytes", "sample", "ranf", "get_state",
    "set_state",
}

_STDLIB_RANDOM_FNS = {
    "random", "randint", "randrange", "uniform", "choice", "choices",
    "shuffle", "sample", "gauss", "normalvariate", "expovariate",
    "betavariate", "seed", "getrandbits", "triangular", "paretovariate",
}


def iter_wall_hits(tree: ast.AST,
                   aliases: dict[str, str]) -> Iterator[tuple[ast.Call, str]]:
    """(call node, resolved name) for every wall-clock read in ``tree``.

    Shared between DET001 (local rule) and the interprocedural taint
    summarizer (:mod:`repro.lint.flow.summary`), so both see exactly the
    same sources.
    """
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        name = resolve_call(node, aliases)
        if name in _WALL_CALLS:
            yield node, name


def iter_rng_hits(tree: ast.AST,
                  aliases: dict[str, str]) -> Iterator[tuple[ast.Call, str]]:
    """(call node, resolved name) for every unseeded / process-global RNG
    use in ``tree`` (shared with the flow summarizer like DET001)."""
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        name = resolve_call(node, aliases)
        if name is None:
            continue
        if name in ("numpy.random.default_rng", "random.Random"):
            if not node.args and not node.keywords:
                yield node, name
            continue
        if name.startswith("numpy.random."):
            if name.rsplit(".", 1)[1] in _NP_LEGACY:
                yield node, name
            continue
        if name.startswith("random."):
            if name.rsplit(".", 1)[1] in _STDLIB_RANDOM_FNS:
                yield node, name


@register_rule
class WallClockRule(Rule):
    id = "DET001"
    name = "wall-clock-read"
    severity = "error"
    description = (
        "wall-clock call outside the wall channel: simulated results must "
        "never observe host time (breaks bit-identical fingerprints)"
    )
    include = ("src/repro",)
    exclude = WALL_CHANNEL

    def check(self, sf: SourceFile) -> Iterator[Violation]:
        aliases = import_aliases(sf.tree)
        for node, name in iter_wall_hits(sf.tree, aliases):
            yield sf.violation(
                self, node,
                f"{name}() reads the host clock; simulated code must "
                f"use the simulated clock (wall channel is allowlisted: "
                f"obs.trace / obs.regress / runner / core.experiment)",
            )


@register_rule
class UnseededRngRule(Rule):
    id = "DET002"
    name = "unseeded-rng"
    severity = "error"
    description = (
        "unseeded or process-global RNG: every random stream must be an "
        "explicitly seeded np.random.default_rng / random.Random"
    )
    include = ("src/repro",)

    def check(self, sf: SourceFile) -> Iterator[Violation]:
        aliases = import_aliases(sf.tree)
        for node, name in iter_rng_hits(sf.tree, aliases):
            if name in ("numpy.random.default_rng", "random.Random"):
                yield sf.violation(
                    self, node,
                    f"{name}() without a seed draws entropy from the "
                    f"host; pass an explicit seed",
                )
            elif name.startswith("numpy.random."):
                yield sf.violation(
                    self, node,
                    f"{name}() uses the process-global legacy RNG; use "
                    f"an explicitly seeded np.random.default_rng(seed)",
                )
            else:
                yield sf.violation(
                    self, node,
                    f"{name}() uses the process-global stdlib RNG; use "
                    f"an explicitly seeded random.Random(seed) instance",
                )


_MATERIALIZERS = {"list", "tuple", "enumerate", "iter"}


def _set_typed_names(tree: ast.AST) -> set[str]:
    """Names assigned a set display / set() call anywhere in the file
    (coarse but effective: one namespace, no reassignment tracking)."""
    names: set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Assign) and _is_set_expr(node.value):
            for tgt in node.targets:
                if isinstance(tgt, ast.Name):
                    names.add(tgt.id)
        elif (isinstance(node, ast.AnnAssign)
              and isinstance(node.target, ast.Name)):
            ann = node.annotation
            base = ann.value if isinstance(ann, ast.Subscript) else ann
            if isinstance(base, ast.Name) and base.id in ("set", "frozenset"):
                names.add(node.target.id)
    return names


def _is_set_expr(node: ast.AST) -> bool:
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        fname = dotted_name(node.func)
        return fname in ("set", "frozenset")
    return False


def iter_set_order_hits(tree: ast.AST) -> Iterator[tuple[ast.AST, str]]:
    """(node, description) for every hash-order set iteration in ``tree``
    (shared between DET003 and the flow summarizer)."""
    set_names = _set_typed_names(tree)

    def flag(iter_node: ast.AST) -> Iterator[tuple[ast.AST, str]]:
        if _is_set_expr(iter_node):
            yield iter_node, "set iteration"
        elif (isinstance(iter_node, ast.Name)
              and iter_node.id in set_names):
            yield iter_node, f"iteration over set-typed {iter_node.id!r}"

    for node in ast.walk(tree):
        if isinstance(node, ast.For):
            yield from flag(node.iter)
        elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp,
                               ast.GeneratorExp)):
            for gen in node.generators:
                yield from flag(gen.iter)
        elif isinstance(node, ast.Call):
            fname = dotted_name(node.func)
            if fname in _MATERIALIZERS and node.args:
                yield from flag(node.args[0])


@register_rule
class SetIterationRule(Rule):
    id = "DET003"
    name = "set-iteration"
    severity = "error"
    description = (
        "iteration over a set: element order depends on hash seeding and "
        "insertion history — sort first (sorted(...)) before iterating"
    )
    include = ("src/repro",)

    def check(self, sf: SourceFile) -> Iterator[Violation]:
        for node, detail in iter_set_order_hits(sf.tree):
            if detail == "set iteration":
                yield sf.violation(
                    self, node,
                    "iterating a set: order is hash/insertion dependent; "
                    "wrap in sorted(...) to fix the order",
                )
            else:
                yield sf.violation(
                    self, node,
                    f"iterating set-typed name {node.id!r}: order is "
                    f"hash/insertion dependent; wrap in sorted(...)",
                )
