"""``repro lint`` — run the static invariants gate from the CLI.

Exit codes: 0 clean (or all findings baselined under ``--check``); 1 when
violations (or, with ``--check``, *new* violations) exist; 2 on usage
errors.  See ``docs/lint.md`` for the rule catalog.
"""

from __future__ import annotations

import argparse
import pathlib
import sys

from repro.lint.baseline import Baseline
from repro.lint.core import LintProject, run_lint, select_rules
from repro.lint.flow import engine as flow_engine
from repro.lint.flow.graph import to_dot, to_json_doc
from repro.lint.parity import update_manifest
from repro.lint.reporters import render_json, render_rule_catalog, render_text

__all__ = ["add_lint_parser", "cmd_lint"]

#: severities that gate (notices inform but never fail a run)
_GATING = ("warning", "error")


def add_lint_parser(sub: "argparse._SubParsersAction") -> None:
    p = sub.add_parser(
        "lint",
        help="statically prove the simulator's invariants "
             "(determinism, units, fast-path parity, registry drift)",
    )
    p.add_argument("--root", default=".",
                   help="repository root (default: current directory)")
    p.add_argument("--rules",
                   help="comma-separated rule ids or prefixes "
                        "(e.g. DET,UNIT001,PAR); default: all")
    p.add_argument("--check", action="store_true",
                   help="gate mode: fail only on violations not in the "
                        "committed baseline (LINT_BASELINE.json)")
    p.add_argument("--json", action="store_true",
                   help="machine-readable JSON report instead of text")
    p.add_argument("--out", help="write the report to a file")
    p.add_argument("--baseline",
                   help="baseline file (default: <root>/LINT_BASELINE.json)")
    p.add_argument("--update-baseline", action="store_true",
                   help="re-record the baseline from the current findings")
    p.add_argument("--update-parity", action="store_true",
                   help="re-record the scalar<->vectorized parity snapshot "
                        "(LINT_PARITY.json) after a verified paired edit")
    p.add_argument("--list-rules", action="store_true",
                   help="print the rule catalog and exit")
    p.add_argument("--graph", action="store_true",
                   help="export the interprocedural call graph (taint "
                        "paths highlighted) instead of a violation report")
    p.add_argument("--graph-format", choices=("dot", "json"), default="dot",
                   help="call-graph export format (default: dot)")
    p.add_argument("--no-cache", action="store_true",
                   help="ignore and do not write the incremental flow "
                        "cache (.lint_cache/); results are identical, "
                        "only slower")
    p.set_defaults(func=cmd_lint)


def cmd_lint(args: argparse.Namespace) -> int:
    if args.list_rules:
        print(render_rule_catalog())
        return 0
    root = pathlib.Path(args.root)
    if not (root / "src" / "repro").is_dir():
        print(f"lint: {root} does not look like the repo root "
              f"(no src/repro)", file=sys.stderr)
        return 2
    flow_engine.configure(cache=not args.no_cache)

    if args.graph:
        from repro.lint.flow.taint import taint_report
        project = LintProject(root)
        program = flow_engine.program_for(project)
        taint = taint_report(program, project)
        text = (to_dot(program, taint) if args.graph_format == "dot"
                else to_json_doc(program, taint))
        if args.out:
            out = pathlib.Path(args.out)
            out.parent.mkdir(parents=True, exist_ok=True)
            out.write_text(text)
            print(f"wrote {out} ({program.stats['functions']} functions, "
                  f"{program.stats['edges']} edges, "
                  f"{len(taint.findings)} taint path(s))")
        else:
            print(text, end="")
        return 0

    if args.update_parity:
        path = update_manifest(root)
        print(f"[recorded] parity snapshot -> {path}")
        if not (args.check or args.update_baseline):
            return 0

    try:
        rules = select_rules(args.rules)
    except KeyError as exc:
        print(f"lint: {exc}", file=sys.stderr)
        return 2

    project = LintProject(root)
    violations = run_lint(root, rules=rules, project=project)
    gating = [v for v in violations if v.severity in _GATING]

    baseline = Baseline(pathlib.Path(args.baseline)) if args.baseline \
        else Baseline.at_root(root)
    if args.update_baseline:
        path = baseline.write(gating)
        print(f"[recorded] {len(gating)} finding(s) -> {path}")
        return 0

    new_keys: set[str] | None = None
    if args.check:
        new, stale = baseline.diff(gating)
        new_keys = {v.key() for v in new}

    text = render_json(violations, new_keys) if args.json \
        else render_text(violations, new_keys)
    if args.out:
        out = pathlib.Path(args.out)
        out.parent.mkdir(parents=True, exist_ok=True)
        out.write_text(text if text.endswith("\n") else text + "\n")
        print(f"wrote {out}")
    else:
        print(text)

    if args.check:
        if stale:
            print(f"[hint] {len(stale)} baselined finding(s) no longer "
                  f"occur — re-record with `repro lint --update-baseline` "
                  f"to tighten the gate", file=sys.stderr)
        if new_keys:
            print(f"[FAIL] {len(new_keys)} new violation(s) vs the "
                  f"committed baseline", file=sys.stderr)
            return 1
        return 0
    return 1 if gating else 0
