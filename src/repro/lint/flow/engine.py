"""Flow-engine front door: build (or reuse) the whole-program view.

``program_for(project)`` is what the DET1xx / UNIT1xx / PAR1xx rules
call: it hashes every source file, loads unchanged summaries from the
on-disk cache, extracts the rest, and assembles the
:class:`~repro.lint.flow.graph.Program`.  Programs are memoized
in-process on ``(root, file-hash vector)`` so the three rule families —
and repeated ``run_lint`` calls in one process — share one build.

Cache policy: enabled by default, disabled by ``configure(cache=False)``
(the CLI's ``--no-cache``) or the ``REPRO_LINT_NO_CACHE`` environment
variable.  Disabling the cache never changes results — only speed — and
cache hits/misses are recorded in ``program.stats`` so tests and the CI
log can prove a warm run was actually warm.
"""

from __future__ import annotations

import hashlib
import os
import pathlib

from repro.lint.core import LintProject
from repro.lint.flow.cache import FlowCache
from repro.lint.flow.graph import Program
from repro.lint.flow.summary import FileSummary, summarize_source

__all__ = ["configure", "program_for", "file_sha"]

_CONFIG = {"cache": True, "cache_path": None}

#: in-process memo: (resolved root, hash vector) -> Program
_MEMO: dict[tuple, Program] = {}
_MEMO_LIMIT = 8


def configure(cache: bool = True,
              cache_path: pathlib.Path | str | None = None) -> None:
    """Set cache behavior for subsequent :func:`program_for` calls."""
    _CONFIG["cache"] = cache
    _CONFIG["cache_path"] = (
        pathlib.Path(cache_path) if cache_path is not None else None)


def _cache_enabled() -> bool:
    if os.environ.get("REPRO_LINT_NO_CACHE"):
        return False
    return bool(_CONFIG["cache"])


def file_sha(text: str) -> str:
    return hashlib.sha256(text.encode()).hexdigest()


def program_for(project: LintProject) -> Program:
    """The resolved whole-program view of ``project`` (memoized)."""
    shas = {sf.rel: file_sha(sf.text) for sf in project.files}
    key = (str(pathlib.Path(project.root).resolve()),
           tuple(sorted(shas.items())))
    cached = _MEMO.get(key)
    if cached is not None:
        return cached

    disk = None
    if _cache_enabled():
        disk = FlowCache(project.root, path=_CONFIG["cache_path"])
    summaries: dict[str, FileSummary] = {}
    hits = misses = 0
    for sf in project.files:
        summary = disk.get(sf.rel, shas[sf.rel]) if disk is not None else None
        if summary is not None:
            hits += 1
        else:
            summary = summarize_source(sf, shas[sf.rel])
            misses += 1
        summaries[sf.rel] = summary
    if disk is not None and misses:
        disk.store(summaries)

    program = Program(summaries)
    program.stats["cache_hits"] = hits
    program.stats["cache_misses"] = misses
    if len(_MEMO) >= _MEMO_LIMIT:
        _MEMO.clear()
    _MEMO[key] = program
    return program
