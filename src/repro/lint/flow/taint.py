"""Interprocedural determinism taint (DET1xx).

The local DET001-003 rules flag a wall-clock read, unseeded RNG, or
set-order iteration *where it happens*.  They are blind to laundering: a
helper in another module can read the host clock and hand the value up a
call chain into a digest without any single function looking wrong.
These rules close that hole over the call graph:

* **sources** — the same three nondeterminism patterns DET001-003
  detect, found per-function by the summarizer;
* **roots** — digest-bearing entry points whose transitive callees feed
  bit-identical artifacts: every ``@experiment``-registered function
  (its tables are fingerprinted), the serving engine and its event log
  (chaos/fleet digests replay them), the fleet simulator and digest
  helpers, and chaos replay itself;
* **sanitizers** — the declared wall-channel modules (``obs.trace``,
  ``obs.regress``, ``runner``, ``core.experiment``): their wall readings
  feed only the fingerprint ``wall`` section, so taint neither
  originates in nor propagates through them.

A function is tainted when it contains a source or calls a tainted
function; a tainted root is a violation, reported at the source line
with the full root→source call chain so the laundering path is visible.
Suppressions on the source line (for the DET1xx id or its local DET00x
twin) are honored — an accepted local exception stays accepted
interprocedurally.
"""

from __future__ import annotations

import dataclasses
from typing import Iterator

from repro.lint.core import LintProject, ProjectRule, Violation, register_rule
from repro.lint.determinism import WALL_CHANNEL
from repro.lint.flow.engine import program_for
from repro.lint.flow.graph import Program
from repro.lint.flow.summary import module_name_for

__all__ = ["TaintReport", "TaintFinding", "taint_report", "DIGEST_ROOTS",
           "SANITIZER_MODULES", "WallTaintRule", "RngTaintRule",
           "SetOrderTaintRule"]

#: wall-channel modules: sources inside them are by-design, and taint
#: does not propagate through calls into them
SANITIZER_MODULES: tuple[str, ...] = tuple(
    sorted(module_name_for(rel) for rel in WALL_CHANNEL))

#: fq-prefixes of digest-bearing entry points (trailing dot = namespace)
DIGEST_ROOTS: tuple[str, ...] = (
    "repro.obs.fingerprint.",
    "repro.serving.events.EventLog.",
    "repro.serving.engine.ServingEngine.",
    "repro.fleet.simulator.FleetSimulator.",
    "repro.fleet.invariants.",
    "repro.faults.harness.",
)

#: taint kind -> (flow rule id, local twin whose suppressions carry over)
KIND_RULES = {
    "wall": ("DET101", "DET001"),
    "rng": ("DET102", "DET002"),
    "set-order": ("DET103", "DET003"),
}


@dataclasses.dataclass(frozen=True)
class TaintFinding:
    rule: str
    kind: str
    chain: tuple[str, ...]  # root fq ... source fq
    source_path: str
    source_line: int
    source_end_line: int
    detail: str
    extra_roots: int  # other digest roots reaching the same source


@dataclasses.dataclass
class TaintReport:
    roots: list[str]
    #: kind -> tainted fq -> next hop toward the source (None at source)
    tainted: dict[str, dict[str, str | None]]
    findings: list[TaintFinding]


def _is_sanitized(fq: str) -> bool:
    return any(fq == m or fq.startswith(m + ".") for m in SANITIZER_MODULES)


def _is_root(fq: str, program: Program) -> bool:
    if any(fq.startswith(p) for p in DIGEST_ROOTS):
        return True
    fn = program.functions[fq]
    return any(d == "experiment" or d.endswith(".experiment")
               for d in fn.decorators)


def taint_report(program: Program,
                 project: LintProject) -> TaintReport:
    """Run (or reuse) the taint pass for ``program``."""
    cached = getattr(program, "_taint_report", None)
    if cached is not None:
        return cached

    callers = program.callers_of()
    roots = sorted(fq for fq in program.functions if _is_root(fq, program))

    tainted_by_kind: dict[str, dict[str, str | None]] = {}
    findings: list[TaintFinding] = []

    for kind, (rule_id, local_id) in sorted(KIND_RULES.items()):
        # 1. own-source functions (sanitizers and suppressed hits out)
        own: dict[str, object] = {}
        for fq in sorted(program.functions):
            if _is_sanitized(fq):
                continue
            fn = program.functions[fq]
            rel = program.function_files[fq]
            sf = project.file(rel)
            hits = []
            for hit in fn.sources:
                if hit.kind != kind:
                    continue
                if sf is not None and (
                        sf.suppressed(rule_id, hit.line, hit.end_line)
                        or sf.suppressed(local_id, hit.line, hit.end_line)):
                    continue
                hits.append(hit)
            if hits:
                own[fq] = min(hits, key=lambda h: (h.line, h.detail))

        # 2. multi-source BFS over the reverse call graph
        next_hop: dict[str, str | None] = {fq: None for fq in sorted(own)}
        frontier = sorted(own)
        while frontier:
            nxt: list[str] = []
            for callee in frontier:
                for caller, _site in callers.get(callee, []):
                    if caller in next_hop or _is_sanitized(caller):
                        continue
                    next_hop[caller] = callee
                    nxt.append(caller)
            frontier = sorted(set(nxt))
        tainted_by_kind[kind] = next_hop

        # 3. tainted digest roots -> findings, one per source function
        by_source: dict[str, list[str]] = {}
        for root in roots:
            if root in next_hop:
                cur: str | None = root
                while next_hop.get(cur) is not None:
                    cur = next_hop[cur]
                by_source.setdefault(cur, []).append(root)
        for source_fq in sorted(by_source):
            reached = by_source[source_fq]
            root = min(reached, key=lambda r: (_chain_len(r, next_hop), r))
            chain = _chain(root, next_hop)
            hit = own[source_fq]
            findings.append(TaintFinding(
                rule=rule_id, kind=kind, chain=chain,
                source_path=program.function_files[source_fq],
                source_line=hit.line, source_end_line=hit.end_line,
                detail=hit.detail, extra_roots=len(reached) - 1))

    report = TaintReport(roots=roots, tainted=tainted_by_kind,
                         findings=sorted(
                             findings,
                             key=lambda f: (f.rule, f.source_path,
                                            f.source_line, f.chain)))
    program._taint_report = report
    return report


def _chain(root: str, next_hop: dict[str, str | None]) -> tuple[str, ...]:
    chain = [root]
    while next_hop.get(chain[-1]) is not None:
        chain.append(next_hop[chain[-1]])
    return tuple(chain)


def _chain_len(root: str, next_hop: dict[str, str | None]) -> int:
    return len(_chain(root, next_hop))


_KIND_WHAT = {
    "wall": "a wall-clock read",
    "rng": "unseeded/process-global RNG",
    "set-order": "hash-order set iteration",
}


class _TaintRule(ProjectRule):
    kind = ""

    def check_project(self, project: LintProject) -> Iterator[Violation]:
        program = program_for(project)
        report = taint_report(program, project)
        for f in report.findings:
            if f.rule != self.id:
                continue
            chain = " -> ".join(f.chain)
            extra = (f" (+{f.extra_roots} more digest root(s))"
                     if f.extra_roots else "")
            sf = project.file(f.source_path)
            yield Violation(
                rule=self.id, severity=self.severity, path=f.source_path,
                line=f.source_line, col=0, end_line=f.source_end_line,
                snippet=sf.snippet(f.source_line) if sf else f.detail,
                message=(
                    f"{_KIND_WHAT[self.kind]} ({f.detail}) reaches the "
                    f"digest-bearing path {f.chain[0]}: call chain "
                    f"{chain}{extra} — results fed to fingerprints/digests "
                    f"must be deterministic; thread a simulated clock or "
                    f"seeded RNG through the chain, or move the read into "
                    f"the wall channel"))


@register_rule
class WallTaintRule(_TaintRule):
    id = "DET101"
    name = "wall-clock-taint"
    kind = "wall"
    severity = "error"
    description = (
        "a wall-clock read (possibly laundered through helper calls in "
        "other modules) is reachable from a digest-bearing entry point — "
        "the full source→sink call chain is reported"
    )


@register_rule
class RngTaintRule(_TaintRule):
    id = "DET102"
    name = "rng-taint"
    kind = "rng"
    severity = "error"
    description = (
        "unseeded or process-global RNG is reachable from a digest-"
        "bearing entry point through the call graph"
    )


@register_rule
class SetOrderTaintRule(_TaintRule):
    id = "DET103"
    name = "set-order-taint"
    kind = "set-order"
    severity = "error"
    description = (
        "hash-order set iteration is reachable from a digest-bearing "
        "entry point through the call graph"
    )
