"""Auto-discovered parity coverage (PAR1xx).

PAR001/PAR002 police the pairs someone *remembered to register* in
``repro.lint.parity.PAIRS``.  The coverage gap is the pair nobody
registered: a new vectorized mirror lands in ``perfmodel.vectorized`` or
``serving.fastpath``, prices sweeps immediately, and drifts from its
scalar twin with no fingerprint watching.  These rules close the gap by
*discovering* mirror candidates instead of trusting the manifest:

* every function on the vectorized side (``vectorized.py`` /
  ``fastpath.py``) is reduced to a **mirror key** — lowercase, leading
  underscores stripped, bookkeeping suffixes (``_time``, ``_totals``,
  ``_cost``, ``_eff``...) dropped — and matched against the scalar
  surface (``phases`` / ``flops`` / ``roofline`` / ``interconnect`` /
  ``engine`` / ``scheduler`` / ``kv_cache``) by key;
* a vectorized function whose key has a scalar twin but no committed
  ``PairSpec`` is a PAR101 error (register the pair or allowlist it);
* a vectorized function with neither twin nor coverage nor allowlist
  entry is a PAR102 error — new fast-path code cannot land unwatched.

``PARITY_IGNORE`` is the explicit, reasoned allowlist for vectorized
helpers that genuinely have no scalar mirror (array plumbing, feature
probes).  Dunders are skipped — construction is not a cost expression.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.core import LintProject, ProjectRule, Violation, register_rule
from repro.lint.parity import PAIRS, _function_index

__all__ = ["PARITY_IGNORE", "VECTOR_FILES", "SCALAR_FILES", "mirror_key",
           "covered_functions", "discover", "UnregisteredMirrorRule",
           "UnwatchedVectorRule"]

VECTOR_FILES = (
    "src/repro/perfmodel/vectorized.py",
    "src/repro/serving/fastpath.py",
)

SCALAR_FILES = (
    "src/repro/perfmodel/phases.py",
    "src/repro/perfmodel/flops.py",
    "src/repro/hardware/roofline.py",
    "src/repro/hardware/interconnect.py",
    "src/repro/serving/engine.py",
    "src/repro/serving/scheduler.py",
    "src/repro/serving/kv_cache.py",
)

#: (path, qualname) -> why this vectorized function has no scalar mirror
PARITY_IGNORE: dict[tuple[str, str], str] = {
    ("src/repro/perfmodel/vectorized.py", "supports"):
        "capability probe — answers 'can this sweep vectorize', no cost",
    ("src/repro/perfmodel/vectorized.py", "_zeros"):
        "array-allocation shim over the optional numpy backend",
    ("src/repro/perfmodel/vectorized.py", "_maximum"):
        "elementwise-max shim; scalar code uses builtin max directly",
    ("src/repro/perfmodel/vectorized.py", "_minimum"):
        "elementwise-min shim; scalar code uses builtin min directly",
    ("src/repro/perfmodel/vectorized.py", "_map"):
        "broadcast helper for applying a scalar fn across lanes",
    ("src/repro/perfmodel/vectorized.py", "VectorizedStepModel._link"):
        "dispatch table over _allreduce/_all_to_all/_p2p, each mirrored",
    ("src/repro/serving/fastpath.py", "engine_vectorize_enabled"):
        "feature flag probe — no arithmetic to mirror",
}

#: trailing name tokens that are bookkeeping, not identity
_DROP_TOKENS = frozenset({
    "time", "times", "totals", "total", "one", "step", "eff", "efficiency",
    "cost", "costs", "durations", "duration", "breakdown",
})


def mirror_key(qualname: str) -> str:
    """Reduce a function name to its mirror identity: ``kernel_time``,
    ``_kernel_time`` and ``kernel_cost`` all map to ``kernel``."""
    base = qualname.rsplit(".", 1)[-1].lower().lstrip("_")
    tokens = [t for t in base.split("_") if t]
    while len(tokens) > 1 and tokens[-1] in _DROP_TOKENS:
        tokens.pop()
    return "".join(tokens)


def covered_functions() -> set[tuple[str, str]]:
    """Every (path, qualname) a committed PairSpec fingerprints."""
    covered: set[tuple[str, str]] = set()
    for spec in PAIRS:
        covered.add(spec.scalar)
        covered.add(spec.vector)
        covered.update(spec.scalar_inline)
        covered.update(spec.vector_inline)
    return covered


def _is_dunder(qualname: str) -> bool:
    name = qualname.rsplit(".", 1)[-1]
    return name.startswith("__") and name.endswith("__")


def _surface(project: LintProject,
             paths: tuple[str, ...]) -> list[tuple[str, str, ast.FunctionDef]]:
    out: list[tuple[str, str, ast.FunctionDef]] = []
    for path in paths:
        sf = project.file(path)
        if sf is None:
            continue
        for qualname, fn in sorted(_function_index(sf.tree).items()):
            out.append((path, qualname, fn))
    return out


def discover(project: LintProject) -> list[dict]:
    """Coverage verdict for every vectorized-side function.

    Each entry: ``{"path", "qualname", "line", "status", "twins"}`` with
    status one of ``covered`` / ``ignored`` / ``unregistered`` (twin
    exists, no PairSpec) / ``unwatched`` (no twin at all).
    """
    covered = covered_functions()
    scalar_by_key: dict[str, list[tuple[str, str]]] = {}
    for path, qualname, _fn in _surface(project, SCALAR_FILES):
        if not _is_dunder(qualname):
            scalar_by_key.setdefault(mirror_key(qualname), []).append(
                (path, qualname))

    out: list[dict] = []
    for path, qualname, fn in _surface(project, VECTOR_FILES):
        if _is_dunder(qualname):
            continue
        entry = {"path": path, "qualname": qualname, "line": fn.lineno,
                 "twins": []}
        if (path, qualname) in covered:
            entry["status"] = "covered"
        elif (path, qualname) in PARITY_IGNORE:
            entry["status"] = "ignored"
        else:
            twins = scalar_by_key.get(mirror_key(qualname), [])
            entry["twins"] = twins
            entry["status"] = "unregistered" if twins else "unwatched"
        out.append(entry)
    return out


@register_rule
class UnregisteredMirrorRule(ProjectRule):
    id = "PAR101"
    name = "unregistered-mirror"
    severity = "error"
    description = (
        "a vectorized-side function has a scalar twin (matched by mirror "
        "key) but no committed PairSpec — its fingerprint pair is not "
        "being watched by PAR001/PAR002"
    )

    def check_project(self, project: LintProject) -> Iterator[Violation]:
        for entry in discover(project):
            if entry["status"] != "unregistered":
                continue
            sf = project.file(entry["path"])
            twins = ", ".join(q for _p, q in entry["twins"])
            yield Violation(
                rule=self.id, severity=self.severity, path=entry["path"],
                line=entry["line"], col=0,
                snippet=sf.snippet(entry["line"]) if sf else entry["qualname"],
                message=(
                    f"{entry['qualname']} mirrors scalar {twins} (same "
                    f"mirror key) but no PairSpec fingerprints the pair — "
                    f"add it to repro.lint.parity.PAIRS and run "
                    f"`repro lint --update-parity`, or record why it has "
                    f"no mirror in PARITY_IGNORE"))


@register_rule
class UnwatchedVectorRule(ProjectRule):
    id = "PAR102"
    name = "unwatched-vector-function"
    severity = "error"
    description = (
        "a vectorized-side function has no scalar twin, no PairSpec "
        "coverage, and no PARITY_IGNORE entry — fast-path code cannot "
        "land unwatched"
    )

    def check_project(self, project: LintProject) -> Iterator[Violation]:
        for entry in discover(project):
            if entry["status"] != "unwatched":
                continue
            sf = project.file(entry["path"])
            yield Violation(
                rule=self.id, severity=self.severity, path=entry["path"],
                line=entry["line"], col=0,
                snippet=sf.snippet(entry["line"]) if sf else entry["qualname"],
                message=(
                    f"{entry['qualname']} is new fast-path surface with no "
                    f"scalar twin and no parity coverage — register a "
                    f"PairSpec against its scalar counterpart, or add a "
                    f"reasoned PARITY_IGNORE entry"))
