"""Whole-program symbol table and call graph over the file summaries.

Resolution is module-level and deliberately conservative — an edge is
only added when the callee can be named statically:

* bare names → nested def of the caller, then module-level symbols,
  then import aliases;
* ``self.x`` / ``cls.x`` → methods of the enclosing class, searched
  through project-local base classes, or instance attributes whose type
  was pinned by a ``self.attr = ClassName(...)`` store;
* ``alias.x`` → the aliased module's symbols (``from repro.hardware
  import roofline; roofline.kernel_time``);
* ``var.x`` → the class a local ``var = ClassName(...)`` constructed;
* ``ClassName(...)`` → ``ClassName.__init__``.

Anything else stays unresolved (recorded for graph stats, never guessed
at).  Under-approximating edges means the taint pass can miss exotic
flows but never invents one — the right polarity for a CI gate.
"""

from __future__ import annotations

import json
from typing import Iterator

from repro.lint.flow.summary import (
    MODULE_FN,
    CallSite,
    FileSummary,
    FunctionSummary,
)

__all__ = ["Program", "ResolvedCall", "to_dot", "to_json_doc"]


class ResolvedCall:
    """One call edge: the syntactic site plus its resolved callee."""

    __slots__ = ("site", "callee")

    def __init__(self, site: CallSite, callee: str) -> None:
        self.site = site
        self.callee = callee  # fully-qualified function id


class Program:
    """The resolved whole-program view the analyses consume."""

    def __init__(self, files: dict[str, FileSummary]) -> None:
        self.files = files
        #: fq function id ("repro.mod.Cls.method") -> summary
        self.functions: dict[str, FunctionSummary] = {}
        #: fq function id -> repo-relative path of its file
        self.function_files: dict[str, str] = {}
        #: fq class id -> {"bases": [fq...], "attr_types": {...},
        #:                  "methods": {name: fq fn}}
        self.classes: dict[str, dict] = {}
        #: dotted module name -> FileSummary
        self.modules: dict[str, FileSummary] = {}
        #: caller fq -> resolved call edges (callee fq, site)
        self.edges: dict[str, list[ResolvedCall]] = {}
        #: caller fq -> raw callee names that did not resolve
        self.unresolved: dict[str, list[str]] = {}
        self.stats: dict[str, int] = {}
        self._build()

    # ----------------------------------------------------------------- #
    # construction
    # ----------------------------------------------------------------- #

    def _build(self) -> None:
        for fs in self.files.values():
            self.modules[fs.module] = fs
            for fn in fs.functions:
                if fn.qualname == MODULE_FN:
                    fq = f"{fs.module}.{MODULE_FN}"
                else:
                    fq = f"{fs.module}.{fn.qualname}"
                self.functions[fq] = fn
                self.function_files[fq] = fs.rel
        for fs in self.files.values():
            for cname, info in fs.classes.items():
                fq_cls = f"{fs.module}.{cname}"
                methods = {
                    fn.qualname.split(".", 1)[1]: f"{fs.module}.{fn.qualname}"
                    for fn in fs.functions
                    if fn.class_name == cname
                    and fn.qualname.startswith(f"{cname}.")
                    and fn.qualname.count(".") == 1
                }
                self.classes[fq_cls] = {
                    "bases": [], "attr_types": {}, "methods": methods,
                }
        # second pass (all classes registered): resolve bases + attr types
        for fs in self.files.values():
            for cname, info in fs.classes.items():
                fq_cls = f"{fs.module}.{cname}"
                self.classes[fq_cls]["bases"] = [
                    b for b in (self._entity(raw, fs, None)
                                for raw in info["bases"])
                    if b is not None and b[0] == "class"]
                resolved_attrs = {}
                for attr, raw in sorted(info["attr_types"].items()):
                    ent = self._entity(raw, fs, None)
                    if ent is not None and ent[0] == "class":
                        resolved_attrs[attr] = ent[1]
                self.classes[fq_cls]["attr_types"] = resolved_attrs
        for fq, fn in sorted(self.functions.items()):
            fs = self.modules[self._module_of(fq, fn)]
            edges: list[ResolvedCall] = []
            misses: list[str] = []
            for site in fn.calls:
                callee = self.resolve_call(site.callee, fn, fs)
                if callee is not None:
                    edges.append(ResolvedCall(site, callee))
                else:
                    misses.append(site.callee)
            if edges:
                self.edges[fq] = edges
            if misses:
                self.unresolved[fq] = misses
        self.stats["functions"] = len(self.functions)
        self.stats["edges"] = sum(len(e) for e in self.edges.values())
        self.stats["unresolved"] = sum(
            len(m) for m in self.unresolved.values())

    def _module_of(self, fq: str, fn: FunctionSummary) -> str:
        suffix = f".{fn.qualname}"
        if fq.endswith(suffix):
            return fq[: -len(suffix)]
        return fq

    # ----------------------------------------------------------------- #
    # name resolution
    # ----------------------------------------------------------------- #

    def _entity(self, dotted: str, fs: FileSummary,
                caller: FunctionSummary | None) -> tuple[str, str] | None:
        """Resolve a dotted name to ("function"|"class"|"module", fq id)."""
        parts = dotted.split(".")
        head, rest = parts[0], parts[1:]
        ent = self._head_entity(head, fs, caller)
        if ent is None:
            return None
        for attr in rest:
            ent = self._attr_of(ent, attr)
            if ent is None:
                return None
        return ent

    def _head_entity(self, head: str, fs: FileSummary,
                     caller: FunctionSummary | None) -> tuple[str, str] | None:
        if caller is not None:
            if head in ("self", "cls") and caller.class_name:
                return ("class", f"{fs.module}.{caller.class_name}")
            # nested def of this very function
            nested = f"{fs.module}.{caller.qualname}.{head}"
            if nested in self.functions:
                return ("function", nested)
            if head in caller.var_types:
                ent = self._entity(caller.var_types[head], fs, None)
                if ent is not None and ent[0] == "class":
                    return ent
                return None
        local_cls = f"{fs.module}.{head}"
        if head in fs.classes:
            return ("class", local_cls)
        if local_cls in self.functions:
            return ("function", local_cls)
        target = fs.aliases.get(head)
        if target is None:
            return None
        if target in self.modules:
            return ("module", target)
        if target in self.classes:
            return ("class", target)
        if target in self.functions:
            return ("function", target)
        # alias of a module imported as "import repro.fleet" exposes the
        # package root; submodule attributes resolve through _attr_of
        if any(m == target or m.startswith(target + ".")
               for m in self.modules):
            return ("module", target)
        return None

    def _attr_of(self, ent: tuple[str, str],
                 attr: str) -> tuple[str, str] | None:
        kind, fq = ent
        if kind == "module":
            sub = f"{fq}.{attr}"
            if sub in self.classes:
                return ("class", sub)
            if sub in self.functions:
                return ("function", sub)
            if sub in self.modules or any(
                    m.startswith(sub + ".") for m in self.modules):
                return ("module", sub)
            return None
        if kind == "class":
            seen: set[str] = set()
            stack = [fq]
            while stack:
                cls = stack.pop(0)
                if cls in seen or cls not in self.classes:
                    continue
                seen.add(cls)
                info = self.classes[cls]
                if attr in info["methods"]:
                    return ("function", info["methods"][attr])
                if attr in info["attr_types"]:
                    return ("class", info["attr_types"][attr])
                stack.extend(b[1] for b in info["bases"])
            return None
        return None  # attribute of a function result: opaque

    def resolve_call(self, raw: str, caller: FunctionSummary,
                     fs: FileSummary) -> str | None:
        """Fully-qualified callee of a raw call expression, or None."""
        ent = self._entity(raw, fs, caller)
        if ent is None:
            return None
        kind, fq = ent
        if kind == "function":
            return fq
        if kind == "class":
            init = self._attr_of(ent, "__init__")
            if init is not None:
                return init[1]
        return None

    # ----------------------------------------------------------------- #
    # queries
    # ----------------------------------------------------------------- #

    def callers_of(self) -> dict[str, list[tuple[str, CallSite]]]:
        """Reverse adjacency: callee fq -> [(caller fq, site)]."""
        rev: dict[str, list[tuple[str, CallSite]]] = {}
        for caller, edges in sorted(self.edges.items()):
            for e in edges:
                rev.setdefault(e.callee, []).append((caller, e.site))
        return rev

    def functions_in(self, rel: str) -> Iterator[tuple[str, FunctionSummary]]:
        for fq, fn in sorted(self.functions.items()):
            if self.function_files.get(fq) == rel:
                yield fq, fn


# --------------------------------------------------------------------- #
# export
# --------------------------------------------------------------------- #


def _node_sets(taint) -> tuple[set[str], set[str], set[tuple[str, str]]]:
    """(tainted fns, digest roots, edges on reported taint paths)."""
    tainted: set[str] = set()
    roots: set[str] = set()
    path_edges: set[tuple[str, str]] = set()
    if taint is None:
        return tainted, roots, path_edges
    roots |= set(taint.roots)
    for kind in sorted(taint.tainted):
        tainted |= set(taint.tainted[kind])
    for finding in taint.findings:
        chain = finding.chain
        for a, b in zip(chain, chain[1:]):
            path_edges.add((a, b))
    return tainted, roots, path_edges


def to_dot(program: Program, taint=None) -> str:
    """Graphviz DOT export; tainted nodes red, digest roots boxed, edges
    on a reported source→sink chain bold red."""
    tainted, roots, path_edges = _node_sets(taint)
    lines = ["digraph simlint_flow {", '  rankdir="LR";',
             '  node [fontsize=9, shape=ellipse];']
    for fq in sorted(program.functions):
        attrs = []
        if fq in roots:
            attrs.append('shape=box')
        if fq in tainted:
            attrs.append('color=red, fontcolor=red')
        lines.append(f'  "{fq}"' + (f" [{', '.join(attrs)}]" if attrs else "")
                     + ";")
    for caller in sorted(program.edges):
        for e in program.edges[caller]:
            attr = ""
            if (caller, e.callee) in path_edges:
                attr = ' [color=red, penwidth=2.0]'
            lines.append(f'  "{caller}" -> "{e.callee}"{attr};')
    lines.append("}")
    return "\n".join(lines) + "\n"


def to_json_doc(program: Program, taint=None) -> str:
    """Deterministic JSON export of the graph and taint annotations."""
    tainted, roots, path_edges = _node_sets(taint)
    doc = {
        "version": 1,
        # cache hit/miss counters are run-local, not graph structure —
        # the export must be byte-identical across cold and warm runs
        "stats": {k: v for k, v in sorted(program.stats.items())
                  if not k.startswith("cache_")},
        "nodes": [
            {
                "id": fq,
                "path": program.function_files.get(fq, ""),
                "line": program.functions[fq].line,
                "root": fq in roots,
                "tainted": fq in tainted,
            }
            for fq in sorted(program.functions)
        ],
        "edges": [
            {
                "caller": caller,
                "callee": e.callee,
                "line": e.site.line,
                "on_taint_path": (caller, e.callee) in path_edges,
            }
            for caller in sorted(program.edges)
            for e in sorted(program.edges[caller],
                            key=lambda e: (e.callee, e.site.line))
        ],
        "taint_paths": [] if taint is None else [
            {"rule": f.rule, "kind": f.kind, "chain": list(f.chain),
             "source": {"path": f.source_path, "line": f.source_line,
                        "detail": f.detail}}
            for f in taint.findings
        ],
    }
    return json.dumps(doc, indent=2, sort_keys=True) + "\n"
