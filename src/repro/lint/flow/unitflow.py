"""Interprocedural unit inference (UNIT1xx).

The local UNIT rules check arithmetic inside one expression.  These
rules lift the same suffix-derived unit lattice to function boundaries:

* a function's **parameter units** come from its parameter names
  (``latency_s``, ``hbm_bytes``);
* its **return unit** is inferred from its return statements — local
  unit expressions first, then transitively through ``return f(...)``
  delegation, falling back to the callee's own name suffix;
* call sites check argument units against the callee's parameter units
  (UNIT101), arithmetic that mixes a call result with a known-united
  operand checks the callee's inferred return unit (UNIT102), and a
  function whose name promises one unit but whose returns infer another
  is flagged at its definition (UNIT103).

Inference is conservative: a unit is only compared when both sides are
known, delegation cycles resolve to "unknown", and functions with
conflicting return units contribute nothing rather than guessing.  The
rules run where the lattice is dense enough to be signal rather than
noise — calls whose caller or callee lives in ``repro.perfmodel`` or
``repro.hardware``, the roofline arithmetic the suffix convention was
built for.
"""

from __future__ import annotations

from typing import Iterator

from repro.lint.core import LintProject, ProjectRule, Violation, register_rule
from repro.lint.flow.engine import program_for
from repro.lint.flow.graph import Program

__all__ = ["UnitFlow", "unit_flow", "ArgUnitRule", "MixUnitRule",
           "ReturnUnitRule", "SCOPE_PREFIXES"]

#: module prefixes where the suffix-unit convention is load-bearing
SCOPE_PREFIXES = ("repro.perfmodel", "repro.hardware")


def _in_scope(fq: str) -> bool:
    return any(fq == p or fq.startswith(p + ".") for p in SCOPE_PREFIXES)


class UnitFlow:
    """Interprocedural return-unit inference over a :class:`Program`."""

    def __init__(self, program: Program) -> None:
        self.program = program
        self._memo: dict[str, str | None] = {}

    def inferred_return_unit(self, fq: str) -> str | None:
        """Unit of ``fq``'s returns, through ``return f(...)`` delegation.

        ``None`` when nothing is known *or* the returns conflict — a
        conservative lattice top that silences downstream checks.
        """
        return self._infer(fq, frozenset())

    def effective_return_unit(self, fq: str) -> str | None:
        """Inferred return unit, else the promise in the name suffix."""
        unit = self.inferred_return_unit(fq)
        if unit is not None:
            return unit
        fn = self.program.functions.get(fq)
        return fn.name_unit if fn is not None else None

    def _infer(self, fq: str, stack: frozenset[str]) -> str | None:
        if fq in self._memo:
            return self._memo[fq]
        if fq in stack:
            return None  # recursion: unknowable without a fixpoint
        fn = self.program.functions.get(fq)
        if fn is None:
            return None
        units = set(fn.return_units)
        fs = self.program.files.get(self.program.function_files[fq])
        for rc in fn.return_calls:
            callee = self.program.resolve_call(rc.callee, fn, fs)
            if callee is None:
                continue  # unknown callee adds no evidence
            unit = self._infer(callee, stack | {fq})
            if unit is None:
                unit = self.program.functions[callee].name_unit
            if unit is not None:
                units.add(unit)
        out = units.pop() if len(units) == 1 else None
        self._memo[fq] = out
        return out


def unit_flow(program: Program) -> UnitFlow:
    cached = getattr(program, "_unit_flow", None)
    if cached is None:
        cached = UnitFlow(program)
        program._unit_flow = cached
    return cached


def _violation(rule, project: LintProject, rel: str, line: int,
               end_line: int, message: str) -> Violation:
    sf = project.file(rel)
    return Violation(rule=rule.id, severity=rule.severity, path=rel,
                     line=line, col=0, end_line=end_line,
                     snippet=sf.snippet(line) if sf else "",
                     message=message)


@register_rule
class ArgUnitRule(ProjectRule):
    id = "UNIT101"
    name = "arg-unit-mismatch"
    severity = "error"
    description = (
        "a call passes an argument whose inferred unit contradicts the "
        "unit the callee's parameter name declares (checked across "
        "module boundaries via the call graph)"
    )

    def check_project(self, project: LintProject) -> Iterator[Violation]:
        program = program_for(project)
        for caller in sorted(program.edges):
            rel = program.function_files[caller]
            for e in program.edges[caller]:
                callee_fn = program.functions[e.callee]
                if not (_in_scope(caller) or _in_scope(e.callee)):
                    continue
                pairs = []
                for idx, unit in e.site.arg_units:
                    if idx < len(callee_fn.params):
                        pairs.append((callee_fn.params[idx], unit))
                for name, unit in e.site.kwarg_units:
                    pairs.append((name, unit))
                for pname, unit in pairs:
                    declared = callee_fn.param_units.get(pname)
                    if declared is None or declared == unit:
                        continue
                    yield _violation(
                        self, project, rel, e.site.line, e.site.end_line,
                        f"argument '{pname}' of {e.callee} declares unit "
                        f"'{declared}' but the value passed here infers "
                        f"to '{unit}' — convert at the call site or "
                        f"rename the parameter")


@register_rule
class MixUnitRule(ProjectRule):
    id = "UNIT102"
    name = "return-unit-mix"
    severity = "error"
    description = (
        "arithmetic mixes a call's result with a value of a different "
        "unit; the call's unit is inferred interprocedurally from the "
        "callee's return statements and name suffix"
    )

    def check_project(self, project: LintProject) -> Iterator[Violation]:
        program = program_for(project)
        flow = unit_flow(program)
        for fq in sorted(program.functions):
            fn = program.functions[fq]
            if not fn.mixes:
                continue
            rel = program.function_files[fq]
            fs = program.files.get(rel)
            for mix in fn.mixes:
                callee = program.resolve_call(mix.callee, fn, fs)
                if callee is None:
                    continue
                if not (_in_scope(fq) or _in_scope(callee)):
                    continue
                unit = flow.effective_return_unit(callee)
                if unit is None or unit == mix.other_unit:
                    continue
                yield _violation(
                    self, project, rel, mix.line, mix.end_line,
                    f"result of {callee} carries unit '{unit}' "
                    f"(inferred from its returns) but is combined with "
                    f"a '{mix.other_unit}' value — same-unit operands "
                    f"only for +/-/comparison")


@register_rule
class ReturnUnitRule(ProjectRule):
    id = "UNIT103"
    name = "return-unit-vs-name"
    severity = "error"
    description = (
        "a function's name suffix promises one unit but its return "
        "statements (followed through delegation) infer another"
    )

    def check_project(self, project: LintProject) -> Iterator[Violation]:
        program = program_for(project)
        flow = unit_flow(program)
        for fq in sorted(program.functions):
            if not _in_scope(fq):
                continue
            fn = program.functions[fq]
            if fn.name_unit is None:
                continue
            inferred = flow.inferred_return_unit(fq)
            if inferred is None or inferred == fn.name_unit:
                continue
            rel = program.function_files[fq]
            yield _violation(
                self, project, rel, fn.line, fn.line,
                f"{fq} is named as '{fn.name_unit}' but its returns "
                f"infer to '{inferred}' — rename the function or fix "
                f"the returned expression")
