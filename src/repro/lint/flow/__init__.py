"""repro.lint.flow — whole-program interprocedural analysis.

Where the PR-5 rule families pattern-match inside one function, this
package builds a project-wide **symbol table** and **call graph** over
``src/repro`` (resolving ``self.method``, imported names, instance-attr
and local-variable receiver types, and registry indirections like
``@experiment``), then runs three analyses on it:

* **DET1xx determinism taint** (:mod:`repro.lint.flow.taint`) —
  wall-clock reads, unseeded RNG and set-order iteration are *sources*;
  digest-bearing entry points (experiment fingerprints, the serving
  engine's event log, fleet digests, chaos replay) are *roots*; taint
  propagates through calls, with the declared wall-channel modules as
  sanitizers.  A source laundered through any number of helper calls is
  reported with its full root→source call chain.
* **UNIT1xx interprocedural units** (:mod:`repro.lint.flow.unitflow`) —
  the suffix unit lattice of ``repro.lint.units`` lifted to function
  signatures and returns, so units are checked at call boundaries
  (argument vs parameter suffix, returned unit vs use-site arithmetic)
  instead of going silent at the first call.
* **PAR1xx parity coverage** (:mod:`repro.lint.flow.coverage`) —
  scalar↔vectorized mirror candidates are auto-discovered by name
  heuristics over the fast-path modules, and every candidate must be
  registered in ``repro.lint.parity.PAIRS`` (and therefore fingerprinted
  in ``LINT_PARITY.json``) or explicitly allowlisted — the manifest is
  exhaustiveness-checked, not honor-system.

Per-file summaries are cached on each file's SHA-256
(:mod:`repro.lint.flow.cache`), so a warm re-lint skips extraction for
unchanged files; ``repro lint --graph`` exports the call graph (DOT or
JSON) with taint paths highlighted.
"""

from repro.lint.flow.engine import program_for
from repro.lint.flow.graph import Program

__all__ = ["Program", "program_for"]
