"""Per-file extraction for the flow analyses.

One :class:`FileSummary` per source file holds everything the
interprocedural passes need — functions with their call sites,
determinism sources, unit facts and receiver-type hints — in plain
JSON-serializable form, so summaries round-trip through the SHA-keyed
incremental cache (:mod:`repro.lint.flow.cache`) and a warm run never
re-walks an unchanged file's AST.

Attribution is span-based: every call / source / return found in the
tree belongs to the innermost enclosing function (by line span), and
module-level code is attributed to the pseudo-function ``<module>``.
"""

from __future__ import annotations

import ast
import dataclasses
from typing import Any, Iterator

from repro.lint.core import SourceFile, dotted_name, import_aliases
from repro.lint.determinism import (
    iter_rng_hits,
    iter_set_order_hits,
    iter_wall_hits,
)
from repro.lint.units import UnitEnv, infer_unit, name_unit

__all__ = ["CallSite", "SourceHit", "UnitMix", "ReturnCall",
           "FunctionSummary", "FileSummary", "module_name_for",
           "summarize_source", "SUMMARY_VERSION"]

SUMMARY_VERSION = 1

MODULE_FN = "<module>"


def module_name_for(rel: str) -> str:
    """Dotted module name of a repo-relative source path:
    ``src/repro/serving/engine.py`` → ``repro.serving.engine``."""
    parts = rel.split("/")
    if parts and parts[0] == "src":
        parts = parts[1:]
    if parts and parts[-1].endswith(".py"):
        parts[-1] = parts[-1][: -len(".py")]
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(parts)


def _asdict_list(items) -> list:
    return [dataclasses.asdict(i) for i in items]


@dataclasses.dataclass
class CallSite:
    """One syntactic call: the raw dotted callee expression plus the
    locally inferable units of its arguments."""

    callee: str  # raw dotted expr: "self._plan", "kernel_time", "np.log"
    line: int
    end_line: int
    arg_units: list = dataclasses.field(default_factory=list)    # [idx, unit]
    kwarg_units: list = dataclasses.field(default_factory=list)  # [name, unit]


@dataclasses.dataclass
class SourceHit:
    """One determinism source (wall / rng / set-order) inside a function."""

    kind: str  # "wall" | "rng" | "set-order"
    detail: str
    line: int
    end_line: int


@dataclasses.dataclass
class UnitMix:
    """A call result combined (+, -, comparison) with a value of known
    unit while the call itself has no locally inferable unit — the
    callee's interprocedural return unit decides whether this mixes."""

    callee: str
    other_unit: str
    line: int
    end_line: int


@dataclasses.dataclass
class ReturnCall:
    """``return f(...)`` where the call has no locally inferable unit —
    the function's return unit flows from ``f``'s."""

    callee: str
    line: int
    end_line: int


@dataclasses.dataclass
class FunctionSummary:
    qualname: str            # dotted within the module: "Cls.method"
    line: int = 0
    end_line: int = 0
    params: list = dataclasses.field(default_factory=list)
    param_units: dict = dataclasses.field(default_factory=dict)
    name_unit: str | None = None
    return_units: list = dataclasses.field(default_factory=list)
    return_calls: list = dataclasses.field(default_factory=list)
    calls: list = dataclasses.field(default_factory=list)
    mixes: list = dataclasses.field(default_factory=list)
    sources: list = dataclasses.field(default_factory=list)
    decorators: list = dataclasses.field(default_factory=list)
    class_name: str | None = None
    var_types: dict = dataclasses.field(default_factory=dict)

    def to_dict(self) -> dict[str, Any]:
        d = dataclasses.asdict(self)
        d["calls"] = _asdict_list(self.calls)
        d["mixes"] = _asdict_list(self.mixes)
        d["sources"] = _asdict_list(self.sources)
        d["return_calls"] = _asdict_list(self.return_calls)
        return d

    @classmethod
    def from_dict(cls, d: dict[str, Any]) -> "FunctionSummary":
        d = dict(d)
        d["calls"] = [CallSite(**c) for c in d.get("calls", [])]
        d["mixes"] = [UnitMix(**m) for m in d.get("mixes", [])]
        d["sources"] = [SourceHit(**s) for s in d.get("sources", [])]
        d["return_calls"] = [ReturnCall(**r) for r in d.get("return_calls", [])]
        return cls(**d)


@dataclasses.dataclass
class FileSummary:
    rel: str
    module: str
    sha: str
    aliases: dict = dataclasses.field(default_factory=dict)
    functions: list = dataclasses.field(default_factory=list)
    # class name -> {"bases": [raw names], "attr_types": {attr: raw name}}
    classes: dict = dataclasses.field(default_factory=dict)

    def to_dict(self) -> dict[str, Any]:
        return {
            "version": SUMMARY_VERSION,
            "rel": self.rel,
            "module": self.module,
            "sha": self.sha,
            "aliases": self.aliases,
            "functions": [f.to_dict() for f in self.functions],
            "classes": self.classes,
        }

    @classmethod
    def from_dict(cls, d: dict[str, Any]) -> "FileSummary":
        return cls(
            rel=d["rel"], module=d["module"], sha=d["sha"],
            aliases=dict(d.get("aliases", {})),
            functions=[FunctionSummary.from_dict(f)
                       for f in d.get("functions", [])],
            classes={k: dict(v) for k, v in d.get("classes", {}).items()},
        )


# --------------------------------------------------------------------- #
# extraction
# --------------------------------------------------------------------- #


def _iter_defs(tree: ast.Module) -> Iterator[tuple[str, str | None,
                                                   ast.FunctionDef]]:
    """(qualname, class name or None, def node) for every function."""

    def visit(node: ast.AST, prefix: str, cls: str | None):
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield f"{prefix}{child.name}", cls, child
                yield from visit(child, f"{prefix}{child.name}.", cls)
            elif isinstance(child, ast.ClassDef):
                yield from visit(child, f"{prefix}{child.name}.", child.name)

    yield from visit(tree, "", None)


class _SpanIndex:
    """Innermost enclosing function for a line, by def spans."""

    def __init__(self, defs: list[tuple[str, ast.FunctionDef]]) -> None:
        # sorted by start line so the last containing span is innermost
        self._spans = sorted(
            ((fn.lineno, fn.end_lineno or fn.lineno, qual)
             for qual, fn in defs), key=lambda s: s[0])

    def owner(self, line: int) -> str:
        best = MODULE_FN
        for start, end, qual in self._spans:
            if start > line:
                break
            if start <= line <= end:
                best = qual
        return best


def _probe_unit(expr: ast.AST, env: UnitEnv) -> str | None:
    try:
        return infer_unit(expr, env)
    except Exception:
        return None  # a local mismatch is UNIT001's beat, not ours


def _param_names(fn: ast.FunctionDef, is_method: bool) -> list[str]:
    a = fn.args
    names = [arg.arg for arg in (a.posonlyargs + a.args)]
    if is_method and names and names[0] in ("self", "cls"):
        names = names[1:]
    return names + [arg.arg for arg in a.kwonlyargs]


def summarize_source(sf: SourceFile, sha: str) -> FileSummary:
    """Extract the flow facts of one parsed source file."""
    aliases = import_aliases(sf.tree)
    env = UnitEnv(sf)
    defs = list(_iter_defs(sf.tree))
    span = _SpanIndex([(q, fn) for q, _, fn in defs])

    out = FileSummary(rel=sf.rel, module=module_name_for(sf.rel), sha=sha,
                      aliases=aliases)
    by_qual: dict[str, FunctionSummary] = {}

    module_fn = FunctionSummary(qualname=MODULE_FN)
    by_qual[MODULE_FN] = module_fn

    for qual, cls, fn in defs:
        is_method = cls is not None and qual.startswith(f"{cls}.")
        fs = FunctionSummary(
            qualname=qual, line=fn.lineno, end_line=fn.end_lineno or fn.lineno,
            class_name=cls if is_method else None,
            name_unit=name_unit(fn.name, env.declared))
        fs.params = _param_names(fn, is_method)
        fs.param_units = {p: u for p in fs.params
                          if (u := name_unit(p, env.declared)) is not None}
        for dec in fn.decorator_list:
            target = dec.func if isinstance(dec, ast.Call) else dec
            raw = dotted_name(target)
            if raw is not None:
                fs.decorators.append(raw)
        by_qual[qual] = fs
        # a nested def is conservatively assumed callable by its owner
        outer = span.owner(fn.lineno - 1) if fn.lineno > 1 else MODULE_FN
        if "." in qual and outer != qual and qual.startswith(outer + "."):
            by_qual[outer].calls.append(CallSite(
                callee=qual.rsplit(".", 1)[1], line=fn.lineno,
                end_line=fn.end_lineno or fn.lineno))

    def owner_of(node: ast.AST) -> FunctionSummary:
        return by_qual.get(span.owner(node.lineno), module_fn)

    # classes: bases + instance-attr types (self.x = ClassName(...))
    for node in ast.walk(sf.tree):
        if not isinstance(node, ast.ClassDef):
            continue
        bases = [b for b in (dotted_name(base) for base in node.bases)
                 if b is not None]
        out.classes[node.name] = {"bases": bases, "attr_types": {}}
    for node in ast.walk(sf.tree):
        if not isinstance(node, ast.Assign) or not isinstance(
                node.value, ast.Call):
            continue
        callee = dotted_name(node.value.func)
        if callee is None:
            continue
        owner = owner_of(node)
        for tgt in node.targets:
            if (isinstance(tgt, ast.Attribute)
                    and isinstance(tgt.value, ast.Name)
                    and tgt.value.id == "self" and owner.class_name
                    and owner.class_name in out.classes):
                out.classes[owner.class_name]["attr_types"].setdefault(
                    tgt.attr, callee)
            elif isinstance(tgt, ast.Name) and \
                    callee.rsplit(".", 1)[-1][:1].isupper():
                # CamelCase callee: a constructor — remember the receiver
                owner.var_types.setdefault(tgt.id, callee)

    # call sites with argument units
    for node in ast.walk(sf.tree):
        if not isinstance(node, ast.Call):
            continue
        raw = dotted_name(node.func)
        if raw is None:
            continue
        site = CallSite(callee=raw, line=node.lineno,
                        end_line=node.end_lineno or node.lineno)
        for idx, arg in enumerate(node.args):
            if isinstance(arg, ast.Starred):
                break  # *args shifts positions: stop positional matching
            unit = _probe_unit(arg, env)
            if unit is not None:
                site.arg_units.append([idx, unit])
        for kw in node.keywords:
            if kw.arg is None:
                continue
            unit = _probe_unit(kw.value, env)
            if unit is not None:
                site.kwarg_units.append([kw.arg, unit])
        owner_of(node).calls.append(site)

    # determinism sources
    for hit_iter, kind in ((iter_wall_hits(sf.tree, aliases), "wall"),
                           (iter_rng_hits(sf.tree, aliases), "rng")):
        for node, detail in hit_iter:
            owner_of(node).sources.append(SourceHit(
                kind=kind, detail=detail, line=node.lineno,
                end_line=node.end_lineno or node.lineno))
    for node, detail in iter_set_order_hits(sf.tree):
        owner_of(node).sources.append(SourceHit(
            kind="set-order", detail=detail, line=node.lineno,
            end_line=node.end_lineno or node.lineno))

    # returns: local units, plus bare calls whose unit must flow in
    for node in ast.walk(sf.tree):
        if not isinstance(node, ast.Return) or node.value is None:
            continue
        owner = owner_of(node)
        unit = _probe_unit(node.value, env)
        if unit is not None:
            if unit not in owner.return_units:
                owner.return_units.append(unit)
        elif isinstance(node.value, ast.Call):
            raw = dotted_name(node.value.func)
            if raw is not None:
                owner.return_calls.append(ReturnCall(
                    callee=raw, line=node.lineno,
                    end_line=node.end_lineno or node.lineno))

    # unit mixes: call result +/-/compared with a known-united operand
    def record_mix(call: ast.AST, other: ast.AST, anchor: ast.AST) -> None:
        if not isinstance(call, ast.Call):
            return
        raw = dotted_name(call.func)
        if raw is None or _probe_unit(call, env) is not None:
            return
        unit = _probe_unit(other, env)
        if unit is not None:
            owner_of(anchor).mixes.append(UnitMix(
                callee=raw, other_unit=unit, line=anchor.lineno,
                end_line=anchor.end_lineno or anchor.lineno))

    for node in ast.walk(sf.tree):
        if isinstance(node, ast.BinOp) and isinstance(
                node.op, (ast.Add, ast.Sub)):
            record_mix(node.left, node.right, node)
            record_mix(node.right, node.left, node)
        elif isinstance(node, ast.Compare):
            operands = [node.left] + list(node.comparators)
            for i, a in enumerate(operands):
                for b in operands[:i] + operands[i + 1:]:
                    record_mix(a, b, node)

    out.functions = [by_qual[q] for q in sorted(by_qual)
                     if q != MODULE_FN or by_qual[q].calls
                     or by_qual[q].sources]
    for fs in out.functions:
        fs.return_units.sort()
    return out
