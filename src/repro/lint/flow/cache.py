"""Incremental flow cache: per-file summaries keyed on SHA-256.

The whole-program passes are rebuilt every run (they are cheap: dict
walks over summaries), but per-file extraction — eight AST walks per
file — is the dominant cost, so summaries persist to
``<root>/.lint_cache/flow.json`` keyed on each file's content hash.  A
warm run re-extracts only files whose bytes changed; everything else is
loaded as plain JSON.  Invalidation is exact: the key is the file's own
SHA-256, and a ``SUMMARY_VERSION`` bump (schema change in the extractor)
discards the whole cache.

Writes are atomic (tmp + rename) so concurrent lint runs can race on the
cache without corrupting it — the loser's write simply wins whole-file.
"""

from __future__ import annotations

import json
import os
import pathlib
from typing import Any

from repro.lint.flow.summary import SUMMARY_VERSION, FileSummary

__all__ = ["FlowCache", "CACHE_DIR", "CACHE_NAME"]

CACHE_DIR = ".lint_cache"
CACHE_NAME = "flow.json"


class FlowCache:
    """Load/store the per-file summary cache under the repo root."""

    def __init__(self, root: pathlib.Path | str,
                 path: pathlib.Path | None = None) -> None:
        self.path = path if path is not None else (
            pathlib.Path(root) / CACHE_DIR / CACHE_NAME)
        self._entries: dict[str, dict[str, Any]] = {}
        if self.path.is_file():
            try:
                doc = json.loads(self.path.read_text())
            except (json.JSONDecodeError, OSError):
                doc = {}
            if doc.get("version") == SUMMARY_VERSION:
                self._entries = doc.get("files", {})

    def get(self, rel: str, sha: str) -> FileSummary | None:
        entry = self._entries.get(rel)
        if entry is None or entry.get("sha") != sha:
            return None
        try:
            return FileSummary.from_dict(entry["summary"])
        except (KeyError, TypeError):
            return None

    def store(self, summaries: dict[str, FileSummary]) -> None:
        """Replace the cache with the current project's summaries."""
        doc = {
            "version": SUMMARY_VERSION,
            "files": {
                rel: {"sha": s.sha, "summary": s.to_dict()}
                for rel, s in sorted(summaries.items())
            },
        }
        try:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            tmp = self.path.with_suffix(f".tmp.{os.getpid()}")
            tmp.write_text(json.dumps(doc, sort_keys=True))
            tmp.replace(self.path)
        except OSError:
            pass  # a read-only checkout just runs cold every time
