"""Stale-suppression lint (SUP001).

An inline ``# simlint: disable=<id>`` is a reviewed exception: it asserts
the rule *would* fire on that line and has been judged acceptable.  Once
the offending code is fixed or moved, the directive outlives its reason
and silently pre-suppresses future, unrelated findings on the line.
SUP001 closes the loop: it runs after every other selected rule, compares
the directives in each file against the suppressions that were actually
*used* this run (see :class:`~repro.lint.core.SuppressionTracker`), and
flags the ones that silenced nothing — including directives naming rule
ids that no longer exist.

A directive is only judged against rules that actually ran: under
``repro lint --rules DET`` a ``disable=UNIT001`` comment is out of
scope, not stale.
"""

from __future__ import annotations

from typing import Iterator

from repro.lint.core import (
    LintProject,
    Rule,
    SuppressionTracker,
    Violation,
    register_rule,
)

__all__ = ["UnusedSuppressionRule"]


@register_rule
class UnusedSuppressionRule(Rule):
    id = "SUP001"
    name = "stale-suppression"
    severity = "warning"
    description = (
        "a `# simlint: disable=...` directive whose rule no longer fires "
        "on that line (or names an unknown rule) — delete the directive"
    )
    runs_last = True

    def run(self, project: LintProject, tracker=None) -> Iterator[Violation]:
        # never runs in the main pass; run_lint drives run_post instead
        return iter(())

    def run_post(self, project: LintProject, tracker: SuppressionTracker,
                 ran_rules: list[Rule]) -> Iterator[Violation]:
        ran = {r.id: r for r in ran_rules}
        for sf in project.files:
            for line, rule_ids in sorted(sf.line_suppressions.items()):
                for rid in sorted(rule_ids):
                    v = self._judge(sf, rid, line, ran, tracker,
                                    file_level=False)
                    if v is not None and not sf.suppressed(
                            self.id, v.line, v.end_line):
                        yield v
            for rid in sorted(sf.file_suppressions):
                line = sf.file_suppression_lines.get(rid, 1)
                v = self._judge(sf, rid, line, ran, tracker, file_level=True)
                if v is not None and not sf.suppressed(
                        self.id, v.line, v.end_line):
                    yield v

    def _judge(self, sf, rid: str, line: int, ran: dict[str, Rule],
               tracker: SuppressionTracker,
               file_level: bool) -> Violation | None:
        kind = "disable-file" if file_level else "disable"
        if rid not in ran:
            # unknown ids are always stale (typo or retired rule) — but
            # only when the full catalog ran, so a --rules subset never
            # misjudges an out-of-scope directive
            from repro.lint.core import all_rules
            if rid not in {r.id for r in all_rules()}:
                return sf.violation(
                    self, line,
                    f"`# simlint: {kind}={rid}` names an unknown rule "
                    f"({rid!r} is not in the catalog) — delete or fix "
                    f"the directive")
            return None
        used = (tracker.file_used(sf.rel, rid) if file_level
                else tracker.line_used(sf.rel, rid, line))
        if used:
            return None
        return sf.violation(
            self, line,
            f"stale `# simlint: {kind}={rid}`: {rid} no longer fires "
            f"{'in this file' if file_level else 'on this line'} — "
            f"delete the directive")
