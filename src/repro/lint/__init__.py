"""repro.lint — static analysis that proves the simulator's invariants.

Four rule families, all AST-based (nothing executes):

* **DET0xx** determinism: no wall clocks, unseeded RNG, or set-order
  iteration outside the wall channel (bit-identical fingerprints);
* **UNIT0xx** unit consistency: suffix-inferred dimensional analysis of
  the roofline arithmetic in ``repro.perfmodel`` / ``repro.hardware``;
* **PAR0xx** fast-path parity: the scalar :class:`StepModel` and its
  vectorized mirror must change together (snapshot + literal mirroring);
* **REG0xx** registry drift: experiments ↔ BENCH baselines ↔
  EXPERIMENTS.md ↔ CLI surface.

Entry points: ``repro lint`` (CLI, the CI gate) and :func:`run_lint`
(programmatic).  See ``docs/lint.md``.
"""

from repro.lint.core import (
    LintProject,
    ProjectRule,
    Rule,
    Violation,
    all_rules,
    get_rule,
    lint_source,
    run_lint,
)

__all__ = [
    "LintProject",
    "ProjectRule",
    "Rule",
    "Violation",
    "all_rules",
    "get_rule",
    "lint_source",
    "run_lint",
]
