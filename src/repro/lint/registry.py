"""Registry-drift lints (REG0xx).

The experiment registry is mirrored in three places that nothing ties
together at runtime: the ``BENCH_<id>.json`` fingerprint baselines the
regression gate replays, the ``EXPERIMENTS.md`` paper-vs-measured tables,
and the CLI surface documented in :mod:`repro.core.cli`.  A registered
experiment with no baseline silently escapes the drift gate; a stale
baseline gates an experiment that no longer exists; an undocumented row
or subcommand is invisible to reviewers.  These rules parse the
``@experiment("id")`` decorators statically (no experiment executes) and
cross-check all four surfaces.
"""

from __future__ import annotations

import ast
import re
from typing import Iterator

from repro.lint.core import LintProject, ProjectRule, Violation, register_rule

__all__ = ["registered_experiment_ids", "bench_baseline_ids",
           "BaselineCoverageRule", "StaleBaselineRule",
           "ExperimentsDocRule", "CliDocRule", "FamilyDocRule"]

_EXPERIMENTS_DIR = "src/repro/experiments/"
_CLI_PATH = "src/repro/core/cli.py"

#: baselines with no experiment behind them, by design (the suite-timing
#: pseudo-baseline recorded by benchmarks/bench_wallclock.py)
PSEUDO_BASELINES = frozenset({"wallclock"})

#: experiment families with a dedicated design doc: every registered id
#: with the prefix must be mentioned in the doc, so the doc cannot
#: silently fall behind the registry (REG005)
FAMILY_DOCS: dict[str, str] = {
    "ext_fleet": "docs/fleet.md",
}


def registered_experiment_ids(project: LintProject) -> dict[str, tuple[str, int]]:
    """id → (path, line) of every ``@experiment("id")`` decorator."""
    ids: dict[str, tuple[str, int]] = {}
    for sf in project.files:
        if not sf.rel.startswith(_EXPERIMENTS_DIR):
            continue
        for node in ast.walk(sf.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            for dec in node.decorator_list:
                if (isinstance(dec, ast.Call)
                        and isinstance(dec.func, ast.Name)
                        and dec.func.id == "experiment"
                        and dec.args
                        and isinstance(dec.args[0], ast.Constant)
                        and isinstance(dec.args[0].value, str)):
                    ids[dec.args[0].value] = (sf.rel, dec.lineno)
    return ids


def bench_baseline_ids(project: LintProject) -> dict[str, str]:
    """id → filename of every ``BENCH_<id>.json`` at the repo root."""
    out: dict[str, str] = {}
    for path in sorted(project.root.glob("BENCH_*.json")):
        out[path.name[len("BENCH_"):-len(".json")]] = path.name
    return out


@register_rule
class BaselineCoverageRule(ProjectRule):
    id = "REG001"
    name = "experiment-without-baseline"
    severity = "error"
    description = (
        "registered experiment has no BENCH_<id>.json fingerprint "
        "baseline — it escapes the drift gate"
    )

    def check_project(self, project: LintProject) -> Iterator[Violation]:
        baselines = bench_baseline_ids(project)
        for exp_id, (path, line) in sorted(registered_experiment_ids(project).items()):
            if exp_id not in baselines:
                sf = project.file(path)
                yield Violation(
                    rule=self.id, severity=self.severity, path=path,
                    line=line, col=0,
                    snippet=sf.snippet(line) if sf else exp_id,
                    message=(f"experiment {exp_id!r} has no BENCH_{exp_id}"
                             f".json baseline; record one with `repro bench "
                             f"--record --figs {exp_id}`"))


@register_rule
class StaleBaselineRule(ProjectRule):
    id = "REG002"
    name = "baseline-without-experiment"
    severity = "error"
    description = (
        "BENCH_<id>.json baseline matches no registered experiment — "
        "stale file or renamed experiment"
    )

    def check_project(self, project: LintProject) -> Iterator[Violation]:
        registered = registered_experiment_ids(project)
        for bid, fname in sorted(bench_baseline_ids(project).items()):
            if bid not in registered and bid not in PSEUDO_BASELINES:
                yield Violation(
                    rule=self.id, severity=self.severity, path=fname,
                    line=1, col=0, snippet=bid,
                    message=(f"{fname} matches no registered experiment "
                             f"(known pseudo-baselines: "
                             f"{', '.join(sorted(PSEUDO_BASELINES))}); "
                             f"delete it or restore the experiment"))


@register_rule
class ExperimentsDocRule(ProjectRule):
    id = "REG003"
    name = "experiment-undocumented"
    severity = "error"
    description = (
        "registered experiment has no row in EXPERIMENTS.md — every "
        "figure must state its paper-vs-measured verdict"
    )

    def check_project(self, project: LintProject) -> Iterator[Violation]:
        doc = project.root / "EXPERIMENTS.md"
        if not doc.is_file():
            yield Violation(
                rule=self.id, severity=self.severity, path="EXPERIMENTS.md",
                line=1, col=0, snippet="",
                message="EXPERIMENTS.md missing from the repo root")
            return
        text = doc.read_text()
        for exp_id, (path, line) in sorted(registered_experiment_ids(project).items()):
            if not re.search(rf"\b{re.escape(exp_id)}\b", text):
                sf = project.file(path)
                yield Violation(
                    rule=self.id, severity=self.severity, path=path,
                    line=line, col=0,
                    snippet=sf.snippet(line) if sf else exp_id,
                    message=(f"experiment {exp_id!r} is not mentioned in "
                             f"EXPERIMENTS.md — add its paper-vs-measured "
                             f"row"))


@register_rule
class FamilyDocRule(ProjectRule):
    id = "REG005"
    name = "experiment-family-doc-drift"
    severity = "error"
    description = (
        "experiment family has a dedicated doc (FAMILY_DOCS) that does "
        "not mention every registered id with the family prefix"
    )

    def check_project(self, project: LintProject) -> Iterator[Violation]:
        registered = registered_experiment_ids(project)
        for prefix, doc_rel in sorted(FAMILY_DOCS.items()):
            family = {eid: loc for eid, loc in registered.items()
                      if eid.startswith(prefix)}
            if not family:
                continue
            doc = project.root / doc_rel
            if not doc.is_file():
                yield Violation(
                    rule=self.id, severity=self.severity, path=doc_rel,
                    line=1, col=0, snippet="",
                    message=(f"{doc_rel} missing but the {prefix}* family "
                             f"has {len(family)} registered experiment(s)"))
                continue
            text = doc.read_text()
            for exp_id, (path, line) in sorted(family.items()):
                if not re.search(rf"\b{re.escape(exp_id)}\b", text):
                    sf = project.file(path)
                    yield Violation(
                        rule=self.id, severity=self.severity, path=path,
                        line=line, col=0,
                        snippet=sf.snippet(line) if sf else exp_id,
                        message=(f"experiment {exp_id!r} is not mentioned "
                                 f"in {doc_rel} — document it with the "
                                 f"rest of its family"))


@register_rule
class CliDocRule(ProjectRule):
    id = "REG004"
    name = "cli-subcommand-undocumented"
    severity = "error"
    description = (
        "CLI subcommand registered in build_parser() is missing from the "
        "module docstring's usage block"
    )

    def check_project(self, project: LintProject) -> Iterator[Violation]:
        sf = project.file(_CLI_PATH)
        if sf is None:
            return
        docstring = ast.get_docstring(sf.tree) or ""
        for node in ast.walk(sf.tree):
            if (isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and node.func.attr == "add_parser"
                    and node.args
                    and isinstance(node.args[0], ast.Constant)
                    and isinstance(node.args[0].value, str)):
                name = node.args[0].value
                if not re.search(rf"\brepro {re.escape(name)}\b", docstring):
                    yield Violation(
                        rule=self.id, severity=self.severity,
                        path=_CLI_PATH, line=node.lineno, col=node.col_offset,
                        snippet=sf.snippet(node.lineno),
                        message=(f"subcommand {name!r} is not documented in "
                                 f"the repro.core.cli module docstring "
                                 f"(add a `repro {name} ...` usage line)"))
