"""Observability lints (OBS0xx).

The metrics registry and the span tracer only stay trustworthy if two
conventions hold everywhere:

* **OBS001** — every metric name carries a unit suffix from the UNIT
  vocabulary (``_seconds``, ``_tok_s``, ``_bytes``, ...) or a Prometheus
  dimensionless suffix (``_total``, ``_ratio``, ``_utilization``, ...).
  A bare ``ttft`` or ``queue_wait`` metric is a unit bug waiting to
  happen: dashboards and burn-rate math cannot tell milliseconds from
  seconds once the name is loose in a time series.
* **OBS002** — spans emitted inside the simulated serving stack
  (``repro.serving``, ``repro.faults``, and the cluster-telemetry module
  that derives device/link timelines from it) must stamp *simulated*
  time: the
  timestamp argument must be an expression over the engine clock
  (``self.clock``, ``obs.now``, ...), never a wall-clock read and never a
  hard-coded literal, and the tracer's ``wall_span`` channel is off
  limits there.  DET001 already bans host-clock reads wholesale; OBS002
  additionally pins the *span timestamp slot* so a wall read can't sneak
  in through an allowlisted helper or a literal.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.core import (
    Rule,
    SourceFile,
    Violation,
    dotted_name,
    import_aliases,
    register_rule,
    resolve_call,
)
from repro.lint.determinism import _WALL_CALLS
from repro.lint.units import SUFFIX_UNITS

__all__ = ["MetricUnitSuffixRule", "SimClockSpanRule", "ALLOWED_SUFFIXES"]

#: Prometheus-convention dimensionless suffixes, allowed in addition to
#: the UNIT vocabulary's physical-unit suffixes.
_DIMENSIONLESS_SUFFIXES: tuple[str, ...] = (
    "_total", "_seconds", "_ratio", "_fraction", "_utilization", "_count",
    "_info",
)

ALLOWED_SUFFIXES: tuple[str, ...] = tuple(
    sorted({s for s, _ in SUFFIX_UNITS} | set(_DIMENSIONLESS_SUFFIXES),
           key=lambda s: (-len(s), s)))
"""Every suffix a metric name may end with, longest first."""

#: registry factory methods whose first argument is a metric name
_METRIC_FACTORIES = ("counter", "gauge", "histogram")


def _is_metrics_receiver(name: str) -> bool:
    """``obs.metrics.counter`` / ``self.metrics.gauge`` /
    ``registry.histogram`` — the chain must go through a metrics registry,
    which keeps Chrome trace counters (``obs.tracer.counter``) out of
    scope."""
    parts = name.split(".")
    if len(parts) < 2 or parts[-1] not in _METRIC_FACTORIES:
        return False
    receiver = parts[-2]
    return receiver in ("metrics", "registry") or \
        receiver.endswith("_metrics") or receiver.endswith("_registry")


@register_rule
class MetricUnitSuffixRule(Rule):
    id = "OBS001"
    name = "metric-unit-suffix"
    severity = "error"
    description = (
        "metric name without a unit suffix: every registry metric must "
        "end in a UNIT-vocabulary suffix (_seconds, _tok_s, _bytes, ...) "
        "or a dimensionless one (_total, _ratio, _utilization, ...)"
    )
    include = ("src/repro",)

    def check(self, sf: SourceFile) -> Iterator[Violation]:
        for node in ast.walk(sf.tree):
            if not isinstance(node, ast.Call):
                continue
            name = dotted_name(node.func)
            if name is None or not _is_metrics_receiver(name):
                continue
            if not node.args:
                continue
            first = node.args[0]
            if not (isinstance(first, ast.Constant)
                    and isinstance(first.value, str)):
                continue  # dynamic names can't be checked statically
            metric = first.value
            if any(metric.endswith(suffix) for suffix in ALLOWED_SUFFIXES):
                continue
            yield sf.violation(
                self, node,
                f"metric {metric!r} has no unit suffix; name it with a "
                f"UNIT-vocabulary suffix (e.g. {metric}_seconds, "
                f"{metric}_total) so its dimension travels with the "
                f"time series",
            )


#: tracer methods taking a timestamp, with the positional index of ``ts``
_SPAN_METHODS = {"begin": 1, "instant": 1, "counter": 1, "end": 0}


def _is_tracer_receiver(name: str) -> bool:
    parts = name.split(".")
    return len(parts) >= 2 and parts[-2] == "tracer" \
        or len(parts) == 2 and parts[0] in ("tracer", "t")


def _ts_argument(node: ast.Call, method: str) -> ast.AST | None:
    for kw in node.keywords:
        if kw.arg == "ts":
            return kw.value
    index = _SPAN_METHODS[method]
    if len(node.args) > index:
        return node.args[index]
    return None


@register_rule
class SimClockSpanRule(Rule):
    id = "OBS002"
    name = "sim-clock-span"
    severity = "error"
    description = (
        "span timestamp inside repro.serving/repro.faults (and the "
        "cluster telemetry derived from them) must be the simulated "
        "clock: no wall-clock reads, no hard-coded literals, no "
        "wall_span channel"
    )
    # obs/cluster.py sits in the obs layer but its device lanes and link
    # counters are *simulated-time* series — it gets the same clock pin
    # as the serving stack it mirrors, while the rest of repro.obs keeps
    # ownership of the wall channel.
    include = ("src/repro/serving/", "src/repro/faults/",
               "src/repro/obs/cluster.py")

    def check(self, sf: SourceFile) -> Iterator[Violation]:
        aliases = import_aliases(sf.tree)
        for node in ast.walk(sf.tree):
            if isinstance(node, ast.Attribute) and node.attr == "wall_span":
                yield sf.violation(
                    self, node,
                    "wall_span stamps host time; simulated serving code "
                    "must emit spans on the simulated clock",
                )
            if not isinstance(node, ast.Call):
                continue
            name = dotted_name(node.func)
            if name is None:
                continue
            parts = name.split(".")
            method = parts[-1]
            if method not in _SPAN_METHODS or not _is_tracer_receiver(name):
                continue
            ts = _ts_argument(node, method)
            if ts is None:
                continue  # no timestamp passed: a TypeError, not our beat
            if isinstance(ts, ast.Constant):
                yield sf.violation(
                    self, ts,
                    f"span timestamp of {name}() is the literal "
                    f"{ts.value!r}; pass the simulated clock "
                    f"(engine.clock / obs.now)",
                )
                continue
            for sub in ast.walk(ts):
                if isinstance(sub, ast.Call) and \
                        resolve_call(sub, aliases) in _WALL_CALLS:
                    yield sf.violation(
                        self, sub,
                        f"span timestamp of {name}() reads the host clock "
                        f"({resolve_call(sub, aliases)}); pass the "
                        f"simulated clock instead",
                    )
