"""Unit-consistency lints (UNIT0xx) for the roofline arithmetic.

The perf model's entire output is dimensional arithmetic: FLOPs over
FLOP/s, bytes over bytes/s, microsecond overheads converted to seconds.
One dropped ``1e-6`` corrupts every figure downstream, so these rules
infer physical units from the codebase's suffix conventions (``_s``,
``_us``, ``_bytes``, ``_gb``, ``_flops``, ``_gbps``, ``_tokens``, ...)
plus explicit ``# simlint: unit=<u>`` declarations on dataclass fields,
and flag additions, subtractions, comparisons, min/max joins, returns and
assignments that mix dimensions.

Inference is deliberately conservative: multiplication clears the unit
(it is how conversions are written: ``latency_us * 1e-6``), division of
two known units produces the derived rate (``bytes / t_s`` → ``bytes/s``),
and anything unknown stays unknown — the checker under-reports rather
than cry wolf.  Scope is :mod:`repro.perfmodel` and :mod:`repro.hardware`,
where every expression is dimensioned.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.core import Rule, SourceFile, Violation, register_rule

__all__ = ["infer_unit", "name_unit", "UnitEnv", "MixedUnitsRule",
           "ReturnUnitRule", "AmbiguousNameRule"]

#: suffix → unit, longest suffix matched first.  ``_gbps`` means GB/s
#: (gigaBYTES) throughout this codebase — see HardwareSpec's docstrings.
SUFFIX_UNITS: tuple[tuple[str, str], ...] = (
    ("_tok_s", "tokens/s"),
    ("_tflops", "TFLOPS"),
    ("_flops", "flops"),
    ("_bytes", "bytes"),
    ("_gbps", "GB/s"),
    ("_tokens", "tokens"),
    ("_gb", "GB"),
    ("_mb", "MB"),
    ("_kb", "KB"),
    ("_us", "us"),
    ("_ms", "ms"),
    ("_ns", "ns"),
    ("_wh", "Wh"),
    ("_s", "s"),
    ("_w", "W"),
    ("_j", "J"),
    ("_hz", "Hz"),
    ("_time", "s"),  # *_time() cost functions return seconds
)

#: exact names whose unit the suffix grammar cannot express
FULL_NAME_UNITS: dict[str, str] = {
    "mem_bytes_per_s": "bytes/s",
    "bytes_per_s": "bytes/s",
    "peak_flops_per_s": "flops/s",
    "tokens_per_joule": "tokens/J",
    "bytes_": "bytes",   # local shadows of the builtin
    "flops": "flops",
}

#: bare names that denote a dimensioned quantity but carry no unit —
#: the UNIT003 normalization targets (e.g. `latency`: seconds? µs?)
AMBIGUOUS_NAMES = frozenset({
    "latency", "bw", "bandwidth", "elapsed", "duration", "runtime",
    "throughput", "mem", "freq",
})

#: call targets that preserve the common unit of their arguments
_JOIN_CALLS = frozenset({
    "min", "max", "sum", "abs", "round", "float",
    "maximum", "minimum",  # np.maximum / np.minimum (matched on last attr)
})

_UNIT_SCOPE = ("src/repro/perfmodel/", "src/repro/hardware/")


def name_unit(name: str, declared: dict[str, str] | None = None) -> str | None:
    """Public wrapper over the suffix grammar: the unit a bare name
    carries (``kv_bytes`` → ``bytes``), or None.  The interprocedural
    flow analysis uses this to lift units onto function signatures."""
    return _name_unit(name, declared or {})


def _name_unit(name: str, declared: dict[str, str]) -> str | None:
    if name in declared:
        return declared[name]
    if name in FULL_NAME_UNITS:
        return FULL_NAME_UNITS[name]
    if "_per_" in name:
        return None  # rates need a full-name entry to be inferred
    for suffix, unit in SUFFIX_UNITS:
        if name.endswith(suffix):
            return unit
    return None


class UnitEnv:
    """Declared units of one file: ``# simlint: unit=`` annotations bound
    to the assignment / dataclass-field line they sit on."""

    def __init__(self, sf: SourceFile) -> None:
        self.declared: dict[str, str] = {}
        if not sf.unit_decls:
            return
        for node in ast.walk(sf.tree):
            line = getattr(node, "lineno", None)
            if line not in sf.unit_decls:
                continue
            unit = sf.unit_decls[line]
            if isinstance(node, ast.AnnAssign) and isinstance(node.target, ast.Name):
                self.declared[node.target.id] = unit
            elif isinstance(node, ast.Assign):
                for tgt in node.targets:
                    if isinstance(tgt, ast.Name):
                        self.declared[tgt.id] = unit
                    elif isinstance(tgt, ast.Attribute):
                        self.declared[tgt.attr] = unit

    def lookup(self, name: str) -> str | None:
        return _name_unit(name, self.declared)


class _Mismatch(Exception):
    def __init__(self, node: ast.AST, left: str, right: str) -> None:
        self.node = node
        self.left = left
        self.right = right


def _join(node: ast.AST, a: str | None, b: str | None) -> str | None:
    """Common unit of two operands that must agree dimensionally."""
    if a is not None and b is not None and a != b:
        raise _Mismatch(node, a, b)
    return a if a is not None else b


def infer_unit(node: ast.AST, env: UnitEnv) -> str | None:
    """Inferred unit of an expression, or None when unknown.

    Raises :class:`_Mismatch` (internal) at the first dimension-mixing
    addition/subtraction/join encountered.
    """
    if isinstance(node, ast.Constant):
        return None
    if isinstance(node, ast.Name):
        return env.lookup(node.id)
    if isinstance(node, ast.Attribute):
        return env.lookup(node.attr)
    if isinstance(node, ast.Subscript):
        return infer_unit(node.value, env)
    if isinstance(node, ast.UnaryOp):
        return infer_unit(node.operand, env)
    if isinstance(node, ast.IfExp):
        return _join(node, infer_unit(node.body, env),
                     infer_unit(node.orelse, env))
    if isinstance(node, ast.BinOp):
        left = infer_unit(node.left, env)
        right = infer_unit(node.right, env)
        if isinstance(node.op, (ast.Add, ast.Sub)):
            return _join(node, left, right)
        if isinstance(node.op, ast.Div):
            if left is not None and right is not None and left != right:
                return f"{left}/{right}"
            return None
        return None  # Mult/Pow/FloorDiv/...: conversions clear the unit
    if isinstance(node, ast.Call):
        fname = None
        if isinstance(node.func, ast.Name):
            fname = node.func.id
        elif isinstance(node.func, ast.Attribute):
            fname = node.func.attr
        if fname in _JOIN_CALLS:
            unit: str | None = None
            for arg in node.args:
                unit = _join(node, unit, infer_unit(arg, env))
            return unit
        if fname is not None:
            return _name_unit(fname, env.declared)
        return None
    return None


def _iter_scope_exprs(sf: SourceFile):
    """(node, context) pairs the unit checker prices: every expression
    statement context where mixing could hide."""
    for node in ast.walk(sf.tree):
        yield node


@register_rule
class MixedUnitsRule(Rule):
    id = "UNIT001"
    name = "mixed-units"
    severity = "error"
    description = (
        "addition/comparison/assignment mixes physical dimensions "
        "(e.g. seconds + microseconds, bytes vs GB)"
    )
    include = _UNIT_SCOPE

    def check(self, sf: SourceFile) -> Iterator[Violation]:
        env = UnitEnv(sf)
        seen: set[int] = set()

        def probe(expr: ast.AST) -> str | None:
            try:
                return infer_unit(expr, env)
            except _Mismatch as mm:
                if id(mm.node) not in seen:
                    seen.add(id(mm.node))
                    return mm
                return None

        for node in ast.walk(sf.tree):
            hit = None
            if isinstance(node, (ast.BinOp, ast.IfExp, ast.Call)):
                hit = probe(node)
            elif isinstance(node, ast.Compare):
                units = []
                try:
                    units.append(infer_unit(node.left, env))
                    for cmp in node.comparators:
                        units.append(infer_unit(cmp, env))
                except _Mismatch as mm:
                    hit = mm
                else:
                    known = [u for u in units if u is not None]
                    if len(set(known)) > 1:
                        a, b = sorted(set(known))[:2]
                        hit = _Mismatch(node, a, b)
                        if id(node) in seen:
                            hit = None
                        seen.add(id(node))
            elif isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
                value = node.value
                if value is None:
                    continue
                targets = (node.targets if isinstance(node, ast.Assign)
                           else [node.target])
                vunit = probe(value)
                if isinstance(vunit, _Mismatch):
                    hit = vunit
                elif vunit is not None:
                    for tgt in targets:
                        tname = None
                        if isinstance(tgt, ast.Name):
                            tname = tgt.id
                        elif isinstance(tgt, ast.Attribute):
                            tname = tgt.attr
                        if tname is None:
                            continue
                        tunit = env.lookup(tname)
                        if tunit is not None and tunit != vunit:
                            hit = _Mismatch(node, tunit, vunit)
                            break
            if isinstance(hit, _Mismatch):
                yield sf.violation(
                    self, hit.node if hasattr(hit.node, "lineno") else node,
                    f"mixing units {hit.left!r} and {hit.right!r} — insert "
                    f"the conversion (or fix the operand's suffix)",
                )


@register_rule
class ReturnUnitRule(Rule):
    id = "UNIT002"
    name = "return-unit-mismatch"
    severity = "error"
    description = (
        "function whose name carries a unit suffix returns a value "
        "inferred to have a different unit"
    )
    include = _UNIT_SCOPE

    def check(self, sf: SourceFile) -> Iterator[Violation]:
        env = UnitEnv(sf)
        for node in ast.walk(sf.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            declared = _name_unit(node.name, env.declared)
            if declared is None:
                continue
            for ret in ast.walk(node):
                if not isinstance(ret, ast.Return) or ret.value is None:
                    continue
                try:
                    actual = infer_unit(ret.value, env)
                except _Mismatch:
                    continue  # UNIT001 owns mixing inside the expression
                if actual is not None and actual != declared:
                    yield sf.violation(
                        self, ret,
                        f"{node.name}() is named in {declared!r} but returns "
                        f"a value in {actual!r}",
                    )


@register_rule
class AmbiguousNameRule(Rule):
    id = "UNIT003"
    name = "ambiguous-unit-name"
    severity = "warning"
    description = (
        "bare name for a dimensioned quantity (latency? in s or us?) — "
        "rename with a unit suffix so the checker can see it"
    )
    include = _UNIT_SCOPE

    def check(self, sf: SourceFile) -> Iterator[Violation]:
        for node in ast.walk(sf.tree):
            if isinstance(node, ast.Assign):
                for tgt in node.targets:
                    if isinstance(tgt, ast.Name) and tgt.id in AMBIGUOUS_NAMES:
                        yield self._flag(sf, tgt, tgt.id)
            elif isinstance(node, ast.AnnAssign):
                if (isinstance(node.target, ast.Name)
                        and node.target.id in AMBIGUOUS_NAMES):
                    yield self._flag(sf, node.target, node.target.id)
            elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                args = node.args
                for arg in (args.posonlyargs + args.args + args.kwonlyargs):
                    if arg.arg in AMBIGUOUS_NAMES:
                        yield self._flag(sf, arg, arg.arg)

    def _flag(self, sf: SourceFile, node: ast.AST, name: str) -> Violation:
        return sf.violation(
            self, node,
            f"{name!r} is dimensioned but carries no unit suffix; rename "
            f"(e.g. {name}_s / {name}_us / {name}_gbps) so UNIT001 can "
            f"check its arithmetic",
        )
