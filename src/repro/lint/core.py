"""simlint core: source model, rule registry, suppressions, and the runner.

``repro.lint`` proves the simulator's review-time invariants statically:
determinism (no wall clocks or unseeded RNG outside the wall channel),
dimensional consistency of the roofline arithmetic, scalar↔vectorized
fast-path parity, and experiment-registry drift.  Rules are AST-based and
run over the committed source only — no experiment needs to execute.

Vocabulary
----------
* a :class:`Rule` inspects one :class:`SourceFile` (or, for
  :class:`ProjectRule`, the whole :class:`LintProject`) and yields
  :class:`Violation` objects;
* ``# simlint: disable=<id>[,<id>...]`` on a line suppresses those rules
  for that line; ``# simlint: disable-file=<id>`` anywhere suppresses the
  rule for the whole file;
* ``# simlint: unit=<unit>`` declares the physical unit of the name bound
  on that line (used by the UNIT rules for bare-named dataclass fields);
* the committed baseline (``LINT_BASELINE.json``) lets ``--check`` gate
  *new* violations while grandfathering recorded ones.
"""

from __future__ import annotations

import ast
import dataclasses
import hashlib
import pathlib
import re
from typing import Callable, Iterable, Iterator

__all__ = [
    "Severity",
    "Violation",
    "SourceFile",
    "LintProject",
    "Rule",
    "ProjectRule",
    "SuppressionTracker",
    "register_rule",
    "all_rules",
    "get_rule",
    "run_lint",
    "lint_source",
]

# ordered weakest → strongest so max() picks the gate-relevant severity
Severity = str
SEVERITIES = ("notice", "warning", "error")

_SUPPRESS_RE = re.compile(r"#\s*simlint:\s*disable=([A-Za-z0-9_,\s]+)")
_SUPPRESS_FILE_RE = re.compile(r"#\s*simlint:\s*disable-file=([A-Za-z0-9_,\s]+)")
_UNIT_DECL_RE = re.compile(r"#\s*simlint:\s*unit=([A-Za-z/._-]+)")


@dataclasses.dataclass(frozen=True)
class Violation:
    """One finding, anchored to a source location.

    ``end_line`` is the last line of the offending node's span (0 when
    unknown): suppression directives anywhere in ``line..end_line`` apply,
    so a ``# simlint: disable=`` comment on the closing line of a wrapped
    call is honored.
    """

    rule: str
    severity: Severity
    path: str  # repo-relative posix path
    line: int
    col: int
    message: str
    snippet: str = ""
    end_line: int = 0

    def key(self) -> str:
        """Baseline identity: stable across moves of the offending line.

        Line numbers churn with unrelated edits, so the baseline matches on
        the rule, the file, and a digest of the offending source line.
        """
        text = f"{self.rule}|{self.path}|{self.snippet.strip()}"
        return hashlib.sha256(text.encode()).hexdigest()[:16]

    def format(self) -> str:
        return (f"{self.path}:{self.line}:{self.col}: {self.rule} "
                f"[{self.severity}] {self.message}")


class SourceFile:
    """One parsed python source file plus its simlint comment directives."""

    def __init__(self, path: pathlib.Path, rel: str, text: str) -> None:
        self.path = path
        self.rel = rel
        self.text = text
        self.lines = text.splitlines()
        self.tree = ast.parse(text, filename=rel)
        # line (1-based) -> set of rule ids disabled on that line
        self.line_suppressions: dict[int, set[str]] = {}
        self.file_suppressions: set[str] = set()
        # rule id -> line of its first disable-file directive (SUP001)
        self.file_suppression_lines: dict[str, int] = {}
        # line (1-based) -> declared unit for the name bound on that line
        self.unit_decls: dict[int, str] = {}
        for i, line in enumerate(self.lines, start=1):
            m = _SUPPRESS_RE.search(line)
            if m:
                self.line_suppressions[i] = {
                    r.strip() for r in m.group(1).split(",") if r.strip()
                }
            m = _SUPPRESS_FILE_RE.search(line)
            if m:
                for r in m.group(1).split(","):
                    r = r.strip()
                    if r:
                        self.file_suppressions.add(r)
                        self.file_suppression_lines.setdefault(r, i)
            m = _UNIT_DECL_RE.search(line)
            if m:
                self.unit_decls[i] = m.group(1)

    def suppressed(self, rule: str, line: int, end_line: int = 0) -> bool:
        """True when ``rule`` is disabled anywhere in ``line..end_line``
        (a multi-line statement honors a directive on any of its lines)."""
        if rule in self.file_suppressions:
            return True
        for i in range(line, max(line, end_line) + 1):
            if rule in self.line_suppressions.get(i, set()):
                return True
        return False

    def snippet(self, line: int) -> str:
        if 1 <= line <= len(self.lines):
            return self.lines[line - 1]
        return ""

    def violation(self, rule: "Rule", node: ast.AST | int, message: str,
                  col: int = 0) -> Violation:
        line = node if isinstance(node, int) else getattr(node, "lineno", 1)
        col = col if isinstance(node, int) else getattr(node, "col_offset", 0)
        end = 0 if isinstance(node, int) else \
            (getattr(node, "end_lineno", None) or 0)
        return Violation(rule=rule.id, severity=rule.severity, path=self.rel,
                         line=line, col=col, message=message,
                         snippet=self.snippet(line), end_line=end)


class LintProject:
    """The lintable universe: parsed sources plus repo-root artifacts.

    ``root`` is the repository root (where ``BENCH_*.json``,
    ``EXPERIMENTS.md`` and the lint baseline/parity manifests live);
    sources are collected from ``root/src/repro`` by default.
    """

    def __init__(self, root: pathlib.Path,
                 source_dirs: Iterable[str] = ("src/repro",)) -> None:
        self.root = pathlib.Path(root)
        self.files: list[SourceFile] = []
        self.errors: list[Violation] = []
        for sub in source_dirs:
            base = self.root / sub
            if not base.is_dir():
                continue
            for path in sorted(base.rglob("*.py")):
                rel = path.relative_to(self.root).as_posix()
                try:
                    text = path.read_text()
                    self.files.append(SourceFile(path, rel, text))
                except (SyntaxError, UnicodeDecodeError) as exc:
                    self.errors.append(Violation(
                        rule="LINT000", severity="error", path=rel,
                        line=getattr(exc, "lineno", 1) or 1, col=0,
                        message=f"could not parse: {exc}"))

    def file(self, rel: str) -> SourceFile | None:
        for sf in self.files:
            if sf.rel == rel:
                return sf
        return None


class SuppressionTracker:
    """Records which ``# simlint: disable`` directives actually silenced a
    violation during a run — the evidence SUP001 (stale suppression) needs
    to flag the ones that no longer do."""

    def __init__(self) -> None:
        # rel path -> list of (rule, line, end_line) suppressed spans
        self._used: dict[str, list[tuple[str, int, int]]] = {}

    def mark(self, rel: str, rule: str, line: int, end_line: int = 0) -> None:
        self._used.setdefault(rel, []).append(
            (rule, line, max(line, end_line)))

    def line_used(self, rel: str, rule: str, directive_line: int) -> bool:
        """True when a suppressed violation of ``rule`` spans the line the
        directive sits on."""
        return any(r == rule and a <= directive_line <= b
                   for r, a, b in self._used.get(rel, []))

    def file_used(self, rel: str, rule: str) -> bool:
        return any(r == rule for r, _, _ in self._used.get(rel, []))


class Rule:
    """One static check.  Subclasses set the class attributes and override
    :meth:`check` (per-file) — or subclass :class:`ProjectRule` for checks
    that need the whole project."""

    id: str = ""
    name: str = ""
    severity: Severity = "error"
    description: str = ""
    #: path prefixes (repo-relative, posix) this rule runs on; empty = all
    include: tuple[str, ...] = ()
    #: path prefixes exempt from this rule (e.g. the wall channel)
    exclude: tuple[str, ...] = ()
    #: rules that must observe every other rule's suppression usage run
    #: after the main pass via :meth:`run_post` (see SUP001)
    runs_last: bool = False

    def applies_to(self, sf: SourceFile) -> bool:
        if self.include and not any(sf.rel.startswith(p) for p in self.include):
            return False
        return not any(sf.rel.startswith(p) for p in self.exclude)

    def check(self, sf: SourceFile) -> Iterator[Violation]:
        raise NotImplementedError

    def run(self, project: LintProject,
            tracker: SuppressionTracker | None = None) -> Iterator[Violation]:
        for sf in project.files:
            if self.applies_to(sf):
                for v in self.check(sf):
                    if sf.suppressed(v.rule, v.line, v.end_line):
                        if tracker is not None:
                            tracker.mark(sf.rel, v.rule, v.line, v.end_line)
                    else:
                        yield v

    def run_post(self, project: LintProject, tracker: SuppressionTracker,
                 ran_rules: list["Rule"]) -> Iterator[Violation]:
        """Hook for ``runs_last`` rules; default: nothing."""
        return iter(())


class ProjectRule(Rule):
    """A rule over the whole project (cross-file / repo-artifact checks)."""

    def check_project(self, project: LintProject) -> Iterator[Violation]:
        raise NotImplementedError

    def run(self, project: LintProject,
            tracker: SuppressionTracker | None = None) -> Iterator[Violation]:
        for v in self.check_project(project):
            sf = project.file(v.path)
            if sf is not None and sf.suppressed(v.rule, v.line, v.end_line):
                if tracker is not None:
                    tracker.mark(sf.rel, v.rule, v.line, v.end_line)
            else:
                yield v


_RULES: dict[str, Rule] = {}


def register_rule(cls: type) -> type:
    """Class decorator adding a rule to the global registry."""
    rule = cls()
    if not rule.id:
        raise ValueError(f"{cls.__name__} has no id")
    if rule.id in _RULES:
        raise ValueError(f"rule {rule.id} registered twice")
    if rule.severity not in SEVERITIES:
        raise ValueError(f"rule {rule.id}: bad severity {rule.severity!r}")
    _RULES[rule.id] = rule
    return cls


def _ensure_loaded() -> None:
    # rule modules self-register on import, exactly like the experiments
    from repro.lint import (  # noqa: F401
        determinism,
        obs,
        parity,
        registry,
        suppressions,
        units,
    )
    from repro.lint.flow import coverage, taint, unitflow  # noqa: F401


def all_rules() -> list[Rule]:
    _ensure_loaded()
    return [_RULES[k] for k in sorted(_RULES)]


def get_rule(rule_id: str) -> Rule:
    _ensure_loaded()
    try:
        return _RULES[rule_id]
    except KeyError:
        known = ", ".join(sorted(_RULES))
        raise KeyError(f"unknown rule {rule_id!r}; known: {known}") from None


def select_rules(spec: str | None) -> list[Rule]:
    """Rules matching a comma-separated spec of ids or id prefixes
    (``DET``, ``UNIT001,PAR``...); ``None`` selects everything."""
    rules = all_rules()
    if not spec:
        return rules
    wanted = [s.strip() for s in spec.split(",") if s.strip()]
    chosen = [r for r in rules if any(r.id == w or r.id.startswith(w)
                                      for w in wanted)]
    unknown = [w for w in wanted
               if not any(r.id == w or r.id.startswith(w) for r in rules)]
    if unknown:
        raise KeyError(f"unknown rule selector(s): {', '.join(unknown)}")
    return chosen


def run_lint(root: pathlib.Path | str, rules: Iterable[Rule] | None = None,
             project: LintProject | None = None) -> list[Violation]:
    """Run ``rules`` (default: all) over the project at ``root``; returns
    violations sorted deterministically (path, line, col, rule).

    Rules with ``runs_last`` (stale-suppression detection) run after the
    main pass, fed the suppression-usage evidence it produced.
    """
    if project is None:
        project = LintProject(pathlib.Path(root))
    if rules is None:
        rules = all_rules()
    rules = list(rules)
    main = [r for r in rules if not r.runs_last]
    post = [r for r in rules if r.runs_last]
    tracker = SuppressionTracker()
    out: list[Violation] = list(project.errors)
    for rule in main:
        out.extend(rule.run(project, tracker))
    for rule in post:
        out.extend(rule.run_post(project, tracker, main))
    out.sort(key=lambda v: (v.path, v.line, v.col, v.rule))
    return out


def lint_source(text: str, rule: Rule, rel: str = "src/repro/fixture.py",
                root: pathlib.Path | str = ".") -> list[Violation]:
    """Run one per-file rule over an in-memory snippet (test helper)."""
    sf = SourceFile(pathlib.Path(rel), rel, text)
    if not rule.applies_to(sf):
        return []
    return sorted((v for v in rule.check(sf)
                   if not sf.suppressed(v.rule, v.line, v.end_line)),
                  key=lambda v: (v.line, v.col, v.rule))


def dotted_name(node: ast.AST) -> str | None:
    """``a.b.c`` for a Name/Attribute chain, else None (shared helper)."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def import_aliases(tree: ast.Module) -> dict[str, str]:
    """Map local alias -> canonical dotted module/object name.

    ``import numpy as np`` → ``{"np": "numpy"}``; ``from datetime import
    datetime as _dt`` → ``{"_dt": "datetime.datetime"}``.
    """
    aliases: dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for a in node.names:
                aliases[a.asname or a.name.split(".")[0]] = (
                    a.name if a.asname else a.name.split(".")[0])
        elif isinstance(node, ast.ImportFrom) and node.module:
            for a in node.names:
                aliases[a.asname or a.name] = f"{node.module}.{a.name}"
    return aliases


def resolve_call(node: ast.Call, aliases: dict[str, str]) -> str | None:
    """Canonical dotted name of a call target, import-aliases applied."""
    name = dotted_name(node.func)
    if name is None:
        return None
    head, _, rest = name.partition(".")
    canonical = aliases.get(head, head)
    return f"{canonical}.{rest}" if rest else canonical
