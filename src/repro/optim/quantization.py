"""Quantization configurations (paper §6.1).

A :class:`QuantConfig` fixes the storage dtype of weights, activations and
the KV cache, plus the dtype GEMM math executes in.  The performance model
consumes the byte widths and compute dtype; the functional engine consumes
the same config to fake-quantize weights and measure numeric error, so both
sides of the quantization trade-off come from one object.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.tensor.dtypes import DType, get_dtype

__all__ = [
    "QuantConfig",
    "FP16_CONFIG",
    "FP8_CONFIG",
    "W8A16_CONFIG",
    "W4A16_CONFIG",
    "PRESETS",
    "get_preset",
    "quantization_error",
]


@dataclass(frozen=True)
class QuantConfig:
    """Storage/compute precision of one deployment."""

    name: str
    weights: DType
    activations: DType
    kv_cache: DType
    compute: DType

    @property
    def weight_bytes(self) -> float:
        return self.weights.bytes_per_element

    @property
    def activation_bytes(self) -> float:
        return self.activations.bytes_per_element

    @property
    def kv_bytes(self) -> float:
        return self.kv_cache.bytes_per_element

    @property
    def compute_dtype_name(self) -> str:
        return self.compute.name

    @staticmethod
    def make(
        name: str,
        weights: str | DType = "fp16",
        activations: str | DType = "fp16",
        kv_cache: str | DType | None = None,
        compute: str | DType | None = None,
    ) -> "QuantConfig":
        """Build a config from dtype names; KV defaults to the activation
        dtype and compute to the narrower of weights/activations."""
        w = get_dtype(weights)
        a = get_dtype(activations)
        kv = get_dtype(kv_cache) if kv_cache is not None else a
        if compute is not None:
            c = get_dtype(compute)
        else:
            # math runs at the lower precision of the two operands when the
            # hardware supports it (weight-only quant still computes in a)
            c = w if (w.is_quantized and a.is_quantized) else a
        return QuantConfig(name=name, weights=w, activations=a, kv_cache=kv, compute=c)


FP16_CONFIG = QuantConfig.make("fp16", "fp16", "fp16")
# vLLM-style FP8 W8A8: weights+activations in FP8, KV cache left at FP16
FP8_CONFIG = QuantConfig.make("fp8", "fp8_e4m3", "fp8_e4m3", kv_cache="fp16",
                              compute="fp8_e4m3")
W8A16_CONFIG = QuantConfig.make("w8a16", "int8", "fp16")
W4A16_CONFIG = QuantConfig.make("w4a16", "int4", "fp16")

PRESETS: dict[str, QuantConfig] = {
    c.name: c for c in (FP16_CONFIG, FP8_CONFIG, W8A16_CONFIG, W4A16_CONFIG)
}


def get_preset(name: str | QuantConfig) -> QuantConfig:
    """Look up a preset by name (pass-through for configs)."""
    if isinstance(name, QuantConfig):
        return name
    try:
        return PRESETS[name.lower()]
    except KeyError:
        known = ", ".join(sorted(PRESETS))
        raise KeyError(f"unknown quantization preset {name!r}; known: {known}") from None


def quantization_error(x: np.ndarray, cfg: QuantConfig) -> float:
    """Relative RMS error of storing ``x`` at the config's weight dtype.

    Used by accuracy-impact studies: FP8 E4M3 on unit-scale weights sits
    around 1-3% relative RMS error, INT4 an order of magnitude higher.
    """
    from repro.tensor.dtypes import quantize_dequantize

    x = np.asarray(x, dtype=np.float32)
    denom = float(np.sqrt(np.mean(x * x)))
    if denom == 0.0:
        return 0.0
    q = quantize_dequantize(x, cfg.weights)
    return float(np.sqrt(np.mean((x - q) ** 2)) / denom)
