"""Speculative decoding performance model (paper §6.3, Fig. 12).

Standard draft-verify analysis: a draft model proposes ``k`` tokens per
cycle, the target verifies all of them in one forward pass and accepts a
prefix.  With per-token acceptance rate ``alpha``, the expected tokens
committed per cycle (including the bonus token sampled from the target's
verification distribution) is::

    E[tokens] = (1 - alpha^(k+1)) / (1 - alpha)

Cycle time is ``k`` draft decode steps plus one target verification step
over ``k+1`` positions; throughput is their ratio.  The acceptance rate is
modelled as a calibrated function of the draft's capacity relative to the
target (bigger same-family drafts agree more often) with a mild decline in
longer contexts.  The paper's qualitative result — a mid-sized draft
(Qwen3-1.7B) wins; tiny drafts reject too much; big drafts cost too much —
is an equilibrium of exactly these two terms.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.core.metrics import GenerationShape, InferenceMetrics
from repro.hardware.spec import HardwareSpec
from repro.models.config import ModelConfig
from repro.models.params import model_params
from repro.optim.quantization import FP16_CONFIG, QuantConfig
from repro.parallel.plan import SINGLE_DEVICE, ParallelPlan
from repro.perfmodel.inference import InferencePerfModel

__all__ = [
    "default_acceptance_rate",
    "expected_tokens_per_cycle",
    "simulate_accepted_tokens",
    "SpeculativeDecodingModel",
]

# Acceptance-rate calibration: alpha at the 4B reference draft, and the
# per-octave capacity slope.  Fit to published same-family speculative
# decoding acceptance rates (~0.6 for 10x smaller drafts, ~0.85 near-parity).
_ALPHA_AT_4B = 0.78
_ALPHA_SLOPE_PER_OCTAVE = 0.09
_REFERENCE_DRAFT_PARAMS = 4.0e9
_ALPHA_CONTEXT_SLOPE = 0.012  # decline per octave of context beyond 128


def default_acceptance_rate(
    draft: ModelConfig, target: ModelConfig, context_len: int = 128
) -> float:
    """Calibrated per-token acceptance rate for a same-family draft."""
    if context_len <= 0:
        raise ValueError("context_len must be positive")
    draft_params = model_params(draft).active
    alpha = _ALPHA_AT_4B + _ALPHA_SLOPE_PER_OCTAVE * math.log2(
        draft_params / _REFERENCE_DRAFT_PARAMS
    )
    alpha -= _ALPHA_CONTEXT_SLOPE * max(0.0, math.log2(context_len / 128.0))
    return float(min(0.92, max(0.30, alpha)))


def expected_tokens_per_cycle(alpha: float, num_draft_tokens: int) -> float:
    """Expected committed tokens per draft-verify cycle (with bonus token)."""
    if not (0.0 <= alpha < 1.0):
        raise ValueError(f"alpha must be in [0, 1), got {alpha}")
    if num_draft_tokens < 1:
        raise ValueError("num_draft_tokens must be >= 1")
    return (1.0 - alpha ** (num_draft_tokens + 1)) / (1.0 - alpha)


def simulate_accepted_tokens(
    alpha: float,
    num_draft_tokens: int,
    num_cycles: int,
    rng: np.random.Generator | None = None,
) -> np.ndarray:
    """Monte-Carlo draw of committed tokens per cycle (geometric prefix
    acceptance + bonus token); the mean converges to
    :func:`expected_tokens_per_cycle`."""
    if num_cycles <= 0:
        raise ValueError("num_cycles must be positive")
    rng = rng or np.random.default_rng(0)
    accepts = rng.random((num_cycles, num_draft_tokens)) < alpha
    # accepted prefix length = index of first rejection
    rejected = ~accepts
    first_rej = np.where(
        rejected.any(axis=1), rejected.argmax(axis=1), num_draft_tokens
    )
    return first_rej + 1  # +1 bonus/correction token


@dataclass
class SpeculativeDecodingModel:
    """Throughput model of one (target, draft, k) speculative deployment."""

    target: ModelConfig
    draft: ModelConfig
    hardware: HardwareSpec
    num_draft_tokens: int = 4
    plan: ParallelPlan = SINGLE_DEVICE
    quant: QuantConfig = FP16_CONFIG
    acceptance_rate: float | None = None
    """Override; ``None`` uses :func:`default_acceptance_rate`."""

    def __post_init__(self) -> None:
        if self.num_draft_tokens < 1:
            raise ValueError("num_draft_tokens must be >= 1")
        self._target_pm = InferencePerfModel(
            self.target, self.hardware, plan=self.plan, quant=self.quant
        )
        # draft models are small; they run replicated (tp=1) in vLLM
        self._draft_pm = InferencePerfModel(self.draft, self.hardware, quant=self.quant)

    def alpha(self, context_len: int) -> float:
        if self.acceptance_rate is not None:
            return self.acceptance_rate
        return default_acceptance_rate(self.draft, self.target, context_len)

    def cycle_time(self, batch: int, context_len: int) -> float:
        """Seconds per draft-verify cycle at the given context.

        Draft and verification run inside one engine iteration, so the
        fixed per-step scheduling overhead is charged once per cycle; the
        k draft forwards contribute only their marginal (kernel) cost.
        """
        k = self.num_draft_tokens
        hw = self.hardware
        engine_overhead = (hw.step_overhead_us + batch * hw.per_seq_overhead_us) * 1e-6
        draft_step = self._draft_pm.steps.decode_step_time(batch, context_len)
        t_draft = k * max(0.0, draft_step - engine_overhead)
        # verification: one target forward over k+1 positions per sequence
        t_verify = self._target_pm.steps.step_breakdown(
            num_tokens=batch * (k + 1), batch=batch, kv_len=context_len, phase="decode"
        ).total
        return t_draft + max(0.0, t_verify - engine_overhead) + engine_overhead

    def decode_throughput(self, batch: int, context_len: int) -> float:
        """Committed tokens/s in steady-state decode."""
        e_tokens = expected_tokens_per_cycle(self.alpha(context_len), self.num_draft_tokens)
        return batch * e_tokens / self.cycle_time(batch, context_len)

    def speedup_vs_autoregressive(self, batch: int, context_len: int) -> float:
        """Decode speedup over the target decoding alone."""
        base = batch / self._target_pm.steps.decode_step_time(batch, context_len)
        return self.decode_throughput(batch, context_len) / base

    def generate(self, batch: int, input_tokens: int, output_tokens: int) -> InferenceMetrics:
        """Full-generation metrics with speculative decode (paper Eq. 1/2).

        The draft prefills too (its KV must cover the prompt); decode is
        integrated over the growing context like the base model's.
        """
        shape = GenerationShape(batch, input_tokens, output_tokens)
        ttft = self._target_pm.ttft(batch, input_tokens)
        ttft += self._draft_pm.steps.prefill_time(batch, input_tokens)
        e_tok = expected_tokens_per_cycle(self.alpha(input_tokens), self.num_draft_tokens)
        n_cycles = max(0.0, (output_tokens - 1) / e_tok)
        # mid-generation context approximates the affine-in-context cycle cost
        mid_ctx = input_tokens + output_tokens // 2
        decode = n_cycles * self.cycle_time(batch, mid_ctx)
        return InferenceMetrics(shape=shape, ttft_s=ttft, e2e_latency_s=ttft + decode)
