"""Inference-time optimizations: quantization, speculative decoding, fused MoE.

The quantization configs are leaf definitions imported eagerly; the
speculative-decoding and fused-MoE models depend on the performance model
and are loaded lazily (PEP 562) to keep the package import-cycle free
(``perfmodel`` itself imports ``repro.optim.quantization``).
"""

from repro.optim.quantization import (
    FP8_CONFIG,
    FP16_CONFIG,
    PRESETS,
    QuantConfig,
    W4A16_CONFIG,
    W8A16_CONFIG,
    get_preset,
    quantization_error,
)

__all__ = [
    "FP8_CONFIG",
    "FP16_CONFIG",
    "PRESETS",
    "QuantConfig",
    "W4A16_CONFIG",
    "W8A16_CONFIG",
    "get_preset",
    "quantization_error",
    # lazy (heavy) exports
    "FusedMoEComparison",
    "compare_fused_unfused",
    "moe_kernel_launches_per_layer",
    "SpeculativeDecodingModel",
    "default_acceptance_rate",
    "expected_tokens_per_cycle",
    "simulate_accepted_tokens",
]

_LAZY = {
    "FusedMoEComparison": "repro.optim.fused_moe",
    "compare_fused_unfused": "repro.optim.fused_moe",
    "moe_kernel_launches_per_layer": "repro.optim.fused_moe",
    "SpeculativeDecodingModel": "repro.optim.speculative",
    "default_acceptance_rate": "repro.optim.speculative",
    "expected_tokens_per_cycle": "repro.optim.speculative",
    "simulate_accepted_tokens": "repro.optim.speculative",
}


def __getattr__(name: str):
    if name in _LAZY:
        import importlib

        module = importlib.import_module(_LAZY[name])
        value = getattr(module, name)
        globals()[name] = value
        return value
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
