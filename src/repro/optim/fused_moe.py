"""Fused-MoE analysis helpers (paper §7.2, Fig. 14).

The execution-path difference itself lives in two places:

* functional: :class:`repro.moe.MoELayer` ``mode="fused" | "unfused"``
  (identical outputs, different kernel-launch counts / intermediates);
* performance: ``fused_moe`` flag of :class:`repro.perfmodel.InferencePerfModel`
  (launch count O(1) vs O(E) per layer, extra activation re-materialisation
  and weight-stream decoalescing for the naive path).

This module packages the comparison and the per-step launch accounting.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hardware.spec import HardwareSpec
from repro.models.config import ModelConfig
from repro.optim.quantization import FP16_CONFIG, QuantConfig
from repro.parallel.plan import SINGLE_DEVICE, ParallelPlan
from repro.perfmodel.flops import routed_experts_cost
from repro.perfmodel.inference import InferencePerfModel

__all__ = ["FusedMoEComparison", "compare_fused_unfused", "moe_kernel_launches_per_layer"]


@dataclass(frozen=True)
class FusedMoEComparison:
    """Throughput of the fused vs naive MoE path on one workload."""

    fused_throughput_tok_s: float
    unfused_throughput_tok_s: float

    @property
    def speedup(self) -> float:
        return self.fused_throughput_tok_s / self.unfused_throughput_tok_s

    @property
    def gain_percent(self) -> float:
        return 100.0 * (self.speedup - 1.0)


def moe_kernel_launches_per_layer(model: ModelConfig, fused: bool,
                                  num_tokens: int = 1) -> int:
    """Kernel launches one MoE layer issues per step under each path."""
    if model.moe is None:
        raise ValueError(f"{model.name} has no MoE layers")
    cost = routed_experts_cost(model, float(num_tokens), FP16_CONFIG, fused=fused)
    return cost.launches


def compare_fused_unfused(
    model: ModelConfig,
    hw: HardwareSpec,
    batch: int,
    input_tokens: int,
    output_tokens: int,
    plan: ParallelPlan = SINGLE_DEVICE,
    quant: QuantConfig = FP16_CONFIG,
) -> FusedMoEComparison:
    """Run the perf model with and without Fused MoE on one shape."""
    results = []
    for fused in (True, False):
        pm = InferencePerfModel(model, hw, plan=plan, quant=quant, fused_moe=fused)
        results.append(
            pm.generate(batch, input_tokens, output_tokens, check_memory=False)
            .throughput_tok_s
        )
    return FusedMoEComparison(
        fused_throughput_tok_s=results[0], unfused_throughput_tok_s=results[1]
    )
