"""Performance metrics (paper §3.4).

Implements the paper's exact definitions:

* **TTFT** — time from prompt submission to the first output token
  (= prefill time + one sampling step).
* **ITL** (Eq. 1) — ``(E2E latency - TTFT) / (batch * output_tokens - 1)``,
  the average interval per *generated token across the batch*.  The
  per-step variant ``(E2E - TTFT)/(output_tokens - 1)`` is also exposed,
  since both conventions appear in serving literature.
* **Throughput** (Eq. 2) — ``batch * (input + output tokens) / E2E``.
* **Samples/s** — the VLM metric: input samples processed per second.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["GenerationShape", "InferenceMetrics", "throughput_eq2", "itl_eq1"]


@dataclass(frozen=True)
class GenerationShape:
    """The workload shape of one measurement: batch × input × output."""

    batch_size: int
    input_tokens: int
    output_tokens: int

    def __post_init__(self) -> None:
        if self.batch_size <= 0:
            raise ValueError(f"batch_size must be positive, got {self.batch_size}")
        if self.input_tokens <= 0:
            raise ValueError(f"input_tokens must be positive, got {self.input_tokens}")
        if self.output_tokens <= 0:
            raise ValueError(f"output_tokens must be positive, got {self.output_tokens}")

    @property
    def total_tokens(self) -> int:
        """Input + output tokens across the batch."""
        return self.batch_size * (self.input_tokens + self.output_tokens)


def throughput_eq2(shape: GenerationShape, e2e_latency_s: float) -> float:
    """Paper Eq. (2): total processed tokens per second."""
    if e2e_latency_s <= 0:
        raise ValueError(f"e2e_latency_s must be positive, got {e2e_latency_s}")
    return shape.total_tokens / e2e_latency_s


def itl_eq1(shape: GenerationShape, ttft_s: float, e2e_latency_s: float) -> float:
    """Paper Eq. (1): average inter-token latency per generated token."""
    if e2e_latency_s < ttft_s:
        raise ValueError("e2e_latency_s must be >= ttft_s")
    denom = shape.batch_size * shape.output_tokens - 1
    if denom <= 0:
        return 0.0
    return (e2e_latency_s - ttft_s) / denom


@dataclass(frozen=True)
class InferenceMetrics:
    """All metrics of one measurement."""

    shape: GenerationShape
    ttft_s: float
    e2e_latency_s: float

    def __post_init__(self) -> None:
        if self.ttft_s < 0:
            raise ValueError("ttft_s must be non-negative")
        if self.e2e_latency_s < self.ttft_s:
            raise ValueError("e2e_latency_s must be >= ttft_s")

    @property
    def itl_s(self) -> float:
        """Eq. (1) inter-token latency, seconds."""
        return itl_eq1(self.shape, self.ttft_s, self.e2e_latency_s)

    @property
    def itl_per_step_s(self) -> float:
        """Per-decode-step latency: ``(E2E - TTFT) / (output_tokens - 1)``."""
        if self.shape.output_tokens <= 1:
            return 0.0
        return (self.e2e_latency_s - self.ttft_s) / (self.shape.output_tokens - 1)

    @property
    def throughput_tok_s(self) -> float:
        """Eq. (2) tokens per second (input + output)."""
        return throughput_eq2(self.shape, self.e2e_latency_s)

    @property
    def decode_throughput_tok_s(self) -> float:
        """Generated tokens per second of the decode phase only."""
        decode_t = self.e2e_latency_s - self.ttft_s
        if decode_t <= 0:
            return float("inf")
        return self.shape.batch_size * (self.shape.output_tokens - 1) / decode_t

    @property
    def samples_per_s(self) -> float:
        """The paper's VLM metric: input samples per second."""
        return self.shape.batch_size / self.e2e_latency_s
