"""Report rendering: experiment results to markdown / CSV files."""

from __future__ import annotations

import pathlib

from repro.core.experiment import ExperimentResult

__all__ = ["render_markdown", "write_report", "render_summary"]


def render_markdown(result: ExperimentResult) -> str:
    """One experiment as a self-contained markdown section."""
    lines = [
        f"## {result.exp_id}: {result.title}",
        "",
        f"**Paper claim.** {result.paper_claim}",
        "",
    ]
    if result.observations:
        lines.append("**Measured.**")
        for obs in result.observations:
            lines.append(f"- {obs}")
        lines.append("")
    for chart in result.charts:
        lines.append("```")
        lines.append(chart)
        lines.append("```")
        lines.append("")
    for table in result.tables:
        lines.append(f"### {table.name}")
        lines.append("")
        lines.append(table.to_markdown())
        lines.append("")
    if result.runtime_s:
        lines.append(f"_(generated in {result.runtime_s:.2f}s)_")
        lines.append("")
    return "\n".join(lines)


def render_summary(results: list[ExperimentResult]) -> str:
    """Concatenate experiment sections with a table of contents."""
    lines = ["# MoE-Inference-Bench — regenerated results", ""]
    for r in results:
        lines.append(f"- [{r.exp_id}](#{r.exp_id.replace('_', '-')}): {r.title}")
    lines.append("")
    for r in results:
        lines.append(render_markdown(r))
    return "\n".join(lines)


def write_report(
    result: ExperimentResult, out_dir: str | pathlib.Path, csv: bool = True
) -> pathlib.Path:
    """Write ``<exp_id>.md`` (and per-table CSVs) under ``out_dir``."""
    out = pathlib.Path(out_dir)
    out.mkdir(parents=True, exist_ok=True)
    md_path = out / f"{result.exp_id}.md"
    md_path.write_text(render_markdown(result))
    if csv:
        for table in result.tables:
            safe = table.name.replace(" ", "_").replace("/", "-")
            (out / f"{result.exp_id}_{safe}.csv").write_text(table.to_csv())
    return md_path
