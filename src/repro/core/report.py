"""Report rendering: experiment results to markdown / CSV files."""

from __future__ import annotations

import pathlib
from typing import Mapping

from repro.core.experiment import ExperimentResult

__all__ = ["render_markdown", "write_report", "render_summary",
           "render_time_breakdown", "render_profile_report"]


def render_time_breakdown(
    span_totals: Mapping[str, tuple[float, int]],
    makespan: float | None = None,
    title: str = "Where the time went",
) -> str:
    """Per-component time breakdown as a markdown section.

    ``span_totals`` maps span name to ``(total seconds, count)`` — the
    shape of :meth:`repro.obs.trace.SpanTracer.span_totals`.  Shares are
    relative to ``makespan`` when given (top-level spans sum to it; nested
    spans overlap their parents), else to the largest component.
    """
    lines = [f"### {title}", ""]
    if not span_totals:
        lines.append("_(no spans recorded)_")
        return "\n".join(lines)
    denom = makespan if makespan and makespan > 0 else max(
        total for total, _ in span_totals.values()
    )
    lines.append("| component | total (s) | share | count | mean (ms) |")
    lines.append("|---|---:|---:|---:|---:|")
    for name, (total, count) in sorted(
        span_totals.items(), key=lambda kv: -kv[1][0]
    ):
        share = total / denom if denom > 0 else 0.0
        mean_ms = 1e3 * total / count if count else 0.0
        lines.append(
            f"| {name} | {total:.6f} | {share:6.1%} | {count} | {mean_ms:.3f} |"
        )
    return "\n".join(lines)


def render_profile_report(report) -> str:
    """A :class:`~repro.obs.profile.ProfileReport` as markdown sections:
    the per-phase × per-component attribution table plus the
    roofline-classified speedup advice."""
    lines = [f"## Cost attribution — {report.model_name}", ""]
    lines.append(f"Simulated busy time: {report.profile.total_s():.6f}s "
                 f"over {report.result.num_requests} requests "
                 f"(makespan {report.result.makespan:.6f}s).")
    lines.append("")
    hits = report.obs.metrics.gauge("stepcache_hits_total").value
    misses = report.obs.metrics.gauge("stepcache_misses_total").value
    lookups = hits + misses
    if lookups:
        lines.append(
            f"Step-cache: {hits:.0f} hits / {misses:.0f} misses "
            f"({hits / lookups:.1%} hit rate) — repeated step shapes "
            "repriced from the memo table, not the roofline.")
        lines.append("")
    lines.append("### Per-phase × per-component time")
    lines.append("")
    lines.append(report.table().to_markdown())
    lines.append("")
    pct = f"{report.speedup:.0%}"
    lines.append(f"### Where would a {pct} speedup matter most?")
    lines.append("")
    advice = report.advice
    if advice.rows:
        top = advice.rows[0]
        lines.append(
            f"Biggest lever: **{top['phase']}/{top['component']}** "
            f"({top['bound']}-bound) — {pct} faster saves "
            f"{top['saving_s'] * 1e3:.3f}ms of simulated time "
            f"({top['share']:.1%} of the busy time).")
        lines.append("")
    lines.append(advice.to_markdown())
    return "\n".join(lines)


def render_markdown(result: ExperimentResult) -> str:
    """One experiment as a self-contained markdown section."""
    lines = [
        f"## {result.exp_id}: {result.title}",
        "",
        f"**Paper claim.** {result.paper_claim}",
        "",
    ]
    if result.observations:
        lines.append("**Measured.**")
        for obs in result.observations:
            lines.append(f"- {obs}")
        lines.append("")
    for chart in result.charts:
        lines.append("```")
        lines.append(chart)
        lines.append("```")
        lines.append("")
    for table in result.tables:
        lines.append(f"### {table.name}")
        lines.append("")
        lines.append(table.to_markdown())
        lines.append("")
    if result.breakdown:
        lines.append(result.breakdown)
        lines.append("")
    if result.runtime_s:
        lines.append(f"_(generated in {result.runtime_s:.2f}s)_")
        lines.append("")
    return "\n".join(lines)


def render_summary(results: list[ExperimentResult]) -> str:
    """Concatenate experiment sections with a table of contents."""
    lines = ["# MoE-Inference-Bench — regenerated results", ""]
    for r in results:
        lines.append(f"- [{r.exp_id}](#{r.exp_id.replace('_', '-')}): {r.title}")
    lines.append("")
    for r in results:
        lines.append(render_markdown(r))
    return "\n".join(lines)


def write_report(
    result: ExperimentResult, out_dir: str | pathlib.Path, csv: bool = True
) -> pathlib.Path:
    """Write ``<exp_id>.md`` (and per-table CSVs) under ``out_dir``."""
    out = pathlib.Path(out_dir)
    out.mkdir(parents=True, exist_ok=True)
    md_path = out / f"{result.exp_id}.md"
    md_path.write_text(render_markdown(result))
    if csv:
        for table in result.tables:
            safe = table.name.replace(" ", "_").replace("/", "-")
            (out / f"{result.exp_id}_{safe}.csv").write_text(table.to_csv())
    return md_path
