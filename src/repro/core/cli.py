"""Command-line interface: list and regenerate the paper's experiments.

Usage::

    moe-inference-bench list
    moe-inference-bench run fig05 [--out results/]
    moe-inference-bench run-all [--out results/]
    moe-inference-bench summary [--out report.md]
"""

from __future__ import annotations

import argparse
import pathlib
import sys

from repro.core.registry import list_experiments, run_experiment
from repro.core.report import render_markdown, render_summary, write_report

__all__ = ["main"]


def _cmd_list(_: argparse.Namespace) -> int:
    for exp_id in list_experiments():
        print(exp_id)
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    result = run_experiment(args.exp_id)
    if args.out:
        path = write_report(result, args.out)
        print(f"wrote {path}")
    else:
        print(render_markdown(result))
    return 0


def _cmd_run_all(args: argparse.Namespace) -> int:
    failures = []
    for exp_id in list_experiments():
        try:
            result = run_experiment(exp_id)
        except Exception as exc:  # noqa: BLE001 - report and continue
            failures.append((exp_id, exc))
            print(f"[FAIL] {exp_id}: {exc}", file=sys.stderr)
            continue
        if args.out:
            path = write_report(result, args.out)
            print(f"[ok] {exp_id} -> {path} ({result.runtime_s:.1f}s)")
        else:
            print(render_markdown(result))
    return 1 if failures else 0


def _cmd_summary(args: argparse.Namespace) -> int:
    results = [run_experiment(exp_id) for exp_id in list_experiments()]
    text = render_summary(results)
    if args.out:
        path = pathlib.Path(args.out)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(text)
        print(f"wrote {path}")
    else:
        print(text)
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="moe-inference-bench",
        description="Regenerate the MoE-Inference-Bench experiments on simulated hardware.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_list = sub.add_parser("list", help="list experiment ids")
    p_list.set_defaults(func=_cmd_list)

    p_run = sub.add_parser("run", help="run one experiment")
    p_run.add_argument("exp_id", help="experiment id (see `list`)")
    p_run.add_argument("--out", help="directory for markdown/CSV output")
    p_run.set_defaults(func=_cmd_run)

    p_all = sub.add_parser("run-all", help="run every experiment")
    p_all.add_argument("--out", help="directory for markdown/CSV output")
    p_all.set_defaults(func=_cmd_run_all)

    p_sum = sub.add_parser(
        "summary", help="run everything into one markdown report"
    )
    p_sum.add_argument("--out", help="output markdown file")
    p_sum.set_defaults(func=_cmd_summary)

    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
