"""Command-line interface: list and regenerate the paper's experiments.

Usage::

    repro list
    repro run fig05[,fig06,...] [--out results/] [--jobs N] [--no-vectorize]
    repro run ... [--no-vectorize-engine]
    repro run-all [--out results/] [--jobs N]
    repro summary [--out report.md] [--jobs N]
    repro trace [model-or-experiment] [--out trace.json]
    repro trace [model] [--poisson RATE] [--request ID] [--match REGEX]
    repro trace [model] [--cluster] [--device ID] [--link NAME]
    repro trace [model] --timeline REQUEST_ID
    repro metrics [model] [--json]
    repro report [model] [--tp N --ep N --pp N] [--out report.md]
    repro report --slo-gate [--out report.md] [--html report.html]
    repro report --bundle DIR | --check
    repro slo [--check] [--out report.json] [--bundle-dir DIR]
    repro bench --record [--figs fig05,fig06] [--note "..."]
    repro bench --check [--wall] [--jobs N]
    repro bench --trend [--out trend.md]
    repro profile [model-or-experiment] [--out profile.folded]
    repro chaos [--fault-seed N] [--fault-rate R] [--policy retry|failfast]
    repro chaos --smoke
    repro fleet [--replicas N] [--policy round_robin|least_kv|prefix_affinity]
    repro fleet [--requests N] [--seed N] [--no-storm] [--no-autoscale]
    repro fleet --smoke
    repro lint [--check] [--rules DET,UNIT,PAR,REG] [--json]
    repro lint --update-parity | --update-baseline | --list-rules

(``repro`` and ``moe-inference-bench`` are the same entry point.)

``chaos`` serves a deterministic workload under a seeded fault schedule
(device loss, expert-shard loss, link degradation, KV-pressure spikes) and
reports availability/recovery; ``--smoke`` replays the run, asserts the
two digests are bit-identical and that every simulator invariant held —
the CI determinism gate.  ``fleet`` routes a diurnal templated trace
across a multi-replica fleet (pluggable router policy, SLO-aware
admission, occupancy-driven autoscaler, whole-replica kill/heal storm —
see ``docs/fleet.md``); its ``--smoke`` replays the canonical scenario
and asserts bit-identical :func:`repro.fleet.invariants.fleet_digest`
values plus the full fleet invariant suite on both runs.  ``trace`` records a reference serving run (or a
registered experiment)
under full instrumentation and writes Chrome Trace Event JSON for
Perfetto / ``chrome://tracing`` — ``--poisson RATE`` swaps in the
``ext_serving_load`` Poisson workload, ``--request``/``--match`` filter
the exported events, ``--cluster`` adds per-device occupancy lanes and
per-link utilization counters (``--device``/``--link`` filter them), and
``--timeline`` prints one request's causal lifecycle table (see
:mod:`repro.obs.reqtrace`); ``metrics`` prints the run's metrics in
Prometheus text exposition format.  ``report`` folds one observed run —
a clustered Poisson workload, the ``--slo-gate`` fault-storm scenario,
or an existing flight-recorder ``--bundle`` — into a deterministic
markdown/HTML run report (device occupancy, interconnect accounting,
expert heat, MoE-CAP Sparse-MBU/MFU, SLO budgets, alerts); ``--check``
builds it twice and gates on byte-identical output.  ``slo`` runs the
canonical fault-storm scenario with SLO burn-rate paging armed and
reports error-budget burn; ``--check`` replays it and asserts the report
is byte-identical with at least one burn alert fired (the SLO
determinism gate).  ``bench`` maintains the
``BENCH_<figure>.json`` fingerprint baselines and gates drift
(non-zero exit on ``--check`` failure); ``profile`` attributes a run's
simulated time per phase × component and writes a folded-stack file for
flamegraph tooling.  ``lint`` statically proves the simulator's
invariants (determinism, unit consistency, scalar↔vectorized fast-path
parity, registry drift) — the review-time complement to the dynamic
gates.  See ``docs/observability.md``, ``docs/regression.md`` and
``docs/lint.md``.
"""

from __future__ import annotations

import argparse
import os
import pathlib
import sys

from repro.core.registry import list_experiments, run_experiment
from repro.core.report import (
    render_markdown,
    render_summary,
    render_time_breakdown,
    write_report,
)

__all__ = ["main"]


def _apply_fastpath_flags(args: argparse.Namespace) -> None:
    """Export fast-path escape hatches to the environment so they reach
    both this process and any ``--jobs`` pool workers."""
    if getattr(args, "no_vectorize", False):
        os.environ["REPRO_NO_VECTORIZE"] = "1"
    if getattr(args, "no_vectorize_engine", False):
        os.environ["REPRO_NO_VECTORIZE_ENGINE"] = "1"


def _cmd_list(_: argparse.Namespace) -> int:
    for exp_id in list_experiments():
        print(exp_id)
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    from repro.runner import iter_experiments

    _apply_fastpath_flags(args)
    exp_ids = [e.strip() for e in args.exp_id.split(",") if e.strip()]
    for _, result in iter_experiments(exp_ids, jobs=args.jobs):
        if args.out:
            path = write_report(result, args.out)
            print(f"wrote {path}")
        else:
            print(render_markdown(result))
    return 0


def _cmd_run_all(args: argparse.Namespace) -> int:
    from repro.runner import iter_experiments

    _apply_fastpath_flags(args)
    failures = []
    for exp_id, result in iter_experiments(list_experiments(), jobs=args.jobs,
                                           return_exceptions=True):
        if isinstance(result, Exception):
            failures.append((exp_id, result))
            print(f"[FAIL] {exp_id}: {result}", file=sys.stderr)
            continue
        if args.out:
            path = write_report(result, args.out)
            print(f"[ok] {exp_id} -> {path} ({result.runtime_s:.1f}s)")
        else:
            print(render_markdown(result))
    return 1 if failures else 0


def _cmd_summary(args: argparse.Namespace) -> int:
    from repro.runner import run_experiments

    _apply_fastpath_flags(args)
    results = run_experiments(list_experiments(), jobs=args.jobs)
    text = render_summary(results)
    if args.out:
        path = pathlib.Path(args.out)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(text)
        print(f"wrote {path}")
    else:
        print(text)
    return 0


def _add_runner_args(parser: argparse.ArgumentParser) -> None:
    from repro.runner import default_jobs

    parser.add_argument("--jobs", type=int, default=default_jobs(),
                        help="worker processes to fan experiments across "
                             "(default $REPRO_JOBS or 1; results merge in a "
                             "fixed order, so output is byte-identical for "
                             "any value)")
    parser.add_argument("--no-vectorize", action="store_true",
                        help="disable the vectorized sweep fast path "
                             "(exported as REPRO_NO_VECTORIZE so pool "
                             "workers inherit it)")
    parser.add_argument("--no-vectorize-engine", action="store_true",
                        help="disable the serving-engine batched decode "
                             "window (exported as REPRO_NO_VECTORIZE_ENGINE; "
                             "results are bit-identical either way)")


def _add_workload_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--requests", type=int, default=8,
                        help="number of requests in the workload (default 8)")
    parser.add_argument("--input-tokens", type=int, default=256,
                        help="prompt length per request (default 256)")
    parser.add_argument("--output-tokens", type=int, default=64,
                        help="generation budget per request (default 64)")
    parser.add_argument("--arrival-interval", type=float, default=0.0,
                        help="seconds between request arrivals (default 0: burst)")


def _write_filtered_trace(obs, out: pathlib.Path,
                          request_id: int | None,
                          match: str | None,
                          device: int | None = None,
                          link: str | None = None) -> int:
    """Write the run's Chrome trace — engine tracks merged with the
    per-request and per-device tracks — through the ``--request`` /
    ``--match`` / ``--device`` / ``--link`` filters.  Returns the number
    of events written."""
    import json

    from repro.obs.trace import filter_trace_events

    events = obs.tracer.events
    if obs.reqtrace is not None:
        events = events + obs.reqtrace.chrome_events()
    if obs.cluster is not None:
        events = events + obs.cluster.chrome_events()
    if request_id is not None or match is not None \
            or device is not None or link is not None:
        events = filter_trace_events(events, request_id=request_id,
                                     match=match, device=device, link=link)
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(json.dumps({
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {"producer": "repro.obs"},
    }))
    return len(events)


def _cmd_trace(args: argparse.Namespace) -> int:
    from repro.obs.harness import (
        clustered_serving_run,
        poisson_serving_run,
        traced_serving_run,
    )
    from repro.obs.instrument import Instrumentation

    out = pathlib.Path(args.out)
    if args.target in list_experiments():
        # wall-clock trace of one registered experiment
        obs = Instrumentation.on()
        with obs.tracer.wall_span(f"experiment.{args.target}",
                                  track="experiment", cat="experiment"):
            run_experiment(args.target)
        obs.tracer.write(out)
        print(f"wrote {out} ({obs.tracer.num_events} events)")
        print()
        print(render_time_breakdown(obs.tracer.span_totals("experiment")))
        return 0

    use_cluster = args.cluster or args.device is not None \
        or args.link is not None
    if use_cluster:
        # device/link lanes need cluster telemetry, which needs a
        # multi-device deployment: the clustered Poisson workload
        result, obs = clustered_serving_run(
            model_name=args.target,
            arrival_rate_rps=args.poisson if args.poisson is not None
            else 8.0,
            num_requests=args.requests,
        )
    elif args.poisson is not None:
        from repro.models.zoo import get_model

        model = get_model(args.target)
        obs = Instrumentation.on(
            model=None if args.no_routing else model)
        result = poisson_serving_run(
            arrival_rate_rps=args.poisson,
            num_requests=args.requests,
            model_name=args.target,
            instrumentation=obs,
        )
    else:
        result, obs = traced_serving_run(
            args.target,
            num_requests=args.requests,
            input_tokens=args.input_tokens,
            output_tokens=args.output_tokens,
            arrival_interval=args.arrival_interval,
            with_routing=not args.no_routing,
        )
    if args.timeline is not None:
        try:
            print(obs.reqtrace.render_timeline(args.timeline))
        except KeyError:
            print(f"no trace recorded for request {args.timeline} "
                  f"(run had {result.num_requests} requests)",
                  file=sys.stderr)
            return 1
        return 0
    num_events = _write_filtered_trace(obs, out, args.request, args.match,
                                       device=args.device, link=args.link)
    print(f"wrote {out} ({num_events} events)")
    print(f"{args.target}: {result.num_requests} requests, "
          f"makespan {result.makespan:.4f}s, "
          f"throughput {result.throughput_tok_s:,.0f} tok/s, "
          f"p50 TTFT {result.p50_ttft() * 1e3:.2f}ms, "
          f"p99 TTFT {result.p99_ttft() * 1e3:.2f}ms")
    print()
    print(render_time_breakdown(obs.tracer.span_totals("engine"),
                                makespan=result.makespan))
    if obs.routing is not None:
        telemetry = obs.routing.telemetry
        print()
        print("### Expert routing")
        print()
        for key, value in telemetry.summary().items():
            print(f"- {key}: {value:,.3f}" if isinstance(value, float)
                  else f"- {key}: {value:,}")
        top = telemetry.activation_ordering()[:8]
        print(f"- most-activated experts (all layers): {top}")
    if args.metrics_out:
        metrics_path = pathlib.Path(args.metrics_out)
        metrics_path.parent.mkdir(parents=True, exist_ok=True)
        metrics_path.write_text(obs.metrics.to_prometheus())
        print(f"\nwrote {metrics_path}")
    return 0


def _cmd_metrics(args: argparse.Namespace) -> int:
    from repro.obs.harness import traced_serving_run

    _, obs = traced_serving_run(
        args.model,
        num_requests=args.requests,
        input_tokens=args.input_tokens,
        output_tokens=args.output_tokens,
        arrival_interval=args.arrival_interval,
    )
    text = obs.metrics.to_json() if args.json else obs.metrics.to_prometheus()
    if args.out:
        path = pathlib.Path(args.out)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(text)
        print(f"wrote {path}")
    else:
        print(text, end="")
    return 0


def _bench_ids(args: argparse.Namespace, store) -> list[str]:
    if args.figs:
        return [f.strip() for f in args.figs.split(",") if f.strip()]
    if args.check or args.trend:
        # gate / chart whatever has a recorded baseline; "wallclock" is the
        # suite-timing pseudo-baseline written by benchmarks/bench_wallclock
        # — it has no experiment behind it, so record/check skip it (the
        # trend report still charts its trajectory)
        known = store.known_ids()
        if not args.trend:
            known = [eid for eid in known if eid != "wallclock"]
        if known:
            return known
    return list_experiments()


def _cmd_bench(args: argparse.Namespace) -> int:
    import dataclasses

    from repro.obs.regress import (
        BaselineStore,
        Tolerance,
        compare_fingerprints,
        first_suspect,
        measure_disabled_overhead,
        render_drift_report,
    )

    if not (args.record or args.check or args.trend):
        print("bench: choose one of --record / --check / --trend",
              file=sys.stderr)
        return 2
    store = BaselineStore(args.dir)
    ids = _bench_ids(args, store)

    if args.trend:
        text = _render_trend(store, ids)
        if args.out:
            path = pathlib.Path(args.out)
            path.parent.mkdir(parents=True, exist_ok=True)
            path.write_text(text)
            print(f"wrote {path}")
        else:
            print(text)
        return 0

    from repro.runner import iter_experiments

    _apply_fastpath_flags(args)
    failures = 0
    all_drifts = []
    for exp_id, result in iter_experiments(ids, jobs=args.jobs,
                                           baseline_dir=args.dir):
        fp = result.fingerprint()
        if args.record:
            path = store.record(fp, note=args.note)
            print(f"[recorded] {exp_id} -> {path}")
            continue
        baseline = store.latest_fingerprint(exp_id)
        if baseline is None:
            print(f"[no-baseline] {exp_id}: run `repro bench --record` first",
                  file=sys.stderr)
            failures += 1
            continue
        drifts = compare_fingerprints(baseline, fp, Tolerance(),
                                      check_wall=args.wall)
        if drifts:
            suspect = first_suspect(store.latest_sha(exp_id), args.dir)
            drifts = [dataclasses.replace(d, suspect=suspect) for d in drifts]
            all_drifts.extend(drifts)
            print(f"[DRIFT] {exp_id}: {len(drifts)} metric(s)")
        else:
            print(f"[ok] {exp_id}")
    if args.check:
        if all_drifts:
            print()
            print(render_drift_report(all_drifts), file=sys.stderr)
        if not args.no_overhead:
            report = measure_disabled_overhead()
            print(report.describe())
            if not report.within():
                print("[FAIL] disabled-instrumentation overhead exceeds the "
                      "2% band", file=sys.stderr)
                failures += 1
    return 1 if (failures or all_drifts) else 0


def _render_trend(store, ids: list[str]) -> str:
    """Fingerprint trajectories (sim time + wall runtime) as markdown."""
    lines = ["# Benchmark trend", "",
             "| figure | records | sim_time_total_s trajectory | "
             "runtime_s trajectory | last recorded |", "|---|---:|---|---|---|"]
    charted = 0
    for exp_id in ids:
        records = store.records(exp_id)
        if not records:
            continue
        charted += 1
        sims = [r["fingerprint"].get("sim", {}).get("sim_time_total_s")
                for r in records]
        # the wallclock pseudo-baseline records the whole suite's wall
        # as suite_wall_s; chart it in the same column
        walls = [r["fingerprint"].get("wall", {}).get("runtime_s",
                 r["fingerprint"].get("wall", {}).get("suite_wall_s"))
                 for r in records]
        fmt = lambda xs: " → ".join(
            "?" if x is None else f"{x:.4g}" for x in xs[-6:])
        lines.append(f"| {exp_id} | {len(records)} | {fmt(sims)} | "
                     f"{fmt(walls)} | {records[-1]['recorded_at']} |")
    if charted == 0:
        return "no recorded baselines — run `repro bench --record` first"
    lines.extend(_render_wallclock_trend(store))
    return "\n".join(lines)


def _render_wallclock_trend(store) -> list[str]:
    """The suite-timing pseudo-baseline (``BENCH_wallclock.json``) as its
    own trend section, so the perf trajectory renders next to the
    experiment trends instead of living in a separate report."""
    records = store.records("wallclock")
    if not records:
        return []
    lines = ["", "## Suite wall clock", "",
             "| recorded | suite_wall_s | jobs | cpus | "
             "speedup vs serial baseline |", "|---|---:|---:|---:|---:|"]
    for record in records[-8:]:
        wall = record["fingerprint"].get("wall", {})
        fmt = lambda key: ("?" if wall.get(key) is None
                           else f"{wall[key]:.4g}")
        lines.append(
            f"| {record['recorded_at']} | {fmt('suite_wall_s')} | "
            f"{fmt('jobs')} | {fmt('cpus')} | "
            f"{fmt('speedup_vs_baseline')}x |")
    hidden = len(records) - min(len(records), 8)
    if hidden > 0:
        lines.append(f"\n… {hidden} older record(s) elided.")
    return lines


def _cmd_chaos(args: argparse.Namespace) -> int:
    from repro.faults.harness import ChaosConfig, chaos_serving_run
    from repro.faults.invariants import (
        InvariantViolation,
        check_final_invariants,
        run_digest,
    )

    config = ChaosConfig(
        model_name=args.model,
        num_requests=args.requests,
        input_tokens=args.input_tokens,
        output_tokens=args.output_tokens,
        arrival_interval=args.arrival_interval or 0.005,
        fault_seed=args.fault_seed,
        fault_rate=args.fault_rate,
        horizon_s=args.horizon,
        num_devices=args.devices,
        ep=args.ep,
        replicas=args.replicas,
        policy=args.policy,
        degrade=not args.no_degrade,
    )
    run = chaos_serving_run(config)
    if args.show_schedule:
        print(run.schedule.describe())
        print()
    summary = run.summary
    health = summary.pop("health")
    print(f"chaos run (fault seed {config.fault_seed}, "
          f"rate {config.fault_rate:g}/s, policy {config.policy}):")
    for key, value in summary.items():
        print(f"  {key}: {value:.4f}" if isinstance(value, float)
              else f"  {key}: {value}")
    print(f"  final health: {health}")
    for req in run.result.requests:
        if req.is_failed:
            print(f"  [failed] request {req.request_id}: {req.failure_reason}")

    try:
        check_final_invariants(run.result)
    except InvariantViolation as exc:
        print(f"[FAIL] invariant violated: {exc}", file=sys.stderr)
        return 1

    if args.smoke:
        digest = run_digest(run.result)
        replay = chaos_serving_run(config)
        replay_digest = run_digest(replay.result)
        try:
            check_final_invariants(replay.result)
        except InvariantViolation as exc:
            print(f"[FAIL] replay invariant violated: {exc}", file=sys.stderr)
            return 1
        if digest != replay_digest:
            print(f"[FAIL] same-seed replay diverged:\n  {digest}\n  "
                  f"{replay_digest}", file=sys.stderr)
            return 1
        print(f"[ok] same-seed replay bit-identical ({digest[:16]}…), "
              "invariants held on both runs")
    return 0


def _cmd_fleet(args: argparse.Namespace) -> int:
    import dataclasses

    from repro.faults.invariants import InvariantViolation
    from repro.fleet.harness import (
        fleet_smoke_digest,
        smoke_fleet_config,
        smoke_trace,
    )
    from repro.fleet.invariants import check_fleet_invariants, fleet_digest
    from repro.fleet.simulator import FleetSimulator

    if args.smoke:
        # the CI replay gate: two fresh simulators over the canonical
        # scenario (storm + autoscaler armed) must agree bit-for-bit,
        # with the invariant audit applied inside each digest call
        try:
            first = fleet_smoke_digest(args.policy)
            second = fleet_smoke_digest(args.policy)
        except InvariantViolation as exc:
            print(f"[FAIL] fleet invariant violated: {exc}", file=sys.stderr)
            return 1
        if first != second:
            print(f"[FAIL] same-seed fleet replay diverged:\n  {first}\n  "
                  f"{second}", file=sys.stderr)
            return 1
        print(f"[ok] fleet replay bit-identical ({first[:16]}…), "
              "invariants held on both runs")
        return 0

    config = smoke_fleet_config(policy=args.policy,
                                with_storm=not args.no_storm,
                                with_autoscaler=not args.no_autoscale)
    if args.replicas is not None:
        config = dataclasses.replace(config, num_replicas=args.replicas)
    trace = smoke_trace(num_requests=args.requests, seed=args.seed)
    result = FleetSimulator(config).run(trace)
    try:
        check_fleet_invariants(result, config.autoscaler)
    except InvariantViolation as exc:
        print(f"[FAIL] fleet invariant violated: {exc}", file=sys.stderr)
        return 1

    print(f"fleet run ({config.num_replicas} replicas, policy "
          f"{result.policy}, seed {args.seed}):")
    print(f"  requests: {result.num_requests}  finished: "
          f"{result.num_finished}  shed: {result.num_shed}  "
          f"re-routed: {result.num_rerouted}")
    print(f"  availability: {result.availability:.4f}  makespan: "
          f"{result.makespan:.4f}s  throughput: "
          f"{result.throughput_tok_s:,.0f} tok/s")
    print(f"  TTFT p50/p99: {result.p50_ttft() * 1e3:.2f} / "
          f"{result.p99_ttft() * 1e3:.2f} ms")
    if result.kv_lookups:
        print(f"  prefix-cache hit rate: {result.kv_hit_rate:.2%} "
              f"({result.kv_hits}/{result.kv_lookups})")
    print(f"  kills: {result.num_kills}  heals: {len(result.heals)}  "
          f"peak replicas: {result.peak_replicas}")
    for budget in result.budgets:
        print(f"  SLO '{budget.objective}': budget consumed "
              f"{budget.budget_consumed:.2f}x")
    print("  replicas:")
    for row in result.replica_summaries():
        retired = ("" if row["retired_at_s"] is None
                   else f"  retired@{row['retired_at_s']:.3f}s")
        print(f"    #{row['replica_id']} {row['state']:>8s}  assigned "
              f"{row['assigned']:3d}  finished {row['finished']:3d}  "
              f"busy {row['busy_s']:.3f}s{retired}")
    print(f"  digest: {fleet_digest(result)}")
    return 0


def _cmd_slo(args: argparse.Namespace) -> int:
    import json

    from repro.obs.slo import SLO, fault_storm_config, run_slo_scenario

    slos = None
    if args.spec:
        slos = [SLO.parse(spec) for spec in args.spec]
    config = fault_storm_config()
    if args.fault_seed is not None:
        import dataclasses

        config = dataclasses.replace(config, fault_seed=args.fault_seed)
    kwargs = dict(config=config, hour_s=args.hour_s,
                  out_dir=args.bundle_dir)
    if slos is not None:
        kwargs["slos"] = slos
    report = run_slo_scenario(**kwargs)

    print(f"SLO scenario '{report['scenario']}' "
          f"(1 wall hour = {report['hour_s']:g} simulated s):")
    for budget in report["budgets"]:
        print(f"  {budget['objective']}: attainment "
              f"{budget['attainment']:.4f}, "
              f"{budget['bad']}/{budget['total']} bad, "
              f"budget consumed {budget['budget_consumed']:.2f}x")
    if report["alerts"]:
        for alert in report["alerts"]:
            print(f"  [page] {alert['rule']} at t={alert['time']:.4f}s: "
                  f"{alert['message']}")
    else:
        print("  no burn-rate alerts fired")
    for bundle in report["bundles"]:
        print(f"  flight-recorder bundle: {bundle}")

    if args.out:
        path = pathlib.Path(args.out)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
        print(f"wrote {path}")

    if args.check:
        replay = run_slo_scenario(**kwargs)
        blob = json.dumps(report, sort_keys=True)
        if blob != json.dumps(replay, sort_keys=True):
            print("[FAIL] SLO replay diverged from the first run",
                  file=sys.stderr)
            return 1
        if not report["alerts"]:
            print("[FAIL] fault-storm scenario fired no burn-rate alert",
                  file=sys.stderr)
            return 1
        print(f"[ok] replay byte-identical, {len(report['alerts'])} "
              "burn-rate alert(s) fired deterministically")
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    import tempfile

    from repro.obs.report import (
        render_bundle_report,
        render_run_report,
        render_scenario_report,
        report_html,
    )

    def build() -> str:
        if args.bundle:
            return render_bundle_report(args.bundle)
        if args.slo_gate:
            from repro.obs.slo import fault_storm_config, run_slo_scenario

            # bundles land in a throwaway dir; only basenames reach the
            # report, so the output is byte-stable across runs
            with tempfile.TemporaryDirectory() as tmp:
                scenario = run_slo_scenario(config=fault_storm_config(),
                                            out_dir=tmp, cluster=True)
                return render_scenario_report(scenario,
                                              bundle_root=pathlib.Path(tmp))
        from repro.obs.alerts import AlertMonitor
        from repro.obs.harness import clustered_serving_run
        from repro.parallel.plan import ParallelPlan

        plan = ParallelPlan(tp=args.tp, ep=args.ep, pp=args.pp)
        result, obs = clustered_serving_run(
            model_name=args.model, plan=plan,
            arrival_rate_rps=args.rate, num_requests=args.requests,
            seed=args.seed, window_s=args.window_s,
            alerts=AlertMonitor(),
        )
        return render_run_report(
            result, obs, title=f"Run report: {args.model} ({plan.label})")

    report = build()
    if args.check:
        replay = build()
        if report != replay:
            print("[FAIL] report replay diverged from the first run",
                  file=sys.stderr)
            return 1
        print(f"[ok] report byte-identical across two seeded runs "
              f"({len(report)} bytes)")
    if args.out:
        path = pathlib.Path(args.out)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(report)
        print(f"wrote {path}")
    if args.html:
        path = pathlib.Path(args.html)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(report_html(report))
        print(f"wrote {path}")
    if not args.out and not args.html and not args.check:
        print(report, end="")
    return 0


def _cmd_profile(args: argparse.Namespace) -> int:
    from repro.core.report import render_profile_report
    from repro.obs.instrument import Instrumentation
    from repro.obs.profile import CostProfile, profile_serving_run

    out = pathlib.Path(args.out)
    out.parent.mkdir(parents=True, exist_ok=True)
    if args.target in list_experiments():
        # wall-clock attribution of one registered experiment
        obs = Instrumentation.on()
        with obs.tracer.wall_span(f"experiment.{args.target}",
                                  track="experiment", cat="experiment"):
            run_experiment(args.target)
        profile = CostProfile.from_tracer(obs.tracer)
        out.write_text(profile.folded(tracks=["experiment"]))
        print(f"wrote {out}")
        print()
        print(render_time_breakdown(obs.tracer.span_totals("experiment")))
        return 0

    report = profile_serving_run(
        args.target,
        num_requests=args.requests,
        input_tokens=args.input_tokens,
        output_tokens=args.output_tokens,
        arrival_interval=args.arrival_interval,
        speedup=args.speedup,
    )
    out.write_text(report.folded())
    print(f"wrote {out} (load with flamegraph.pl / speedscope)")
    print()
    print(render_profile_report(report))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="moe-inference-bench",
        description="Regenerate the MoE-Inference-Bench experiments on simulated hardware.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_list = sub.add_parser("list", help="list experiment ids")
    p_list.set_defaults(func=_cmd_list)

    p_run = sub.add_parser("run", help="run one or more experiments")
    p_run.add_argument("exp_id",
                       help="experiment id, or comma-separated ids "
                            "(see `list`)")
    p_run.add_argument("--out", help="directory for markdown/CSV output")
    _add_runner_args(p_run)
    p_run.set_defaults(func=_cmd_run)

    p_all = sub.add_parser("run-all", help="run every experiment")
    p_all.add_argument("--out", help="directory for markdown/CSV output")
    _add_runner_args(p_all)
    p_all.set_defaults(func=_cmd_run_all)

    p_sum = sub.add_parser(
        "summary", help="run everything into one markdown report"
    )
    p_sum.add_argument("--out", help="output markdown file")
    _add_runner_args(p_sum)
    p_sum.set_defaults(func=_cmd_summary)

    p_trace = sub.add_parser(
        "trace",
        help="record a Chrome trace of a serving workload (or an experiment)",
    )
    p_trace.add_argument(
        "target", nargs="?", default="OLMoE-1B-7B",
        help="model name for a reference serving run, or an experiment id "
             "for a wall-clock experiment trace (default OLMoE-1B-7B)",
    )
    _add_workload_args(p_trace)
    p_trace.add_argument("--out", default="trace.json",
                         help="trace output path (default trace.json)")
    p_trace.add_argument("--metrics-out",
                         help="also write Prometheus metrics to this path")
    p_trace.add_argument("--no-routing", action="store_true",
                         help="disable the expert-routing probe")
    p_trace.add_argument("--poisson", type=float, metavar="RATE",
                         help="use the ext_serving_load Poisson workload "
                              "at RATE requests/s instead of the "
                              "fixed-shape burst")
    p_trace.add_argument("--request", type=int, metavar="ID",
                         help="keep only events belonging to this "
                              "request id")
    p_trace.add_argument("--match", metavar="REGEX",
                         help="keep only events whose span name matches "
                              "this regex")
    p_trace.add_argument("--cluster", action="store_true",
                         help="run the multi-device clustered workload so "
                              "the trace carries per-device occupancy "
                              "lanes and per-link utilization counters")
    p_trace.add_argument("--device", type=int, metavar="ID",
                         help="keep only events of this device lane "
                              "(implies --cluster)")
    p_trace.add_argument("--link", metavar="NAME",
                         help="keep only events of this interconnect link "
                              "(e.g. ep_alltoall; implies --cluster)")
    p_trace.add_argument("--timeline", type=int, metavar="ID",
                         help="print the causal lifecycle timeline of one "
                              "request instead of writing a trace")
    p_trace.set_defaults(func=_cmd_trace)

    p_metrics = sub.add_parser(
        "metrics",
        help="run the reference serving workload and print its metrics",
    )
    p_metrics.add_argument("model", nargs="?", default="OLMoE-1B-7B",
                           help="model name (default OLMoE-1B-7B)")
    _add_workload_args(p_metrics)
    p_metrics.add_argument("--json", action="store_true",
                           help="JSON snapshot instead of Prometheus text")
    p_metrics.add_argument("--out", help="write to a file instead of stdout")
    p_metrics.set_defaults(func=_cmd_metrics)

    p_bench = sub.add_parser(
        "bench",
        help="record / check / chart experiment fingerprint baselines",
    )
    p_bench.add_argument("--record", action="store_true",
                         help="append current fingerprints to the baselines")
    p_bench.add_argument("--check", action="store_true",
                         help="diff current fingerprints against the "
                              "baselines; exit 1 on drift")
    p_bench.add_argument("--trend", action="store_true",
                         help="chart recorded fingerprint trajectories")
    p_bench.add_argument("--figs",
                         help="comma-separated experiment ids (default: all "
                              "with baselines, else all)")
    p_bench.add_argument("--dir", default=".",
                         help="directory holding BENCH_<figure>.json "
                              "(default: repo root)")
    p_bench.add_argument("--note", default="",
                         help="annotation stored with --record")
    p_bench.add_argument("--wall", action="store_true",
                         help="also gate wall-clock metrics (loose band)")
    p_bench.add_argument("--no-overhead", action="store_true",
                         help="skip the disabled-instrumentation overhead "
                              "gate during --check")
    p_bench.add_argument("--out", help="write the --trend report here")
    _add_runner_args(p_bench)
    p_bench.set_defaults(func=_cmd_bench)

    p_chaos = sub.add_parser(
        "chaos",
        help="serve a deterministic workload under a seeded fault schedule",
    )
    p_chaos.add_argument("--model", default="OLMoE-1B-7B",
                         help="model name (default OLMoE-1B-7B)")
    _add_workload_args(p_chaos)
    p_chaos.add_argument("--fault-seed", type=int, default=0,
                         help="seed of the fault schedule (default 0)")
    p_chaos.add_argument("--fault-rate", type=float, default=2.0,
                         help="total fault events per simulated second "
                              "(default 2.0)")
    p_chaos.add_argument("--horizon", type=float, default=8.0,
                         help="fault-schedule horizon in simulated seconds "
                              "(default 8.0)")
    p_chaos.add_argument("--devices", type=int, default=4,
                         help="devices in the fault domain (default 4)")
    p_chaos.add_argument("--ep", type=int, default=4,
                         help="expert-parallel ranks (default 4)")
    p_chaos.add_argument("--replicas", type=int, default=2,
                         help="expert replicas across EP ranks (default 2)")
    p_chaos.add_argument("--policy", choices=("retry", "failfast"),
                         default="retry",
                         help="recovery policy for fault-killed requests")
    p_chaos.add_argument("--no-degrade", action="store_true",
                         help="disable graceful top-k degradation on "
                              "expert-coverage loss")
    p_chaos.add_argument("--show-schedule", action="store_true",
                         help="print the generated fault schedule")
    p_chaos.add_argument("--smoke", action="store_true",
                         help="replay with the same seeds and assert "
                              "bit-identical digests + invariants (CI gate)")
    p_chaos.set_defaults(func=_cmd_chaos)

    p_fleet = sub.add_parser(
        "fleet",
        help="route a diurnal templated trace across a multi-replica "
             "fleet (router + admission + autoscaler + replica storm)",
    )
    p_fleet.add_argument("--policy", choices=("round_robin", "least_kv",
                                              "prefix_affinity"),
                         default="prefix_affinity",
                         help="router policy (default prefix_affinity)")
    p_fleet.add_argument("--replicas", type=int, default=None,
                         help="override the initial fleet width "
                              "(default: the canonical scenario's 3)")
    p_fleet.add_argument("--requests", type=int, default=96,
                         help="trace length (default 96)")
    p_fleet.add_argument("--seed", type=int, default=23,
                         help="trace seed (default 23; the storm keeps "
                              "the canonical schedule)")
    p_fleet.add_argument("--no-storm", action="store_true",
                         help="disarm the replica kill/heal storm")
    p_fleet.add_argument("--no-autoscale", action="store_true",
                         help="freeze the fleet at its initial width")
    p_fleet.add_argument("--smoke", action="store_true",
                         help="replay the canonical scenario twice and "
                              "assert bit-identical digests + invariants "
                              "(CI gate)")
    p_fleet.set_defaults(func=_cmd_fleet)

    p_slo = sub.add_parser(
        "slo",
        help="run the fault-storm scenario with SLO burn-rate paging "
             "armed and report error-budget burn",
    )
    p_slo.add_argument("--spec", action="append", metavar="SPEC",
                       help="declarative SLO, repeatable (e.g. "
                            "'p99 ttft < 0.5s', 'availability >= 99.9%%'; "
                            "default: the canonical pair)")
    p_slo.add_argument("--hour-s", type=float, default=1.0,
                       help="simulated seconds standing in for one wall "
                            "hour in the SRE burn windows (default 1.0)")
    p_slo.add_argument("--fault-seed", type=int, default=None,
                       help="override the storm's fault-schedule seed")
    p_slo.add_argument("--bundle-dir",
                       help="dump flight-recorder bundles here when a "
                            "burn alert fires")
    p_slo.add_argument("--out", help="write the JSON report here")
    p_slo.add_argument("--check", action="store_true",
                       help="replay the scenario and assert the report is "
                            "byte-identical with >=1 burn alert fired "
                            "(CI gate)")
    p_slo.set_defaults(func=_cmd_slo)

    p_report = sub.add_parser(
        "report",
        help="fold an observed serving run (or a flight-recorder bundle) "
             "into one deterministic markdown/HTML run report",
    )
    p_report.add_argument("model", nargs="?", default="OLMoE-1B-7B",
                          help="model name for the clustered Poisson "
                               "workload (default OLMoE-1B-7B)")
    p_report.add_argument("--tp", type=int, default=4,
                          help="tensor-parallel degree (default 4)")
    p_report.add_argument("--ep", type=int, default=4,
                          help="expert-parallel degree (default 4)")
    p_report.add_argument("--pp", type=int, default=1,
                          help="pipeline-parallel degree (default 1)")
    p_report.add_argument("--rate", type=float, default=8.0,
                          help="Poisson arrival rate in requests/s "
                               "(default 8.0)")
    p_report.add_argument("--requests", type=int, default=48,
                          help="number of requests (default 48)")
    p_report.add_argument("--seed", type=int, default=11,
                          help="workload seed (default 11)")
    p_report.add_argument("--window-s", type=float, default=0.05,
                          help="telemetry window length in simulated "
                               "seconds (default 0.05)")
    p_report.add_argument("--bundle", metavar="DIR",
                          help="render a flight-recorder bundle directory "
                               "instead of running a workload")
    p_report.add_argument("--slo-gate", action="store_true",
                          help="run the fault-storm SLO scenario with "
                               "cluster telemetry armed and fold its "
                               "bundles into the report (the CI artifact)")
    p_report.add_argument("--out", help="write the markdown report here")
    p_report.add_argument("--html",
                          help="also write an HTML-wrapped copy here")
    p_report.add_argument("--check", action="store_true",
                          help="build the report twice and assert the "
                               "bytes are identical (determinism gate)")
    p_report.set_defaults(func=_cmd_report)

    p_prof = sub.add_parser(
        "profile",
        help="attribute a run's time per phase × component "
             "(folded-stack output + roofline advice)",
    )
    p_prof.add_argument(
        "target", nargs="?", default="OLMoE-1B-7B",
        help="model name for a simulated serving profile, or an experiment "
             "id for a wall-clock experiment profile (default OLMoE-1B-7B)",
    )
    _add_workload_args(p_prof)
    p_prof.add_argument("--out", default="profile.folded",
                        help="folded-stack output path (default "
                             "profile.folded)")
    p_prof.add_argument("--speedup", type=float, default=0.10,
                        help="hypothetical component speedup priced by the "
                             "advice table (default 0.10)")
    p_prof.set_defaults(func=_cmd_profile)

    from repro.lint.cli import add_lint_parser

    add_lint_parser(sub)

    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
