"""Tabular result containers for experiments.

A :class:`ResultTable` is a light, dependency-free column/row store with
markdown and CSV emitters — the common currency between experiment
implementations, the CLI, and the benchmark harness.  ``None`` cells render
as ``OOM`` (the paper's convention: missing points indicate out-of-memory).
"""

from __future__ import annotations

import csv
import io
from dataclasses import dataclass, field
from typing import Any, Iterable

__all__ = ["ResultTable"]

_OOM_MARKER = "OOM"


@dataclass
class ResultTable:
    """Columnar results with ordered rows."""

    name: str
    columns: tuple[str, ...]
    rows: list[dict[str, Any]] = field(default_factory=list)

    def __post_init__(self) -> None:
        if not self.columns:
            raise ValueError("a ResultTable needs at least one column")
        if len(set(self.columns)) != len(self.columns):
            raise ValueError("duplicate column names")

    def add(self, **values: Any) -> None:
        """Append a row; every value must belong to a declared column."""
        unknown = set(values) - set(self.columns)
        if unknown:
            raise KeyError(f"unknown columns {sorted(unknown)}; have {self.columns}")
        self.rows.append({c: values.get(c) for c in self.columns})

    def column(self, name: str) -> list[Any]:
        if name not in self.columns:
            raise KeyError(f"no column {name!r}; have {self.columns}")
        return [r[name] for r in self.rows]

    def where(self, **conditions: Any) -> "ResultTable":
        """Rows matching all equality conditions, as a new table."""
        out = ResultTable(self.name, self.columns)
        out.rows = [
            dict(r) for r in self.rows
            if all(r.get(k) == v for k, v in conditions.items())
        ]
        return out

    def pivot(self, index: str, column: str, value: str) -> dict[Any, dict[Any, Any]]:
        """Reshape to ``{index_value: {column_value: cell}}``.

        Raises on duplicate (index, column) pairs — a pivot over an
        under-constrained table is almost always a bug in the sweep.
        """
        for name in (index, column, value):
            if name not in self.columns:
                raise KeyError(f"no column {name!r}; have {self.columns}")
        out: dict[Any, dict[Any, Any]] = {}
        for r in self.rows:
            cell = out.setdefault(r[index], {})
            if r[column] in cell:
                raise ValueError(
                    f"duplicate cell ({r[index]!r}, {r[column]!r}) — add more "
                    "conditions via where() before pivoting"
                )
            cell[r[column]] = r[value]
        return out

    def __len__(self) -> int:
        return len(self.rows)

    def __iter__(self) -> Iterable[dict[str, Any]]:
        return iter(self.rows)

    # ------------------------------------------------------------------ #
    # rendering
    # ------------------------------------------------------------------ #

    @staticmethod
    def _fmt(value: Any) -> str:
        if value is None:
            return _OOM_MARKER
        if isinstance(value, bool):
            return "yes" if value else "no"
        if isinstance(value, float):
            if value == 0:
                return "0"
            if abs(value) >= 1000:
                return f"{value:,.0f}"
            if abs(value) >= 10:
                return f"{value:.1f}"
            if abs(value) >= 0.01:
                return f"{value:.3f}"
            return f"{value:.3g}"
        return str(value)

    def to_markdown(self) -> str:
        header = "| " + " | ".join(self.columns) + " |"
        sep = "|" + "|".join("---" for _ in self.columns) + "|"
        lines = [header, sep]
        for r in self.rows:
            lines.append("| " + " | ".join(self._fmt(r[c]) for c in self.columns) + " |")
        return "\n".join(lines)

    def to_csv(self) -> str:
        buf = io.StringIO()
        writer = csv.writer(buf)
        writer.writerow(self.columns)
        for r in self.rows:
            writer.writerow(["" if r[c] is None else r[c] for c in self.columns])
        return buf.getvalue()
