"""The benchmarking suite core: metrics, experiments, registry, reports, CLI."""

from repro.core.charts import bar_chart, heatmap, line_chart
from repro.core.experiment import ExperimentResult, Sweep, sweep
from repro.core.metrics import (
    GenerationShape,
    InferenceMetrics,
    itl_eq1,
    throughput_eq2,
)
from repro.core.registry import (
    experiment,
    get_experiment,
    list_experiments,
    run_experiment,
)
from repro.core.report import render_markdown, render_summary, write_report
from repro.core.results import ResultTable

__all__ = [
    "Candidate",
    "DeploymentTarget",
    "Recommendation",
    "advise",
    "bar_chart",
    "heatmap",
    "line_chart",
    "ExperimentResult",
    "Sweep",
    "sweep",
    "GenerationShape",
    "InferenceMetrics",
    "itl_eq1",
    "throughput_eq2",
    "experiment",
    "get_experiment",
    "list_experiments",
    "run_experiment",
    "render_markdown",
    "render_summary",
    "write_report",
    "ResultTable",
]

# the advisor consumes the performance model, which itself imports
# repro.core.metrics — load it lazily (PEP 562) to keep imports acyclic
_LAZY = {
    "Candidate": "repro.core.advisor",
    "DeploymentTarget": "repro.core.advisor",
    "Recommendation": "repro.core.advisor",
    "advise": "repro.core.advisor",
}


def __getattr__(name: str):
    if name in _LAZY:
        import importlib

        module = importlib.import_module(_LAZY[name])
        value = getattr(module, name)
        globals()[name] = value
        return value
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
