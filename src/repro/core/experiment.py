"""Experiment abstractions: specs, results, and the sweep runner.

An experiment is a deterministic function producing an
:class:`ExperimentResult` — one or more :class:`ResultTable` objects plus
the paper's corresponding claim, so reports can juxtapose paper-vs-measured
for every figure (EXPERIMENTS.md is generated from these).
"""

from __future__ import annotations

import itertools
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Mapping, Sequence

from repro.core.results import ResultTable

__all__ = ["ExperimentResult", "sweep", "Sweep"]


@dataclass
class ExperimentResult:
    """Everything one experiment produced."""

    exp_id: str
    title: str
    paper_claim: str
    tables: list[ResultTable] = field(default_factory=list)
    observations: list[str] = field(default_factory=list)
    charts: list[str] = field(default_factory=list)
    """Pre-rendered text charts (see :mod:`repro.core.charts`)."""
    breakdown: str = ""
    """Optional pre-rendered "where the time went" section (see
    :func:`repro.core.report.render_time_breakdown`)."""
    runtime_s: float = 0.0

    def table(self, name: str) -> ResultTable:
        for t in self.tables:
            if t.name == name:
                return t
        known = [t.name for t in self.tables]
        raise KeyError(f"no table {name!r} in {self.exp_id}; have {known}")

    def observe(self, message: str) -> None:
        """Record a headline observation (rendered into EXPERIMENTS.md)."""
        self.observations.append(message)

    def add_chart(self, chart: str) -> None:
        """Attach a rendered text chart (shown as a code block in reports)."""
        self.charts.append(chart)

    def fingerprint(self):
        """Deterministic digest of this result for the regression gate
        (see :mod:`repro.obs.fingerprint`)."""
        from repro.obs.fingerprint import fingerprint_result

        return fingerprint_result(self)


@dataclass(frozen=True)
class Sweep:
    """A named cartesian parameter grid."""

    params: Mapping[str, Sequence[Any]]

    def __post_init__(self) -> None:
        if not self.params:
            raise ValueError("a sweep needs at least one parameter")
        for k, v in self.params.items():
            if len(v) == 0:
                raise ValueError(f"sweep parameter {k!r} has no values")

    def __iter__(self) -> Iterable[dict[str, Any]]:
        keys = list(self.params)
        for combo in itertools.product(*(self.params[k] for k in keys)):
            yield dict(zip(keys, combo))

    def __len__(self) -> int:
        n = 1
        for v in self.params.values():
            n *= len(v)
        return n


def sweep(
    table: ResultTable,
    grid: Sweep | Mapping[str, Sequence[Any]],
    fn: Callable[..., Mapping[str, Any] | None],
) -> ResultTable:
    """Run ``fn(**point)`` over the grid, appending each returned row.

    ``fn`` returns a mapping of column values (merged with the grid point),
    or ``None`` to record the point as infeasible (``None`` cells render as
    OOM).  Exceptions from ``fn`` propagate — infeasibility must be
    signalled by the return value, not by raising.
    """
    if not isinstance(grid, Sweep):
        grid = Sweep(grid)
    for point in grid:
        row = fn(**point)
        values = dict(point)
        if row is not None:
            values.update(row)
        table.add(**{k: v for k, v in values.items() if k in table.columns})
    return table


def timed(fn: Callable[[], ExperimentResult]) -> ExperimentResult:
    """Run an experiment function, stamping its wall-clock runtime."""
    start = time.perf_counter()
    result = fn()
    result.runtime_s = time.perf_counter() - start
    return result
