"""Deployment advisor: from workload + SLO to a recommended deployment.

The paper's abstract promises "insights for the efficient deployment of
MoEs"; this module turns the suite's models into an answer machine.  Given
a model, a node, a workload shape and latency SLOs, the advisor searches
parallel plans × precisions, filters by feasibility (memory) and SLO
attainment (closed-form TTFT/ITL), and ranks the survivors by
cost-efficiency (throughput per device, with tokens/joule reported).

Every recommendation carries its *rationale* — which constraint eliminated
which alternatives — so the output reads like the paper's insights rather
than a bare argmax.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.hardware.spec import HardwareSpec
from repro.models.config import ModelConfig
from repro.optim.quantization import FP8_CONFIG, FP16_CONFIG, QuantConfig
from repro.parallel.hybrid import enumerate_plans
from repro.parallel.plan import ParallelPlan
from repro.perfmodel.energy import energy_for_generation
from repro.perfmodel.inference import InferencePerfModel

__all__ = ["DeploymentTarget", "Recommendation", "Candidate", "advise"]


@dataclass(frozen=True)
class DeploymentTarget:
    """What the deployment must achieve."""

    batch_size: int
    input_tokens: int
    output_tokens: int
    ttft_slo_s: float = float("inf")
    itl_slo_s: float = float("inf")
    max_devices: int = 8

    def __post_init__(self) -> None:
        if min(self.batch_size, self.input_tokens, self.output_tokens) <= 0:
            raise ValueError("workload shape values must be positive")
        if self.ttft_slo_s <= 0 or self.itl_slo_s <= 0:
            raise ValueError("SLOs must be positive")
        if self.max_devices < 1:
            raise ValueError("max_devices must be >= 1")


@dataclass(frozen=True)
class Candidate:
    """One evaluated deployment option."""

    plan: ParallelPlan
    quant: QuantConfig
    fits: bool
    meets_ttft: bool
    meets_itl: bool
    throughput_tok_s: float
    throughput_per_device: float
    ttft_s: float
    itl_per_step_s: float
    tokens_per_joule: float

    @property
    def feasible(self) -> bool:
        return self.fits and self.meets_ttft and self.meets_itl

    @property
    def label(self) -> str:
        return f"{self.plan.num_devices}x {self.plan.label} @{self.quant.name}"


@dataclass
class Recommendation:
    """The advisor's answer."""

    best: Candidate | None
    candidates: list[Candidate]
    rationale: list[str] = field(default_factory=list)

    def describe(self) -> str:
        lines = list(self.rationale)
        if self.best is None:
            lines.append("no feasible deployment — relax the SLOs or add devices")
        else:
            b = self.best
            lines.append(
                f"recommend {b.label}: {b.throughput_tok_s:,.0f} tok/s "
                f"({b.throughput_per_device:,.0f}/device), TTFT {b.ttft_s:.3f}s, "
                f"{b.tokens_per_joule:.2f} tok/J"
            )
        return "\n".join(lines)


def advise(
    model: ModelConfig,
    hardware: HardwareSpec,
    target: DeploymentTarget,
    quants: tuple[QuantConfig, ...] = (FP16_CONFIG, FP8_CONFIG),
) -> Recommendation:
    """Search plans × precisions for the cheapest SLO-meeting deployment."""
    candidates: list[Candidate] = []
    device_counts = [n for n in (1, 2, 4, 8, 16)
                     if n <= min(target.max_devices, hardware.max_devices)]
    for n in device_counts:
        for plan in enumerate_plans(model, n):
            for quant in quants:
                pm = InferencePerfModel(model, hardware, plan=plan, quant=quant)
                fits = pm.fits(target.batch_size,
                               target.input_tokens + target.output_tokens)
                m = pm.generate(target.batch_size, target.input_tokens,
                                target.output_tokens, check_memory=False)
                energy = energy_for_generation(pm, m)
                candidates.append(Candidate(
                    plan=plan,
                    quant=quant,
                    fits=fits,
                    meets_ttft=m.ttft_s <= target.ttft_slo_s,
                    meets_itl=m.itl_per_step_s <= target.itl_slo_s,
                    throughput_tok_s=m.throughput_tok_s,
                    throughput_per_device=m.throughput_tok_s / plan.num_devices,
                    ttft_s=m.ttft_s,
                    itl_per_step_s=m.itl_per_step_s,
                    tokens_per_joule=energy.tokens_per_joule(m.shape.total_tokens),
                ))

    rationale: list[str] = []
    n_all = len(candidates)
    oom = [c for c in candidates if not c.fits]
    if oom:
        rationale.append(
            f"{len(oom)}/{n_all} options eliminated by memory "
            f"(e.g. {oom[0].label} does not fit)"
        )
    slow_ttft = [c for c in candidates if c.fits and not c.meets_ttft]
    if slow_ttft:
        worst = max(slow_ttft, key=lambda c: c.ttft_s)
        rationale.append(
            f"{len(slow_ttft)} options miss the TTFT SLO "
            f"(worst: {worst.label} at {worst.ttft_s:.3f}s)"
        )
    slow_itl = [c for c in candidates
                if c.fits and c.meets_ttft and not c.meets_itl]
    if slow_itl:
        rationale.append(f"{len(slow_itl)} options miss the ITL SLO")

    feasible = [c for c in candidates if c.feasible]
    best = max(feasible, key=lambda c: c.throughput_per_device, default=None)
    if best is not None and len(feasible) > 1:
        runner = sorted(feasible, key=lambda c: -c.throughput_per_device)[1]
        rationale.append(
            f"{best.label} beats {runner.label} by "
            f"{100 * (best.throughput_per_device / runner.throughput_per_device - 1):.0f}% "
            "per-device throughput"
        )
    return Recommendation(best=best, candidates=candidates, rationale=rationale)
