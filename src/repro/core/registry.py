"""Experiment registry: every paper table/figure keyed by its id.

Experiment modules in :mod:`repro.experiments` self-register at import via
the :func:`experiment` decorator; :func:`get_experiment` /
:func:`run_experiment` are the lookup/execution entry points shared by the
CLI and the pytest benchmarks.
"""

from __future__ import annotations

import importlib
from typing import Callable

from repro.core.experiment import ExperimentResult, timed

__all__ = ["experiment", "get_experiment", "list_experiments", "run_experiment"]

_REGISTRY: dict[str, Callable[[], ExperimentResult]] = {}
_LOADED = False


def experiment(exp_id: str) -> Callable[[Callable[[], ExperimentResult]],
                                        Callable[[], ExperimentResult]]:
    """Register ``fn`` as the implementation of experiment ``exp_id``."""

    def decorator(fn: Callable[[], ExperimentResult]) -> Callable[[], ExperimentResult]:
        if exp_id in _REGISTRY:
            raise ValueError(f"experiment {exp_id!r} registered twice")
        _REGISTRY[exp_id] = fn
        return fn

    return decorator


def _ensure_loaded() -> None:
    global _LOADED
    if not _LOADED:
        importlib.import_module("repro.experiments")
        _LOADED = True


def list_experiments() -> list[str]:
    """All registered experiment ids, in paper order."""
    _ensure_loaded()

    def key(eid: str) -> tuple:
        if eid.startswith("fig"):
            return (0, int(eid[3:].split("_")[0]), eid)
        if eid.startswith("table"):
            return (0, 0, eid)
        return (1, 0, eid)  # ablations last

    return sorted(_REGISTRY, key=key)


def get_experiment(exp_id: str) -> Callable[[], ExperimentResult]:
    _ensure_loaded()
    try:
        return _REGISTRY[exp_id]
    except KeyError:
        known = ", ".join(list_experiments())
        raise KeyError(f"unknown experiment {exp_id!r}; known: {known}") from None


def run_experiment(exp_id: str) -> ExperimentResult:
    """Execute one experiment, with runtime stamping."""
    return timed(get_experiment(exp_id))
