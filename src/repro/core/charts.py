"""Terminal chart rendering for experiment results.

The original paper presents its evaluation as figures; in an offline,
dependency-free environment the closest faithful artifact is a text chart.
This module renders line charts (multi-series), horizontal bar charts, and
intensity heatmaps as fixed-width text blocks, which experiments attach to
their results and the report writer embeds as code blocks.
"""

from __future__ import annotations

import math
from typing import Mapping, Sequence

import numpy as np

__all__ = ["line_chart", "bar_chart", "heatmap"]

_GLYPHS = " .:-=+*#%@"
_MARKERS = "ox*+#%@&"


def _format_val(v: float) -> str:
    if v == 0:
        return "0"
    if abs(v) >= 10_000:
        return f"{v:,.0f}"
    if abs(v) >= 100:
        return f"{v:.0f}"
    if abs(v) >= 1:
        return f"{v:.1f}"
    return f"{v:.3g}"


def line_chart(
    series: Mapping[str, Sequence[tuple[float, float]]],
    title: str = "",
    width: int = 60,
    height: int = 16,
    logx: bool = False,
) -> str:
    """Render multiple ``(x, y)`` series on one axis grid.

    Each series gets its own marker; a legend line maps markers to names.
    ``logx`` spaces the x axis logarithmically (batch/length sweeps).
    """
    if not series:
        raise ValueError("need at least one series")
    if width < 10 or height < 4:
        raise ValueError("chart too small")
    pts = [(x, y) for s in series.values() for x, y in s]
    if not pts:
        raise ValueError("series contain no points")
    xs = [p[0] for p in pts]
    ys = [p[1] for p in pts]
    x_lo, x_hi = min(xs), max(xs)
    y_lo, y_hi = min(ys), max(ys)
    if y_hi == y_lo:
        y_hi = y_lo + 1.0
    if logx and x_lo <= 0:
        raise ValueError("logx requires positive x values")

    def x_pos(x: float) -> int:
        if x_hi == x_lo:
            return 0
        if logx:
            f = (math.log(x) - math.log(x_lo)) / (math.log(x_hi) - math.log(x_lo))
        else:
            f = (x - x_lo) / (x_hi - x_lo)
        return min(width - 1, int(round(f * (width - 1))))

    def y_pos(y: float) -> int:
        f = (y - y_lo) / (y_hi - y_lo)
        return min(height - 1, int(round(f * (height - 1))))

    grid = [[" "] * width for _ in range(height)]
    for idx, (name, data) in enumerate(series.items()):
        marker = _MARKERS[idx % len(_MARKERS)]
        for x, y in data:
            grid[height - 1 - y_pos(y)][x_pos(x)] = marker

    label_w = max(len(_format_val(y_hi)), len(_format_val(y_lo)))
    lines = []
    if title:
        lines.append(title)
    for r, row in enumerate(grid):
        label = ""
        if r == 0:
            label = _format_val(y_hi)
        elif r == height - 1:
            label = _format_val(y_lo)
        lines.append(f"{label:>{label_w}} |" + "".join(row))
    lines.append(" " * label_w + " +" + "-" * width)
    x_left, x_right = _format_val(x_lo), _format_val(x_hi)
    pad = width - len(x_left) - len(x_right)
    lines.append(" " * (label_w + 2) + x_left + " " * max(1, pad) + x_right)
    legend = "   ".join(
        f"{_MARKERS[i % len(_MARKERS)]}={name}" for i, name in enumerate(series)
    )
    lines.append(f"legend: {legend}")
    return "\n".join(lines)


def bar_chart(
    values: Mapping[str, float],
    title: str = "",
    width: int = 50,
) -> str:
    """Horizontal bars, one per labelled value."""
    if not values:
        raise ValueError("need at least one value")
    if any(v < 0 for v in values.values()):
        raise ValueError("bar_chart requires non-negative values")
    hi = max(values.values()) or 1.0
    label_w = max(len(k) for k in values)
    lines = [title] if title else []
    for name, v in values.items():
        n = int(round(v / hi * width))
        lines.append(f"{name:<{label_w}} |{'#' * n}{' ' * (width - n)}| {_format_val(v)}")
    return "\n".join(lines)


def heatmap(
    matrix: np.ndarray,
    title: str = "",
    max_width: int = 72,
    row_label: str = "layer",
) -> str:
    """Intensity map of a 2-D array (Fig. 15-style activation heatmaps)."""
    matrix = np.asarray(matrix, dtype=np.float64)
    if matrix.ndim != 2 or matrix.size == 0:
        raise ValueError("heatmap needs a non-empty 2-D array")
    step = max(1, -(-matrix.shape[1] // max_width))
    # average adjacent columns when the matrix is wider than the terminal
    cols = matrix.shape[1] // step * step
    sub = matrix[:, :cols].reshape(matrix.shape[0], -1, step).mean(axis=2)
    hi = sub.max() or 1.0
    lines = [title] if title else []
    for r, row in enumerate(sub):
        cells = "".join(_GLYPHS[min(9, int(9 * v / hi))] for v in row)
        lines.append(f"{row_label}{r:>3} |{cells}|")
    lines.append(f"scale: ' '=0 … '@'={_format_val(hi)} (per-cell mean of {step} experts)"
                 if step > 1 else f"scale: ' '=0 … '@'={_format_val(hi)}")
    return "\n".join(lines)
