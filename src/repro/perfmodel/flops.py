"""Per-component FLOP / byte / launch accounting for one inference step.

Each function returns a :class:`ComponentCost` describing one logical
component of a decoder layer (projections, attention core, router, routed
experts, ...) for a step that processes ``m`` new tokens.  The phase model
(:mod:`repro.perfmodel.phases`) converts these into times via the roofline.

The routing statistics that shape the MoE cost (expert coverage, EP load
imbalance) live in :mod:`repro.moe.routing_math` and are re-exported here.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.models.config import AttentionKind, ModelConfig
from repro.models.params import attention_params
from repro.moe.routing_math import (
    expected_expert_coverage,
    expected_group_imbalance,
)
from repro.optim.quantization import QuantConfig

__all__ = [
    "ComponentCost",
    "expected_expert_coverage",
    "expected_group_imbalance",
    "qkvo_cost",
    "attention_core_cost",
    "router_cost",
    "routed_experts_cost",
    "shared_expert_cost",
    "dense_ffn_cost",
    "lm_head_cost",
    "embedding_cost",
]


@dataclass(frozen=True)
class ComponentCost:
    """Raw cost of one component of one layer for one step.

    ``gemm_m/n/k`` describe the dominant GEMM shape (for the efficiency
    curve); a component without a meaningful GEMM sets them to 0 and is
    treated as memory-bound.
    """

    name: str
    flops: float
    weight_bytes: float
    act_bytes: float
    launches: int
    gemm_m: float = 0.0
    gemm_n: float = 0.0
    gemm_k: float = 0.0

    @property
    def bytes(self) -> float:
        return self.weight_bytes + self.act_bytes


# --------------------------------------------------------------------- #
# per-component costs (single device; sharding applied by the phase model)
# --------------------------------------------------------------------- #


def qkvo_cost(model: ModelConfig, m: float, quant: QuantConfig) -> ComponentCost:
    """Q/K/V/O projections of one layer for ``m`` tokens."""
    h = model.hidden_size
    n_params = attention_params(model.attention, h)
    flops = 2.0 * m * n_params
    w_bytes = n_params * quant.weight_bytes
    # in/out activations of the four projections ≈ 4 reads + 4 writes of m*h
    a_bytes = 8.0 * m * h * quant.activation_bytes
    # q/k/v fused into one kernel in modern stacks; o separate; + rope + norm
    return ComponentCost(
        "qkvo", flops, w_bytes, a_bytes, launches=4,
        gemm_m=m, gemm_n=n_params / h, gemm_k=h,
    )


def attention_core_cost(
    model: ModelConfig,
    m: float,
    batch: float,
    kv_len: float,
    quant: QuantConfig,
    attended_len: float | None = None,
    mla_native: bool = False,
) -> ComponentCost:
    """Scaled-dot-product attention over the cached prefix.

    ``m`` new tokens across ``batch`` sequences; the KV read streams
    ``kv_len`` cached positions per sequence, while FLOPs scale with the
    *average attended* length (``(S+1)/2`` under a causal mask during
    prefill — pass it via ``attended_len``; decode attends to everything).
    ``mla_native`` selects compressed-latent caching for MLA models (see
    :meth:`AttentionConfig.kv_entries_per_token`).
    """
    att = model.attention
    if attended_len is None:
        attended_len = kv_len
    # sliding-window attention bounds both the attended span and the
    # rolling KV buffer each sequence keeps resident
    kv_len = att.effective_kv_len(kv_len)
    attended_len = att.effective_kv_len(attended_len)
    if att.kind is AttentionKind.MLA:
        d_qk = att.qk_nope_head_dim + att.qk_rope_head_dim
        d_v = att.v_head_dim
    else:
        d_qk = d_v = att.head_dim
    entries = att.kv_entries_per_token(mla_native)
    flops = 2.0 * m * att.num_heads * attended_len * (d_qk + d_v)
    kv_read = batch * kv_len * entries * quant.kv_bytes
    kv_write = m * entries * quant.kv_bytes
    a_bytes = 2.0 * m * model.hidden_size * quant.activation_bytes
    return ComponentCost(
        "attention", flops, 0.0, kv_read + kv_write + a_bytes, launches=1,
        gemm_m=m, gemm_n=attended_len, gemm_k=d_qk,
    )


def router_cost(model: ModelConfig, m: float, quant: QuantConfig) -> ComponentCost:
    """Gating network of one MoE layer: an ``m × E`` GEMM plus top-k."""
    assert model.moe is not None
    h, e = model.hidden_size, model.moe.num_experts
    flops = 2.0 * m * h * e
    w_bytes = h * e * quant.weight_bytes
    a_bytes = m * (h + e) * quant.activation_bytes
    return ComponentCost("router", flops, w_bytes, a_bytes, launches=2,
                         gemm_m=m, gemm_n=e, gemm_k=h)


def routed_experts_cost(
    model: ModelConfig,
    m: float,
    quant: QuantConfig,
    fused: bool = True,
    num_experts_resident: int | None = None,
    top_k: int | None = None,
) -> ComponentCost:
    """Routed expert FFNs of one MoE layer for ``m`` tokens.

    Compute scales with ``m * top_k``; weight traffic scales with the
    *expected expert coverage* — the distinct experts the batch touches.
    The unfused path pays per-expert kernel launches and re-materialises
    the dispatched activations (extra activation traffic).
    """
    assert model.moe is not None
    moe = model.moe
    e = num_experts_resident if num_experts_resident is not None else moe.num_experts
    k = top_k if top_k is not None else moe.top_k
    h, f = model.hidden_size, moe.expert_ffn_dim
    n_mats = 3 if moe.gated else 2

    per_expert = n_mats * h * f
    coverage = expected_expert_coverage(e, min(k, e), m)
    flops = 2.0 * m * k * per_expert
    w_bytes = coverage * per_expert * quant.weight_bytes
    # dispatch duplicates each token k times; intermediate is m*k*f
    a_bytes = (2.0 * m * h + 2.0 * m * k * h + 2.0 * m * k * f) * quant.activation_bytes
    if fused:
        launches = 3  # permute + grouped GEMM pass + combine
    else:
        # one gather/GEMM/scatter group per resident expert + combine;
        # dispatched activations are re-materialised, and the per-expert
        # weight streams lose coalescing relative to the grouped kernel
        launches = e + 2
        a_bytes *= 2.0
        w_bytes *= 1.15

    tokens_per_expert = m * k / max(coverage, 1.0)
    return ComponentCost(
        "experts", flops, w_bytes, a_bytes, launches=launches,
        gemm_m=tokens_per_expert, gemm_n=f, gemm_k=h,
    )


def shared_expert_cost(model: ModelConfig, m: float, quant: QuantConfig) -> ComponentCost:
    """Always-active shared experts of one MoE layer (dense FFN cost)."""
    assert model.moe is not None
    moe = model.moe
    if moe.num_shared_experts == 0:
        return ComponentCost("shared", 0.0, 0.0, 0.0, launches=0)
    h = model.hidden_size
    f_total = moe.num_shared_experts * moe.shared_expert_ffn_dim
    n_mats = 3 if moe.gated else 2
    n_params = n_mats * h * f_total
    flops = 2.0 * m * n_params
    w_bytes = n_params * quant.weight_bytes
    a_bytes = (2.0 * m * h + 2.0 * m * f_total) * quant.activation_bytes
    return ComponentCost("shared", flops, w_bytes, a_bytes, launches=n_mats,
                         gemm_m=m, gemm_n=f_total, gemm_k=h)


def dense_ffn_cost(model: ModelConfig, m: float, quant: QuantConfig) -> ComponentCost:
    """Dense (non-MoE) FFN of one layer."""
    h, f = model.hidden_size, model.dense_ffn_dim
    if f == 0:
        return ComponentCost("dense_ffn", 0.0, 0.0, 0.0, launches=0)
    n_params = 3 * h * f
    flops = 2.0 * m * n_params
    w_bytes = n_params * quant.weight_bytes
    a_bytes = (2.0 * m * h + 2.0 * m * f) * quant.activation_bytes
    return ComponentCost("dense_ffn", flops, w_bytes, a_bytes, launches=3,
                         gemm_m=m, gemm_n=f, gemm_k=h)


def lm_head_cost(model: ModelConfig, m_logits: float, quant: QuantConfig) -> ComponentCost:
    """Final vocabulary projection for ``m_logits`` positions (decode: one
    per sequence; prefill: only the last position per sequence)."""
    h, v = model.hidden_size, model.vocab_size
    flops = 2.0 * m_logits * h * v
    w_bytes = h * v * quant.weight_bytes
    a_bytes = m_logits * (h + v) * quant.activation_bytes
    return ComponentCost("lm_head", flops, w_bytes, a_bytes, launches=2,
                         gemm_m=m_logits, gemm_n=v, gemm_k=h)


def embedding_cost(model: ModelConfig, m: float, quant: QuantConfig) -> ComponentCost:
    """Token-embedding gather for ``m`` tokens (pure memory)."""
    h = model.hidden_size
    a_bytes = 2.0 * m * h * quant.activation_bytes
    return ComponentCost("embedding", 0.0, 0.0, a_bytes, launches=1)
