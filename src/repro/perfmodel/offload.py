"""Expert offloading to host memory (CPU RAM tier).

When a MoE's resident weights exceed device memory, systems park cold
experts in host RAM and fetch them over PCIe on demand (DeepSpeed-MoE /
Mixtral-offloading style).  The decode-step cost then splits by where the
activated experts live:

* hits — experts resident in HBM stream at HBM bandwidth;
* misses — experts fetched over PCIe (~50x slower per byte than HBM3),
  which is the throughput cliff this model quantifies.

The hit rate is determined by which experts are kept hot.  With
frequency-aware caching and a skewed router, keeping fraction ``f`` of
experts captures more than ``f`` of the traffic; the mapping is supplied
by a traffic CDF (uniform by default, or measured activation counts).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.hardware.spec import HardwareSpec
from repro.models.config import ModelConfig
from repro.moe.routing_math import expected_expert_coverage
from repro.optim.quantization import FP16_CONFIG, QuantConfig

__all__ = ["PCIE_GEN5_GBPS", "OffloadPlan", "traffic_hit_fraction",
           "offloaded_expert_step_time", "offload_throughput_estimate"]

PCIE_GEN5_GBPS = 55.0
"""Achievable host-to-device bandwidth of a PCIe gen5 x16 link."""


def traffic_hit_fraction(activation_counts: np.ndarray, hot_fraction: float) -> float:
    """Fraction of routed traffic captured by keeping the most-activated
    ``hot_fraction`` of experts resident."""
    counts = np.asarray(activation_counts, dtype=np.float64)
    if counts.ndim != 1 or counts.size == 0:
        raise ValueError("activation_counts must be a non-empty 1-D array")
    if not (0.0 <= hot_fraction <= 1.0):
        raise ValueError("hot_fraction must be in [0, 1]")
    total = counts.sum()
    if total == 0:
        return hot_fraction
    n_hot = int(round(counts.size * hot_fraction))
    if n_hot == 0:
        return 0.0
    hot = np.sort(counts)[::-1][:n_hot]
    return float(hot.sum() / total)


@dataclass(frozen=True)
class OffloadPlan:
    """How a model's experts are split across HBM and host RAM."""

    hot_fraction: float
    """Fraction of each layer's experts kept in device memory."""
    hit_fraction: float
    """Fraction of routed traffic that lands on hot experts."""
    pcie_gbps: float = PCIE_GEN5_GBPS

    def __post_init__(self) -> None:
        if not (0.0 <= self.hot_fraction <= 1.0):
            raise ValueError("hot_fraction must be in [0, 1]")
        if not (0.0 <= self.hit_fraction <= 1.0):
            raise ValueError("hit_fraction must be in [0, 1]")
        if self.hit_fraction < self.hot_fraction - 1e-9:
            raise ValueError(
                "hit_fraction below hot_fraction implies worse-than-random "
                "caching; pick the hot experts by frequency"
            )
        if self.pcie_gbps <= 0:
            raise ValueError("pcie_gbps must be positive")


def offloaded_expert_step_time(
    model: ModelConfig,
    num_tokens: int,
    plan: OffloadPlan,
    hw: HardwareSpec,
    quant: QuantConfig = FP16_CONFIG,
) -> float:
    """Seconds per decode step spent on routed experts, all layers, when
    cold experts live in host RAM."""
    if model.moe is None:
        raise ValueError(f"{model.name} has no MoE layers")
    if num_tokens <= 0:
        raise ValueError("num_tokens must be positive")
    moe = model.moe
    per_expert_bytes = (3 if moe.gated else 2) * model.hidden_size * \
        moe.expert_ffn_dim * quant.weight_bytes
    coverage = expected_expert_coverage(moe.num_experts, moe.top_k, num_tokens)
    hot_cov = coverage * plan.hit_fraction
    cold_cov = coverage - hot_cov
    t_hbm = hot_cov * per_expert_bytes / hw.mem_bytes_per_s
    t_pcie = cold_cov * per_expert_bytes / (plan.pcie_gbps * 1e9)
    return model.num_moe_layers * (t_hbm + t_pcie)


def offload_throughput_estimate(
    model: ModelConfig,
    batch: int,
    context_len: int,
    plan: OffloadPlan,
    hw: HardwareSpec,
    quant: QuantConfig = FP16_CONFIG,
) -> float:
    """Decode tokens/s with offloading: the fully-resident step cost with
    its expert term replaced by the tiered version."""
    from repro.perfmodel.phases import StepModel

    steps = StepModel(model, hw, quant=quant)
    bd = steps.step_breakdown(batch, batch, context_len, "decode")
    resident_expert_s = bd.components.get("moe_ffn", 0.0)
    tiered_expert_s = offloaded_expert_step_time(model, batch, plan, hw, quant)
    step_s = bd.total - resident_expert_s + max(resident_expert_s, tiered_expert_s)
    return batch / step_s
