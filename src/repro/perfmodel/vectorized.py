"""Vectorized evaluation of :class:`StepModel` across an axis of shapes.

Sweeps evaluate hundreds of grid points against the *same* deployment;
the roofline is closed-form in the step shape, so a whole axis of
``(num_tokens, batch, kv_len)`` points can be priced as NumPy float64
arrays in one pass instead of one Python call per point.

**Bit-identity contract.** The fingerprint gate (PR 2) digests tables
from ``repr()`` of every float, so the vectorized path must produce the
*same bits* as the scalar path, not merely close values.  Three rules
keep it exact:

* every arithmetic expression mirrors the scalar code's operand order
  and association (IEEE-754 ops on float64 arrays are elementwise
  identical to the same ops on Python floats);
* repeated accumulation stays repeated — the scalar path adds the same
  per-layer time ``num_layers`` times, and ``n`` additions are *not* a
  multiplication in floating point, so the array path loops the adds;
* transcendental / non-elementwise terms (``**`` in expert coverage,
  ``log``/``sqrt`` in group imbalance, the tile-quantisation floordiv)
  go through the existing *scalar* functions per element — NumPy's
  ufunc variants are not guaranteed to round identically.

Only the exact :class:`StepModel` class is mirrored; subclasses override
kernel-time methods (ablation variants), so :func:`supports` steers them
back to the scalar path.
"""

from __future__ import annotations

import numpy as np

from repro.hardware.roofline import _M_HALF, _TILE
from repro.models.config import AttentionKind
from repro.models.params import attention_params
from repro.perfmodel.flops import (
    expected_expert_coverage,
    expected_group_imbalance,
)
from repro.perfmodel.phases import StepModel

__all__ = ["VectorizedStepModel", "supports"]

_QUANT_DTYPES = ("fp8_e4m3", "int8", "int4")


def supports(steps: StepModel) -> bool:
    """Whether the vectorized mirror is valid for this step model.

    Subclasses (e.g. the flat-efficiency ablation) override the scalar
    kernel-time methods; mirroring the base-class math would silently
    diverge, so they are excluded.
    """
    return type(steps) is StepModel


def _tile_quant(d) -> float:
    """Exact mirror of the tile-granularity penalty in
    :func:`repro.hardware.roofline.gemm_efficiency` (Python scalar ops —
    ``//`` on arrays is not guaranteed bit-identical)."""
    tiles = -(-d // _TILE)
    return d / (tiles * _TILE)


# The per-layer mirrors below are polymorphic over float64 arrays (a whole
# axis of shapes) and plain Python floats (the engine fast path's one-point
# probes, where size-1 array dispatch overhead would dominate).  IEEE-754
# ops on float64 arrays are elementwise identical to the same ops on
# Python floats, and max/min select the same value as maximum/minimum on
# the positive finite operands used here, so both input kinds produce the
# same bits.  These three helpers absorb the only array-specific
# constructs:

def _zeros(x):
    """``np.zeros_like`` for arrays, exact ``0.0`` for scalars."""
    return np.zeros_like(x) if isinstance(x, np.ndarray) else 0.0


def _maximum(a, b):
    """Elementwise/scalar max (operands are finite and never -0.0)."""
    return np.maximum(a, b) if isinstance(a, np.ndarray) or \
        isinstance(b, np.ndarray) else max(a, b)


def _minimum(a, b):
    """Elementwise/scalar min (operands are finite and never -0.0)."""
    return np.minimum(a, b) if isinstance(a, np.ndarray) or \
        isinstance(b, np.ndarray) else min(a, b)


def _map(fn, x):
    """Per-element scalar helper application (coverage / imbalance terms
    route through the exact scalar functions in both modes)."""
    if isinstance(x, np.ndarray):
        return np.array([fn(float(v)) for v in x])
    return fn(float(x))


class VectorizedStepModel:
    """Array-at-a-time mirror of one :class:`StepModel`'s step costs."""

    def __init__(self, steps: StepModel) -> None:
        if not supports(steps):
            raise TypeError(
                f"vectorized path mirrors StepModel exactly; got "
                f"{type(steps).__qualname__} (use the scalar path)"
            )
        self.steps = steps
        self.model = steps.model
        self.hw = steps.hardware
        self.plan = steps.plan
        self.quant = steps.quant

    # ------------------------------------------------------------------ #
    # roofline mirrors
    # ------------------------------------------------------------------ #

    def _gemm_eff(self, m, n, k):
        """Mirror of ``gemm_efficiency`` — ``m`` (and possibly ``n``) may
        be arrays; the tile terms go through the scalar helper."""
        sat = m / (m + _M_HALF)
        if isinstance(n, np.ndarray):
            tq_n = np.array([_tile_quant(float(x)) for x in n])
        else:
            tq_n = _tile_quant(float(n))
        gran = tq_n * _tile_quant(k)
        return self.hw.max_gemm_efficiency * sat * gran

    def _kernel_time(self, flops, bytes_, dtype, launches, eff):
        """Mirror of ``kernel_time``; ``flops=None`` encodes the scalar
        path's ``if cost.flops`` zero branch."""
        hw = self.hw
        if eff is None:
            eff = hw.max_gemm_efficiency
        if dtype in _QUANT_DTYPES:
            eff = eff * hw.quant_gemm_derate
        t_compute = 0.0 if flops is None else flops / (hw.peak_flops_per_s(dtype) * eff)
        t_memory = bytes_ / hw.mem_bytes_per_s
        launch = launches * hw.kernel_launch_us * 1e-6
        return _maximum(t_compute, t_memory) + launch

    def _component_time(self, flops, w_bytes, a_bytes, launches, gemm,
                        shard=1.0, kv_shard=1.0, dtype=None):
        """Mirror of ``StepModel._component_time``.  ``gemm`` is ``None``
        or ``(m, n, k)``; zero-cost components are skipped by callers
        (the scalar zero-guard never fires for a live component)."""
        flops = None if flops is None else flops / shard
        w = w_bytes / shard
        if self.quant.weights.is_quantized:
            w = w / self.hw.quant_mem_derate
        a = a_bytes / kv_shard if kv_shard != 1.0 else a_bytes / shard
        if gemm is not None:
            gm, gn, gk = gemm
            gn = gn / shard
            gn = _maximum(1.0, gn)
            eff = self._gemm_eff(gm, gn, gk)
        else:
            eff = None
        if dtype is None:
            dtype = self.quant.compute_dtype_name
        return self._kernel_time(flops, w + a, dtype, launches, eff)

    # ------------------------------------------------------------------ #
    # per-layer mirrors (arguments are float64 arrays over the axis)
    # ------------------------------------------------------------------ #

    def _attention_time(self, m, batch, kv_len, attended_len):
        tp = self.plan.tp
        att = self.model.attention
        quant = self.quant
        h = self.model.hidden_size
        if att.kind is AttentionKind.MLA and self.steps.mla_native:
            kv_shard = 1.0
        else:
            kv_shard = float(min(tp, att.num_kv_heads))

        n_params = attention_params(att, h)
        t = self._component_time(
            2.0 * m * n_params,
            n_params * quant.weight_bytes,
            8.0 * m * h * quant.activation_bytes,
            launches=4, gemm=(m, n_params / h, h), shard=tp,
        )

        # attention core (attention_core_cost): sliding window bounds both
        # the resident KV and the attended span; per-element Python `min`
        # mirrored with np.minimum on identical operands
        if att.sliding_window > 0:
            kv_len = _minimum(kv_len, float(att.sliding_window))
            attended_len = _minimum(attended_len, float(att.sliding_window))
        if att.kind is AttentionKind.MLA:
            d_qk = att.qk_nope_head_dim + att.qk_rope_head_dim
            d_v = att.v_head_dim
        else:
            d_qk = d_v = att.head_dim
        entries = att.kv_entries_per_token(self.steps.mla_native)
        flops = 2.0 * m * att.num_heads * attended_len * (d_qk + d_v)
        kv_read = batch * kv_len * entries * quant.kv_bytes
        kv_write = m * entries * quant.kv_bytes
        a_bytes = 2.0 * m * h * quant.activation_bytes
        t = t + self._component_time(
            flops, 0.0, kv_read + kv_write + a_bytes,
            launches=1, gemm=(m, attended_len, d_qk),
            shard=tp, kv_shard=kv_shard, dtype="fp16",
        )

        # rmsnorm + residual + rope elementwise traffic
        ew_bytes = 8.0 * m * h * quant.activation_bytes / tp
        t = t + self._kernel_time(None, ew_bytes, "fp16", 5, None)
        return t

    def _moe_ffn_time(self, m):
        """(router, compute incl. router, comm) arrays for one MoE layer."""
        moe = self.model.moe
        assert moe is not None
        quant = self.quant
        tp, ep = self.plan.tp, self.plan.ep
        intra_tp = self.plan.expert_shard_tp
        h = self.model.hidden_size
        e = moe.num_experts

        router_t = self._component_time(
            2.0 * m * h * e,
            h * e * quant.weight_bytes,
            m * (h + e) * quant.activation_bytes,
            launches=2, gemm=(m, e, h), shard=1.0,
        )
        t = router_t

        if ep > 1:
            resident = moe.num_experts // ep
            imbalance = _map(
                lambda x: expected_group_imbalance(ep, x), m * moe.top_k)
            local_tokens = m / ep
            m_eff = _maximum(1.0, local_tokens)
            t_exp = self._routed_experts_time(
                m_eff, e=resident, k=min(moe.top_k, resident),
                extra_launches=3, shard=intra_tp,
            )
            t = t + t_exp * imbalance
        else:
            t_exp = self._routed_experts_time(
                m, e=moe.num_experts, k=moe.top_k, extra_launches=0, shard=tp,
            )
            t = t + t_exp

        # shared experts: zero-cost when absent (scalar adds exact 0.0)
        if moe.num_shared_experts > 0:
            f_total = moe.num_shared_experts * moe.shared_expert_ffn_dim
            n_mats = 3 if moe.gated else 2
            n_params = n_mats * h * f_total
            t = t + self._component_time(
                2.0 * m * n_params,
                n_params * quant.weight_bytes,
                (2.0 * m * h + 2.0 * m * f_total) * quant.activation_bytes,
                launches=n_mats, gemm=(m, f_total, h), shard=tp,
            )

        comm = _zeros(m)
        if ep > 1:
            payload = (m * moe.top_k / ep) * h * quant.activation_bytes
            comm = comm + 2.0 * self._all_to_all(payload * ep, ep)
        return router_t, t, comm

    def _routed_experts_time(self, m, e, k, extra_launches, shard):
        """Mirror of ``routed_experts_cost`` + ``_component_time`` (with
        the EP path's ``launches + 3`` rebuild folded in)."""
        moe = self.model.moe
        quant = self.quant
        h, f = self.model.hidden_size, moe.expert_ffn_dim
        n_mats = 3 if moe.gated else 2
        per_expert = n_mats * h * f
        coverage = _map(lambda x: expected_expert_coverage(e, min(k, e), x), m)
        flops = 2.0 * m * k * per_expert
        w_bytes = coverage * per_expert * quant.weight_bytes
        a_bytes = (2.0 * m * h + 2.0 * m * k * h + 2.0 * m * k * f) * quant.activation_bytes
        if self.steps.fused_moe:
            launches = 3
        else:
            launches = e + 2
            a_bytes = a_bytes * 2.0
            w_bytes = w_bytes * 1.15
        tokens_per_expert = m * k / _maximum(coverage, 1.0)
        return self._component_time(
            flops, w_bytes, a_bytes, launches + extra_launches,
            gemm=(tokens_per_expert, f, h), shard=shard,
        )

    def _dense_ffn_time(self, m):
        h, f = self.model.hidden_size, self.model.dense_ffn_dim
        if f == 0:
            return _zeros(m)
        quant = self.quant
        n_params = 3 * h * f
        return self._component_time(
            2.0 * m * n_params,
            n_params * quant.weight_bytes,
            (2.0 * m * h + 2.0 * m * f) * quant.activation_bytes,
            launches=3, gemm=(m, f, h), shard=self.plan.tp,
        )

    # ------------------------------------------------------------------ #
    # interconnect mirrors (n > 1 and payload > 0 guaranteed by callers)
    # ------------------------------------------------------------------ #

    def _link(self):
        link = self.hw.interconnect
        if link is None:
            raise ValueError(f"{self.hw.name} has no interconnect configured")
        return link

    def _allreduce(self, msg, n):
        link = self._link()
        volume = 2.0 * (n - 1) / n * msg
        return volume / (link.link_bandwidth_gbps * 1e9) + 2 * (n - 1) * link.latency_us * 1e-6

    def _all_to_all(self, msg, n):
        link = self._link()
        volume = (n - 1) / n * msg
        return volume / (link.link_bandwidth_gbps * 1e9) + (n - 1) * link.latency_us * 1e-6

    def _p2p(self, msg):
        link = self._link()
        return msg / (link.link_bandwidth_gbps * 1e9) + link.latency_us * 1e-6

    # ------------------------------------------------------------------ #
    # whole-step mirrors
    # ------------------------------------------------------------------ #

    def step_totals(self, num_tokens, batch, kv_len, attended_len=None) -> list[float]:
        """``step_breakdown(...).total`` for an axis of step shapes.

        Arguments are per-point sequences; ``attended_len=None`` mirrors
        the scalar default (attend to the whole context).  Returns Python
        floats so downstream tables never see ``np.float64`` (its repr
        would corrupt table digests).
        """
        m = np.asarray(num_tokens, dtype=np.float64)
        b = np.asarray(batch, dtype=np.float64)
        kv = np.asarray(kv_len, dtype=np.float64)
        att = kv if attended_len is None else np.asarray(attended_len, dtype=np.float64)
        if m.size and (m.min() <= 0 or b.min() <= 0):
            raise ValueError("num_tokens and batch must be positive")
        total = self._total(m, b, kv, att)
        return [float(x) for x in total]

    def step_total_one(self, num_tokens, batch, kv_len,
                       attended_len=None) -> float:
        """One step's total seconds through the same polymorphic mirrors,
        on Python floats — the engine fast path's point probe, where the
        array entry's size-1 dispatch overhead would dominate.  Same bits
        as ``step_totals([...])[0]`` (see the helper-function note)."""
        m = float(num_tokens)
        b = float(batch)
        kv = float(kv_len)
        att = kv if attended_len is None else float(attended_len)
        if m <= 0 or b <= 0:
            raise ValueError("num_tokens and batch must be positive")
        return float(self._total(m, b, kv, att))

    def _total(self, m, b, kv, att):
        """Shared step-total core; inputs are all-float64-arrays or
        all-Python-floats (never mixed)."""
        model, plan, hw, quant = self.model, self.plan, self.hw, self.quant
        attn_layer = self._attention_time(m, b, kv, att)
        moe_layer = None
        dense_layer = None

        # per-layer accumulation stays repeated addition (n adds != mul)
        attn_time = _zeros(m)
        moe_time = _zeros(m)
        moe_comm = _zeros(m)
        dense_time = _zeros(m)
        for _, is_moe in model.iter_layers():
            attn_time = attn_time + attn_layer
            if is_moe:
                if moe_layer is None:
                    moe_layer = self._moe_ffn_time(m)
                _, t, c = moe_layer
                moe_time = moe_time + t
                moe_comm = moe_comm + c
            else:
                if dense_layer is None:
                    dense_layer = self._dense_ffn_time(m)
                dense_time = dense_time + dense_layer

        embedding = self._component_time(
            None, 0.0, 2.0 * m * model.hidden_size * quant.activation_bytes,
            launches=1, gemm=None, shard=plan.tp,
        )
        h, v = model.hidden_size, model.vocab_size
        lm_head = self._component_time(
            2.0 * b * h * v,
            h * v * quant.weight_bytes,
            b * (h + v) * quant.activation_bytes,
            launches=2, gemm=(b, v, h), shard=plan.tp,
        )

        comm = _zeros(m)
        if plan.tp > 1:
            payload = m * model.hidden_size * quant.activation_bytes
            n_ar = model.num_layers
            n_ar += (
                model.num_dense_layers
                + (model.num_moe_layers if plan.expert_shard_tp > 1 or plan.ep == 1 else 0)
            )
            comm = comm + n_ar * self._allreduce(payload, plan.tp)
        comm = comm + moe_comm

        if plan.pp > 1:
            hop = self._p2p(m * model.hidden_size * quant.activation_bytes)
            pipeline = (plan.pp - 1) * (hop + hw.step_overhead_us * 1e-6 * 0.5)
        else:
            pipeline = _zeros(m)

        overhead = (hw.step_overhead_us + b * hw.per_seq_overhead_us) * 1e-6

        # sum(components.values()) + comm + pipeline + overhead, in the
        # exact insertion/addition order of PhaseBreakdown.total
        total = 0 + attn_time
        total = total + moe_time
        total = total + dense_time
        total = total + embedding
        total = total + lm_head
        total = total + comm
        total = total + pipeline
        total = total + overhead
        return total

    def prefill_totals(self, batches, prompt_lens) -> list[float]:
        """``prefill_time`` for per-point ``(batch, prompt_len)`` pairs."""
        batches = list(batches)
        prompt_lens = list(prompt_lens)
        if any(p <= 0 for p in prompt_lens):
            raise ValueError("prompt_len must be positive")
        return self.step_totals(
            num_tokens=[b * p for b, p in zip(batches, prompt_lens)],
            batch=batches,
            kv_len=prompt_lens,
            attended_len=[(p + 1) / 2.0 for p in prompt_lens],
        )

    def decode_totals(self, batches, context_lens) -> list[float]:
        """``decode_step_time`` for per-point ``(batch, context)`` pairs."""
        batches = list(batches)
        context_lens = list(context_lens)
        if any(c <= 0 for c in context_lens):
            raise ValueError("context_len must be positive")
        return self.step_totals(
            num_tokens=batches, batch=batches, kv_len=context_lens,
        )
