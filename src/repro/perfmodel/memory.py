"""Device memory footprint model and OOM detection.

Computes per-device weight, KV-cache and activation memory for a model
under a parallel plan and quantization config, mirroring how vLLM budgets
an H100: ``gpu_memory_utilization`` of the 80 GB is usable; weights are
resident; the KV cache takes what the batch needs; the rest is workspace.

The sweeps use :meth:`MemoryModel.fits` to mark configurations as OOM —
the paper notes "any missing data points in the results indicate OOM
conditions" (§5.1).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hardware.spec import HardwareSpec
from repro.models.config import AttentionKind, ModelConfig
from repro.models.params import model_params
from repro.optim.quantization import FP16_CONFIG, QuantConfig
from repro.parallel.plan import SINGLE_DEVICE, ParallelPlan

__all__ = ["MemoryBreakdown", "MemoryModel", "GPU_MEMORY_UTILIZATION", "RUNTIME_OVERHEAD_GB"]

GPU_MEMORY_UTILIZATION = 0.90
"""Fraction of device memory the engine may use (vLLM default)."""

RUNTIME_OVERHEAD_GB = 1.5
"""CUDA context + framework allocations outside the managed pool."""


@dataclass(frozen=True)
class MemoryBreakdown:
    """Per-device memory footprint, in bytes."""

    weights: float  # simlint: unit=bytes
    kv_cache: float  # simlint: unit=bytes
    activations: float  # simlint: unit=bytes
    overhead: float  # simlint: unit=bytes

    @property
    def total(self) -> float:
        return self.weights + self.kv_cache + self.activations + self.overhead

    def total_gb(self) -> float:
        return self.total / 1e9


class MemoryModel:
    """Memory accounting for one (model, hardware, plan, quant) deployment."""

    def __init__(
        self,
        model: ModelConfig,
        hardware: HardwareSpec,
        plan: ParallelPlan = SINGLE_DEVICE,
        quant: QuantConfig = FP16_CONFIG,
        mla_native: bool = False,
    ) -> None:
        plan.validate_for_model(model)
        self.model = model
        self.hardware = hardware
        self.plan = plan
        self.quant = quant
        self.mla_native = mla_native
        self._params = model_params(model)
        # both per-device figures are pure in the constructor arguments
        # and probed once per sweep point / scheduler admission check, so
        # they memoize lazily (never invalidated — the model is immutable)
        self._weight_bytes: float | None = None
        self._kv_bytes_per_token: float | None = None

    # ------------------------------------------------------------------ #

    def weight_bytes_per_device(self) -> float:
        """Resident weight bytes on the most-loaded device.

        Layer weights are sharded ``tp``-ways within a stage and the layer
        stack is split ``pp``-ways; embeddings/LM head are vocab-parallel
        over ``tp``.  EP placement redistributes experts but keeps the same
        per-device total (E/ep experts each sharded tp/ep-ways).
        """
        if self._weight_bytes is not None:
            return self._weight_bytes
        p = self._params
        layer_total = sum(lp.total for lp in p.layers)
        per_stage_layers = layer_total / self.plan.pp / self.plan.tp
        embed = (p.embedding + p.lm_head + p.final_norm) / self.plan.tp
        vision = p.vision_tower  # vision tower is replicated on rank 0's stage
        self._weight_bytes = (per_stage_layers + embed + vision) * self.quant.weight_bytes
        return self._weight_bytes

    def kv_bytes_per_token_per_device(self) -> float:
        """KV-cache bytes one context token costs on one device (all of the
        device's layers).  GQA (and materialised-MLA) KV heads shard across
        TP; a native-MLA compressed latent is replicated across TP ranks."""
        if self._kv_bytes_per_token is not None:
            return self._kv_bytes_per_token
        att = self.model.attention
        entries = att.kv_entries_per_token(self.mla_native)
        if att.kind is AttentionKind.MLA and self.mla_native:
            shard = 1
        else:
            shard = min(self.plan.tp, att.num_kv_heads)
        layers_per_stage = self.model.num_layers / self.plan.pp
        self._kv_bytes_per_token = layers_per_stage * entries / shard * self.quant.kv_bytes
        return self._kv_bytes_per_token

    def kv_cache_bytes(self, batch: int, seq_len: int) -> float:
        """KV bytes for ``batch`` sequences of ``seq_len`` context tokens
        (sliding-window models keep only the rolling window resident)."""
        if batch < 0 or seq_len < 0:
            raise ValueError("batch and seq_len must be non-negative")
        held = self.model.attention.effective_kv_len(seq_len)
        return batch * held * self.kv_bytes_per_token_per_device()

    def activation_bytes(self, num_tokens: int) -> float:
        """Peak transient workspace for a step over ``num_tokens`` tokens."""
        m = max(1, num_tokens)
        h = self.model.hidden_size / self.plan.tp
        widths = [self.model.dense_ffn_dim]
        if self.model.moe is not None:
            widths.append(self.model.moe.expert_ffn_dim * self.model.moe.top_k)
            widths.append(
                self.model.moe.num_shared_experts * self.model.moe.shared_expert_ffn_dim
            )
        f = max(widths) / self.plan.tp
        act = 2.0 * m * (h + f) * self.quant.activation_bytes
        # logits buffer is fp32 in most engines
        logits = min(m, 1024) * self.model.vocab_size / self.plan.tp * 4.0
        return act + logits

    def breakdown(self, batch: int, seq_len: int, step_tokens: int | None = None) -> MemoryBreakdown:
        """Footprint of serving ``batch`` sequences at ``seq_len`` context."""
        m = step_tokens if step_tokens is not None else batch * seq_len
        return MemoryBreakdown(
            weights=self.weight_bytes_per_device(),
            kv_cache=self.kv_cache_bytes(batch, seq_len),
            activations=self.activation_bytes(m),
            overhead=RUNTIME_OVERHEAD_GB * 1e9,
        )

    def budget_bytes(self) -> float:
        """Usable bytes per device."""
        return self.hardware.memory_bytes * GPU_MEMORY_UTILIZATION

    def fits(self, batch: int, seq_len: int) -> bool:
        """Whether the deployment fits in device memory (False == OOM)."""
        return self.breakdown(batch, seq_len).total <= self.budget_bytes()

    def max_context_tokens(self) -> int:
        """KV-cache capacity in tokens after weights and overhead (the
        quantity vLLM logs as '# GPU blocks * block_size')."""
        free = (
            self.budget_bytes()
            - self.weight_bytes_per_device()
            - RUNTIME_OVERHEAD_GB * 1e9
            - self.activation_bytes(4096)
        )
        per_token = self.kv_bytes_per_token_per_device()
        return max(0, int(free / per_token))
