"""Step-time composition: prefill and decode phase models.

Turns the per-component costs of :mod:`repro.perfmodel.flops` into wall
times on a given hardware/parallelism/quantization deployment:

* TP shards every GEMM ``tp``-ways and adds two ring all-reduces per layer;
* EP places whole experts on ``ep`` device groups, paying two all-to-alls
  per MoE layer plus a stochastic load-imbalance stall;
* PP splits the layer stack and adds ``pp-1`` point-to-point hops (no
  intra-request pipelining — a single batch traverses stages serially,
  which is why PP throughput stays flat in the paper's Fig. 13);
* the fused-MoE toggle switches the expert path's launch count and
  intermediate traffic (Fig. 14).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.hardware.interconnect import all_to_all_time, allreduce_time, p2p_time
from repro.hardware.roofline import KernelCost, gemm_efficiency, kernel_time
from repro.hardware.spec import HardwareSpec
from repro.models.config import AttentionKind, ModelConfig
from repro.optim.quantization import FP16_CONFIG, QuantConfig
from repro.parallel.plan import SINGLE_DEVICE, ParallelPlan
from repro.perfmodel import stepcache as _stepcache
from repro.perfmodel.flops import (
    ComponentCost,
    attention_core_cost,
    dense_ffn_cost,
    embedding_cost,
    expected_expert_coverage,
    expected_group_imbalance,
    lm_head_cost,
    qkvo_cost,
    router_cost,
    routed_experts_cost,
    shared_expert_cost,
)

__all__ = ["PhaseBreakdown", "StepModel"]


@dataclass
class PhaseBreakdown:
    """Wall time of one forward step, decomposed.

    ``components`` maps component name → seconds (summed over all layers);
    ``comm`` is collective-communication time, ``pipeline`` the PP hop cost,
    ``overhead`` the fixed per-step software cost.
    """

    phase: str
    components: dict[str, float] = field(default_factory=dict)
    comm: float = 0.0  # simlint: unit=s
    pipeline: float = 0.0  # simlint: unit=s
    overhead: float = 0.0  # simlint: unit=s
    subcomponents: dict[str, float] = field(default_factory=dict)
    """Finer-grained attribution *overlapping* ``components`` (e.g. the
    router's share of ``moe_ffn``) — excluded from :attr:`total`, consumed
    by the cost-attribution profiler to carve components apart."""

    @property
    def total(self) -> float:
        return sum(self.components.values()) + self.comm + self.pipeline + self.overhead

    def add(self, name: str, seconds: float) -> None:
        self.components[name] = self.components.get(name, 0.0) + seconds

    def shares(self) -> dict[str, float]:
        """Fraction of step time per component (comm/pipeline/overhead
        included), for profiler-style reports."""
        total = self.total
        if total <= 0:
            return {}
        out = {k: v / total for k, v in self.components.items() if v > 0}
        for name, v in (("comm", self.comm), ("pipeline", self.pipeline),
                        ("overhead", self.overhead)):
            if v > 0:
                out[name] = v / total
        return out

    def describe(self, width: int = 40) -> str:
        """A one-block text profile of where the step time goes."""
        shares = sorted(self.shares().items(), key=lambda kv: -kv[1])
        if not shares:
            return f"{self.phase}: empty step"
        label_w = max(len(k) for k, _ in shares)
        lines = [f"{self.phase} step: {self.total * 1e3:.3f} ms"]
        for name, frac in shares:
            bar = "#" * max(1, int(round(frac * width)))
            lines.append(f"  {name:<{label_w}} {100 * frac:5.1f}% |{bar}")
        return "\n".join(lines)


class StepModel:
    """Per-step execution-time model for one deployment."""

    def __init__(
        self,
        model: ModelConfig,
        hardware: HardwareSpec,
        plan: ParallelPlan = SINGLE_DEVICE,
        quant: QuantConfig = FP16_CONFIG,
        fused_moe: bool = True,
        mla_native: bool = False,
    ) -> None:
        plan.validate_for_model(model)
        if plan.num_devices > hardware.max_devices:
            raise ValueError(
                f"plan needs {plan.num_devices} devices; {hardware.name} nodes "
                f"have at most {hardware.max_devices}"
            )
        self.model = model
        self.hardware = hardware
        self.plan = plan
        self.quant = quant
        self.fused_moe = fused_moe
        self.mla_native = mla_native
        # intern the frozen setup once: per-step cache keys are flat tuples.
        # the concrete class is part of the setup — subclasses override
        # kernel-time methods (e.g. ablation variants) and must not share
        # entries with the base model.
        self._cache = _stepcache.GLOBAL
        self._setup_id = self._cache.setup_id(_stepcache.freeze((
            type(self).__module__, type(self).__qualname__,
            model, hardware, plan, quant, fused_moe, mla_native,
        )))

    @property
    def setup_id(self) -> int:
        """Interned id of this deployment's frozen setup — equal setups
        (same model/hardware/plan/quant/flags and concrete class) share an
        id, so external memo tables (the engine fast path's totals memo)
        can key on it instead of re-hashing the configs."""
        return self._setup_id

    # ------------------------------------------------------------------ #
    # kernel-time helpers
    # ------------------------------------------------------------------ #

    def _component_time(self, cost: ComponentCost, shard: float = 1.0,
                        kv_shard: float = 1.0, dtype: str | None = None) -> float:
        """Roofline time of one component sharded ``shard``-ways.

        ``kv_shard`` separately divides activation/KV traffic for the
        attention core (KV heads shard differently from weights);
        ``dtype`` overrides the math dtype (attention cores run in half
        precision even under weight/activation quantization).
        """
        if cost.launches == 0 and cost.flops == 0 and cost.bytes == 0:
            return 0.0
        flops = cost.flops / shard
        w_bytes = cost.weight_bytes / shard
        if self.quant.weights.is_quantized:
            # dequantisation stalls erode part of the bandwidth saving
            w_bytes /= self.hardware.quant_mem_derate
        a_bytes = cost.act_bytes / kv_shard if kv_shard != 1.0 else cost.act_bytes / shard
        kc = KernelCost(
            flops=flops,
            bytes=w_bytes + a_bytes,
            dtype=dtype if dtype is not None else self.quant.compute_dtype_name,
            launches=cost.launches,
        )
        if cost.gemm_m > 0:
            eff = gemm_efficiency(
                cost.gemm_m, max(1.0, cost.gemm_n / shard), cost.gemm_k, self.hardware
            )
        else:
            eff = None
        return kernel_time(kc, self.hardware, efficiency=eff)

    # ------------------------------------------------------------------ #
    # per-layer times
    # ------------------------------------------------------------------ #

    def _attention_time(self, m: float, batch: float, kv_len: float,
                        attended_len: float | None) -> float:
        tp = self.plan.tp
        att = self.model.attention
        if att.kind is AttentionKind.MLA and self.mla_native:
            kv_shard = 1.0  # the compressed latent is replicated across TP
        else:
            kv_shard = float(min(tp, att.num_kv_heads))
        t = self._component_time(qkvo_cost(self.model, m, self.quant), shard=tp)
        # the attention core runs in half precision regardless of quant mode
        t += self._component_time(
            attention_core_cost(self.model, m, batch, kv_len, self.quant,
                                attended_len, mla_native=self.mla_native),
            shard=tp,
            kv_shard=kv_shard,
            dtype="fp16",
        )
        # rmsnorm + residual + rope elementwise traffic
        ew = KernelCost(
            flops=0.0,
            bytes=8.0 * m * self.model.hidden_size * self.quant.activation_bytes / tp,
            dtype="fp16",
            launches=5,
        )
        t += kernel_time(ew, self.hardware)
        return t

    def _moe_ffn_time(self, m: float) -> tuple[float, float, float]:
        """(router seconds, compute seconds incl. router, comm seconds) of
        one MoE layer's FFN block."""
        moe = self.model.moe
        assert moe is not None
        tp, ep = self.plan.tp, self.plan.ep
        intra_tp = self.plan.expert_shard_tp
        router_t = self._component_time(router_cost(self.model, m, self.quant), shard=1.0)
        t = router_t

        if ep > 1:
            resident = moe.num_experts // ep
            # mean assignments landing on one EP group; the all-to-all
            # barrier makes the step as slow as the *max*-loaded group, so
            # the whole expert phase is scaled by the multinomial imbalance
            imbalance = expected_group_imbalance(ep, m * moe.top_k)
            local_tokens = m / ep
            cost = routed_experts_cost(
                self.model,
                max(1.0, local_tokens),
                self.quant,
                fused=self.fused_moe,
                num_experts_resident=resident,
                top_k=min(moe.top_k, resident),
            )
            # EP dispatch machinery: sort/scatter/gather across devices
            cost = ComponentCost(
                cost.name, cost.flops, cost.weight_bytes, cost.act_bytes,
                cost.launches + 3, cost.gemm_m, cost.gemm_n, cost.gemm_k,
            )
            t += self._component_time(cost, shard=intra_tp) * imbalance
        else:
            cost = routed_experts_cost(self.model, m, self.quant, fused=self.fused_moe)
            t += self._component_time(cost, shard=tp)

        t += self._component_time(shared_expert_cost(self.model, m, self.quant), shard=tp)

        comm = 0.0
        if ep > 1:
            payload = (m * moe.top_k / ep) * self.model.hidden_size * self.quant.activation_bytes
            comm += 2.0 * all_to_all_time(payload * ep, ep, self.hardware)
        return router_t, t, comm

    def _dense_ffn_time(self, m: float) -> float:
        return self._component_time(
            dense_ffn_cost(self.model, m, self.quant), shard=self.plan.tp
        )

    # ------------------------------------------------------------------ #
    # whole-step times
    # ------------------------------------------------------------------ #

    def step_breakdown(
        self,
        num_tokens: float,
        batch: float,
        kv_len: float,
        phase: str,
        attended_len: float | None = None,
    ) -> PhaseBreakdown:
        """Wall time of one forward step.

        Parameters
        ----------
        num_tokens:
            New tokens processed this step (prefill: ``batch * prompt_len``;
            decode: ``batch``).
        batch:
            Number of sequences in the step.
        kv_len:
            Context length whose KV cache is read per sequence.
        phase:
            ``"prefill"`` or ``"decode"`` (labelling + logits count).

        Results are memoized through :mod:`repro.perfmodel.stepcache`:
        repeated shapes return the *same* :class:`PhaseBreakdown` object,
        so callers must treat it as immutable (copy before editing).
        """
        if phase not in ("prefill", "decode"):
            raise ValueError(f"phase must be 'prefill' or 'decode', got {phase!r}")
        if num_tokens <= 0 or batch <= 0:
            raise ValueError("num_tokens and batch must be positive")
        cache = self._cache
        if not cache.enabled:
            return self._compute_step_breakdown(
                num_tokens, batch, kv_len, phase, attended_len)
        key = (self._setup_id, num_tokens, batch, kv_len, phase, attended_len)
        bd = cache.get(key)
        if bd is None:
            bd = self._compute_step_breakdown(
                num_tokens, batch, kv_len, phase, attended_len)
            cache.put(key, bd)
        return bd

    def _compute_step_breakdown(
        self,
        num_tokens: float,
        batch: float,
        kv_len: float,
        phase: str,
        attended_len: float | None,
    ) -> PhaseBreakdown:
        m = float(num_tokens)
        hw, plan, quant = self.hardware, self.plan, self.quant
        bd = PhaseBreakdown(phase=phase)

        moe_time = moe_comm = dense_time = attn_time = router_time = 0.0
        for _, is_moe in self.model.iter_layers():
            attn_time += self._attention_time(m, batch, kv_len, attended_len)
            if is_moe:
                r, t, c = self._moe_ffn_time(m)
                router_time += r
                moe_time += t
                moe_comm += c
            else:
                dense_time += self._dense_ffn_time(m)
        bd.add("attention", attn_time)
        bd.add("moe_ffn", moe_time)
        bd.add("dense_ffn", dense_time)
        if router_time:
            bd.subcomponents["router"] = router_time

        # embeddings + final logits (decode & prefill both produce `batch`)
        bd.add("embedding", self._component_time(
            embedding_cost(self.model, m, quant), shard=plan.tp))
        bd.add("lm_head", self._component_time(
            lm_head_cost(self.model, batch, quant), shard=plan.tp))

        # TP collectives: 2 ring all-reduces per layer over the token payload
        if plan.tp > 1:
            payload = m * self.model.hidden_size * quant.activation_bytes
            n_ar = self.model.num_layers  # post-attention all-reduce
            # post-FFN all-reduce only where the FFN is still TP-sharded
            n_ar += (
                self.model.num_dense_layers
                + (self.model.num_moe_layers if plan.expert_shard_tp > 1 or plan.ep == 1 else 0)
            )
            bd.comm += n_ar * allreduce_time(payload, plan.tp, hw)
        bd.comm += moe_comm

        # PP: serial stage traversal, one p2p hop per boundary, plus the
        # extra per-stage launch/sync overhead
        if plan.pp > 1:
            hop = p2p_time(m * self.model.hidden_size * quant.activation_bytes, hw)
            bd.pipeline = (plan.pp - 1) * (hop + hw.step_overhead_us * 1e-6 * 0.5)

        bd.overhead = (hw.step_overhead_us + batch * hw.per_seq_overhead_us) * 1e-6

        # vision tower cost is charged by the caller per image, not per step
        return bd

    def prefill_time(self, batch: int, prompt_len: int) -> float:
        """Seconds to prefill ``batch`` prompts of ``prompt_len`` tokens."""
        if prompt_len <= 0:
            raise ValueError("prompt_len must be positive")
        bd = self.step_breakdown(
            num_tokens=batch * prompt_len,
            batch=batch,
            kv_len=prompt_len,
            phase="prefill",
            attended_len=(prompt_len + 1) / 2.0,
        )
        return bd.total

    def decode_step_time(self, batch: int, context_len: int) -> float:
        """Seconds for one decode step at the given per-sequence context."""
        if context_len <= 0:
            raise ValueError("context_len must be positive")
        bd = self.step_breakdown(
            num_tokens=batch, batch=batch, kv_len=context_len, phase="decode"
        )
        return bd.total

    def cache_stats(self) -> _stepcache.CacheStats:
        """Hit/miss counters of the step cache this model routes through."""
        return self._cache.stats

    def vision_encode_time(self, num_images: int) -> float:
        """Seconds to encode ``num_images`` through the vision tower (VLMs).

        The ViT encoder is a dense transformer over ``image_tokens`` patches;
        we charge its GEMM flops at the roofline plus per-layer launches.
        """
        v = self.model.vision
        if v is None or num_images <= 0:
            return 0.0
        m = float(num_images * v.image_tokens)
        per_layer_params = 4 * v.hidden_size**2 + 2 * v.hidden_size * v.ffn_dim
        flops = 2.0 * m * per_layer_params * v.num_layers
        flops += 2.0 * m * v.image_tokens * v.hidden_size * 2 * v.num_layers  # attn core
        bytes_ = per_layer_params * v.num_layers * self.quant.weight_bytes
        bytes_ += 4.0 * m * v.hidden_size * v.num_layers * self.quant.activation_bytes
        kc = KernelCost(flops=flops, bytes=bytes_, dtype=self.quant.compute_dtype_name,
                        launches=8 * v.num_layers)
        eff = gemm_efficiency(m, v.hidden_size, v.hidden_size, self.hardware)
        return kernel_time(kc, self.hardware, efficiency=eff)
