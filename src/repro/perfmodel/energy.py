"""Energy model: joules and tokens-per-joule for a generation.

The paper motivates MoE optimization with "low latency and
energy-efficient execution on modern accelerators"; this module closes
that loop.  Power draw is modelled as a utilization-weighted interpolation
between idle and TDP: compute-bound phases run near TDP, memory/
communication-stalled phases near the idle floor.  Utilization comes from
the step model's compute-vs-roofline ratio.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.metrics import InferenceMetrics
from repro.hardware.spec import HardwareSpec
from repro.perfmodel.inference import InferencePerfModel

__all__ = ["EnergyEstimate", "device_power_w", "energy_for_generation"]


@dataclass(frozen=True)
class EnergyEstimate:
    """Energy accounting of one generation."""

    energy_j: float
    mean_power_w: float
    num_devices: int

    def tokens_per_joule(self, total_tokens: int) -> float:
        if total_tokens <= 0:
            raise ValueError("total_tokens must be positive")
        if self.energy_j <= 0:
            return float("inf")
        return total_tokens / self.energy_j

    @property
    def energy_wh(self) -> float:
        return self.energy_j / 3600.0


def device_power_w(hw: HardwareSpec, utilization: float) -> float:
    """Power draw at a given compute utilization (0..1)."""
    if not (0.0 <= utilization <= 1.0):
        raise ValueError(f"utilization must be in [0, 1], got {utilization}")
    idle = hw.idle_power_fraction * hw.tdp_w
    return idle + (hw.tdp_w - idle) * utilization


def _phase_utilization(pm: InferencePerfModel, num_tokens: int, batch: int,
                       kv_len: int, phase: str) -> float:
    """Achieved compute utilization of one step: model FLOPs over the
    device-seconds the step occupies at peak."""
    bd = pm.steps.step_breakdown(num_tokens, batch, kv_len, phase)
    if bd.total <= 0:
        return 0.0
    # FLOPs of the step (all components), single-device share
    from repro.models.params import model_params

    active = model_params(pm.model).active
    flops = 2.0 * num_tokens * active / pm.setup.plan.num_devices
    peak = pm.setup.hardware.peak_flops_per_s(pm.setup.quant.compute_dtype_name)
    return float(min(1.0, flops / (peak * bd.total)))


def energy_for_generation(
    pm: InferencePerfModel, metrics: InferenceMetrics
) -> EnergyEstimate:
    """Joules consumed producing ``metrics`` on ``pm``'s deployment."""
    shape = metrics.shape
    hw = pm.setup.hardware
    n_dev = pm.setup.plan.num_devices

    u_prefill = _phase_utilization(
        pm, shape.batch_size * shape.input_tokens, shape.batch_size,
        shape.input_tokens, "prefill",
    )
    mid_ctx = shape.input_tokens + shape.output_tokens // 2
    u_decode = _phase_utilization(pm, shape.batch_size, shape.batch_size,
                                  max(1, mid_ctx), "decode")

    t_prefill = metrics.ttft_s
    t_decode = metrics.e2e_latency_s - metrics.ttft_s
    energy = n_dev * (
        device_power_w(hw, u_prefill) * t_prefill
        + device_power_w(hw, u_decode) * t_decode
    )
    mean_power = energy / metrics.e2e_latency_s / n_dev if metrics.e2e_latency_s else 0.0
    return EnergyEstimate(energy_j=energy, mean_power_w=mean_power,
                          num_devices=n_dev)
