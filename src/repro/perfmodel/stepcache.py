"""Exact memoization of :class:`~repro.perfmodel.phases.StepModel` step costs.

The roofline model is a pure function of ``(model, hardware, plan, quant,
fused_moe, mla_native)`` — the frozen deployment *setup* — plus the step
shape ``(num_tokens, batch, kv_len, phase, attended_len)``.  Serving
simulations and chaos storms revisit the same shapes constantly (every
replay of a workload walks the same context trajectory), so the cache
stores the fully built :class:`PhaseBreakdown` and returns it verbatim:
a hit is a dict probe instead of ~6 roofline components x num_layers of
Python arithmetic.  Because the entry is the object the scalar path would
have produced, cached and uncached runs are bit-identical — the PR-2
fingerprint gate holds this to exact equality.

Cached breakdowns are shared between callers and MUST NOT be mutated;
consumers that edit component dicts (e.g. the fault injector) take a copy
first (see ``ServingEngine._components_of``).

Setups are interned to small integer ids at :class:`StepModel`
construction so the per-lookup key is a cheap flat tuple — the frozen
dataclass hash (which walks the whole model config) is paid once per
model, not once per step.

Toggles: ``REPRO_NO_STEPCACHE=1`` in the environment disables the global
cache at import; :func:`configure` flips it at runtime; counters come
back from :func:`stats` and flow into the ``repro.obs`` metrics registry
via the serving engine (``stepcache_hits_total`` / ``stepcache_misses_total`` gauges).
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import TYPE_CHECKING, Hashable

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.perfmodel.phases import PhaseBreakdown

__all__ = [
    "StepCache",
    "CacheStats",
    "GLOBAL",
    "configure",
    "clear",
    "stats",
]

DEFAULT_MAX_ENTRIES = 200_000
"""Shape-entry bound; crossing it drops the whole shape table at once
(deterministic wholesale clear — an LRU's eviction order would depend on
interleaving across experiments and make hit counters order-sensitive)."""


@dataclass
class CacheStats:
    """Hit/miss accounting for one :class:`StepCache`."""

    hits: int = 0
    misses: int = 0
    clears: int = 0
    """Wholesale evictions triggered by the entry bound."""

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0

    def as_dict(self) -> dict[str, float]:
        return {
            "hits": float(self.hits),
            "misses": float(self.misses),
            "clears": float(self.clears),
            "hit_rate": self.hit_rate,
        }


def freeze(value: object) -> Hashable:
    """A hashable surrogate for a (possibly dict-bearing) config object.

    Frozen dataclasses such as :class:`HardwareSpec` may carry plain dict
    fields (``peak_tflops``) that defeat hashing; this walks dataclass
    fields, mappings, and sequences, converting them to sorted tuples.
    Equal configs map to equal surrogates, so cache identity is preserved.
    """
    import dataclasses

    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return (
            type(value).__qualname__,
            tuple(freeze(getattr(value, f.name))
                  for f in dataclasses.fields(value)),
        )
    if isinstance(value, dict):
        return tuple(sorted((k, freeze(v)) for k, v in value.items()))
    if isinstance(value, (list, tuple)):
        return tuple(freeze(v) for v in value)
    return value


class StepCache:
    """Exact memo table for step breakdowns, keyed on interned setups."""

    def __init__(self, max_entries: int = DEFAULT_MAX_ENTRIES,
                 enabled: bool = True) -> None:
        if max_entries < 1:
            raise ValueError("max_entries must be >= 1")
        self.max_entries = max_entries
        self.enabled = enabled
        self.stats = CacheStats()
        self._entries: dict[tuple, "PhaseBreakdown"] = {}
        self._setup_ids: dict[Hashable, int] = {}
        self.totals: dict[tuple, float] = {}
        """Step *total* seconds keyed ``(setup_id, shape...)`` — the engine
        fast path's memo of :class:`VectorizedStepModel` evaluations.
        Values are bit-identical to ``step_breakdown(...).total`` /
        ``decode_step_time``, so sharing them across engines (fleet
        replicas share one perf model; sweep points share a setup id) only
        changes wallclock, never outputs.  Read directly in hot loops;
        insert through :meth:`total_put` for the entry bound."""
        self.decode_plans: dict[tuple[int, int], dict[int, float]] = {}
        """Decode-step seconds as ``(setup_id, batch) -> {context: s}`` —
        the nesting keeps the engine fast path's per-iteration probes on
        plain int keys (a window prices thousands of contexts per plan;
        flat tuple keys would allocate and hash a tuple per point).  Same
        sharing and bit-identity contract as :attr:`totals`."""

    # ------------------------------------------------------------------ #
    # setup interning
    # ------------------------------------------------------------------ #

    def setup_id(self, setup: Hashable) -> int:
        """Intern a frozen deployment setup to a small integer id.

        The expensive dataclass hash happens here, once per StepModel;
        lookups afterwards hash only the flat ``(id, shape...)`` tuple.
        Ids survive :meth:`clear` so StepModels stay valid.
        """
        found = self._setup_ids.get(setup)
        if found is None:
            found = len(self._setup_ids)
            self._setup_ids[setup] = found
        return found

    # ------------------------------------------------------------------ #
    # lookups
    # ------------------------------------------------------------------ #

    def get(self, key: tuple) -> "PhaseBreakdown | None":
        entry = self._entries.get(key)
        if entry is None:
            self.stats.misses += 1
        else:
            self.stats.hits += 1
        return entry

    def put(self, key: tuple, breakdown: "PhaseBreakdown") -> None:
        if len(self._entries) >= self.max_entries:
            self._entries.clear()
            self.stats.clears += 1
        self._entries[key] = breakdown

    def total_put(self, key: tuple, total: float) -> None:
        """Bounded insert into :attr:`totals` (same deterministic wholesale
        clear as the breakdown table)."""
        if len(self.totals) >= self.max_entries:
            self.totals.clear()
        self.totals[key] = total

    # ------------------------------------------------------------------ #
    # management
    # ------------------------------------------------------------------ #

    def clear(self) -> None:
        """Drop all shape entries (setup ids are kept)."""
        self._entries.clear()
        self.totals.clear()
        self.decode_plans.clear()

    def reset_stats(self) -> None:
        self.stats = CacheStats()

    def __len__(self) -> int:
        return len(self._entries)


GLOBAL = StepCache(
    enabled=os.environ.get("REPRO_NO_STEPCACHE", "") in ("", "0"),
)
"""Process-wide cache every :class:`StepModel` routes through by default."""


def configure(enabled: bool | None = None,
              max_entries: int | None = None) -> StepCache:
    """Adjust the global cache; returns it for chaining."""
    if enabled is not None:
        GLOBAL.enabled = enabled
    if max_entries is not None:
        if max_entries < 1:
            raise ValueError("max_entries must be >= 1")
        GLOBAL.max_entries = max_entries
    return GLOBAL


def clear() -> None:
    """Drop all shape entries from the global cache."""
    GLOBAL.clear()


def stats() -> CacheStats:
    return GLOBAL.stats
