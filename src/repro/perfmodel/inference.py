"""End-to-end inference performance model.

:class:`InferencePerfModel` composes the phase model into the paper's
metrics for a full generation: TTFT (prefill), E2E latency (prefill + all
decode steps, with the KV cache growing each step), Eq. (1) ITL, Eq. (2)
throughput, and samples/s for VLMs.  It also surfaces OOM checks so sweep
harnesses can mark infeasible points the way the paper's figures do.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.core.metrics import GenerationShape, InferenceMetrics

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.obs.instrument import Instrumentation
from repro.hardware.spec import HardwareSpec
from repro.models.config import ModelConfig
from repro.optim.quantization import FP16_CONFIG, QuantConfig
from repro.parallel.plan import SINGLE_DEVICE, ParallelPlan
from repro.perfmodel.memory import MemoryModel
from repro.perfmodel.phases import StepModel

__all__ = ["OOMError", "InferencePerfModel"]

# number of decode checkpoints used to integrate the growing-context decode
# time; decode cost is affine in context length, so few points suffice
_DECODE_SAMPLES = 8


class OOMError(RuntimeError):
    """Raised when a deployment does not fit in device memory."""

    def __init__(self, model_name: str, needed_gb: float, budget_gb: float) -> None:
        super().__init__(
            f"{model_name}: needs {needed_gb:.1f} GB/device but only "
            f"{budget_gb:.1f} GB available"
        )
        self.needed_gb = needed_gb
        self.budget_gb = budget_gb


@dataclass(frozen=True)
class _Setup:
    model: ModelConfig
    hardware: HardwareSpec
    plan: ParallelPlan
    quant: QuantConfig
    fused_moe: bool
    mla_native: bool = False


class InferencePerfModel:
    """Analytical model of one deployment's generation performance."""

    def __init__(
        self,
        model: ModelConfig,
        hardware: HardwareSpec,
        plan: ParallelPlan = SINGLE_DEVICE,
        quant: QuantConfig = FP16_CONFIG,
        fused_moe: bool = True,
        mla_native: bool = False,
        instrumentation: "Instrumentation | None" = None,
    ) -> None:
        self.setup = _Setup(model, hardware, plan, quant, fused_moe, mla_native)
        self.steps = StepModel(model, hardware, plan, quant, fused_moe,
                               mla_native=mla_native)
        self.memory = MemoryModel(model, hardware, plan, quant,
                                  mla_native=mla_native)
        self.obs = instrumentation

    def _count_eval(self, kind: str) -> None:
        obs = self.obs
        if obs is not None and obs.active:
            obs.metrics.counter(
                "perfmodel_evaluations_total",
                "analytical perf-model evaluations",
                labels={"kind": kind},
            ).inc()

    @property
    def model(self) -> ModelConfig:
        return self.setup.model

    # ------------------------------------------------------------------ #
    # feasibility
    # ------------------------------------------------------------------ #

    def check_fits(self, batch: int, max_seq: int) -> None:
        """Raise :class:`OOMError` if the shape cannot be served."""
        if not self.memory.fits(batch, max_seq):
            bd = self.memory.breakdown(batch, max_seq)
            raise OOMError(
                self.model.name, bd.total_gb(), self.memory.budget_bytes() / 1e9
            )

    def fits(self, batch: int, max_seq: int) -> bool:
        return self.memory.fits(batch, max_seq)

    # ------------------------------------------------------------------ #
    # phase times
    # ------------------------------------------------------------------ #

    def ttft(self, batch: int, input_tokens: int, images_per_sample: int = 0) -> float:
        """Time to first token: (vision encode +) prefill + sampling."""
        self._count_eval("ttft")
        t = self.steps.prefill_time(batch, self._context_tokens(input_tokens, images_per_sample))
        if images_per_sample > 0:
            t += self.steps.vision_encode_time(batch * images_per_sample)
        return t

    def decode_time(
        self, batch: int, input_tokens: int, output_tokens: int, images_per_sample: int = 0
    ) -> float:
        """Total time of the decode phase (output tokens 2..N).

        Integrates the per-step time over the growing context; decode cost
        is affine in context length so trapezoidal sampling is exact up to
        floating point.
        """
        if output_tokens <= 1:
            return 0.0
        self._count_eval("decode")
        ctx0 = self._context_tokens(input_tokens, images_per_sample)
        n_steps = output_tokens - 1
        samples = max(2, min(_DECODE_SAMPLES, n_steps))
        total = 0.0
        for i in range(samples):
            ctx = ctx0 + 1 + int(round(i * (n_steps - 1) / max(1, samples - 1)))
            total += self.steps.decode_step_time(batch, ctx)
        return total * n_steps / samples

    def generate(
        self,
        batch: int,
        input_tokens: int,
        output_tokens: int,
        images_per_sample: int = 0,
        check_memory: bool = True,
    ) -> InferenceMetrics:
        """Full-generation metrics for the given workload shape."""
        shape = GenerationShape(batch, input_tokens, output_tokens)
        obs = self.obs
        if obs is not None and obs.active:
            with obs.tracer.wall_span("perfmodel.generate", track="perfmodel",
                                      cat="perfmodel", batch=batch,
                                      input_tokens=input_tokens,
                                      output_tokens=output_tokens):
                return self._generate(shape, batch, input_tokens, output_tokens,
                                      images_per_sample, check_memory)
        return self._generate(shape, batch, input_tokens, output_tokens,
                              images_per_sample, check_memory)

    def _generate(
        self,
        shape: GenerationShape,
        batch: int,
        input_tokens: int,
        output_tokens: int,
        images_per_sample: int,
        check_memory: bool,
    ) -> InferenceMetrics:
        if check_memory:
            self.check_fits(
                batch, self._context_tokens(input_tokens, images_per_sample) + output_tokens
            )
        ttft = self.ttft(batch, input_tokens, images_per_sample)
        decode = self.decode_time(batch, input_tokens, output_tokens, images_per_sample)
        return InferenceMetrics(shape=shape, ttft_s=ttft, e2e_latency_s=ttft + decode)

    # ------------------------------------------------------------------ #

    def _context_tokens(self, input_tokens: int, images_per_sample: int) -> int:
        """Prompt length in LM tokens, including projected image tokens."""
        extra = 0
        if images_per_sample > 0:
            if self.model.vision is None:
                raise ValueError(f"{self.model.name} has no vision tower")
            extra = images_per_sample * self.model.vision.image_tokens
        return input_tokens + extra
