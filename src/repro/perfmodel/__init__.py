"""Analytical inference performance model: FLOPs/bytes, memory, phases, E2E."""

from repro.perfmodel.flops import (
    ComponentCost,
    attention_core_cost,
    dense_ffn_cost,
    embedding_cost,
    expected_expert_coverage,
    expected_group_imbalance,
    lm_head_cost,
    qkvo_cost,
    router_cost,
    routed_experts_cost,
    shared_expert_cost,
)
from repro.perfmodel.energy import (
    EnergyEstimate,
    device_power_w,
    energy_for_generation,
)
from repro.perfmodel.inference import InferencePerfModel, OOMError
from repro.perfmodel.memory import (
    GPU_MEMORY_UTILIZATION,
    MemoryBreakdown,
    MemoryModel,
)
from repro.perfmodel.offload import (
    PCIE_GEN5_GBPS,
    OffloadPlan,
    offload_throughput_estimate,
    offloaded_expert_step_time,
    traffic_hit_fraction,
)
from repro.perfmodel.phases import PhaseBreakdown, StepModel

__all__ = [
    "ComponentCost",
    "attention_core_cost",
    "dense_ffn_cost",
    "embedding_cost",
    "expected_expert_coverage",
    "expected_group_imbalance",
    "lm_head_cost",
    "qkvo_cost",
    "router_cost",
    "routed_experts_cost",
    "shared_expert_cost",
    "EnergyEstimate",
    "device_power_w",
    "energy_for_generation",
    "InferencePerfModel",
    "OOMError",
    "GPU_MEMORY_UTILIZATION",
    "MemoryBreakdown",
    "MemoryModel",
    "PCIE_GEN5_GBPS",
    "OffloadPlan",
    "offload_throughput_estimate",
    "offloaded_expert_step_time",
    "traffic_hit_fraction",
    "PhaseBreakdown",
    "StepModel",
]
