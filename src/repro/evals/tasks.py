"""Synthetic functional tasks for end-to-end evaluation of optimized models.

Real downstream accuracy needs trained checkpoints, which the offline
reproduction cannot load; what *can* be measured functionally is how much
an optimization (quantization, pruning) perturbs a model's behaviour.  A
:class:`AgreementTask` feeds identical inputs to a reference model and an
optimized variant and scores top-1 / top-k prediction agreement — the
standard "fidelity" proxy used in quantization papers.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.moe.model import MoETransformer

__all__ = ["AgreementTask", "AgreementResult", "make_task_suite"]


@dataclass(frozen=True)
class AgreementResult:
    """Fidelity scores of one model pair on one task."""

    task_name: str
    top1_agreement: float
    top5_agreement: float
    mean_logit_rmse: float

    def __post_init__(self) -> None:
        if not (0.0 <= self.top1_agreement <= 1.0):
            raise ValueError("top1_agreement must be in [0, 1]")
        if not (0.0 <= self.top5_agreement <= 1.0):
            raise ValueError("top5_agreement must be in [0, 1]")


@dataclass(frozen=True)
class AgreementTask:
    """One evaluation batch of synthetic prompts."""

    name: str
    batch: int
    seq_len: int
    seed: int = 0

    def __post_init__(self) -> None:
        if self.batch <= 0 or self.seq_len <= 0:
            raise ValueError("batch and seq_len must be positive")

    def inputs(self, vocab_size: int) -> np.ndarray:
        rng = np.random.default_rng(self.seed)
        return rng.integers(0, vocab_size, size=(self.batch, self.seq_len))

    def evaluate(
        self, reference: MoETransformer, candidate: MoETransformer
    ) -> AgreementResult:
        """Score ``candidate`` against ``reference`` on this task."""
        if reference.config.vocab_size != candidate.config.vocab_size:
            raise ValueError("models must share a vocabulary")
        ids = self.inputs(reference.config.vocab_size)
        ref_logits = reference(ids)[:, -1, :]
        cand_logits = candidate(ids)[:, -1, :]

        ref_top1 = np.argmax(ref_logits, axis=-1)
        cand_top1 = np.argmax(cand_logits, axis=-1)
        top1 = float(np.mean(ref_top1 == cand_top1))

        k = min(5, ref_logits.shape[-1])
        ref_topk = np.argpartition(-ref_logits, k - 1, axis=-1)[:, :k]
        in_topk = (cand_top1[:, None] == ref_topk).any(axis=-1)
        top5 = float(np.mean(in_topk))

        rmse = float(np.sqrt(np.mean((ref_logits - cand_logits) ** 2)))
        return AgreementResult(self.name, top1, top5, rmse)


def make_task_suite(
    num_tasks: int = 4, batch: int = 16, seq_len: int = 24, seed: int = 0
) -> list[AgreementTask]:
    """A small suite of independent synthetic tasks."""
    if num_tasks <= 0:
        raise ValueError("num_tasks must be positive")
    return [
        AgreementTask(name=f"synthetic-{i}", batch=batch, seq_len=seq_len,
                      seed=seed + 1000 * i)
        for i in range(num_tasks)
    ]
