"""Evaluation harness: accuracy-efficiency frontiers and fidelity sweeps.

Assembles the data behind the paper's Figs. 17/18 (throughput & latency vs
average accuracy) and runs functional fidelity evaluations of optimized
model variants through the synthetic task suite.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.evals.accuracy import average_accuracy
from repro.evals.tasks import AgreementResult, AgreementTask, make_task_suite
from repro.hardware.spec import HardwareSpec
from repro.models.config import ModelConfig
from repro.moe.model import MoETransformer
from repro.optim.quantization import FP16_CONFIG, QuantConfig
from repro.parallel.plan import SINGLE_DEVICE, ParallelPlan
from repro.perfmodel.inference import InferencePerfModel

__all__ = ["FrontierPoint", "accuracy_efficiency_frontier", "fidelity_sweep"]


@dataclass(frozen=True)
class FrontierPoint:
    """One model's position in the accuracy-efficiency plane."""

    model_name: str
    accuracy: float
    throughput_tok_s: float
    e2e_latency_s: float
    oom: bool

    @property
    def dominates(self) -> tuple[float, float]:  # pragma: no cover - sugar
        return (self.accuracy, self.throughput_tok_s)


def accuracy_efficiency_frontier(
    models: list[ModelConfig],
    hardware: HardwareSpec,
    batch: int,
    input_tokens: int,
    output_tokens: int,
    plans: dict[str, ParallelPlan] | None = None,
    quant: QuantConfig = FP16_CONFIG,
    fused_moe_overrides: dict[str, bool] | None = None,
) -> list[FrontierPoint]:
    """Measure each model's throughput/latency and pair it with its
    reference accuracy (Fig. 17/18 data).

    ``fused_moe_overrides`` disables the fused-MoE path per model, for
    architectures whose serving stack lacked a fused kernel.
    """
    plans = plans or {}
    fused_moe_overrides = fused_moe_overrides or {}
    points = []
    for model in models:
        plan = plans.get(model.name, SINGLE_DEVICE)
        pm = InferencePerfModel(
            model, hardware, plan=plan, quant=quant,
            fused_moe=fused_moe_overrides.get(model.name, True),
        )
        metrics = pm.generate(batch, input_tokens, output_tokens, check_memory=False)
        points.append(FrontierPoint(
            model_name=model.name,
            accuracy=average_accuracy(model.name),
            throughput_tok_s=metrics.throughput_tok_s,
            e2e_latency_s=metrics.e2e_latency_s,
            oom=not pm.fits(batch, input_tokens + output_tokens),
        ))
    return points


def fidelity_sweep(
    config: ModelConfig,
    variants: dict[str, MoETransformer],
    reference: MoETransformer | None = None,
    tasks: list[AgreementTask] | None = None,
) -> dict[str, list[AgreementResult]]:
    """Evaluate optimized variants against an FP32 reference on the
    synthetic task suite; returns results per variant."""
    tasks = tasks or make_task_suite()
    reference = reference or MoETransformer(config, seed=0)
    out: dict[str, list[AgreementResult]] = {}
    for name, candidate in variants.items():
        out[name] = [t.evaluate(reference, candidate) for t in tasks]
    return out
