"""Reference accuracy tables (paper §8, Figs. 17-18).

The paper plots each model's *published-checkpoint* accuracy (lm-eval for
LLMs, VLMEvalKit for VLMs) against its measured serving efficiency.
Accuracy is a property of the checkpoint, not of the serving stack, so the
reproduction carries the task scores as reference data (compiled from the
models' public evaluation results; MME's 0-2800 score is normalised to a
percentage).  A capability regression over (active, total) parameters is
provided for models without table entries.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.models.config import ModelConfig
from repro.models.params import model_params

__all__ = [
    "LM_EVAL_TASKS",
    "VLM_EVAL_TASKS",
    "LLM_TASK_ACCURACY",
    "VLM_TASK_ACCURACY",
    "task_accuracy",
    "average_accuracy",
    "predicted_accuracy",
    "degraded_topk_accuracy",
]

LM_EVAL_TASKS = (
    "arc_challenge", "arc_easy", "boolq", "hellaswag", "mmlu",
    "openbookqa", "rte", "winogrande", "piqa",
)
"""Language-understanding tasks (paper §8.1; lm-eval harness names)."""

VLM_EVAL_TASKS = (
    "mme", "textvqa", "ai2d", "docvqa", "mmmu", "infovqa",
    "realworldqa", "scienceqa",
)
"""Vision-language tasks (paper §8.2; VLMEvalKit names)."""

# Accuracy in percent. Sources: model cards / public lm-eval leaderboards.
LLM_TASK_ACCURACY: dict[str, dict[str, float]] = {
    "Mixtral-8x7B": {
        "arc_challenge": 59.7, "arc_easy": 83.5, "boolq": 85.3,
        "hellaswag": 84.0, "mmlu": 70.6, "openbookqa": 47.0,
        "rte": 71.1, "winogrande": 76.5, "piqa": 83.5,
    },
    "Qwen3-30B-A3B": {
        "arc_challenge": 63.5, "arc_easy": 85.0, "boolq": 88.0,
        "hellaswag": 84.5, "mmlu": 77.5, "openbookqa": 46.0,
        "rte": 77.0, "winogrande": 73.5, "piqa": 81.5,
    },
    "Qwen1.5-MoE-A2.7B": {
        "arc_challenge": 48.0, "arc_easy": 74.0, "boolq": 79.5,
        "hellaswag": 77.5, "mmlu": 62.5, "openbookqa": 43.0,
        "rte": 68.0, "winogrande": 67.0, "piqa": 80.0,
    },
    "DeepSeek-V2-Lite": {
        "arc_challenge": 49.5, "arc_easy": 76.5, "boolq": 80.5,
        "hellaswag": 78.5, "mmlu": 58.0, "openbookqa": 44.0,
        "rte": 64.0, "winogrande": 71.5, "piqa": 80.5,
    },
    "Phi-3.5-MoE": {
        "arc_challenge": 65.0, "arc_easy": 85.5, "boolq": 86.0,
        "hellaswag": 81.5, "mmlu": 76.0, "openbookqa": 46.0,
        "rte": 72.0, "winogrande": 73.5, "piqa": 80.5,
    },
    "OLMoE-1B-7B": {
        "arc_challenge": 45.0, "arc_easy": 72.5, "boolq": 75.0,
        "hellaswag": 76.5, "mmlu": 54.0, "openbookqa": 42.0,
        "rte": 60.5, "winogrande": 68.0, "piqa": 79.5,
    },
}

# MME reported on its 0-2800 scale, normalised here to percent.
VLM_TASK_ACCURACY: dict[str, dict[str, float]] = {
    "DeepSeek-VL2-Tiny": {
        "mme": 100 * 1915 / 2800, "textvqa": 80.7, "ai2d": 71.6,
        "docvqa": 88.9, "mmmu": 40.7, "infovqa": 66.1,
        "realworldqa": 64.2, "scienceqa": 84.5,
    },
    "DeepSeek-VL2-Small": {
        "mme": 100 * 2123 / 2800, "textvqa": 83.4, "ai2d": 80.0,
        "docvqa": 92.3, "mmmu": 48.0, "infovqa": 75.8,
        "realworldqa": 68.4, "scienceqa": 91.0,
    },
    "DeepSeek-VL2": {
        "mme": 100 * 2253 / 2800, "textvqa": 84.2, "ai2d": 81.4,
        "docvqa": 93.3, "mmmu": 51.1, "infovqa": 78.1,
        "realworldqa": 70.0, "scienceqa": 92.2,
    },
}

_ALL_TABLES = {**LLM_TASK_ACCURACY, **VLM_TASK_ACCURACY}


def task_accuracy(model_name: str, task: str) -> float:
    """Reference accuracy (percent) of one model on one task."""
    try:
        table = _ALL_TABLES[model_name]
    except KeyError:
        known = ", ".join(sorted(_ALL_TABLES))
        raise KeyError(f"no accuracy table for {model_name!r}; known: {known}") from None
    try:
        return table[task]
    except KeyError:
        raise KeyError(f"{model_name} has no entry for task {task!r}") from None


def average_accuracy(model_name: str) -> float:
    """Mean accuracy across the model's task suite (Fig. 17/18 y-axis)."""
    table = _ALL_TABLES.get(model_name)
    if table is None:
        known = ", ".join(sorted(_ALL_TABLES))
        raise KeyError(f"no accuracy table for {model_name!r}; known: {known}")
    return float(np.mean(list(table.values())))


def predicted_accuracy(model: ModelConfig) -> float:
    """Capability regression: average accuracy as a log-linear function of
    active and total parameters, fitted to the LLM reference table.

    Useful for hypothetical models in sweeps; for models with a table entry
    prefer :func:`average_accuracy`.
    """
    names = list(LLM_TASK_ACCURACY)
    from repro.models.zoo import ALL_MODELS

    xs, ys = [], []
    for name in names:
        cfg = ALL_MODELS[name]
        pb = model_params(cfg)
        xs.append([1.0, math.log(pb.active), math.log(pb.total)])
        ys.append(average_accuracy(name))
    coef, *_ = np.linalg.lstsq(np.array(xs), np.array(ys), rcond=None)
    pb = model_params(model)
    pred = coef @ np.array([1.0, math.log(pb.active), math.log(pb.total)])
    return float(np.clip(pred, 0.0, 100.0))


def _active_param_slope() -> float:
    """Accuracy points per ln(active parameters), fitted one-variable
    across the LLM reference table."""
    from repro.models.zoo import ALL_MODELS

    xs, ys = [], []
    for name in LLM_TASK_ACCURACY:
        pb = model_params(ALL_MODELS[name])
        xs.append([1.0, math.log(pb.active)])
        ys.append(average_accuracy(name))
    coef, *_ = np.linalg.lstsq(np.array(xs), np.array(ys), rcond=None)
    return float(coef[1])


def degraded_topk_accuracy(model: ModelConfig, top_k: int) -> float:
    """Predicted accuracy (percent) of ``model`` served with its router
    truncated to ``top_k`` routed experts.

    The two-variable regression in :func:`predicted_accuracy` cannot price
    a *within-model* top-k cut: active and total parameters are collinear
    across the reference table, so its active-parameter coefficient carries
    the wrong sign for a counterfactual where total parameters stay fixed.
    Instead this anchors at the model's reference accuracy at its native
    top-k and walks down a log(active)-only capability slope fitted across
    the LLM table — fewer routed experts, fewer active parameters, lower
    accuracy.
    """
    if model.moe is None:
        raise ValueError(f"{model.name} is dense; top-k degradation does not apply")
    native_k = model.moe.top_k
    if not 1 <= top_k <= native_k:
        raise ValueError(f"top_k must be in [1, {native_k}], got {top_k}")
    try:
        anchor = average_accuracy(model.name)
    except KeyError:
        anchor = predicted_accuracy(model)
    if top_k == native_k:
        return anchor
    import dataclasses

    degraded = dataclasses.replace(model, moe=model.moe.with_top_k(top_k))
    native_active = model_params(model).active
    degraded_active = model_params(degraded).active
    slope = _active_param_slope()
    pred = anchor + slope * (math.log(degraded_active) - math.log(native_active))
    return float(np.clip(pred, 0.0, 100.0))
