"""Accuracy reference tables and functional evaluation harness (paper §8)."""

from repro.evals.accuracy import (
    LLM_TASK_ACCURACY,
    LM_EVAL_TASKS,
    VLM_EVAL_TASKS,
    VLM_TASK_ACCURACY,
    average_accuracy,
    predicted_accuracy,
    task_accuracy,
)
from repro.evals.harness import (
    FrontierPoint,
    accuracy_efficiency_frontier,
    fidelity_sweep,
)
from repro.evals.tasks import AgreementResult, AgreementTask, make_task_suite

__all__ = [
    "LLM_TASK_ACCURACY",
    "LM_EVAL_TASKS",
    "VLM_EVAL_TASKS",
    "VLM_TASK_ACCURACY",
    "average_accuracy",
    "predicted_accuracy",
    "task_accuracy",
    "FrontierPoint",
    "accuracy_efficiency_frontier",
    "fidelity_sweep",
    "AgreementResult",
    "AgreementTask",
    "make_task_suite",
]
