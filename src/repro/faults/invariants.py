"""Invariants the simulator must keep — healthy or under chaos.

These checks are the contract the property-based suite drives: whatever a
seeded fault schedule does to the engine, the simulation must stay
physically coherent.  Each checker raises :class:`InvariantViolation` with
a precise message on the first breach.

* :func:`check_kv_integrity` — the KV block pool is an exact partition:
  every block is free, parked-reusable, or owned; shared blocks' refcounts
  match their owners; nothing is leaked or double-freed.
* :func:`check_engine_invariants` — mid-run: simulated time is monotone,
  queue membership matches request state, token counters stay in bounds.
* :func:`check_final_invariants` — at drain: every admitted request is
  terminal (finished or failed-with-reason), finished requests conserve
  tokens (``kv_tokens == prompt + generated - 1``), and the pool is empty.
* :func:`run_digest` — a deterministic SHA-256 of the full event log and
  request outcomes; the determinism regression gate compares two
  same-seed runs by this digest.
"""

from __future__ import annotations

import hashlib
from collections import Counter
from typing import TYPE_CHECKING

from repro.serving.kv_cache import PagedKVCache
from repro.serving.request import Request, RequestState

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.serving.engine import ServingEngine, ServingResult

__all__ = [
    "InvariantViolation",
    "check_kv_integrity",
    "check_engine_invariants",
    "check_final_invariants",
    "run_digest",
]


class InvariantViolation(AssertionError):
    """A simulator invariant was broken."""


def _violate(message: str) -> None:
    raise InvariantViolation(message)


# --------------------------------------------------------------------------- #
# KV pool partition audit
# --------------------------------------------------------------------------- #


def check_kv_integrity(kv: PagedKVCache) -> None:
    """Audit the block pool: free ∪ reusable ∪ owned must partition
    ``range(num_blocks)`` exactly, with sharing accounted by refcount."""
    free = list(kv._free)
    if len(set(free)) != len(free):
        _violate("duplicate block id on the free list (double free)")
    reusable = list(getattr(kv, "_reusable", {}).values())
    if len(set(reusable)) != len(reusable):
        _violate("duplicate block id in the reusable pool")
    owned = Counter(b for t in kv._tables.values() for b in t.blocks)

    by_hash = getattr(kv, "_by_hash", {})
    refcounts = {entry.block_id: entry.refcount for entry in by_hash.values()}
    for block, n in owned.items():
        expected = refcounts.get(block, 1)
        if expected == 0:
            _violate(f"block {block} is owned but registered at refcount 0")
        if n != expected and block in refcounts:
            _violate(
                f"shared block {block}: owned by {n} sequence(s) but "
                f"refcount is {expected}"
            )
        if n > 1 and block not in refcounts:
            _violate(f"unshared block {block} owned by {n} sequences")

    free_set, reusable_set, owned_set = set(free), set(reusable), set(owned)
    for a, b, what in (
        (free_set, owned_set, "free and owned"),
        (free_set, reusable_set, "free and reusable"),
        (reusable_set, owned_set, "reusable and owned"),
    ):
        both = a & b
        if both:
            _violate(f"block(s) {sorted(both)[:4]} are both {what}")
    universe = free_set | reusable_set | owned_set
    expected_universe = set(range(kv.num_blocks))
    if universe != expected_universe:
        leaked = sorted(expected_universe - universe)
        phantom = sorted(universe - expected_universe)
        if leaked:
            _violate(f"block(s) {leaked[:8]} leaked (not free, reusable, "
                     "or owned)")
        _violate(f"phantom block id(s) {phantom[:8]} outside the pool")
    if kv.reserved_blocks < 0:
        _violate(f"negative KV reservation: {kv.reserved_blocks}")


# --------------------------------------------------------------------------- #
# mid-run engine invariants
# --------------------------------------------------------------------------- #


def _check_request_bounds(req: Request) -> None:
    if req.generated_tokens < 0 or req.generated_tokens > req.sampling.max_tokens:
        _violate(
            f"request {req.request_id}: generated {req.generated_tokens} "
            f"outside [0, {req.sampling.max_tokens}]"
        )
    if req.kv_tokens < 0 or req.kv_tokens > req.total_length_budget:
        _violate(
            f"request {req.request_id}: kv_tokens {req.kv_tokens} outside "
            f"[0, {req.total_length_budget}]"
        )


def check_engine_invariants(engine: "ServingEngine",
                            prev_clock: float | None = None) -> None:
    """Checks that must hold between any two engine iterations."""
    if prev_clock is not None and engine.clock < prev_clock - 1e-12:
        _violate(
            f"simulated time went backwards: {engine.clock} < {prev_clock}"
        )
    check_kv_integrity(engine.kv)
    sched = engine.scheduler
    for req in sched.running:
        if req.state is not RequestState.RUNNING:
            _violate(f"request {req.request_id} in running list but state "
                     f"is {req.state.value}")
        if not engine.kv.has_sequence(req.request_id):
            _violate(f"running request {req.request_id} has no KV allocation")
        _check_request_bounds(req)
    for req in sched.waiting:
        if req.state not in (RequestState.WAITING, RequestState.PREEMPTED):
            _violate(f"request {req.request_id} in waiting queue but state "
                     f"is {req.state.value}")
        _check_request_bounds(req)
    for req in engine._all:
        if req.is_terminal:
            in_queues = any(r is req for r in sched.running) or \
                any(r is req for r in sched.waiting)
            if in_queues:
                _violate(f"terminal request {req.request_id} still queued")
            if engine.kv.has_sequence(req.request_id):
                _violate(f"terminal request {req.request_id} still holds KV")


# --------------------------------------------------------------------------- #
# end-of-run invariants
# --------------------------------------------------------------------------- #


def check_final_invariants(result: "ServingResult",
                           engine: "ServingEngine | None" = None) -> None:
    """Checks that must hold once the engine has drained."""
    last_time = 0.0
    for event in result.log.events:
        if event.time < last_time - 1e-12:
            _violate(f"event log out of order at t={event.time}")
        last_time = max(last_time, event.time)
    for req in result.requests:
        if not req.is_terminal:
            _violate(
                f"request {req.request_id} ended the run in state "
                f"{req.state.value} — every admitted request must finish, "
                "be retried to completion, or fail with a reason"
            )
        if req.is_finished:
            if req.generated_tokens < 1:
                _violate(f"finished request {req.request_id} generated no tokens")
            if req.generated_tokens > req.sampling.max_tokens:
                _violate(f"finished request {req.request_id} overran its "
                         "generation budget")
            expected_kv = req.prompt_tokens + req.generated_tokens - 1
            if req.kv_tokens != expected_kv:
                _violate(
                    f"token conservation broken for request {req.request_id}: "
                    f"kv_tokens {req.kv_tokens} != prompt + generated - 1 "
                    f"= {expected_kv}"
                )
            if req.first_token_time is None or req.finish_time is None:
                _violate(f"finished request {req.request_id} lacks timestamps")
            elif not (req.arrival_time <= req.first_token_time
                      <= req.finish_time + 1e-12):
                _violate(f"request {req.request_id} timestamps out of order")
        else:
            if not req.failure_reason:
                _violate(f"failed request {req.request_id} has no recorded "
                         "reason")
            if req.kv_tokens != 0:
                _violate(f"failed request {req.request_id} still counts "
                         f"{req.kv_tokens} KV tokens")
    if engine is not None:
        check_kv_integrity(engine.kv)
        if engine.kv._tables:
            _violate(
                f"KV leak at drain: sequence(s) "
                f"{sorted(engine.kv._tables)[:8]} still allocated"
            )
        if engine.scheduler.has_unfinished:
            _violate("scheduler still has queued work after drain")


# --------------------------------------------------------------------------- #
# determinism digest
# --------------------------------------------------------------------------- #


def _hex(x: float | None) -> str:
    return "None" if x is None else float(x).hex()


def run_digest(result: "ServingResult") -> str:
    """SHA-256 over the full event log and per-request outcomes.

    Floats are hashed via ``float.hex`` so the digest is exact: two runs
    agree iff they are bit-identical, which is what the determinism
    regression gate asserts for same-seed replays.
    """
    h = hashlib.sha256()
    for e in result.log.events:
        h.update(repr((
            _hex(e.time), e.type.value, e.request_ids, e.num_tokens,
            _hex(e.duration_s), _hex(e.kv_utilization), e.detail,
        )).encode())
    for r in sorted(result.requests, key=lambda r: r.request_id):
        h.update(repr((
            r.request_id, r.state.value, r.prompt_tokens, r.generated_tokens,
            r.kv_tokens, _hex(r.arrival_time), _hex(r.first_scheduled_time),
            _hex(r.first_token_time), _hex(r.finish_time),
            r.num_preemptions, r.fault_retries, _hex(r.retry_time),
            r.failure_reason,
        )).encode())
    return h.hexdigest()
