"""Canonical chaos runs: one seeded workload + fault schedule + engine.

Shared by the ``repro chaos`` CLI, the ``ext_resilience`` experiment and
the invariant test suite, so all three exercise the same code path.  A
chaos run is a pure function of its seeds: the same ``(workload seed,
fault seed)`` pair always produces a bit-identical event log and request
outcomes (asserted via :func:`repro.faults.invariants.run_digest`).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.faults.injector import FaultDomain, FaultInjector
from repro.faults.policies import (
    DegradePolicy,
    FailFastPolicy,
    RecoveryPolicy,
    RetryPolicy,
)
from repro.faults.schedule import FaultSchedule
from repro.hardware.gpus import H100_SXM
from repro.models.zoo import get_model
from repro.parallel.expert_parallel import replicated_round_robin_placement
from repro.perfmodel.inference import InferencePerfModel
from repro.serving.engine import ServingEngine, ServingResult
from repro.serving.scheduler import SchedulerConfig
from repro.workloads.generator import FixedShapeWorkload

__all__ = ["ChaosConfig", "ChaosRun", "make_policy", "build_chaos_engine",
           "chaos_serving_run", "chaos_run_digest"]

CHAOS_MODEL = "OLMoE-1B-7B"
"""Default chaos workload model (matches the observability reference)."""


@dataclass(frozen=True)
class ChaosConfig:
    """Everything a chaos run depends on (all seeds explicit)."""

    model_name: str = CHAOS_MODEL
    num_requests: int = 24
    input_tokens: int = 256
    output_tokens: int = 64
    arrival_interval: float = 0.005
    kv_pool_tokens: int | None = 32_768
    num_devices: int = 4
    ep: int = 4
    replicas: int = 2
    fault_seed: int = 0
    fault_rate: float = 2.0
    horizon_s: float = 8.0
    policy: str = "retry"
    degrade: bool = True

    def __post_init__(self) -> None:
        if self.num_requests < 1:
            raise ValueError("num_requests must be >= 1")
        if self.policy not in ("retry", "failfast"):
            raise ValueError(
                f"policy must be 'retry' or 'failfast', got {self.policy!r}"
            )


@dataclass
class ChaosRun:
    """A finished chaos run with its injector (for health / counters)."""

    result: ServingResult
    injector: FaultInjector
    schedule: FaultSchedule

    @property
    def summary(self) -> dict:
        res, inj = self.result, self.injector
        return {
            "requests": res.num_requests,
            "finished": res.num_requests - res.num_failed,
            "failed": res.num_failed,
            "availability": res.availability,
            "fault_retries": res.num_fault_retries,
            "makespan_s": res.makespan,
            "throughput_tok_s": res.throughput_tok_s,
            **inj.summary(),
        }


def make_policy(name: str) -> RecoveryPolicy:
    """Recovery policy from its CLI name."""
    if name == "retry":
        return RetryPolicy()
    if name == "failfast":
        return FailFastPolicy()
    raise ValueError(f"unknown recovery policy {name!r}")


def build_injector(config: ChaosConfig,
                   schedule: FaultSchedule | None = None) -> FaultInjector:
    """Injector for ``config`` (schedule generated from the fault seed
    unless an explicit one is supplied)."""
    model = get_model(config.model_name)
    if schedule is None:
        schedule = FaultSchedule.generate(
            seed=config.fault_seed,
            horizon_s=config.horizon_s,
            rate_per_s=config.fault_rate,
            num_targets=config.num_devices,
        )
    placement = None
    if model.moe is not None and \
            model.moe.num_experts % config.ep == 0 and config.ep > 1:
        placement = replicated_round_robin_placement(
            model.moe.num_experts, config.ep,
            replicas=min(config.replicas, config.ep),
        )
    domain = FaultDomain(
        num_devices=config.num_devices,
        ep=config.ep,
        top_k=model.moe.top_k if model.moe is not None else 0,
        placement=placement,
    )
    return FaultInjector(
        schedule,
        domain=domain,
        policy=make_policy(config.policy),
        degrade=DegradePolicy() if config.degrade else None,
    )


def build_chaos_engine(config: ChaosConfig | None = None,
                       schedule: FaultSchedule | None = None,
                       instrumentation=None
                       ) -> tuple[ServingEngine, FaultInjector]:
    """The canonical chaos deployment, loaded but not yet run — for callers
    (the invariant suite) that step the engine themselves."""
    config = config or ChaosConfig()
    injector = build_injector(config, schedule)
    injector.obs = instrumentation
    model = get_model(config.model_name)
    perf = InferencePerfModel(model, H100_SXM,
                              instrumentation=instrumentation)
    engine = ServingEngine(
        perf,
        scheduler_config=SchedulerConfig(max_num_seqs=64),
        kv_pool_tokens=config.kv_pool_tokens,
        rng=np.random.default_rng(0),
        instrumentation=instrumentation,
        fault_injector=injector,
    )
    workload = FixedShapeWorkload(
        batch_size=config.num_requests,
        input_tokens=config.input_tokens,
        output_tokens=config.output_tokens,
    )
    for i, request in enumerate(workload.requests()):
        request.arrival_time = i * config.arrival_interval
        engine.submit(request)
    return engine, injector


def chaos_serving_run(config: ChaosConfig | None = None,
                      schedule: FaultSchedule | None = None,
                      instrumentation=None) -> ChaosRun:
    """Serve the canonical fixed-shape workload under a fault schedule."""
    engine, injector = build_chaos_engine(config, schedule, instrumentation)
    result = engine.run()
    return ChaosRun(result=result, injector=injector,
                    schedule=injector.schedule)


def chaos_run_digest(config: ChaosConfig | None = None) -> str:
    """Serve the canonical chaos workload and return its run digest.

    Module-level (and :class:`ChaosConfig` is a plain frozen dataclass) so
    replays can run inside multiprocessing pool workers; the determinism
    suite asserts a worker's digest matches the parent process's.
    """
    from repro.faults.invariants import run_digest

    return run_digest(chaos_serving_run(config).result)
