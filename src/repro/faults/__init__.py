"""Deterministic fault injection + graceful degradation for the engine.

The simulated serving stack models healthy clusters by default; real
multi-GPU deployments lose devices, expert shards and links under load.
This package adds that robustness layer:

* :mod:`repro.faults.schedule` — a seeded :class:`FaultSchedule`, a pure
  function of ``(seed, sim-time horizon)`` with no wall-clock dependence,
  emitting device loss, expert-shard loss, interconnect degradation and
  transient KV-pool pressure events;
* :mod:`repro.faults.policies` — pluggable :class:`RecoveryPolicy`
  objects: capped-exponential-backoff retry (in simulated time), fail-fast,
  and graceful degradation to a reduced top-k;
* :mod:`repro.faults.injector` — the :class:`FaultInjector` the engine
  consults each iteration: applies due events to a :class:`ClusterHealth`
  model, kills/retries affected requests, prices slowdowns through the
  perf-model component breakdown, and heals transient faults;
* :mod:`repro.faults.invariants` — the property-checkable invariants the
  whole simulator must keep under chaos (token conservation, KV block
  integrity, monotone simulated time, terminal request states) plus the
  deterministic run digest the determinism regression gate compares.

Everything is default-off: an engine without an armed injector is
bit-identical to the pre-fault engine.
"""

from repro.faults.injector import ClusterHealth, FaultDomain, FaultInjector
from repro.faults.invariants import (
    InvariantViolation,
    check_engine_invariants,
    check_final_invariants,
    check_kv_integrity,
    run_digest,
)
from repro.faults.policies import (
    DegradePolicy,
    FailFastPolicy,
    RecoveryDecision,
    RecoveryPolicy,
    RetryPolicy,
)
from repro.faults.schedule import FaultEvent, FaultKind, FaultSchedule

__all__ = [
    "FaultEvent",
    "FaultKind",
    "FaultSchedule",
    "RecoveryDecision",
    "RecoveryPolicy",
    "RetryPolicy",
    "FailFastPolicy",
    "DegradePolicy",
    "ClusterHealth",
    "FaultDomain",
    "FaultInjector",
    "InvariantViolation",
    "check_engine_invariants",
    "check_final_invariants",
    "check_kv_integrity",
    "run_digest",
]
